(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (PIBE, ASPLOS'21) on the simulated kernel and prints the
   same rows the paper reports.

   Usage:
     bench/main.exe                 regenerate everything (paper order)
     bench/main.exe --table 5       one table (also: --figure 1, --robustness,
                                    --security, --ablation, --passes,
                                    --online, --fleet, --frontier,
                                    --stale, --fixpoint, --listings)
     bench/main.exe --quick         small kernel / fast settings
     bench/main.exe --jobs N        build/measure independent cells on up
                                    to N domains (1 = fully sequential;
                                    0 = one per core); output is
                                    identical at any job count
     bench/main.exe --bechamel      additionally run one Bechamel Test.make
                                    per experiment (timing of regeneration
                                    against the warm environment)
     bench/main.exe --engine NAME   execution backend: compiled (default)
                                    or interp; bit-exact, so output is
                                    identical either way
     bench/main.exe --tierup N      tier-up threshold for the compiled
                                    backend (entries of a function beyond
                                    N run the superblock-fused tier;
                                    0 disables tier-up; default from
                                    PIBE_TIERUP, else 2); bit-exact
                                    at every setting
     bench/main.exe --callfuse N    call-seam fusion threshold for the
                                    tiered backend (a direct call fuses
                                    across the call/return pair once its
                                    leaf callee's entry count exceeds N;
                                    0 disables fusion; default from
                                    PIBE_CALLFUSE, else 2); bit-exact
     bench/main.exe --tier3 N       tier-3 threshold for the tiered
                                    backend (entries of a function beyond
                                    N run the register-threaded int-coded
                                    tier; 0 disables tier 3; default from
                                    PIBE_TIER3, else 64); bit-exact
     bench/main.exe --time N        timing mode: after one warm run per
                                    selected experiment, re-run it N times
                                    and print one "time <id> <i> <secs>"
                                    line per run (tools/bench_compare.sh
                                    parses these; experiment output is
                                    suppressed)
     bench/main.exe --trace FILE    collect a structured trace of the whole
                                    run (spans per pass / window / measured
                                    op); the sink is picked by extension:
                                    .json -> Chrome trace_event (load in
                                    chrome://tracing or Perfetto),
                                    .csv -> CSV, anything else -> text *)

let quick = ref false
let bechamel = ref false
let jobs = ref 1
let engine = ref Pibe_cpu.Engine.Compiled
let trace_out : string option ref = ref None
let selected : string list ref = ref []
let time_runs = ref 0

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--bechamel" :: rest ->
      bechamel := true;
      go rest
    | "--trace" :: path :: rest ->
      trace_out := Some path;
      go rest
    | [ "--trace" ] ->
      Printf.eprintf "--trace expects an output file\n";
      exit 2
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 0 ->
        jobs := (if j = 0 then Domain.recommended_domain_count () else j)
      | _ ->
        Printf.eprintf "--jobs expects a non-negative integer, got %s\n" n;
        exit 2);
      go rest
    | "--engine" :: name :: rest ->
      (match Pibe_cpu.Engine.backend_of_string name with
      | Some b -> engine := b
      | None ->
        Printf.eprintf "--engine expects 'compiled' or 'interp', got %s\n" name;
        exit 2);
      go rest
    | [ "--engine" ] ->
      Printf.eprintf "--engine expects a backend name\n";
      exit 2
    | "--tierup" :: n :: rest ->
      (match int_of_string_opt n with
      | Some t when t >= 0 -> Pibe_cpu.Engine.set_default_tierup t
      | _ ->
        Printf.eprintf "--tierup expects a non-negative integer, got %s\n" n;
        exit 2);
      go rest
    | [ "--tierup" ] ->
      Printf.eprintf "--tierup expects a threshold\n";
      exit 2
    | "--callfuse" :: n :: rest ->
      (match int_of_string_opt n with
      | Some t when t >= 0 -> Pibe_cpu.Engine.set_default_callfuse t
      | _ ->
        Printf.eprintf "--callfuse expects a non-negative integer, got %s\n" n;
        exit 2);
      go rest
    | [ "--callfuse" ] ->
      Printf.eprintf "--callfuse expects a threshold\n";
      exit 2
    | "--tier3" :: n :: rest ->
      (match int_of_string_opt n with
      | Some t when t >= 0 -> Pibe_cpu.Engine.set_default_tier3 t
      | _ ->
        Printf.eprintf "--tier3 expects a non-negative integer, got %s\n" n;
        exit 2);
      go rest
    | [ "--tier3" ] ->
      Printf.eprintf "--tier3 expects a threshold\n";
      exit 2
    | "--time" :: n :: rest ->
      (match int_of_string_opt n with
      | Some t when t > 0 -> time_runs := t
      | _ ->
        Printf.eprintf "--time expects a positive integer, got %s\n" n;
        exit 2);
      go rest
    | [ "--time" ] ->
      Printf.eprintf "--time expects a run count\n";
      exit 2
    | "--table" :: n :: rest ->
      selected := ("table" ^ n) :: !selected;
      go rest
    | "--figure" :: n :: rest ->
      selected := ("figure" ^ n) :: !selected;
      go rest
    | "--robustness" :: rest ->
      selected := "robustness" :: !selected;
      go rest
    | "--security" :: rest ->
      selected := "security" :: !selected;
      go rest
    | "--ablation" :: rest ->
      selected := "ablation" :: !selected;
      go rest
    | "--passes" :: rest ->
      selected := "passes" :: !selected;
      go rest
    | "--online" :: rest ->
      selected := "online" :: !selected;
      go rest
    | "--fleet" :: rest ->
      selected := "fleet" :: !selected;
      go rest
    | "--frontier" :: rest ->
      selected := "frontier" :: !selected;
      go rest
    | "--stale" :: rest ->
      selected := "stale" :: !selected;
      go rest
    | "--fixpoint" :: rest ->
      selected := "fixpoint" :: !selected;
      go rest
    | "--listings" :: rest ->
      selected := "listings" :: !selected;
      go rest
    | "--only" :: id :: rest ->
      (* any experiment id (see 'pibe experiment list'), e.g. sensitivity,
         userspace, v1scan — ids without a dedicated flag *)
      selected := id :: !selected;
      go rest
    | [ "--only" ] ->
      Printf.eprintf "--only expects an experiment id\n";
      exit 2
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let run_experiment env (e : Pibe.Experiments.t) =
  Printf.printf "==> %s (%s): %s\n\n" e.Pibe.Experiments.id e.Pibe.Experiments.paper_ref
    e.Pibe.Experiments.description;
  List.iter Pibe_util.Tbl.print (e.Pibe.Experiments.run env)

let bechamel_pass env experiments =
  (* One Bechamel test per table/figure: how long regenerating each
     artifact takes against the warm (memoized) environment. *)
  let open Bechamel in
  let tests =
    List.map
      (fun (e : Pibe.Experiments.t) ->
        Test.make ~name:e.Pibe.Experiments.id
          (Staged.stage (fun () -> ignore (e.Pibe.Experiments.run env))))
      experiments
  in
  let test = Test.make_grouped ~name:"pibe-experiments" ~fmt:"%s %s" tests in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "bechamel %-32s %12.0f ns/run\n" name est
      | Some [] | None -> Printf.printf "bechamel %-32s (no estimate)\n" name)
    results

let trace_format_of_path path =
  if Filename.check_suffix path ".json" then Pibe_trace.Trace.Chrome
  else if Filename.check_suffix path ".csv" then Pibe_trace.Trace.Csv
  else Pibe_trace.Trace.Text

let () =
  parse_args ();
  if !trace_out <> None then Pibe_trace.Trace.start ();
  let env =
    if !quick then Pibe.Env.quick ~jobs:!jobs ~engine:!engine ()
    else Pibe.Env.create ~jobs:!jobs ~engine:!engine ()
  in
  let wanted =
    match !selected with
    | [] -> List.map (fun (e : Pibe.Experiments.t) -> e.Pibe.Experiments.id) Pibe.Experiments.all
    | ids -> List.rev ids
  in
  let t0_wall = Unix.gettimeofday () in
  let t0_cpu = Sys.time () in
  if !time_runs > 0 then
    (* Timing mode (the interleaved warm-run protocol of BENCH_PR*.json):
       one warm run to populate caches, then N timed re-runs against the
       warm environment; per-run wall seconds go to stdout in a
       machine-readable form for tools/bench_compare.sh. *)
    List.iter
      (fun id ->
        if not (String.equal id "listings") then
          match Pibe.Experiments.find id with
          | Some e ->
            ignore (e.Pibe.Experiments.run env);
            for i = 1 to !time_runs do
              let t0 = Unix.gettimeofday () in
              ignore (e.Pibe.Experiments.run env);
              Printf.printf "time %s %d %.6f\n%!" e.Pibe.Experiments.id i
                (Unix.gettimeofday () -. t0)
            done
          | None ->
            Printf.eprintf "unknown experiment id %s\n" id;
            exit 2)
      wanted
  else begin
    List.iter
      (fun id ->
        if String.equal id "listings" then begin
          print_endline "==> listings: the paper's defense code sequences\n";
          print_endline (Pibe.Experiments.listings ());
          print_newline ()
        end
        else
          match Pibe.Experiments.find id with
          | Some e -> run_experiment env e
          | None ->
            Printf.eprintf "unknown experiment id %s\n" id;
            exit 2)
      wanted;
    if !selected = [] then begin
      print_endline "==> listings: the paper's defense code sequences\n";
      print_endline (Pibe.Experiments.listings ())
    end
  end;
  if !bechamel then begin
    let experiments =
      List.filter_map Pibe.Experiments.find
        (List.filter (fun id -> not (String.equal id "listings")) wanted)
    in
    bechamel_pass env experiments
  end;
  (match !trace_out with
  | None -> ()
  | Some path ->
    let events = Pibe_trace.Trace.stop () in
    let fmt = trace_format_of_path path in
    Pibe_trace.Trace.write_file ~path fmt events;
    Printf.eprintf "trace: wrote %d events to %s (%s)\n" (List.length events) path
      (Pibe_trace.Trace.format_to_string fmt));
  Printf.printf "\n[bench harness finished in %.1fs wall clock (%.1fs host CPU, %d jobs)]\n"
    (Unix.gettimeofday () -. t0_wall)
    (Sys.time () -. t0_cpu)
    !jobs
