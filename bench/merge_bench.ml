(* Merge-throughput microbenchmark for the sharded profile aggregator.

   The fleet aggregator keeps one ring of window profiles per instance
   and builds each training profile with a single batched
   [Profile.merge_weighted] over every live snapshot.  This harness
   measures how that batched merge scales with shard count (ring depth
   fixed), and compares it against the naive alternative the batched
   design replaces: folding pairwise [Profile.merge] over the same
   snapshots, which rebuilds the accumulator table once per snapshot.

   Usage:
     bench/merge_bench.exe [--repeats N] [--depth N] [--sites N]

   Output: one "merge <shards> <parts> <batched-ms> <fold-ms>
   <profiles/s>" line per shard count (machine-readable; the numbers in
   BENCH_PR7.json come from this), then a short table. *)

module Rng = Pibe_util.Rng
module Profile = Pibe_profile.Profile

let repeats = ref 5
let depth = ref 4
let sites = ref 2000

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--repeats" :: n :: rest ->
      repeats := int_of_string n;
      go rest
    | "--depth" :: n :: rest ->
      depth := int_of_string n;
      go rest
    | "--sites" :: n :: rest ->
      sites := int_of_string n;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

(* A synthetic window profile shaped like the fleet's real ones: mostly
   direct counters, a band of indirect sites with small value profiles,
   and per-function entry counts.  Each snapshot draws from its own RNG
   stream so shards overlap on keys (the interesting merge case) but
   disagree on counts. *)
let snapshot rng ~sites =
  let p = Profile.create () in
  let indirect = sites / 5 in
  for origin = 0 to sites - indirect - 1 do
    Profile.add_direct p ~origin ~count:(1 + Rng.int rng 1000)
  done;
  for origin = sites - indirect to sites - 1 do
    let targets = 1 + Rng.int rng 4 in
    for t = 0 to targets - 1 do
      Profile.add_indirect p ~origin
        ~target:(Printf.sprintf "f%d" ((origin + t) mod 97))
        ~count:(1 + Rng.int rng 500)
    done
  done;
  for f = 0 to 199 do
    Profile.add_entry p ~func:(Printf.sprintf "f%d" f) ~count:(1 + Rng.int rng 2000)
  done;
  p

let time_best f =
  let best = ref infinity in
  for _ = 1 to !repeats do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  parse_args ();
  let master = Rng.create 7 in
  let shard_counts = [ 1; 2; 4; 8; 16 ] in
  let max_shards = List.fold_left max 1 shard_counts in
  (* one decayed ring per shard, all materialized up front *)
  let rings =
    Array.init max_shards (fun _ ->
        let rng = Rng.split master in
        List.init !depth (fun age -> (0.5 ** float_of_int age, snapshot rng ~sites:!sites)))
  in
  let rows =
    List.map
      (fun n ->
        let parts = List.concat (Array.to_list (Array.sub rings 0 n)) in
        let batched = time_best (fun () -> Profile.merge_weighted parts) in
        let fold =
          time_best (fun () ->
              List.fold_left (fun acc (_, p) -> Profile.merge acc p) (Profile.create ()) parts)
        in
        let nparts = List.length parts in
        Printf.printf "merge %d %d %.3f %.3f %.0f\n" n nparts (1000.0 *. batched)
          (1000.0 *. fold)
          (float_of_int nparts /. batched);
        (n, nparts, batched, fold))
      shard_counts
  in
  print_newline ();
  Printf.printf "%-7s %-6s %-12s %-12s %-12s %s\n" "shards" "parts" "batched ms"
    "fold ms" "profiles/s" "fold/batched";
  List.iter
    (fun (n, nparts, batched, fold) ->
      Printf.printf "%-7d %-6d %-12.3f %-12.3f %-12.0f %.2fx\n" n nparts
        (1000.0 *. batched) (1000.0 *. fold)
        (float_of_int nparts /. batched)
        (fold /. batched))
    rows
