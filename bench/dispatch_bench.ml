(* Dispatch-floor microbenchmark: ns of host wall-clock per simulated
   instruction, per execution tier, on two adversarial program shapes.

     bench/dispatch_bench.exe            full run (default rounds)
     bench/dispatch_bench.exe --quick    smoke settings (make check)
     bench/dispatch_bench.exe --check    exit 1 unless tier-3 beats
                                         tier-2 on the loop-dominated
                                         program (used when generating
                                         BENCH_PR10.json evidence)

   Programs:
     call-dominated  a tight loop whose body is one direct call to a
                     6-instruction straight-line leaf — per-iteration
                     work is dominated by the call/return seam, the
                     shape --callfuse exists for.
     loop-dominated  a loop over a 64-instruction Jmp-chained superblock
                     — per-iteration work is pure straight-line dispatch,
                     the shape tier 3's register-threaded stream targets.

   Tier configs (all bit-exact; thresholds forced low so a short warmup
   promotes everything):
     interp      reference interpreter
     tier1       compiled, --tierup 0 (per-block closures)
     tier2       compiled, --tierup 1 --callfuse 0 --tier3 0
     callfused   compiled, --tierup 1 --callfuse 1 --tier3 0
     tier3       compiled, --tierup 1 --callfuse 1 --tier3 1

   Each tier gets one engine, warmed past every threshold up front;
   then the timed batches are INTERLEAVED across tiers (round 1 of every
   tier, then round 2, ...) so host-speed drift hits all tiers alike —
   the same rationale as tools/bench_compare.sh — and each tier reports
   the best of its [rounds] batches, which suppresses scheduling
   noise. *)

open Pibe_ir
open Types

let iters_per_call = 256

(* main(n): acc = 0; for i < n: acc = leaf(i, acc); ret acc.  leaf is a
   straight-line 5-binop body — CAssign-only, single Ret block, well
   under the fusion size bound. *)
let call_dominated () =
  let prog = ref (Program.with_globals_size Program.empty 16) in
  let leaf =
    let b = Builder.create ~name:"leaf" ~params:2 in
    let a = Builder.param b 0 and acc = Builder.param b 1 in
    let r1 = Builder.reg b in
    Builder.assign b r1 (Binop (Add, Reg a, Reg acc));
    let r2 = Builder.reg b in
    Builder.assign b r2 (Binop (Xor, Reg r1, Imm 7));
    let r3 = Builder.reg b in
    Builder.assign b r3 (Binop (Add, Reg r2, Reg a));
    let r4 = Builder.reg b in
    Builder.assign b r4 (Binop (Mul, Reg r3, Imm 3));
    let r5 = Builder.reg b in
    Builder.assign b r5 (Binop (And, Reg r4, Imm 262143));
    Builder.ret b (Some (Reg r5));
    Builder.finish b ()
  in
  prog := Program.add_func !prog leaf;
  let main =
    let b = Builder.create ~name:"main" ~params:1 in
    let n = Builder.param b 0 in
    let acc = Builder.reg b and i = Builder.reg b in
    let header = Builder.new_block b in
    let body = Builder.new_block b in
    let exit_b = Builder.new_block b in
    Builder.assign b acc (Const 0);
    Builder.assign b i (Const 0);
    Builder.jmp b header;
    Builder.switch_to b header;
    let cond = Builder.reg b in
    Builder.assign b cond (Binop (Lt, Reg i, Reg n));
    Builder.br b (Reg cond) body exit_b;
    Builder.switch_to b body;
    let p, site = Program.fresh_site !prog in
    prog := p;
    Builder.call b ~dst:acc site "leaf" [ Reg i; Reg acc ];
    Builder.assign b i (Binop (Add, Reg i, Imm 1));
    Builder.jmp b header;
    Builder.switch_to b exit_b;
    Builder.ret b (Some (Reg acc));
    Builder.finish b ()
  in
  prog := Program.add_func !prog main;
  !prog

(* hot(n): a loop whose body is four Jmp-chained blocks of 16 binops
   each — one long single-predecessor chain per iteration. *)
let loop_dominated () =
  let b = Builder.create ~name:"hot" ~params:1 in
  let n = Builder.param b 0 in
  let x = Builder.reg b and i = Builder.reg b in
  let header = Builder.new_block b in
  let bodies = Array.init 4 (fun _ -> Builder.new_block b) in
  let exit_b = Builder.new_block b in
  Builder.assign b x (Const 1);
  Builder.assign b i (Const 0);
  Builder.jmp b header;
  Builder.switch_to b header;
  let cond = Builder.reg b in
  Builder.assign b cond (Binop (Lt, Reg i, Reg n));
  Builder.br b (Reg cond) bodies.(0) exit_b;
  Array.iteri
    (fun bi body ->
      Builder.switch_to b body;
      for k = 0 to 15 do
        let op = [| Add; Xor; Sub; Or |].(k land 3) in
        Builder.assign b x (Binop (op, Reg x, Imm (3 + k + (16 * bi))))
      done;
      if bi = 3 then begin
        Builder.assign b i (Binop (Add, Reg i, Imm 1));
        Builder.jmp b header
      end
      else Builder.jmp b bodies.(bi + 1))
    bodies;
  Builder.switch_to b exit_b;
  Builder.ret b (Some (Reg x));
  Builder.finish b ()
    |> Program.add_func (Program.with_globals_size Program.empty 16)

type tier_cfg = {
  label : string;
  backend : Pibe_cpu.Engine.backend;
  tierup : int;
  callfuse : int;
  tier3 : int;
}

let tiers =
  [
    { label = "interp"; backend = Pibe_cpu.Engine.Interp; tierup = 0; callfuse = 0; tier3 = 0 };
    { label = "tier1"; backend = Pibe_cpu.Engine.Compiled; tierup = 0; callfuse = 0; tier3 = 0 };
    { label = "tier2"; backend = Pibe_cpu.Engine.Compiled; tierup = 1; callfuse = 0; tier3 = 0 };
    { label = "callfused"; backend = Pibe_cpu.Engine.Compiled; tierup = 1; callfuse = 1; tier3 = 0 };
    { label = "tier3"; backend = Pibe_cpu.Engine.Compiled; tierup = 1; callfuse = 1; tier3 = 1 };
  ]

(* One engine per tier, warmed past every promotion threshold. *)
let warm_engine prog ~entry ~warmup cfg =
  let e =
    Pibe_cpu.Engine.create ~backend:cfg.backend ~tierup:cfg.tierup ~callfuse:cfg.callfuse
      ~tier3:cfg.tier3 prog
  in
  for _ = 1 to warmup do
    ignore (Pibe_cpu.Engine.call e entry [ iters_per_call ])
  done;
  e

(* One timed batch of [runs] top-level calls on an already-warm engine:
   ns of wall-clock per simulated instruction executed in the batch. *)
let time_batch e ~entry ~runs =
  let insts0 = (Pibe_cpu.Engine.counters e).Pibe_cpu.Engine.insts in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    ignore (Pibe_cpu.Engine.call e entry [ iters_per_call ])
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let di = (Pibe_cpu.Engine.counters e).Pibe_cpu.Engine.insts - insts0 in
  dt *. 1e9 /. float_of_int di

(* Measure every tier on one program with the batches interleaved:
   round-robin over the tier engines so host drift is shared. *)
let measure_row prog ~entry ~warmup ~runs ~rounds =
  let engines = List.map (fun cfg -> warm_engine prog ~entry ~warmup cfg) tiers in
  let best = Array.make (List.length engines) infinity in
  for _ = 1 to rounds do
    List.iteri
      (fun i e ->
        let ns = time_batch e ~entry ~runs in
        if ns < best.(i) then best.(i) <- ns)
      engines
  done;
  Array.to_list best

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let check = Array.exists (( = ) "--check") Sys.argv in
  (* --prof TIER PROGRAM: hammer one tier on one program for a few
     seconds and exit — a steady-state target for a sampling profiler
     (the interleaved measurement loop spreads samples too thin). *)
  (match Array.to_list Sys.argv with
  | _ :: "--prof" :: tier_label :: prog_name :: _ ->
    let cfg = List.find (fun c -> c.label = tier_label) tiers in
    let prog, entry =
      if prog_name = "call-dominated" then (call_dominated (), "main")
      else (loop_dominated (), "hot")
    in
    let e = ref (warm_engine prog ~entry ~warmup:16 cfg) in
    let ns = ref 0.0 in
    for _ = 1 to 100 do
      (* a fresh warm engine per batch keeps the run under the fuel cap *)
      match time_batch !e ~entry ~runs:1000 with
      | v -> ns := v
      | exception Pibe_cpu.Machine.Out_of_fuel ->
        e := warm_engine prog ~entry ~warmup:16 cfg
    done;
    Printf.printf "prof %s %s: %.2f ns/inst (last batch)\n" tier_label prog_name !ns;
    exit 0
  | _ -> ());
  let warmup = if quick then 4 else 16 in
  let runs = if quick then 40 else 400 in
  let rounds = if quick then 2 else 5 in
  let programs =
    [ ("call-dominated", call_dominated (), "main"); ("loop-dominated", loop_dominated (), "hot") ]
  in
  Printf.printf "dispatch_bench: ns of wall-clock per simulated instruction\n";
  Printf.printf "(%d sim-insts/call batches; best of %d rounds x %d calls)\n\n" iters_per_call
    rounds runs;
  Printf.printf "%-16s" "program";
  List.iter (fun c -> Printf.printf "  %9s" c.label) tiers;
  print_newline ();
  let results =
    List.map
      (fun (name, prog, entry) ->
        let row = measure_row prog ~entry ~warmup ~runs ~rounds in
        Printf.printf "%-16s" name;
        List.iter (fun ns -> Printf.printf "  %9.2f" ns) row;
        print_newline ();
        (name, row))
      programs
  in
  if check then begin
    (* tiers = [interp; tier1; tier2; callfused; tier3] *)
    let loop_row = List.assoc "loop-dominated" results in
    let t2 = List.nth loop_row 2 and t3 = List.nth loop_row 4 in
    if t3 < t2 then Printf.printf "\ncheck: tier3 %.2f < tier2 %.2f ns/inst (ok)\n" t3 t2
    else begin
      Printf.printf "\ncheck FAILED: tier3 %.2f >= tier2 %.2f ns/inst\n" t3 t2;
      exit 1
    end
  end
