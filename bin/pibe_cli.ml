(* Command-line front end for the PIBE reproduction.

   Subcommands:
     kernel-stats   generate the synthetic kernel and print structure stats
     pipeline       run profile -> optimize -> harden and report the result
     experiment     regenerate one paper table/figure (or list them)
     attack         run the transient-attack drills against one image
     online         simulate the continuous-profiling deployment loop
     fleet          simulate N instances with sharded aggregation + canary rollout
     passes         list the registered pipeline passes and their options
     dump-ir        print a generated function (or the whole program)

   pipeline / experiment / online accept --trace FILE --trace-format
   chrome|csv|text to capture a structured trace of the run (spans per
   pass / window / measured op, counters for IR deltas and engine
   events); the chrome sink loads in chrome://tracing or Perfetto.

   Subcommands that execute simulated code accept --engine
   compiled|interp to pick the execution backend (bit-exact; compiled is
   the default and faster). *)

open Cmdliner

let scale_arg =
  let doc = "Kernel scale factor (1 = small, 3 = benchmark size)." in
  Arg.(value & opt int 2 & info [ "scale" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let defenses_arg =
  let doc =
    "Defense set: none, retpolines, ret-retpolines, lvi, fineibt, pac-ret, coarse-cfi, \
     fineibt+pac-ret, or all (may be abbreviated)."
  in
  Arg.(value & opt string "all" & info [ "defenses" ] ~docv:"SET" ~doc)

let budget_arg =
  let doc = "Optimization budget (percent of cumulative profile weight)." in
  Arg.(value & opt float 99.999 & info [ "budget" ] ~docv:"PCT" ~doc)

let passes_arg =
  let doc =
    "Run this textual pipeline spec instead of the built-in configuration, \
     e.g. 'icp(budget=99.999),inline(budget=99.9,lax),cleanup,retpoline'. \
     See 'experiment list' and the README for the registered passes."
  in
  Arg.(value & opt (some string) None & info [ "passes" ] ~docv:"SPEC" ~doc)

let verify_arg =
  let doc = "Run the IR validator between every pass." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let engine_arg =
  let doc =
    "Execution backend: 'compiled' (closure-threaded; the default) or \
     'interp' (the reference tree-walking interpreter).  The two are \
     bit-exact — identical cycles, counters, traces and attack outcomes \
     — so this only changes wall-clock speed."
  in
  Arg.(value & opt string "compiled" & info [ "engine" ] ~docv:"BACKEND" ~doc)

(* Resolve --engine and point the process-wide default at it before any
   engine is created (worker domains inherit it). *)
let with_engine name k =
  match Pibe_cpu.Engine.backend_of_string name with
  | Some b ->
    Pibe_cpu.Engine.set_default_backend b;
    k ()
  | None ->
    Printf.eprintf "unknown engine %S (expected 'compiled' or 'interp')\n" name;
    1

let tiers_arg =
  let tierup =
    let doc =
      "Tier-up threshold for the compiled backend: a function's entry count \
       must exceed $(docv) before it runs in the superblock-fused tier \
       (0 disables tier-up entirely, which also forces --callfuse and \
       --tier3 to 0; default from PIBE_TIERUP, else 2).  Every setting is \
       bit-exact, so this only changes wall-clock speed."
    in
    Arg.(value & opt (some int) None & info [ "tierup" ] ~docv:"N" ~doc)
  in
  let callfuse =
    let doc =
      "Call-seam fusion threshold for the tiered compiled backend: a direct \
       call site fuses across the call/return pair into its straight-line \
       leaf callee once the callee's entry count exceeds $(docv) \
       (0 disables fusion; default from PIBE_CALLFUSE, else 2).  \
       Bit-exact like --tierup."
    in
    Arg.(value & opt (some int) None & info [ "callfuse" ] ~docv:"N" ~doc)
  in
  let tier3 =
    let doc =
      "Tier-3 threshold for the tiered compiled backend: a function's entry \
       count must exceed $(docv) before its speculation-off traces run in \
       the register-threaded int-coded tier (0 disables tier 3; default \
       from PIBE_TIER3, else 64).  Bit-exact like --tierup."
    in
    Arg.(value & opt (some int) None & info [ "tier3" ] ~docv:"N" ~doc)
  in
  Term.(const (fun t cf t3 -> (t, cf, t3)) $ tierup $ callfuse $ tier3)

(* Resolve --tierup/--callfuse/--tier3 into the process-wide defaults,
   like --engine. *)
let with_tiers (t, cf, t3) k =
  let set flag setter v k =
    match v with
    | None -> k ()
    | Some n when n >= 0 ->
      setter n;
      k ()
    | Some n ->
      Printf.eprintf "--%s expects a non-negative threshold, got %d\n" flag n;
      1
  in
  set "tierup" Pibe_cpu.Engine.set_default_tierup t @@ fun () ->
  set "callfuse" Pibe_cpu.Engine.set_default_callfuse cf @@ fun () ->
  set "tier3" Pibe_cpu.Engine.set_default_tier3 t3 k

let trace_arg =
  let doc =
    "Collect a structured trace (spans, counters, gauges) of the run and \
     write it to $(docv).  See --trace-format."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace sink: 'chrome' (trace_event JSON for chrome://tracing / \
     Perfetto), 'csv', or 'text'."
  in
  Arg.(value & opt string "chrome" & info [ "trace-format" ] ~docv:"FMT" ~doc)

(* Run [k] under the global trace collector and write the sink file.  The
   status line goes to stderr so stdout stays byte-identical with and
   without --trace. *)
let with_trace trace_path fmt k =
  match trace_path with
  | None -> k ()
  | Some path -> (
    match Pibe_trace.Trace.format_of_string fmt with
    | Error e ->
      prerr_endline e;
      1
    | Ok f ->
      Pibe_trace.Trace.start ();
      let code =
        try k ()
        with e ->
          ignore (Pibe_trace.Trace.stop ());
          raise e
      in
      let events = Pibe_trace.Trace.stop () in
      Pibe_trace.Trace.write_file ~path f events;
      Printf.eprintf "trace: wrote %d events to %s (%s)\n" (List.length events) path
        (Pibe_trace.Trace.format_to_string f);
      code)

let parse_defenses = function
  | "none" -> Ok Pibe_harden.Pass.no_defenses
  | "retpolines" | "retp" ->
    Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.retpolines = true }
  | "ret-retpolines" | "retret" ->
    Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.ret_retpolines = true }
  | "lvi" -> Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.lvi = true }
  | "all" -> Ok Pibe_harden.Pass.all_defenses
  | "fineibt" -> Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.fineibt = true }
  | "pac" | "pac-ret" ->
    Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.pac = true }
  | "coarse-cfi" | "coarse" ->
    Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.coarse_cfi = true }
  | "fineibt+pac" | "fineibt+pac-ret" ->
    Ok { Pibe_harden.Pass.no_defenses with Pibe_harden.Pass.fineibt = true; pac = true }
  | other -> Error (Printf.sprintf "unknown defense set %S" other)

let gen ~seed ~scale = Pibe_kernel.Gen.generate { Pibe_kernel.Ctx.seed; scale }

(* ------------------------------------------------------------------ *)

let kernel_stats seed scale =
  let info = gen ~seed ~scale in
  let prog = info.Pibe_kernel.Gen.prog in
  let layout = Pibe_ir.Layout.build prog in
  Printf.printf "functions:            %d\n" (Pibe_ir.Program.func_count prog);
  Printf.printf "indirect call sites:  %d\n" (Pibe_ir.Program.total_icall_sites prog);
  Printf.printf "return sites:         %d\n" (Pibe_ir.Program.total_ret_sites prog);
  Printf.printf "fptr table entries:   %d\n"
    (Array.length prog.Pibe_ir.Program.fptr_table);
  Printf.printf "code bytes:           %d\n" (Pibe_ir.Layout.total_code_bytes layout);
  Printf.printf "syscalls:             %d\n"
    (List.length info.Pibe_kernel.Gen.syscalls.Pibe_kernel.Syscalls.nrs);
  Printf.printf "globals cells:        %d\n" prog.Pibe_ir.Program.globals_size;
  let v1 = Pibe_harden.V1_scan.scan prog in
  Printf.printf "spectre-v1 gadgets:   %d (of %d conditional branches)\n"
    (List.length v1.Pibe_harden.V1_scan.gadgets)
    v1.Pibe_harden.V1_scan.conditional_branches;
  0

let print_image_summary image =
  let report = Pibe_harden.Audit.run image in
  Printf.printf "audit:  %d defended icalls, %d vulnerable (asm %d), %d ijumps left\n"
    report.Pibe_harden.Audit.defended_icalls report.Pibe_harden.Audit.vulnerable_icalls
    report.Pibe_harden.Audit.asm_icalls report.Pibe_harden.Audit.vulnerable_ijumps;
  Printf.printf "image:  %d bytes\n" (Pibe_harden.Pass.image_bytes image)

(* Run a hand-written pipeline spec under the pass manager and print the
   per-pass instrumentation. *)
let pipeline_spec ~seed ~scale ~verify text =
  match Pibe_pm.Spec.of_string text with
  | Error e ->
    Printf.eprintf "invalid pipeline spec: %s\n" e;
    1
  | Ok spec -> (
    let info = gen ~seed ~scale in
    let env = Pibe.Env.create ~scale ~seed () in
    let profile = Pibe.Env.lmbench_profile env in
    match Pibe.Pipeline.run_spec ~verify info.Pibe_kernel.Gen.prog profile spec with
    | Error e ->
      Printf.eprintf "invalid pipeline spec: %s\n" e;
      1
    | Ok result ->
      Printf.printf "spec:   %s%s\n"
        (Pibe_pm.Spec.to_string spec)
        (if verify then "  (validating between passes)" else "");
      Pibe_util.Tbl.print (Pibe_pm.Manager.table result.Pibe_pm.Manager.passes);
      List.iter
        (fun (s : Pibe_pm.Manager.pass_stats) ->
          List.iter
            (fun line -> Printf.printf "  %s: %s\n" s.Pibe_pm.Manager.pass line)
            (Pibe_pm.Manager.detail_lines s))
        result.Pibe_pm.Manager.passes;
      Printf.printf "total:  %.1f ms\n" (1000.0 *. result.Pibe_pm.Manager.wall_s);
      print_image_summary result.Pibe_pm.Manager.image;
      0)

let pipeline seed scale defenses budget passes verify engine tiers trace trace_format =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  with_trace trace trace_format @@ fun () ->
  match passes with
  | Some text -> pipeline_spec ~seed ~scale ~verify text
  | None -> (
  match parse_defenses defenses with
  | Error e ->
    prerr_endline e;
    1
  | Ok d ->
    let info = gen ~seed ~scale in
    let env = Pibe.Env.create ~scale ~seed () in
    let profile = Pibe.Env.lmbench_profile env in
    let config =
      {
        Pibe.Config.defenses = d;
        opt = Pibe.Config.Full { icp_budget = budget; inline_budget = budget; lax = false };
      }
    in
    let built = Pibe.Pipeline.build ~verify info.Pibe_kernel.Gen.prog profile config in
    (match built.Pibe.Pipeline.icp_stats with
    | Some s ->
      Printf.printf "icp:    %d sites, %d targets promoted (%d of %d weight)\n"
        s.Pibe_opt.Icp.promoted_sites s.Pibe_opt.Icp.promoted_targets
        s.Pibe_opt.Icp.promoted_weight s.Pibe_opt.Icp.total_weight
    | None -> ());
    (match built.Pibe.Pipeline.inline_stats with
    | Some s ->
      Printf.printf "inline: %d sites (%d of %d weight elided)\n"
        s.Pibe_opt.Inliner.inlined_sites s.Pibe_opt.Inliner.inlined_weight
        s.Pibe_opt.Inliner.total_weight
    | None -> ());
    print_image_summary built.Pibe.Pipeline.image;
    let geo = Pibe.Env.geomean_overhead env ~baseline:Pibe.Config.lto config in
    Printf.printf "lmbench geomean overhead vs LTO: %+.1f%%\n" geo;
    0)

let experiment name seed scale quick jobs engine tiers trace trace_format =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  with_trace trace trace_format @@ fun () ->
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs in
  let env =
    if quick then Pibe.Env.quick ~jobs ()
    else Pibe.Env.create ~scale ~seed ~jobs ()
  in
  if String.equal name "list" then begin
    List.iter
      (fun (e : Pibe.Experiments.t) ->
        Printf.printf "%-12s %-12s %s\n" e.Pibe.Experiments.id e.Pibe.Experiments.paper_ref
          e.Pibe.Experiments.description)
      Pibe.Experiments.all;
    0
  end
  else
    match Pibe.Experiments.find name with
    | None ->
      Printf.eprintf "unknown experiment %S (try 'list')\n" name;
      1
    | Some e ->
      List.iter Pibe_util.Tbl.print (e.Pibe.Experiments.run env);
      0

let attack seed scale defenses engine tiers =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  match parse_defenses defenses with
  | Error e ->
    prerr_endline e;
    1
  | Ok d ->
    let env = Pibe.Env.create ~scale ~seed () in
    let info = Pibe.Env.info env in
    let built = Pibe.Env.build env (Pibe.Exp_common.lto_with d) in
    let spec = Pibe_cpu.Speculation.create () in
    let config =
      {
        (Pibe_harden.Pass.engine_config built.Pibe.Pipeline.image) with
        Pibe_cpu.Engine.speculation = Some spec;
      }
    in
    let engine =
      Pibe_cpu.Engine.create ~config built.Pibe.Pipeline.image.Pibe_harden.Pass.prog
    in
    let outcomes =
      Pibe_cpu.Attack.run_all engine ~victim_site:info.Pibe_kernel.Gen.victim_icall_site
        ~poisoned_addr:info.Pibe_kernel.Gen.victim_ops_addr
        ~gadget_fptr:info.Pibe_kernel.Gen.gadget_fptr ~gadget:info.Pibe_kernel.Gen.gadget
        ~valid_gadget:info.Pibe_kernel.Gen.valid_gadget ~entry:info.Pibe_kernel.Gen.entry
        ~args:[ Pibe_kernel.Gen.nr info "read"; 0; 5 ]
    in
    List.iter
      (fun (mechanism, (o : Pibe_cpu.Attack.outcome)) ->
        Printf.printf "%-12s %s (%d attacker-visible transient entries)\n" mechanism
          (if o.Pibe_cpu.Attack.gadget_reached then "GADGET REACHED" else "blocked")
          (List.length o.Pibe_cpu.Attack.transient_entries))
      outcomes;
    0

let report seed scale quick out =
  let env = if quick then Pibe.Env.quick () else Pibe.Env.create ~scale ~seed () in
  Pibe.Report.write_file env ~path:out;
  Printf.printf "wrote %s\n" out;
  0

(* The paper's two-phase flow with on-disk artifacts: profile writes the
   lifted profile as text; optimize reads it back, transforms the kernel
   and writes the optimized image as textual IR; both round-trip through
   the parsers. *)
let profile_cmd_impl seed scale iters out =
  let info = gen ~seed ~scale in
  let profile =
    Pibe.Pipeline.profile info.Pibe_kernel.Gen.prog ~run:(fun engine ->
        let rng = Pibe_util.Rng.create 11 in
        List.iter
          (fun (op : Pibe_kernel.Workload.op) ->
            for _ = 1 to iters do
              op.Pibe_kernel.Workload.run engine rng
            done)
          (Pibe_kernel.Workload.lmbench info))
  in
  let oc = open_out out in
  output_string oc (Pibe_profile.Profile.to_string profile);
  close_out oc;
  Printf.printf "wrote %s (%d direct + %d indirect weight)\n" out
    (Pibe_profile.Profile.total_direct_weight profile)
    (Pibe_profile.Profile.total_indirect_weight profile);
  0

let optimize_cmd_impl seed scale defenses budget profile_path out =
  match parse_defenses defenses with
  | Error e ->
    prerr_endline e;
    1
  | Ok d ->
    let info = gen ~seed ~scale in
    let ic = open_in profile_path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let profile = Pibe_profile.Profile.of_string text in
    let config =
      {
        Pibe.Config.defenses = d;
        opt = Pibe.Config.Full { icp_budget = budget; inline_budget = budget; lax = true };
      }
    in
    let built = Pibe.Pipeline.build info.Pibe_kernel.Gen.prog profile config in
    let oc = open_out out in
    output_string oc
      (Pibe_ir.Printer.program_to_string built.Pibe.Pipeline.image.Pibe_harden.Pass.prog);
    close_out oc;
    Printf.printf "wrote %s (%d functions, %d bytes of image)\n" out
      (Pibe_ir.Program.func_count built.Pibe.Pipeline.image.Pibe_harden.Pass.prog)
      (Pibe_harden.Pass.image_bytes built.Pibe.Pipeline.image);
    0

let perf seed scale defenses budget op_name topn engine tiers =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  match parse_defenses defenses with
  | Error e ->
    prerr_endline e;
    1
  | Ok d ->
    let env = Pibe.Env.create ~scale ~seed () in
    let info = Pibe.Env.info env in
    let op = Pibe_kernel.Workload.lmbench_op info op_name in
    let run engine =
      let rng = Pibe_util.Rng.create 7 in
      for _ = 1 to 300 do
        op.Pibe_kernel.Workload.run engine rng
      done
    in
    let show label config =
      let built = Pibe.Env.build env config in
      let p =
        Pibe.Perf.profile
          (Pibe_harden.Pass.engine_config built.Pibe.Pipeline.image)
          built.Pibe.Pipeline.image.Pibe_harden.Pass.prog ~run
      in
      Printf.printf "--- %s (%d total cycles) ---\n" label (Pibe.Perf.total_cycles p);
      Pibe_util.Tbl.print (Pibe.Perf.to_table ~n:topn p);
      Pibe_util.Tbl.print
        (Pibe_pm.Manager.table
           ~title:(Printf.sprintf "Build passes: %s" label)
           built.Pibe.Pipeline.pass_stats)
    in
    show "unoptimized" (Pibe.Exp_common.lto_with d);
    show "PIBE optimized"
      {
        Pibe.Config.defenses = d;
        opt = Pibe.Config.Full { icp_budget = budget; inline_budget = budget; lax = true };
      };
    0

let trace seed scale syscall a0 a1 engine tiers =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  let info = gen ~seed ~scale in
  let depth = ref 0 in
  let config =
    {
      Pibe_cpu.Engine.default_config with
      Pibe_cpu.Engine.on_edge =
        Some
          (fun e ->
            incr depth;
            Printf.printf "%s-> %s\n" (String.make (2 * !depth) ' ')
              e.Pibe_cpu.Engine.callee);
      on_exit = Some (fun _ -> if !depth > 0 then decr depth);
    }
  in
  let engine = Pibe_cpu.Engine.create ~config info.Pibe_kernel.Gen.prog in
  (match Pibe_kernel.Syscalls.nr info.Pibe_kernel.Gen.syscalls syscall with
  | nr ->
    Printf.printf "syscall_entry(%s=%d, %d, %d)\n" syscall nr a0 a1;
    let r = Pibe_cpu.Engine.call engine info.Pibe_kernel.Gen.entry [ nr; a0; a1 ] in
    Printf.printf "= %s  (%d cycles, %d instructions)\n"
      (match r with Some v -> string_of_int v | None -> "()")
      (Pibe_cpu.Engine.cycles engine)
      (Pibe_cpu.Engine.counters engine).Pibe_cpu.Engine.insts
  | exception Not_found -> Printf.eprintf "unknown syscall %s\n" syscall);
  0

let dump_ir seed scale func =
  let info = gen ~seed ~scale in
  let prog = info.Pibe_kernel.Gen.prog in
  (match func with
  | Some name -> (
    match Pibe_ir.Program.find_opt prog name with
    | Some f -> print_string (Pibe_ir.Printer.func_to_string f)
    | None -> Printf.eprintf "unknown function @%s\n" name)
  | None -> print_string (Pibe_ir.Printer.program_to_string prog));
  0

(* Simulate the continuous-profiling deployment loop: phased workload,
   drift detection, adaptive re-optimization with patch downtime. *)
let online seed scale quick jobs windows requests window decay threshold hysteresis
    max_reopts engine tiers trace trace_format =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  with_trace trace trace_format @@ fun () ->
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs in
  let env =
    if quick then Pibe.Env.quick ~jobs () else Pibe.Env.create ~scale ~seed ~jobs ()
  in
  let defaults = Pibe.Exp_online.default_params ~quick in
  let base = defaults.Pibe.Exp_online.sim in
  let sim =
    {
      base with
      Pibe_online.Sim.requests_per_window =
        Option.value requests ~default:base.Pibe_online.Sim.requests_per_window;
      store_window = window;
      decay;
      drift_threshold = threshold;
      hysteresis;
      max_reopts;
    }
  in
  let params =
    {
      Pibe.Exp_online.windows_per_phase =
        Option.value windows ~default:defaults.Pibe.Exp_online.windows_per_phase;
      sim;
    }
  in
  if params.Pibe.Exp_online.windows_per_phase < 1 then begin
    prerr_endline "--windows must be at least 1";
    1
  end
  else
    match Pibe.Exp_online.run_with params env with
    | tables ->
      List.iter Pibe_util.Tbl.print tables;
      0
    | exception Invalid_argument msg ->
      prerr_endline msg;
      1

(* Simulate the fleet deployment: N instances with heterogeneous drifting
   mixes, sharded profile aggregation, staged canary rollout. *)
let fleet seed scale quick jobs instances windows requests window decay threshold
    hysteresis max_reopts canary tolerance engine tiers trace trace_format =
  with_engine engine @@ fun () ->
  with_tiers tiers @@ fun () ->
  with_trace trace trace_format @@ fun () ->
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs in
  let env =
    if quick then Pibe.Env.quick ~jobs () else Pibe.Env.create ~scale ~seed ~jobs ()
  in
  let base = (Pibe.Exp_fleet.default_params ~quick).Pibe.Exp_fleet.fleet in
  let cfg =
    {
      base with
      Pibe_online.Fleet.instances =
        Option.value instances ~default:base.Pibe_online.Fleet.instances;
      windows = Option.value windows ~default:base.Pibe_online.Fleet.windows;
      requests_per_window =
        Option.value requests ~default:base.Pibe_online.Fleet.requests_per_window;
      store_window = window;
      decay;
      drift_threshold = threshold;
      hysteresis;
      max_reopts;
      canary_windows = canary;
      promote_tolerance_pct = tolerance;
    }
  in
  match Pibe.Exp_fleet.run_with { Pibe.Exp_fleet.fleet = cfg } env with
  | tables ->
    List.iter Pibe_util.Tbl.print tables;
    0
  | exception Invalid_argument msg ->
    prerr_endline msg;
    1

(* List every registered pipeline pass with its typed options and live
   defaults — the --help form of the spec grammar. *)
let passes_list () =
  print_endline "Pipeline spec grammar: pass[(opt[=value],...)] elements joined by ','.";
  print_endline "Registered passes (defaults read from the live pass configs):\n";
  List.iter
    (fun (i : Pibe_pm.Registry.pass_info) ->
      Printf.printf "  %-18s %s\n" i.Pibe_pm.Registry.info_name i.Pibe_pm.Registry.info_doc;
      List.iter
        (fun (o : Pibe_pm.Registry.opt_info) ->
          Printf.printf "      %-12s %-14s default %-22s %s\n" o.Pibe_pm.Registry.opt_key
            o.Pibe_pm.Registry.opt_type o.Pibe_pm.Registry.opt_default
            o.Pibe_pm.Registry.opt_doc)
        i.Pibe_pm.Registry.info_opts;
      if i.Pibe_pm.Registry.info_opts <> [] then
        Printf.printf "      e.g. %s\n" (Pibe_pm.Registry.sample_spec_text i))
    Pibe_pm.Registry.infos;
  0

(* ------------------------------------------------------------------ *)

let kernel_stats_cmd =
  Cmd.v
    (Cmd.info "kernel-stats" ~doc:"Generate the synthetic kernel and print structure stats")
    Term.(const kernel_stats $ seed_arg $ scale_arg)

let pipeline_cmd =
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Run the full profile/optimize/harden pipeline")
    Term.(
      const pipeline $ seed_arg $ scale_arg $ defenses_arg $ budget_arg $ passes_arg
      $ verify_arg $ engine_arg $ tiers_arg $ trace_arg $ trace_format_arg)

let experiment_cmd =
  let id_arg =
    Arg.(value & pos 0 string "list" & info [] ~docv:"ID" ~doc:"Experiment id or 'list'.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small kernel / fast measurement settings.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Build/measure independent cells on up to $(docv) domains (1 = \
             sequential, 0 = one per core). Output is identical at any job \
             count.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one paper table/figure")
    Term.(
      const experiment $ id_arg $ seed_arg $ scale_arg $ quick_arg $ jobs_arg
      $ engine_arg $ tiers_arg $ trace_arg $ trace_format_arg)

let attack_cmd =
  Cmd.v
    (Cmd.info "attack" ~doc:"Run the transient-attack drills against an image")
    Term.(const attack $ seed_arg $ scale_arg $ defenses_arg $ engine_arg $ tiers_arg)

let trace_cmd =
  let syscall =
    Arg.(value & pos 0 string "read" & info [] ~docv:"SYSCALL" ~doc:"Syscall name.")
  in
  let a0 = Arg.(value & opt int 0 & info [ "a0" ] ~docv:"N" ~doc:"First argument.") in
  let a1 = Arg.(value & opt int 64 & info [ "a1" ] ~docv:"N" ~doc:"Second argument.") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the call tree of one syscall")
    Term.(
      const trace $ seed_arg $ scale_arg $ syscall $ a0 $ a1 $ engine_arg $ tiers_arg)

let perf_cmd =
  let op =
    Arg.(value & opt string "read" & info [ "op" ] ~docv:"NAME" ~doc:"LMBench op to profile.")
  in
  let topn =
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc:"Rows to print.")
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Flat cycle profile of one workload, before/after PIBE")
    Term.(
      const perf $ seed_arg $ scale_arg $ defenses_arg $ budget_arg $ op $ topn
      $ engine_arg $ tiers_arg)

let report_cmd =
  let out =
    Arg.(value & opt string "reproduced.md" & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small kernel / fast measurement settings.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Write the artifact-style paper-vs-measured report")
    Term.(const report $ seed_arg $ scale_arg $ quick_arg $ out)

let profile_file_cmd =
  let iters =
    Arg.(value & opt int 300 & info [ "iters" ] ~docv:"N" ~doc:"Profiling iterations per op.")
  in
  let out =
    Arg.(value & opt string "profile.txt" & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Phase 1: run the profiling image, write the lifted profile")
    Term.(const profile_cmd_impl $ seed_arg $ scale_arg $ iters $ out)

let optimize_file_cmd =
  let profile_path =
    Arg.(
      value
      & opt string "profile.txt"
      & info [ "profile" ] ~docv:"FILE" ~doc:"Lifted profile from the profile subcommand.")
  in
  let out =
    Arg.(value & opt string "image.ir" & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Phase 2: read a profile, optimize + harden, write the image as textual IR")
    Term.(const optimize_cmd_impl $ seed_arg $ scale_arg $ defenses_arg $ budget_arg
          $ profile_path $ out)

let online_cmd =
  let d = Pibe_online.Sim.default_config in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small kernel / fast measurement settings.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Measure the static/adaptive variants on up to $(docv) domains (1 = \
             sequential, 0 = one per core). Output is identical at any job count.")
  in
  let windows_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "windows" ] ~docv:"N"
          ~doc:"Profiling windows per workload phase (default 6).")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests replayed per window (default 150; 60 with --quick).")
  in
  let window_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Sim.store_window
      & info [ "window" ] ~docv:"N" ~doc:"Profile-store ring size (snapshots kept).")
  in
  let decay_arg =
    Arg.(
      value
      & opt float d.Pibe_online.Sim.decay
      & info [ "decay" ] ~docv:"F"
          ~doc:"Per-window exponential decay of older snapshots, in (0, 1].")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float d.Pibe_online.Sim.drift_threshold
      & info [ "threshold" ] ~docv:"F" ~doc:"Drift distance above which a window is suspect.")
  in
  let hysteresis_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Sim.hysteresis
      & info [ "hysteresis" ] ~docv:"N"
          ~doc:"Consecutive suspect windows before a re-optimization fires.")
  in
  let max_reopts_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Sim.max_reopts
      & info [ "max-reopts" ] ~docv:"N" ~doc:"Re-optimization budget for the whole run.")
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Simulate the continuous-profiling deployment loop (drift detection, adaptive \
          re-optimization)")
    Term.(
      const online $ seed_arg $ scale_arg $ quick_arg $ jobs_arg $ windows_arg
      $ requests_arg $ window_arg $ decay_arg $ threshold_arg $ hysteresis_arg
      $ max_reopts_arg $ engine_arg $ tiers_arg $ trace_arg $ trace_format_arg)

let fleet_cmd =
  let d = Pibe_online.Fleet.default_config in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small kernel / fast measurement settings.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Replay instance-windows on up to $(docv) domains (1 = sequential, \
             0 = one per core). Output is byte-identical at any job count.")
  in
  let instances_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "instances" ] ~docv:"N"
          ~doc:"Fleet size; instance 0 is the canary (default 16; 6 with --quick).")
  in
  let windows_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "windows" ] ~docv:"N"
          ~doc:"Fleet windows simulated (default 9; 6 with --quick).")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests per instance per window (default 60; 30 with --quick).")
  in
  let window_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Fleet.store_window
      & info [ "window" ] ~docv:"N" ~doc:"Per-instance shard ring size (snapshots kept).")
  in
  let decay_arg =
    Arg.(
      value
      & opt float d.Pibe_online.Fleet.decay
      & info [ "decay" ] ~docv:"F"
          ~doc:"Per-window exponential decay of older snapshots, in (0, 1].")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float d.Pibe_online.Fleet.drift_threshold
      & info [ "threshold" ] ~docv:"F"
          ~doc:"Drift distance (on the fleet aggregate) above which a window is suspect.")
  in
  let hysteresis_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Fleet.hysteresis
      & info [ "hysteresis" ] ~docv:"N"
          ~doc:"Consecutive suspect windows before a canary rollout fires.")
  in
  let max_reopts_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Fleet.max_reopts
      & info [ "max-reopts" ] ~docv:"N"
          ~doc:"Shared re-optimization budget for the whole fleet.")
  in
  let canary_arg =
    Arg.(
      value
      & opt int d.Pibe_online.Fleet.canary_windows
      & info [ "canary-windows" ] ~docv:"N"
          ~doc:
            "Evaluation windows on the canary instance before the promote/reject \
             decision (0 = promote fleet-wide immediately).")
  in
  let tolerance_arg =
    Arg.(
      value
      & opt float d.Pibe_online.Fleet.promote_tolerance_pct
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Promote only if the canary's cycles are within $(docv)%% of its \
             old-image counterfactual (negative forces rejection).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate fleet-scale online optimization (N instances, sharded profile \
          aggregation, staged canary rollout)")
    Term.(
      const fleet $ seed_arg $ scale_arg $ quick_arg $ jobs_arg $ instances_arg
      $ windows_arg $ requests_arg $ window_arg $ decay_arg $ threshold_arg
      $ hysteresis_arg $ max_reopts_arg $ canary_arg $ tolerance_arg $ engine_arg
      $ tiers_arg $ trace_arg $ trace_format_arg)

let passes_cmd =
  Cmd.v
    (Cmd.info "passes" ~doc:"List the registered pipeline passes, options and defaults")
    Term.(const passes_list $ const ())

let dump_ir_cmd =
  let func =
    Arg.(
      value
      & opt (some string) None
      & info [ "func" ] ~docv:"NAME" ~doc:"Print just this function.")
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print generated IR")
    Term.(const dump_ir $ seed_arg $ scale_arg $ func)

let () =
  let info = Cmd.info "pibe" ~doc:"PIBE (ASPLOS'21) reproduction toolkit" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            kernel_stats_cmd;
            pipeline_cmd;
            experiment_cmd;
            attack_cmd;
            online_cmd;
            fleet_cmd;
            passes_cmd;
            dump_ir_cmd;
            trace_cmd;
            perf_cmd;
            report_cmd;
            profile_file_cmd;
            optimize_file_cmd;
          ]))
