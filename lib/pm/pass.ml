open Pibe_ir

type state = {
  prog : Program.t;
  profile : Pibe_profile.Profile.t;
  defenses : Pibe_harden.Pass.defenses;
  rsb_refill : bool;
  provenance : Pibe_profile.Provenance.t;
}

type detail =
  | Icp of Pibe_opt.Icp.stats
  | Inline of Pibe_opt.Inliner.stats
  | Llvm_inline of Pibe_opt.Llvm_inliner.stats
  | Cleanup of Pibe_opt.Cleanup.stats
  | Defense
  | Nothing

type t = {
  name : string;
  spec : Spec.elem;
  run : state -> state * detail;
}
