module H = Pibe_harden.Pass
module Icp = Pibe_opt.Icp
module Inliner = Pibe_opt.Inliner
module Llvm_inliner = Pibe_opt.Llvm_inliner
module Cleanup = Pibe_opt.Cleanup

(* ------------------------- option validation ------------------------- *)

let ( let* ) = Result.bind

let check_keys ~pass ~allowed (args : Spec.arg list) =
  let rec go = function
    | [] -> Ok ()
    | (a : Spec.arg) :: rest ->
      if List.mem a.key allowed then go rest
      else if allowed = [] then
        Error (Printf.sprintf "pass %s takes no options, got %S" pass a.key)
      else
        Error
          (Printf.sprintf "pass %s: unknown option %S (accepted: %s)" pass a.key
             (String.concat ", " allowed))
  in
  go args

let lookup args key = List.find_opt (fun (a : Spec.arg) -> String.equal a.key key) args

let float_opt ~pass args key =
  match lookup args key with
  | None -> Ok None
  | Some { value = None; _ } ->
    Error (Printf.sprintf "pass %s: option %s needs a value (e.g. %s=99.9)" pass key key)
  | Some { value = Some v; _ } -> (
    match float_of_string_opt v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "pass %s: option %s expects a number, got %S" pass key v))

let float_arg ~pass args key ~default =
  let* v = float_opt ~pass args key in
  Ok (Option.value ~default v)

let int_opt ~pass args key =
  match lookup args key with
  | None -> Ok None
  | Some { value = None; _ } ->
    Error (Printf.sprintf "pass %s: option %s needs a value (e.g. %s=3000)" pass key key)
  | Some { value = Some v; _ } -> (
    match int_of_string_opt v with
    | Some i -> Ok (Some i)
    | None -> Error (Printf.sprintf "pass %s: option %s expects an integer, got %S" pass key v))

let int_arg ~pass args key ~default =
  let* v = int_opt ~pass args key in
  Ok (Option.value ~default v)

(* --------------------------- constructors --------------------------- *)

let make (e : Spec.elem) run = { Pass.name = e.pass; spec = e; run }

let icp (e : Spec.elem) =
  let pass = e.pass in
  let* () = check_keys ~pass ~allowed:[ "budget"; "max-targets" ] e.args in
  let* budget_pct = float_arg ~pass e.args "budget" ~default:Icp.default_config.Icp.budget_pct in
  let* max_targets = int_opt ~pass e.args "max-targets" in
  let config = { Icp.budget_pct; max_targets } in
  Ok
    (make e (fun (st : Pass.state) ->
         let prog, stats = Icp.run ~provenance:st.provenance st.prog st.profile config in
         ({ st with prog }, Pass.Icp stats)))

let inline (e : Spec.elem) =
  let pass = e.pass in
  let* () = check_keys ~pass ~allowed:[ "budget"; "lax"; "rule2"; "rule3" ] e.args in
  let d = Inliner.default_config in
  let* budget_pct = float_arg ~pass e.args "budget" ~default:d.Inliner.budget_pct in
  let* rule2_threshold = int_arg ~pass e.args "rule2" ~default:d.Inliner.rule2_threshold in
  let* rule3_threshold = int_arg ~pass e.args "rule3" ~default:d.Inliner.rule3_threshold in
  let* lax_within_pct =
    match lookup e.args "lax" with
    | None -> Ok None
    | Some { value = None; _ } -> Ok (Some 99.0)
    | Some { value = Some _; _ } ->
      let* v = float_opt ~pass e.args "lax" in
      Ok v
  in
  let config = { Inliner.budget_pct; rule2_threshold; rule3_threshold; lax_within_pct } in
  Ok
    (make e (fun (st : Pass.state) ->
         let prog, stats = Inliner.run ~provenance:st.provenance st.prog st.profile config in
         ({ st with prog }, Pass.Inline stats)))

let llvm_inline (e : Spec.elem) =
  let pass = e.pass in
  let* () = check_keys ~pass ~allowed:[ "budget"; "hot"; "cold"; "cap" ] e.args in
  let d = Llvm_inliner.default_config in
  let* budget_pct = float_arg ~pass e.args "budget" ~default:d.Llvm_inliner.budget_pct in
  let* hot_callee_threshold =
    int_arg ~pass e.args "hot" ~default:d.Llvm_inliner.hot_callee_threshold
  in
  let* cold_callee_threshold =
    int_arg ~pass e.args "cold" ~default:d.Llvm_inliner.cold_callee_threshold
  in
  let* caller_cap = int_arg ~pass e.args "cap" ~default:d.Llvm_inliner.caller_cap in
  let config =
    { Llvm_inliner.budget_pct; hot_callee_threshold; cold_callee_threshold; caller_cap }
  in
  Ok
    (make e (fun (st : Pass.state) ->
         let prog, stats = Llvm_inliner.run ~provenance:st.provenance st.prog st.profile config in
         ({ st with prog }, Pass.Llvm_inline stats)))

let cleanup (e : Spec.elem) =
  let* () = check_keys ~pass:e.pass ~allowed:[] e.args in
  Ok
    (make e (fun (st : Pass.state) ->
         let prog, stats = Cleanup.run_with_stats st.prog in
         ({ st with prog }, Pass.Cleanup stats)))

let defense (e : Spec.elem) set =
  let* () = check_keys ~pass:e.pass ~allowed:[] e.args in
  Ok (make e (fun (st : Pass.state) -> ({ st with defenses = set st.defenses }, Pass.Defense)))

let no_jump_tables (e : Spec.elem) =
  let* () = check_keys ~pass:e.pass ~allowed:[] e.args in
  Ok
    (make e (fun (st : Pass.state) ->
         ({ st with prog = H.disable_jump_tables st.prog }, Pass.Nothing)))

let rsb_refill (e : Spec.elem) =
  let* () = check_keys ~pass:e.pass ~allowed:[] e.args in
  Ok (make e (fun (st : Pass.state) -> ({ st with rsb_refill = true }, Pass.Defense)))

(* ----------------------------- registry ----------------------------- *)

let builders : (string * (Spec.elem -> (Pass.t, string) result)) list =
  [
    ("cleanup", cleanup);
    ("coarse-cfi", fun e -> defense e (fun d -> { d with H.coarse_cfi = true }));
    ("fenced-retpoline", fun e -> defense e (fun d -> { d with H.retpolines = true; lvi = true }));
    ("fineibt", fun e -> defense e (fun d -> { d with H.fineibt = true }));
    ("icp", icp);
    ("inline", inline);
    ("llvm-inline", llvm_inline);
    ("lvi-cfi", fun e -> defense e (fun d -> { d with H.lvi = true }));
    ("no-jump-tables", no_jump_tables);
    ("pac-ret", fun e -> defense e (fun d -> { d with H.pac = true }));
    ("ret-retpoline", fun e -> defense e (fun d -> { d with H.ret_retpolines = true }));
    ("retpoline", fun e -> defense e (fun d -> { d with H.retpolines = true }));
    ("rsb-refill", rsb_refill);
  ]

let names = List.map fst builders

(* --------------------------- documentation --------------------------- *)

type opt_info = {
  opt_key : string;
  opt_type : string;
  opt_default : string;
  opt_sample : string option;
  opt_doc : string;
}

type pass_info = {
  info_name : string;
  info_doc : string;
  info_opts : opt_info list;
}

let budget_opt default =
  {
    opt_key = "budget";
    opt_type = "float";
    opt_default = Printf.sprintf "%g" default;
    opt_sample = Some "99.9";
    opt_doc = "percent of cumulative profile weight to optimize";
  }

let infos =
  [
    {
      info_name = "cleanup";
      info_doc = "post-inlining scalar cleanup (constant folding, dead code)";
      info_opts = [];
    };
    {
      info_name = "coarse-cfi";
      info_doc = "request coarse single-label CFI checks on indirect calls";
      info_opts = [];
    };
    {
      info_name = "fenced-retpoline";
      info_doc = "request retpolines + LVI (lowered to the combined fenced sequence)";
      info_opts = [];
    };
    {
      info_name = "fineibt";
      info_doc = "request FineIBT-style landing pads on indirect-call targets";
      info_opts = [];
    };
    {
      info_name = "icp";
      info_doc = "PIBE indirect-call promotion (profile-ordered, Rules 1-3)";
      info_opts =
        [
          budget_opt Icp.default_config.Icp.budget_pct;
          {
            opt_key = "max-targets";
            opt_type = "int";
            opt_default = "unbounded";
            opt_sample = Some "4";
            opt_doc = "cap on promoted targets per site";
          };
        ];
    };
    {
      info_name = "inline";
      info_doc = "PIBE's weight-ordered interprocedural inliner";
      info_opts =
        [
          budget_opt Inliner.default_config.Inliner.budget_pct;
          {
            opt_key = "lax";
            opt_type = "flag or float";
            opt_default = "off (bare flag = 99)";
            opt_sample = None;
            opt_doc = "lax candidate window, percent of the hottest weight";
          };
          {
            opt_key = "rule2";
            opt_type = "int";
            opt_default = string_of_int Inliner.default_config.Inliner.rule2_threshold;
            opt_sample = Some "6";
            opt_doc = "Rule-2 caller InlineCost threshold";
          };
          {
            opt_key = "rule3";
            opt_type = "int";
            opt_default = string_of_int Inliner.default_config.Inliner.rule3_threshold;
            opt_sample = Some "6";
            opt_doc = "Rule-3 callee InlineCost threshold";
          };
        ];
    };
    {
      info_name = "llvm-inline";
      info_doc = "the LLVM-default bottom-up PGO inliner baseline";
      info_opts =
        [
          budget_opt Llvm_inliner.default_config.Llvm_inliner.budget_pct;
          {
            opt_key = "hot";
            opt_type = "int";
            opt_default =
              string_of_int Llvm_inliner.default_config.Llvm_inliner.hot_callee_threshold;
            opt_sample = Some "64";
            opt_doc = "callee size threshold at profiled-hot sites";
          };
          {
            opt_key = "cold";
            opt_type = "int";
            opt_default =
              string_of_int Llvm_inliner.default_config.Llvm_inliner.cold_callee_threshold;
            opt_sample = Some "2";
            opt_doc = "callee size threshold elsewhere";
          };
          {
            opt_key = "cap";
            opt_type = "int";
            opt_default = string_of_int Llvm_inliner.default_config.Llvm_inliner.caller_cap;
            opt_sample = Some "12";
            opt_doc = "caller-growth InlineCost cap";
          };
        ];
    };
    {
      info_name = "lvi-cfi";
      info_doc = "request LVI-CFI hardening of indirect transfers";
      info_opts = [];
    };
    {
      info_name = "no-jump-tables";
      info_doc = "re-lower jump tables as branch ladders now (idempotent)";
      info_opts = [];
    };
    {
      info_name = "pac-ret";
      info_doc = "request PAC-style return-address signing on every return";
      info_opts = [];
    };
    {
      info_name = "ret-retpoline";
      info_doc = "request return retpolines on every function return";
      info_opts = [];
    };
    {
      info_name = "retpoline";
      info_doc = "request Spectre-V2 retpolines on indirect branches";
      info_opts = [];
    };
    {
      info_name = "rsb-refill";
      info_doc = "stuff the RSB at every kernel entry";
      info_opts = [];
    };
  ]

(* A spec element exercising every documented option of [i] — the
   round-trip the tests pin: the rendered form must parse and resolve. *)
let sample_spec_text (i : pass_info) =
  match i.info_opts with
  | [] -> i.info_name
  | opts ->
    let args =
      List.map
        (fun o ->
          match o.opt_sample with
          | None -> o.opt_key
          | Some v -> Printf.sprintf "%s=%s" o.opt_key v)
        opts
    in
    Printf.sprintf "%s(%s)" i.info_name (String.concat "," args)

let find (e : Spec.elem) =
  match List.assoc_opt e.pass builders with
  | Some build -> build e
  | None ->
    Error
      (Printf.sprintf "unknown pass %S (registered passes: %s)" e.pass
         (String.concat ", " names))

let of_spec spec =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      let* p = find e in
      go (p :: acc) rest
  in
  go [] spec
