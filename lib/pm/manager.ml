open Pibe_ir
module Profile = Pibe_profile.Profile
module Tbl = Pibe_util.Tbl
module Trace = Pibe_trace.Trace

type snapshot = {
  funcs : int;
  blocks : int;
  insts : int;
  code_bytes : int;
  icalls : int;
  rets : int;
  jump_tables : int;
}

let snapshot prog =
  let blocks = ref 0 and insts = ref 0 and jts = ref 0 in
  Program.iter_funcs prog (fun f ->
      blocks := !blocks + Array.length f.Types.blocks;
      insts := !insts + Func.inst_count f;
      jts := !jts + Func.jump_table_count f);
  {
    funcs = Program.func_count prog;
    blocks = !blocks;
    insts = !insts;
    code_bytes = Layout.total_code_bytes (Layout.build prog);
    icalls = Program.total_icall_sites prog;
    rets = Program.total_ret_sites prog;
    jump_tables = !jts;
  }

type pass_stats = {
  pass : string;
  wall_s : float;
  before : snapshot;
  after : snapshot;
  detail : Pass.detail;
}

type result = {
  image : Pibe_harden.Pass.image;
  profile : Profile.t;
  provenance : Pibe_profile.Provenance.t;
  passes : pass_stats list;
  wall_s : float;
}

(* Pass-specific elision counters for the trace stream (the same numbers
   detail_lines renders for humans).  All values are deterministic. *)
let detail_counters detail =
  match detail with
  | Pass.Icp st ->
    [
      ("promoted_sites", Trace.Int st.Pibe_opt.Icp.promoted_sites);
      ("promoted_targets", Trace.Int st.Pibe_opt.Icp.promoted_targets);
      ("promoted_weight", Trace.Int st.Pibe_opt.Icp.promoted_weight);
      ("total_weight", Trace.Int st.Pibe_opt.Icp.total_weight);
    ]
  | Pass.Inline st ->
    [
      ("inlined_sites", Trace.Int st.Pibe_opt.Inliner.inlined_sites);
      ("inlined_weight", Trace.Int st.Pibe_opt.Inliner.inlined_weight);
      ("total_weight", Trace.Int st.Pibe_opt.Inliner.total_weight);
      ("rets_before", Trace.Int st.Pibe_opt.Inliner.total_ret_sites_before);
      ("rets_after", Trace.Int st.Pibe_opt.Inliner.total_ret_sites_after);
    ]
  | Pass.Llvm_inline st ->
    [
      ("inlined_sites", Trace.Int st.Pibe_opt.Llvm_inliner.inlined_sites);
      ("inlined_weight", Trace.Int st.Pibe_opt.Llvm_inliner.inlined_weight);
      ("blocked_weight", Trace.Int st.Pibe_opt.Llvm_inliner.blocked_weight);
    ]
  | Pass.Cleanup st ->
    [
      ("folded", Trace.Int st.Pibe_opt.Cleanup.folded);
      ("branches_folded", Trace.Int st.Pibe_opt.Cleanup.branches_folded);
      ("blocks_removed", Trace.Int st.Pibe_opt.Cleanup.blocks_removed);
      ("dead_assigns", Trace.Int st.Pibe_opt.Cleanup.dead_assigns_removed);
    ]
  | Pass.Defense | Pass.Nothing -> []

let trace_pass_deltas ~before:(b : snapshot) ~after:(a : snapshot) detail =
  if Trace.enabled () then begin
    Trace.counter ~cat:"pm" "ir-delta"
      [
        ("funcs", Trace.Int (a.funcs - b.funcs));
        ("blocks", Trace.Int (a.blocks - b.blocks));
        ("insts", Trace.Int (a.insts - b.insts));
        ("code_bytes", Trace.Int (a.code_bytes - b.code_bytes));
        ("icalls", Trace.Int a.icalls);
        ("rets", Trace.Int a.rets);
        ("jump_tables", Trace.Int a.jump_tables);
      ];
    match detail_counters detail with
    | [] -> ()
    | args -> Trace.counter ~cat:"pm" "pass-detail" args
  end

let run ?(verify = false) ?check prog profile passes =
  let t_start = Unix.gettimeofday () in
  let inspect prog =
    if verify then Validate.check_exn prog;
    Option.iter (fun f -> f prog) check
  in
  let state =
    ref
      {
        Pass.prog;
        profile = Profile.copy profile;
        defenses = Pibe_harden.Pass.no_defenses;
        rsb_refill = false;
        provenance = Pibe_profile.Provenance.create ();
      }
  in
  let run_args =
    if Trace.enabled () then
      [ ("spec", Trace.Str (Spec.to_string (List.map (fun (p : Pass.t) -> p.spec) passes))) ]
    else []
  in
  Trace.span ~cat:"pm" "pm:run" ~args:run_args (fun () ->
      let before = ref (snapshot prog) in
      let stats =
        List.map
          (fun (p : Pass.t) ->
            Trace.span ~cat:"pm" ("pass:" ^ Spec.elem_to_string p.spec) (fun () ->
                let t0 = Unix.gettimeofday () in
                let st, detail = p.run !state in
                let wall_s = Unix.gettimeofday () -. t0 in
                state := st;
                inspect st.Pass.prog;
                let after = snapshot st.Pass.prog in
                trace_pass_deltas ~before:!before ~after detail;
                let s =
                  { pass = Spec.elem_to_string p.spec; wall_s; before = !before; after; detail }
                in
                before := after;
                s))
          passes
      in
      let st = !state in
      let image =
        Trace.span ~cat:"pm" "pm:harden" (fun () ->
            let image =
              Pibe_harden.Pass.harden ~rsb_refill:st.Pass.rsb_refill st.Pass.prog
                st.Pass.defenses
            in
            if Trace.enabled () then
              Trace.counter ~cat:"pm" "hardened"
                [
                  ("icall_sites", Trace.Int (Program.total_icall_sites st.Pass.prog));
                  ("ret_sites", Trace.Int (Program.total_ret_sites st.Pass.prog));
                  ("image_bytes", Trace.Int (Pibe_harden.Pass.image_bytes image));
                ];
            image)
      in
      if verify then Validate.check_exn image.Pibe_harden.Pass.prog;
      {
        image;
        profile = st.Pass.profile;
        provenance = st.Pass.provenance;
        passes = stats;
        wall_s = Unix.gettimeofday () -. t_start;
      })

(* ----------------------------- reporting ----------------------------- *)

let delta b a = a - b

let table ?(title = "Per-pass pipeline statistics") passes =
  let t =
    Tbl.create ~title
      ~columns:
        [
          "pass"; "ms"; "dfuncs"; "dblocks"; "dinsts"; "dbytes"; "icalls"; "rets"; "jump tables";
        ]
  in
  List.iter
    (fun s ->
      let d f = delta (f s.before) (f s.after) in
      Tbl.add_row t
        [
          Tbl.Str s.pass;
          Tbl.Float (s.wall_s *. 1000.0);
          Tbl.Int (d (fun x -> x.funcs));
          Tbl.Int (d (fun x -> x.blocks));
          Tbl.Int (d (fun x -> x.insts));
          Tbl.Int (d (fun x -> x.code_bytes));
          Tbl.Int s.after.icalls;
          Tbl.Int s.after.rets;
          Tbl.Int s.after.jump_tables;
        ])
    passes;
  t

let detail_lines s =
  match s.detail with
  | Pass.Icp st ->
    [
      Printf.sprintf "promoted %d targets at %d sites (%d of %d weight)"
        st.Pibe_opt.Icp.promoted_targets st.Pibe_opt.Icp.promoted_sites
        st.Pibe_opt.Icp.promoted_weight st.Pibe_opt.Icp.total_weight;
    ]
  | Pass.Inline st ->
    [
      Printf.sprintf "inlined %d sites (%d of %d weight elided); rets %d -> %d"
        st.Pibe_opt.Inliner.inlined_sites st.Pibe_opt.Inliner.inlined_weight
        st.Pibe_opt.Inliner.total_weight st.Pibe_opt.Inliner.total_ret_sites_before
        st.Pibe_opt.Inliner.total_ret_sites_after;
    ]
  | Pass.Llvm_inline st ->
    [
      Printf.sprintf "inlined %d sites (%d weight; %d weight blocked by size)"
        st.Pibe_opt.Llvm_inliner.inlined_sites st.Pibe_opt.Llvm_inliner.inlined_weight
        st.Pibe_opt.Llvm_inliner.blocked_weight;
    ]
  | Pass.Cleanup st ->
    [
      Printf.sprintf "folded %d, branches %d, blocks removed %d, dead assigns %d"
        st.Pibe_opt.Cleanup.folded st.Pibe_opt.Cleanup.branches_folded
        st.Pibe_opt.Cleanup.blocks_removed st.Pibe_opt.Cleanup.dead_assigns_removed;
    ]
  | Pass.Defense | Pass.Nothing -> []
