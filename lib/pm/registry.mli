(** Built-in pass registry: resolves textual spec elements into runnable
    {!Pass.t} instances, validating names and typed options.

    Registered passes and their options:

    - [icp(budget=PCT, max-targets=N)] — PIBE indirect-call promotion;
      [budget] defaults to 99.999, [max-targets] is unbounded when absent.
    - [inline(budget=PCT, lax, lax=PCT, rule2=N, rule3=N)] — PIBE's
      weight-ordered inliner; bare [lax] enables the paper's lax window at
      its default 99%, [lax=PCT] sets the window explicitly.
    - [llvm-inline(budget=PCT, hot=N, cold=N, cap=N)] — the LLVM-default
      bottom-up PGO inliner baseline.
    - [cleanup] — post-inlining scalar cleanup.
    - [retpoline], [ret-retpoline], [lvi-cfi], [fenced-retpoline] —
      hardening requests; [fenced-retpoline] is sugar for
      retpoline + LVI (lowered to the combined fenced sequence).
    - [no-jump-tables] — re-lower jump tables as branch ladders now
      (implied by any defense at hardening time; idempotent).
    - [rsb-refill] — stuff the RSB at every kernel entry (§6.4). *)

val names : string list
(** Registered pass names, alphabetical. *)

type opt_info = {
  opt_key : string;  (** option name as written in a spec *)
  opt_type : string;  (** "float", "int", or "flag or float" *)
  opt_default : string;  (** rendered default (live, from the pass config) *)
  opt_sample : string option;  (** example value; [None] = bare flag *)
  opt_doc : string;
}

type pass_info = {
  info_name : string;
  info_doc : string;
  info_opts : opt_info list;
}

val infos : pass_info list
(** One entry per registered pass, same order as {!names}; defaults are
    read from the live pass configs, never hand-copied. *)

val sample_spec_text : pass_info -> string
(** A spec element exercising every documented option — guaranteed to
    parse ({!Spec.of_string}) and resolve ({!find}); the tests pin this. *)

val find : Spec.elem -> (Pass.t, string) result
(** Resolves one element; [Error] explains the unknown pass or option
    (listing what is accepted). *)

val of_spec : Spec.t -> (Pass.t list, string) result
(** Resolves a whole spec, failing on the first bad element. *)
