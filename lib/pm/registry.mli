(** Built-in pass registry: resolves textual spec elements into runnable
    {!Pass.t} instances, validating names and typed options.

    Registered passes and their options:

    - [icp(budget=PCT, max-targets=N)] — PIBE indirect-call promotion;
      [budget] defaults to 99.999, [max-targets] is unbounded when absent.
    - [inline(budget=PCT, lax, lax=PCT, rule2=N, rule3=N)] — PIBE's
      weight-ordered inliner; bare [lax] enables the paper's lax window at
      its default 99%, [lax=PCT] sets the window explicitly.
    - [llvm-inline(budget=PCT, hot=N, cold=N, cap=N)] — the LLVM-default
      bottom-up PGO inliner baseline.
    - [cleanup] — post-inlining scalar cleanup.
    - [retpoline], [ret-retpoline], [lvi-cfi], [fenced-retpoline] —
      hardening requests; [fenced-retpoline] is sugar for
      retpoline + LVI (lowered to the combined fenced sequence).
    - [no-jump-tables] — re-lower jump tables as branch ladders now
      (implied by any defense at hardening time; idempotent).
    - [rsb-refill] — stuff the RSB at every kernel entry (§6.4). *)

val names : string list
(** Registered pass names, alphabetical. *)

val find : Spec.elem -> (Pass.t, string) result
(** Resolves one element; [Error] explains the unknown pass or option
    (listing what is accepted). *)

val of_spec : Spec.t -> (Pass.t list, string) result
(** Resolves a whole spec, failing on the first bad element. *)
