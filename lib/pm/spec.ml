type arg = {
  key : string;
  value : string option;
}

type elem = {
  pass : string;
  args : arg list;
}

type t = elem list

let elem ?(args = []) pass = { pass; args = List.map (fun (key, value) -> { key; value }) args }

let arg_to_string a =
  match a.value with
  | None -> a.key
  | Some v -> a.key ^ "=" ^ v

let elem_to_string e =
  match e.args with
  | [] -> e.pass
  | args -> e.pass ^ "(" ^ String.concat "," (List.map arg_to_string args) ^ ")"

let to_string spec = String.concat "," (List.map elem_to_string spec)
let equal (a : t) (b : t) = a = b

let float_arg f =
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

(* ------------------------------ parsing ------------------------------ *)

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '+' | '%' | '-' -> true
  | _ -> false

exception Err of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let error msg = raise_notrace (Err (!pos, msg)) in
  let skip_ws () =
    while !pos < n && (text.[!pos] = ' ' || text.[!pos] = '\t' || text.[!pos] = '\n') do
      incr pos
    done
  in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let ident what =
    skip_ws ();
    let start = !pos in
    while !pos < n && is_ident_char text.[!pos] do
      incr pos
    done;
    if !pos = start then
      error
        (Printf.sprintf "expected %s%s" what
           (match peek () with
           | Some c -> Printf.sprintf ", got %C" c
           | None -> ", got end of input"));
    String.sub text start (!pos - start)
  in
  let parse_arg () =
    let key = ident "an option name" in
    skip_ws ();
    match peek () with
    | Some '=' ->
      incr pos;
      let v = ident "an option value" in
      { key; value = Some v }
    | _ -> { key; value = None }
  in
  let parse_args () =
    (* at '(' *)
    incr pos;
    let rec go acc =
      let a = parse_arg () in
      skip_ws ();
      match peek () with
      | Some ',' ->
        incr pos;
        go (a :: acc)
      | Some ')' ->
        incr pos;
        List.rev (a :: acc)
      | Some c -> error (Printf.sprintf "expected ',' or ')' in option list, got %C" c)
      | None -> error "unterminated option list: expected ')'"
    in
    go []
  in
  let parse_elem () =
    let pass = ident "a pass name" in
    skip_ws ();
    match peek () with
    | Some '(' -> { pass; args = parse_args () }
    | _ -> { pass; args = [] }
  in
  try
    skip_ws ();
    if !pos >= n then Error "empty pipeline spec"
    else begin
      let rec go acc =
        let e = parse_elem () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          go (e :: acc)
        | None -> List.rev (e :: acc)
        | Some c -> error (Printf.sprintf "expected ',' or end of spec, got %C" c)
      in
      Ok (go [])
    end
  with Err (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)
