(** Textual pipeline specifications.

    A spec is a comma-separated list of pass instantiations, each an
    identifier with an optional parenthesized option list:

    {v
      spec  ::= elem ("," elem)*
      elem  ::= name [ "(" arg ("," arg)* ")" ]
      arg   ::= key [ "=" value ]
      name, key, value ::= [A-Za-z0-9_.+%-]+
    v}

    e.g. [icp(budget=99.999),inline(budget=99.9,lax),cleanup,retpoline].
    Whitespace around tokens is ignored on input; [to_string] prints the
    canonical compact form, and [of_string (to_string s) = Ok s] for every
    well-formed spec (tested by a qcheck property). *)

type arg = {
  key : string;
  value : string option;  (** [None] for bare flags like [lax] *)
}

type elem = {
  pass : string;  (** registered pass name, e.g. ["icp"] *)
  args : arg list;
}

type t = elem list

val elem : ?args:(string * string option) list -> string -> elem
(** Convenience constructor. *)

val to_string : t -> string
val elem_to_string : elem -> string

val of_string : string -> (t, string) result
(** Parses a spec; the error carries the byte offset and what was
    expected, e.g. ["at offset 4: expected ')' or ','"]. *)

val equal : t -> t -> bool

val float_arg : float -> string
(** Prints a float so that [float_of_string] recovers it exactly (shortest
    of [%.12g]/[%.17g] that round-trips) — pipeline lowering relies on
    this for byte-identical rebuilds from printed specs. *)
