(** The uniform pass interface every pipeline stage registers into.

    A pass transforms the pipeline {!state} — the working program, the
    (mutable, pipeline-owned) profile, and the accumulated hardening
    request — and reports a typed {!detail} with its pass-specific
    statistics.  The manager (see {!Manager}) wraps every [run] with
    wall-clock timing, IR delta accounting and optional verification, so
    passes themselves stay plain program transformations. *)

open Pibe_ir

type state = {
  prog : Program.t;
  profile : Pibe_profile.Profile.t;
      (** owned by the pipeline run (a {!Pibe_profile.Profile.copy} of the
          caller's profile); passes may mutate it, as ICP does when moving
          promoted weight onto the new direct sites *)
  defenses : Pibe_harden.Pass.defenses;
      (** hardening requests accumulated by the defense passes and
          materialized into an image after the last pass *)
  rsb_refill : bool;
  provenance : Pibe_profile.Provenance.t;
      (** inline/promotion tree the optimization passes append to; shipped
          with the built image so optimized-image profiles can be lifted
          back to pristine origins *)
}

type detail =
  | Icp of Pibe_opt.Icp.stats
  | Inline of Pibe_opt.Inliner.stats
  | Llvm_inline of Pibe_opt.Llvm_inliner.stats
  | Cleanup of Pibe_opt.Cleanup.stats
  | Defense  (** a hardening-request pass; no IR change *)
  | Nothing

type t = {
  name : string;  (** registered pass name, e.g. ["icp"] *)
  spec : Spec.elem;
      (** the canonical spec element this instance prints back to
          (round-trips through {!Spec.of_string}) *)
  run : state -> state * detail;
}
