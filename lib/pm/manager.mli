(** The pipeline driver: runs a pass list over a program + profile with
    built-in per-pass instrumentation, then materializes the hardened
    image from the accumulated defense requests.

    For every pass the manager records wall-clock time and an IR snapshot
    delta (functions, blocks, instructions, code bytes, remaining indirect
    forward edges, remaining returns, remaining jump tables).  With
    [~verify:true] the IR validator runs between every pass (and on the
    final image); an optional [~check] hook — e.g. differential
    interpretation on a smoke workload — also runs after every pass.

    When {!Pibe_trace.Trace} collection is on, a run additionally emits a
    ["pm"]-category span tree — [pm:run] around the whole pipeline, one
    [pass:<elem>] span per pass, [pm:harden] around image
    materialization — with [ir-delta] counters (IR deltas plus remaining
    indirect/return/jump-table sites), per-pass [pass-detail] counters
    (sites promoted / inlined / folded), and a final [hardened] counter
    (sites protected, image bytes).  All values are deterministic; with
    collection off the instrumentation is a no-op. *)

open Pibe_ir

type snapshot = {
  funcs : int;
  blocks : int;
  insts : int;  (** terminators included *)
  code_bytes : int;  (** pre-thunk text bytes (layout model) *)
  icalls : int;  (** remaining promotable indirect forward edges *)
  rets : int;  (** remaining backward edges *)
  jump_tables : int;
}

val snapshot : Program.t -> snapshot

type pass_stats = {
  pass : string;  (** canonical spec element, e.g. ["icp(budget=99.999)"] *)
  wall_s : float;
  before : snapshot;
  after : snapshot;
  detail : Pass.detail;
}

type result = {
  image : Pibe_harden.Pass.image;
  profile : Pibe_profile.Profile.t;
      (** the pipeline's own copy after every pass ran (post-ICP: promoted
          sites are direct now) *)
  provenance : Pibe_profile.Provenance.t;
      (** inline/promotion tree recorded by the optimization passes;
          shipped with the image for optimized-image profile lifting *)
  passes : pass_stats list;  (** in execution order *)
  wall_s : float;  (** whole run, final hardening included *)
}

val run :
  ?verify:bool ->
  ?check:(Program.t -> unit) ->
  Program.t ->
  Pibe_profile.Profile.t ->
  Pass.t list ->
  result
(** The input profile is copied, never mutated.  [verify] defaults to
    false: release pipeline runs skip validation; tests and [--verify]
    CLI runs turn it on. *)

val table : ?title:string -> pass_stats list -> Pibe_util.Tbl.t
(** Per-pass stats rendered as an aligned table: wall-clock milliseconds,
    instruction/block/byte deltas, and remaining indirect edges. *)

val detail_lines : pass_stats -> string list
(** Pass-specific statistics (promotions, inlines, folds) as short
    human-readable lines; empty for passes without details. *)
