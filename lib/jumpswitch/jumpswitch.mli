(** Model of JumpSwitches (Amit, Jacobs & Wei, USENIX ATC'19) — the
    state-of-the-art PIBE compares against for Spectre-V2 mitigation
    (paper §8.2).

    JumpSwitches patch indirect call sites at *runtime*: a small number of
    inline compare-and-direct-call slots are live-patched in once targets
    are learned; unlearned targets fall back to a learning retpoline.
    Multi-target sites exceeding the slot budget are periodically
    downgraded back into learning mode (the effect PIBE's Table 4 argument
    builds on), and every repatch pays a synchronization cost modelling
    the stop-machine/RCU-stall the paper observed.

    Use [transfer_cost] as the engine's [fwd_override]. *)

type config = {
  slots_per_site : int;  (** inline target slots (their paper uses a short ladder) *)
  learning_calls : int;  (** calls spent in learning mode before patching *)
  relearn_period : int;  (** patched-mode calls between multi-target re-evaluations *)
  miss_rate_relearn_pct : int;  (** miss %% that forces a downgrade to learning *)
  patch_sync_cycles : int;  (** one-time cost of each live-patch operation *)
  patch_write_cycles : int;  (** per-location text rewrite within a batch *)
}

val default_config : config

val patch_cost : ?config:config -> sites:int -> unit -> int
(** Cycles to live-patch [sites] code locations in one batch: one
    [patch_sync_cycles] stop-machine/RCU window for the whole batch
    (kpatch-style atomic replacement) plus [patch_write_cycles] per
    rewritten location; [0] when nothing changed.  Incremental
    JumpSwitch learning instead pays the full sync on {e every} patch —
    see [transfer_cost].  This is the downtime model the online
    re-optimization controller charges when it swaps in a freshly
    optimized image. *)

type t

val create : ?config:config -> unit -> t

val transfer_cost : t -> site:Pibe_ir.Types.site -> target:string -> int
(** Cycles for one indirect transfer through the jump switch at [site];
    updates the site's learning state. *)

type site_stats = {
  total_calls : int;
  slot_hits : int;
  fallback_calls : int;  (** retpoline executions (learning or slot miss) *)
  patches : int;  (** live-patch operations performed *)
  distinct_targets : int;
}

val stats : t -> site_id:int -> site_stats option
val global_stats : t -> site_stats
(** Sums over all sites. *)
