type config = {
  slots_per_site : int;
  learning_calls : int;
  relearn_period : int;
  miss_rate_relearn_pct : int;
  patch_sync_cycles : int;
  patch_write_cycles : int;
}

(* Short inline chains (the ATC'19 design patches a couple of compare
   slots per site), modest epochs, and a stop-machine-style cost per
   live patch: multi-target sites cycle through learning mode, which is
   the behaviour PIBE's Table 4 argument predicts. *)
let default_config =
  {
    slots_per_site = 2;
    learning_calls = 64;
    relearn_period = 256;
    miss_rate_relearn_pct = 5;
    patch_sync_cycles = 3000;
    patch_write_cycles = 200;
  }

(* A JumpSwitch learns targets one site at a time, so every repatch pays
   the full synchronization below ([transfer_cost]).  A whole-image swap
   is different: like kpatch, all sites are rewritten under ONE
   stop-machine window, then each pays only the text-poke itself. *)
let patch_cost ?(config = default_config) ~sites () =
  if sites <= 0 then 0
  else config.patch_sync_cycles + (config.patch_write_cycles * sites)

type mode =
  | Learning of int  (* calls spent learning so far *)
  | Patched of int * int  (* calls and misses since last patch *)

type site_state = {
  mutable mode : mode;
  mutable slots : string list;  (* most recently learned last *)
  seen : (string, int) Hashtbl.t;  (* target -> count, for slot election *)
  mutable total_calls : int;
  mutable slot_hits : int;
  mutable fallback_calls : int;
  mutable patches : int;
}

type t = {
  cfg : config;
  sites : (int, site_state) Hashtbl.t;
}

let create ?(config = default_config) () = { cfg = config; sites = Hashtbl.create 256 }

let site_state t id =
  match Hashtbl.find_opt t.sites id with
  | Some s -> s
  | None ->
    let s =
      {
        mode = Learning 0;
        slots = [];
        seen = Hashtbl.create 4;
        total_calls = 0;
        slot_hits = 0;
        fallback_calls = 0;
        patches = 0;
      }
    in
    Hashtbl.replace t.sites id s;
    s

(* Retpoline cost while the site is (re)learning or the target missed all
   inline slots. *)
let fallback_cycles = Pibe_cpu.Cost.forward_cost Pibe_ir.Protection.F_retpoline ~btb_hit:false

let elect_slots t s =
  let ranked =
    List.sort
      (fun (n1, c1) (n2, c2) -> if c1 <> c2 then compare c2 c1 else String.compare n1 n2)
      (Hashtbl.fold (fun name c acc -> (name, c) :: acc) s.seen [])
  in
  s.slots <-
    List.filteri (fun i _ -> i < t.cfg.slots_per_site) (List.map fst ranked)

let transfer_cost t ~site ~target =
  let s = site_state t site.Pibe_ir.Types.site_id in
  s.total_calls <- s.total_calls + 1;
  Hashtbl.replace s.seen target (1 + Option.value ~default:0 (Hashtbl.find_opt s.seen target));
  match s.mode with
  | Learning n ->
    s.fallback_calls <- s.fallback_calls + 1;
    (* The learning retpoline also records the observed target. *)
    let learn_overhead = 4 in
    if n + 1 >= t.cfg.learning_calls then begin
      elect_slots t s;
      s.patches <- s.patches + 1;
      s.mode <- Patched (0, 0);
      fallback_cycles + learn_overhead + t.cfg.patch_sync_cycles
    end
    else begin
      s.mode <- Learning (n + 1);
      fallback_cycles + learn_overhead
    end
  | Patched (calls, misses) ->
    let position = ref 0 in
    let hit =
      List.exists
        (fun slot ->
          incr position;
          String.equal slot target)
        s.slots
    in
    let cost =
      if hit then begin
        s.slot_hits <- s.slot_hits + 1;
        (Pibe_cpu.Cost.icp_check * !position) + Pibe_cpu.Cost.direct_call
      end
      else begin
        s.fallback_calls <- s.fallback_calls + 1;
        fallback_cycles
      end
    in
    let calls = calls + 1 in
    let misses = if hit then misses else misses + 1 in
    (if calls >= t.cfg.relearn_period then
       if misses * 100 / calls > t.cfg.miss_rate_relearn_pct then begin
         (* Too many escapes: downgrade to a learning retpoline, as the
            JumpSwitch runtime does for unstable multi-target sites. *)
         Hashtbl.reset s.seen;
         s.slots <- [];
         s.mode <- Learning 0
       end
       else s.mode <- Patched (0, 0)
     else s.mode <- Patched (calls, misses));
    cost

type site_stats = {
  total_calls : int;
  slot_hits : int;
  fallback_calls : int;
  patches : int;
  distinct_targets : int;
}

let stats_of (s : site_state) =
  {
    total_calls = s.total_calls;
    slot_hits = s.slot_hits;
    fallback_calls = s.fallback_calls;
    patches = s.patches;
    distinct_targets = Hashtbl.length s.seen;
  }

let stats t ~site_id = Option.map stats_of (Hashtbl.find_opt t.sites site_id)

let global_stats t =
  Hashtbl.fold
    (fun _ (s : site_state) acc ->
      {
        total_calls = acc.total_calls + s.total_calls;
        slot_hits = acc.slot_hits + s.slot_hits;
        fallback_calls = acc.fallback_calls + s.fallback_calls;
        patches = acc.patches + s.patches;
        distinct_targets = acc.distinct_targets + Hashtbl.length s.seen;
      })
    t.sites
    { total_calls = 0; slot_hits = 0; fallback_calls = 0; patches = 0; distinct_targets = 0 }
