(** Indirect-branch target sets for the CFI hardening family (FineIBT
    landing pads, coarse single-label CFI).

    The address-taken set is the program's fptr table; the landing-pad
    set is the subset whose fptr index appears as a value in an explicit
    initialized-global write (ops structures, vtables) — a function that
    is merely registered in the table, like a planted speculation gadget,
    never receives a pad.  FineIBT validity additionally matches the
    pad's type hash, modeled as callee parameter count = call-site
    argument count.  The analysis is conservative: initializer cells
    holding small non-pointer integers collide with low fptr indices and
    produce false-positive pads, weakening precision the way real-world
    type-hash collisions do, without ever breaking a legitimate call. *)

open Pibe_ir

type t

val analyze : Program.t -> t
(** One pass over the fptr table, the initializer list and every icall
    site of the program the image was built from (run it on the
    post-optimization program so cloned site ids resolve). *)

val has_pad : t -> string -> bool
val address_taken : t -> string -> bool

val pad_count : t -> int
(** Number of functions carrying a landing pad (feeds byte accounting). *)

val address_taken_count : t -> int

val fineibt_valid : t -> site:Types.site -> target:string -> bool
(** The transfer [site -> target] passes the FineIBT check: [target]
    carries a pad whose arity matches the site's argument count. *)

val coarse_valid : t -> target:string -> bool
(** The transfer passes coarse CFI: [target] is address-taken at all. *)
