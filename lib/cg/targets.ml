(** Indirect-branch target sets for the CFI hardening family.

    Derived statically from the program: the fptr table gives the
    address-taken set (any entry can be the runtime value of an indirect
    call, so coarse single-label CFI accepts all of them), while the
    subset of those functions whose fptr index appears as a value in the
    program's initialized global memory gets a FineIBT landing pad — the
    compiler stamps pads only on functions whose address escapes into a
    vtable/ops-structure, which is exactly what the generator's
    [init_global] writes model.  A function that is merely
    [register_fptr]'d (e.g. a planted speculation gadget) never receives
    a pad.

    Conservative by construction: initialized cells holding small
    integers for other purposes (fd tables, protocol numbers) collide
    with low fptr indices, so a few extra functions get pads — false
    positives weaken FineIBT here exactly the way imprecise type-hash
    collisions do on real kernels, and never break legitimate calls.

    FineIBT validity additionally requires the pad's type hash to match:
    modeled as the callee's parameter count equaling the call site's
    argument count. *)

open Pibe_ir

type t = {
  address_taken : (string, unit) Hashtbl.t;
  pads : (string, int) Hashtbl.t;  (* padded function -> parameter count *)
  site_args : (int, int) Hashtbl.t;  (* icall site_id -> argument count *)
}

let analyze (p : Program.t) =
  let table = p.Program.fptr_table in
  let n = Array.length table in
  let address_taken = Hashtbl.create (2 * max n 1) in
  Array.iter (fun name -> Hashtbl.replace address_taken name ()) table;
  let pads = Hashtbl.create (2 * max n 1) in
  (* Walk the explicit initializer writes, not the materialized memory
     image: untouched cells default to 0 and must not make the function
     at fptr index 0 universally padded. *)
  List.iter
    (fun (_addr, v) ->
      if v >= 0 && v < n then begin
        let name = table.(v) in
        let params =
          match Program.find_opt p name with
          | Some f -> f.Types.params
          | None -> 0
        in
        Hashtbl.replace pads name params
      end)
    p.Program.rev_globals_init;
  let site_args = Hashtbl.create 64 in
  Program.iter_funcs p (fun f ->
      Array.iter
        (fun (b : Types.block) ->
          Array.iter
            (fun (i : Types.inst) ->
              match i with
              | Types.Icall { args; site; _ } ->
                Hashtbl.replace site_args site.Types.site_id (List.length args)
              | _ -> ())
            b.Types.insts)
        f.Types.blocks);
  { address_taken; pads; site_args }

let has_pad t name = Hashtbl.mem t.pads name
let address_taken t name = Hashtbl.mem t.address_taken name
let pad_count t = Hashtbl.length t.pads
let address_taken_count t = Hashtbl.length t.address_taken

let fineibt_valid t ~(site : Types.site) ~target =
  match Hashtbl.find_opt t.pads target with
  | None -> false
  | Some params -> (
    match Hashtbl.find_opt t.site_args site.Types.site_id with
    | Some nargs -> nargs = params
    | None -> true (* unknown site (e.g. asm): pad presence is all we check *))

let coarse_valid t ~target = Hashtbl.mem t.address_taken target
