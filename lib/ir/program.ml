open Types
module String_map = Map.Make (String)

type t = {
  funcs : func String_map.t;
  rev_order : string list;
  fptr_table : string array;
  globals_size : int;
  rev_globals_init : (int * int) list;
  next_site : int;
}

let empty =
  {
    funcs = String_map.empty;
    rev_order = [];
    fptr_table = [||];
    globals_size = 0;
    rev_globals_init = [];
    next_site = 0;
  }

let with_globals_size t size = { t with globals_size = size }
let layout_order t = List.rev t.rev_order
let find t name = String_map.find name t.funcs
let find_opt t name = String_map.find_opt name t.funcs
let mem t name = String_map.mem name t.funcs

let add_func t f =
  let rev_order =
    if String_map.mem f.fname t.funcs then t.rev_order else f.fname :: t.rev_order
  in
  { t with funcs = String_map.add f.fname f t.funcs; rev_order }

let update_func t f =
  if not (String_map.mem f.fname t.funcs) then
    invalid_arg ("Program.update_func: unknown function " ^ f.fname)
  else { t with funcs = String_map.add f.fname f t.funcs }

let remove_func t name =
  if not (String_map.mem name t.funcs) then
    invalid_arg ("Program.remove_func: unknown function " ^ name)
  else if Array.exists (String.equal name) t.fptr_table then
    invalid_arg ("Program.remove_func: " ^ name ^ " is address-taken (fptr table)")
  else
    {
      t with
      funcs = String_map.remove name t.funcs;
      rev_order = List.filter (fun n -> not (String.equal n name)) t.rev_order;
    }

let iter_funcs t g = List.iter (fun name -> g (find t name)) (layout_order t)

let fold_funcs t ~init ~f =
  List.fold_left (fun acc name -> f acc (find t name)) init (layout_order t)

let func_count t = String_map.cardinal t.funcs

let fptr_index t name =
  let n = Array.length t.fptr_table in
  let rec go i =
    if i >= n then None else if String.equal t.fptr_table.(i) name then Some i else go (i + 1)
  in
  go 0

let add_fptr t name =
  match fptr_index t name with
  | Some i -> (t, i)
  | None ->
    let i = Array.length t.fptr_table in
    ({ t with fptr_table = Array.append t.fptr_table [| name |] }, i)

let fresh_site t =
  let id = t.next_site in
  ({ t with next_site = id + 1 }, { site_id = id; site_origin = id })

let clone_site t ~origin =
  let id = t.next_site in
  ({ t with next_site = id + 1 }, { site_id = id; site_origin = origin.site_origin })

let set_global t ~addr ~value =
  if addr < 0 || addr >= t.globals_size then
    invalid_arg (Printf.sprintf "Program.set_global: address %d out of range" addr)
  else { t with rev_globals_init = (addr, value) :: t.rev_globals_init }

let initial_memory t =
  let mem = Array.make t.globals_size 0 in
  List.iter (fun (addr, v) -> mem.(addr) <- v) (List.rev t.rev_globals_init);
  mem

let all_sites t =
  List.rev
    (fold_funcs t ~init:[] ~f:(fun acc f ->
         Func.fold_insts f ~init:acc ~f:(fun acc i ->
             match i with
             | Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ } ->
               (f.fname, site) :: acc
             | Assign _ | Store _ | Observe _ -> acc)))

let total_icall_sites t =
  fold_funcs t ~init:0 ~f:(fun acc f -> acc + List.length (Func.icall_sites f))

let total_ret_sites t = fold_funcs t ~init:0 ~f:(fun acc f -> acc + Func.ret_count f)
