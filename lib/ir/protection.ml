(** Protection markers attached to indirect branches by the hardening
    passes (the cycle costs live in [Pibe_cpu.Cost]; the byte costs in
    [Pibe_harden.Thunks]).

    Forward kinds protect indirect calls/jumps; backward kinds protect the
    return instructions of a function.  [F_fenced_retpoline] is the paper's
    Listing-7 sequence combining a retpoline with LVI fencing;
    [B_fenced_ret_retpoline] is the corresponding combined backward-edge
    sequence. *)

type forward =
  | F_none
  | F_retpoline  (** Listing 4: Spectre-V2 safe *)
  | F_lvi  (** Listing 5: LFENCE'd thunk, LVI safe *)
  | F_fenced_retpoline  (** Listing 7: Spectre-V2 + LVI safe *)
  | F_fineibt  (** FineIBT landing-pad check: speculation survives, but
                   only toward functions carrying a matching pad *)
  | F_coarse_cfi  (** single-label coarse CFI: any address-taken function
                      is a valid target *)

type backward =
  | B_none
  | B_ret_retpoline  (** Ret2spec/RSB safe *)
  | B_lvi  (** Listing 6: LFENCE before return, LVI safe *)
  | B_fenced_ret_retpoline  (** RSB + LVI safe *)
  | B_pac  (** PAC-style return-address signing: authentication kills
               poisoned-RSB transients, but a forged signature survives *)

let forward_name = function
  | F_none -> "none"
  | F_retpoline -> "retpoline"
  | F_lvi -> "lvi-cfi"
  | F_fenced_retpoline -> "fenced-retpoline"
  | F_fineibt -> "fineibt"
  | F_coarse_cfi -> "coarse-cfi"

let backward_name = function
  | B_none -> "none"
  | B_ret_retpoline -> "ret-retpoline"
  | B_lvi -> "lvi-ret"
  | B_fenced_ret_retpoline -> "fenced-ret-retpoline"
  | B_pac -> "pac-ret"

(* Security properties used by the attack drills and the audit. *)

let forward_stops_btb_injection = function
  | F_retpoline | F_fenced_retpoline -> true
  | F_none | F_lvi | F_fineibt | F_coarse_cfi -> false

let forward_stops_lvi = function
  | F_lvi | F_fenced_retpoline -> true
  | F_none | F_retpoline | F_fineibt | F_coarse_cfi -> false

let forward_checks_target = function
  | F_fineibt | F_coarse_cfi -> true
  | F_none | F_retpoline | F_lvi | F_fenced_retpoline -> false

let backward_stops_rsb_poisoning = function
  | B_ret_retpoline | B_fenced_ret_retpoline | B_pac -> true
  | B_none | B_lvi -> false

let backward_stops_lvi = function
  | B_lvi | B_fenced_ret_retpoline -> true
  | B_none | B_ret_retpoline | B_pac -> false
