(** A whole program: functions in layout order, the function-pointer table,
    and the initial image of global memory.

    Indirect calls transfer to [fptr_table.(v)] where [v] is the runtime
    value of the call's pointer operand; the kernel generator seeds global
    memory with operation-table cells holding such indices (mirroring
    [file_operations]-style dispatch in the paper's target). *)

open Types

module String_map : Map.S with type key = string

type t = private {
  funcs : func String_map.t;
  rev_order : string list;  (** layout order, most recently added first *)
  fptr_table : string array;  (** function index -> function name *)
  globals_size : int;
  rev_globals_init : (int * int) list;  (** (address, value), newest first *)
  next_site : int;  (** next fresh call-site id *)
}

val empty : t

val with_globals_size : t -> int -> t
(** Sets the size of the global-memory image (cells initialized to 0). *)

val layout_order : t -> string list
(** Function names in code-layout order. *)

val find : t -> string -> func
(** Raises [Not_found] for unknown names. *)

val find_opt : t -> string -> func option
val mem : t -> string -> bool

val add_func : t -> func -> t
(** Adds or replaces; new names are appended to the layout order. *)

val update_func : t -> func -> t
(** Replaces an existing function; raises [Invalid_argument] if absent. *)

val remove_func : t -> string -> t
(** Removes a function from the program and the layout order.  Raises
    [Invalid_argument] if absent or address-taken (present in the fptr
    table) — callers must rewrite remaining call sites themselves (the
    kernel evolution model does). *)

val iter_funcs : t -> (func -> unit) -> unit
(** In layout order. *)

val fold_funcs : t -> init:'a -> f:('a -> func -> 'a) -> 'a

val func_count : t -> int

val fptr_index : t -> string -> int option
(** Reverse lookup into the fptr table (first occurrence). *)

val add_fptr : t -> string -> t * int
(** Appends a function name to the fptr table, returning its index;
    reuses an existing entry when present. *)

val fresh_site : t -> t * site
(** Allocates a brand-new call site (origin = own id). *)

val clone_site : t -> origin:site -> t * site
(** Allocates a fresh id that inherits [origin]'s profile identity. *)

val set_global : t -> addr:int -> value:int -> t
(** Overrides one cell of the initial memory image (last write wins). *)

val initial_memory : t -> int array
(** Materializes the initial global-memory image. *)

val all_sites : t -> (string * site) list
(** Every call site (direct, indirect, asm) with its enclosing function. *)

val total_icall_sites : t -> int
(** Promotable indirect-call sites across the program. *)

val total_ret_sites : t -> int
(** Return instructions across the program (backward-edge surface). *)
