(** Protection markers attached to indirect branches by the hardening
    passes (the cycle costs live in [Pibe_cpu.Cost]; the byte costs in
    [Pibe_harden.Thunks]).

    Forward kinds protect indirect calls/jumps; backward kinds protect the
    return instructions of a function.  [F_fenced_retpoline] is the paper's
    Listing-7 sequence combining a retpoline with LVI fencing;
    [B_fenced_ret_retpoline] is the corresponding combined backward-edge
    sequence. *)

type forward =
  | F_none
  | F_retpoline  (** Listing 4: Spectre-V2 safe *)
  | F_lvi  (** Listing 5: LFENCE'd thunk, LVI safe *)
  | F_fenced_retpoline  (** Listing 7: Spectre-V2 + LVI safe *)

type backward =
  | B_none
  | B_ret_retpoline  (** Ret2spec/RSB safe *)
  | B_lvi  (** Listing 6: LFENCE before return, LVI safe *)
  | B_fenced_ret_retpoline  (** RSB + LVI safe *)

val forward_name : forward -> string
val backward_name : backward -> string

(** Security properties used by the attack drills and the audit. *)

val forward_stops_btb_injection : forward -> bool
val forward_stops_lvi : forward -> bool
val backward_stops_rsb_poisoning : backward -> bool
val backward_stops_lvi : backward -> bool
