(** Protection markers attached to indirect branches by the hardening
    passes (the cycle costs live in [Pibe_cpu.Cost]; the byte costs in
    [Pibe_harden.Thunks]).

    Forward kinds protect indirect calls/jumps; backward kinds protect the
    return instructions of a function.  [F_fenced_retpoline] is the paper's
    Listing-7 sequence combining a retpoline with LVI fencing;
    [B_fenced_ret_retpoline] is the corresponding combined backward-edge
    sequence. *)

type forward =
  | F_none
  | F_retpoline  (** Listing 4: Spectre-V2 safe *)
  | F_lvi  (** Listing 5: LFENCE'd thunk, LVI safe *)
  | F_fenced_retpoline  (** Listing 7: Spectre-V2 + LVI safe *)
  | F_fineibt
      (** FineIBT-style landing-pad check: the branch still uses the BTB,
          so transient target injection survives — but only toward
          functions carrying a matching landing pad (validity comes from
          the [Pibe_harden.Cfi] target-set analysis via the engine's
          [cfi_valid] hook). *)
  | F_coarse_cfi
      (** Coarse single-label CFI: any address-taken function is a valid
          target.  The cheap low end of the precision/overhead frontier. *)

type backward =
  | B_none
  | B_ret_retpoline  (** Ret2spec/RSB safe *)
  | B_lvi  (** Listing 6: LFENCE before return, LVI safe *)
  | B_fenced_ret_retpoline  (** RSB + LVI safe *)
  | B_pac
      (** PAC-style return-address signing: the authenticate on return
          kills poisoned-RSB transients without an RSB refill, but a
          forged signature (signing-gadget attack) survives. *)

val forward_name : forward -> string
val backward_name : backward -> string

(** Security properties used by the attack drills and the audit. *)

val forward_stops_btb_injection : forward -> bool
val forward_stops_lvi : forward -> bool

val forward_checks_target : forward -> bool
(** True for the CFI kinds ([F_fineibt], [F_coarse_cfi]) whose transient
    reachability depends on whether the predicted target passes the
    engine's [cfi_valid] check, rather than being stopped outright. *)

val backward_stops_rsb_poisoning : backward -> bool
val backward_stops_lvi : backward -> bool
