(** Structured tracing and metrics: spans, counters and gauges with a
    zero-cost disabled path.

    The layer is a process-global collector.  When disabled (the default)
    every emitting entry point is a single atomic load and a branch — no
    clock read, no allocation, no lock — so instrumented code pays nothing
    in release runs ([test/test_trace.ml] pins both the "no events" and
    the "does not perturb simulated cycles" halves of that claim).  When
    enabled, events carry a monotonic timestamp, the emitting domain id
    and a global sequence number, and land in a mutex-guarded buffer;
    emission sites are deliberately coarse (per pass, per measurement run,
    per profiling window — never per instruction), so the lock is cold.

    Three sinks render a collected stream: human-readable indented text,
    CSV, and Chrome [trace_event] JSON loadable in [chrome://tracing] or
    Perfetto (spans become nestable B/E slices per domain, counters become
    counter tracks).

    Determinism contract: everything an instrumented run computes is a
    pure function of its seeds, so event {e content} is deterministic.
    The execution-dependent residue is confined to three places —
    timestamps, domain ids, and events in the ["sched"] category (work
    distribution) plus {!Dur_ms} argument values (wall clock).
    {!canonical} strips exactly that residue and stable-sorts the rest, so
    a run at [--jobs 1] and a run at [--jobs 4] yield byte-identical
    canonical streams (also pinned by the tests). *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Dur_ms of float
      (** A wall-clock-derived duration in milliseconds: rendered like a
          float by every sink but excluded from {!canonical} content,
          because wall time is not deterministic. *)

type phase =
  | Begin  (** span opened *)
  | End  (** span closed *)
  | Instant  (** point event *)
  | Counter  (** metric sample: args are the (name, value) series *)

type event = {
  ph : phase;
  name : string;
  cat : string;  (** category; ["sched"] marks execution-dependent events *)
  ts_ns : int64;  (** monotonic clock, nanoseconds *)
  dom : int;  (** emitting domain id *)
  seq : int;  (** global emission order *)
  args : (string * value) list;
}

(** {1 Collection} *)

val enabled : unit -> bool
(** One atomic load; instrumentation on hot-ish paths should guard any
    argument-list construction behind it. *)

val start : unit -> unit
(** Clear the buffer and enable collection. *)

val stop : unit -> event list
(** Disable collection and return everything collected, in emission
    ([seq]) order. *)

val events : unit -> event list
(** Snapshot of the buffer in emission order, without disabling. *)

val clear : unit -> unit

(** {1 Emission} *)

val span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] between a [Begin] and an [End] event.  The
    [End] is emitted even when [f] raises (with the exception rendered
    into an ["exn"] argument) and the exception is re-raised.  When
    disabled this is exactly [f ()]. *)

val counter : ?cat:string -> string -> (string * value) list -> unit
(** [counter name series] records one sample of a named metric family;
    each argument is one track (Chrome renders them stacked). *)

val gauge : ?cat:string -> string -> float -> unit
(** [gauge name v] is [counter name [("value", Float v)]]. *)

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit

(** {1 Analysis} *)

val check_balanced : event list -> (unit, string) result
(** Per-domain span balance: every [End] matches the innermost open
    [Begin] of the same name on its domain, and no span stays open. *)

val counter_totals : event list -> ((string * string * string) * float) list
(** Sum of every numeric counter argument, keyed by
    [(category, counter name, argument key)], sorted by key.  [Str]
    arguments are ignored.  Totals are independent of which domain emitted
    which sample — the cross-domain merge the tests pin. *)

val canonical : event list -> string list
(** The deterministic payload of a stream: one line per event holding
    phase, category, name and arguments — timestamps, domain ids and
    sequence numbers dropped, [Dur_ms] values masked, ["sched"]-category
    events removed — stable-sorted.  Equal for equal seeded work at any
    job count. *)

(** {1 Sinks} *)

type format = Text | Csv | Chrome

val format_of_string : string -> (format, string) result
(** ["text"], ["csv"], ["chrome"] (or ["json"]). *)

val format_to_string : format -> string

val to_text : event list -> string
(** Indented per-domain span tree with millisecond durations; counters and
    instants print at their nesting depth. *)

val to_csv : event list -> string
(** One row per event: [seq,dom,ph,cat,name,t_us,args]; [t_us] is
    microseconds since the first event; args are [k=v] pairs joined with
    [';'] in one quoted field. *)

val to_chrome : event list -> string
(** Chrome [trace_event] JSON: [{"traceEvents": [...]}] with B/E duration
    events and C counter events, [tid] = domain id, timestamps in
    microseconds since the first event.  Load in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.  Only numeric counter arguments
    are emitted on C events (Chrome requirement). *)

val render : format -> event list -> string
val write_file : path:string -> format -> event list -> unit
