(** A minimal JSON reader, just enough to validate what {!Trace.to_chrome}
    emits (the container ships no yojson).

    Full RFC 8259 value grammar — objects, arrays, strings with escapes,
    numbers, booleans, null — with no streaming, no custom exponents
    beyond [float_of_string], and [\uXXXX] escapes decoded only for the
    ASCII range (others become ['?'], which is fine for validation). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-input parse; trailing garbage is an error.  Errors carry the
    byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)
