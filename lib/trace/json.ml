type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub input !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let s = String.sub input !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ s) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'u' ->
          advance ();
          let v = hex4 () in
          Buffer.add_char b (if v < 0x80 then Char.chr v else '?')
        | _ -> fail "bad escape");
        go ())
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
