(* Process-global structured event collector.  See trace.mli for the
   contract; the two properties everything below serves are (1) the
   disabled path is one atomic load, and (2) event content is
   deterministic — only timestamps, domain ids and the "sched" category
   depend on scheduling, and `canonical` strips exactly those. *)

type value = Int of int | Float of float | Str of string | Dur_ms of float
type phase = Begin | End | Instant | Counter

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts_ns : int64;
  dom : int;
  seq : int;
  args : (string * value) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let lock = Mutex.create ()
let buf : event list ref = ref []
let seq_counter = Atomic.make 0

let emit ph ?(cat = "") ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let ev =
      {
        ph;
        name;
        cat;
        ts_ns = Monotonic_clock.now ();
        dom = (Domain.self () :> int);
        seq = Atomic.fetch_and_add seq_counter 1;
        args;
      }
    in
    Mutex.lock lock;
    buf := ev :: !buf;
    Mutex.unlock lock
  end

let clear () =
  Mutex.lock lock;
  buf := [];
  Atomic.set seq_counter 0;
  Mutex.unlock lock

let start () =
  clear ();
  Atomic.set enabled_flag true

let snapshot () =
  Mutex.lock lock;
  let evs = !buf in
  Mutex.unlock lock;
  List.sort (fun a b -> compare a.seq b.seq) evs

let stop () =
  Atomic.set enabled_flag false;
  snapshot ()

let events () = snapshot ()

let span ?cat ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    emit Begin ?cat ?args name;
    match f () with
    | v ->
      emit End ?cat name;
      v
    | exception e ->
      emit End ?cat ~args:[ ("exn", Str (Printexc.to_string e)) ] name;
      raise e
  end

let counter ?cat name args = emit Counter ?cat ~args name
let gauge ?cat name v = counter ?cat name [ ("value", Float v) ]
let instant ?cat ?args name = emit Instant ?cat ?args name

(* ----------------------------- analysis ----------------------------- *)

let check_balanced evs =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks dom s;
      s
  in
  let err = ref None in
  List.iter
    (fun e ->
      if !err = None then
        match e.ph with
        | Begin -> (
          let s = stack e.dom in
          s := e.name :: !s)
        | End -> (
          let s = stack e.dom in
          match !s with
          | top :: rest when String.equal top e.name -> s := rest
          | top :: _ ->
            err :=
              Some
                (Printf.sprintf "domain %d: end %S closes open span %S" e.dom e.name top)
          | [] -> err := Some (Printf.sprintf "domain %d: end %S with no open span" e.dom e.name))
        | Instant | Counter -> ())
    evs;
  match !err with
  | Some m -> Error m
  | None ->
    Hashtbl.fold
      (fun dom s acc ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
          match !s with
          | [] -> Ok ()
          | top :: _ -> Error (Printf.sprintf "domain %d: span %S never closed" dom top)))
      stacks (Ok ())

let numeric = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Dur_ms f -> Some f
  | Str _ -> None

let counter_totals evs =
  let totals : (string * string * string, float ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.ph = Counter then
        List.iter
          (fun (k, v) ->
            match numeric v with
            | None -> ()
            | Some f -> (
              let key = (e.cat, e.name, k) in
              match Hashtbl.find_opt totals key with
              | Some r -> r := !r +. f
              | None -> Hashtbl.add totals key (ref f)))
          e.args)
    evs;
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Dur_ms f -> Printf.sprintf "%.3f" f
  | Str s -> s

let phase_to_string = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "I"
  | Counter -> "C"

let args_to_string ?(mask_durations = false) args =
  String.concat ";"
    (List.map
       (fun (k, v) ->
         let v =
           match v with
           | Dur_ms _ when mask_durations -> "_"
           | v -> value_to_string v
         in
         k ^ "=" ^ v)
       args)

let canonical evs =
  evs
  |> List.filter (fun e -> not (String.equal e.cat "sched"))
  |> List.map (fun e ->
         Printf.sprintf "%s|%s|%s|%s" (phase_to_string e.ph) e.cat e.name
           (args_to_string ~mask_durations:true e.args))
  |> List.sort String.compare

(* ------------------------------ sinks ------------------------------ *)

type format = Text | Csv | Chrome

let format_of_string = function
  | "text" -> Ok Text
  | "csv" -> Ok Csv
  | "chrome" | "json" -> Ok Chrome
  | other -> Error (Printf.sprintf "unknown trace format %S (expected chrome, csv or text)" other)

let format_to_string = function Text -> "text" | Csv -> "csv" | Chrome -> "chrome"

let base_ts evs =
  match evs with
  | [] -> 0L
  | e :: rest -> List.fold_left (fun acc x -> min acc x.ts_ns) e.ts_ns rest

let us_since ~base ts = Int64.to_float (Int64.sub ts base) /. 1e3

let to_text evs =
  let base = base_ts evs in
  let b = Buffer.create 4096 in
  (* per-domain stack of (name, begin ts) for indentation + durations *)
  let stacks : (int, (string * int64) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks dom s;
      s
  in
  List.iter
    (fun e ->
      let s = stack e.dom in
      let depth = List.length !s in
      let line depth body =
        Buffer.add_string b
          (Printf.sprintf "[d%d %10.1fus] %s%s\n" e.dom (us_since ~base e.ts_ns)
             (String.make (2 * depth) ' ')
             body)
      in
      let args = if e.args = [] then "" else "  (" ^ args_to_string e.args ^ ")" in
      match e.ph with
      | Begin ->
        line depth (Printf.sprintf "+ %s%s" e.name args);
        s := (e.name, e.ts_ns) :: !s
      | End -> (
        match !s with
        | (n, t_begin) :: rest when String.equal n e.name ->
          s := rest;
          line (depth - 1)
            (Printf.sprintf "- %s  %.3fms%s" e.name
               (Int64.to_float (Int64.sub e.ts_ns t_begin) /. 1e6)
               args)
        | _ -> line depth (Printf.sprintf "- %s (unbalanced)%s" e.name args))
      | Instant -> line depth (Printf.sprintf "! %s%s" e.name args)
      | Counter -> line depth (Printf.sprintf "# %s%s" e.name args))
    evs;
  Buffer.contents b

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv evs =
  let base = base_ts evs in
  let b = Buffer.create 4096 in
  Buffer.add_string b "seq,dom,ph,cat,name,t_us,args\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%d,%d,%s,%s,%s,%.3f,%s\n" e.seq e.dom (phase_to_string e.ph)
           (csv_quote e.cat) (csv_quote e.name) (us_since ~base e.ts_ns)
           (csv_quote (args_to_string e.args))))
    evs;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_value = function
  | Int i -> string_of_int i
  | Float f | Dur_ms f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f
  | Str s -> "\"" ^ json_escape s ^ "\""

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v)) args)
  ^ "}"

let to_chrome evs =
  let base = base_ts evs in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun e ->
      let common =
        Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
          (json_escape e.name)
          (json_escape (if e.cat = "" then "pibe" else e.cat))
          (us_since ~base e.ts_ns) e.dom
      in
      let entry =
        match e.ph with
        | Begin -> Some (Printf.sprintf "{%s,\"ph\":\"B\",\"args\":%s}" common (json_args e.args))
        | End -> Some (Printf.sprintf "{%s,\"ph\":\"E\",\"args\":%s}" common (json_args e.args))
        | Instant ->
          Some (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"t\",\"args\":%s}" common (json_args e.args))
        | Counter -> (
          (* Chrome counter tracks must be numeric *)
          match List.filter (fun (_, v) -> numeric v <> None) e.args with
          | [] -> None
          | nargs -> Some (Printf.sprintf "{%s,\"ph\":\"C\",\"args\":%s}" common (json_args nargs)))
      in
      match entry with
      | None -> ()
      | Some s ->
        if !first then first := false else Buffer.add_char b ',';
        Buffer.add_string b s)
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let render = function Text -> to_text | Csv -> to_csv | Chrome -> to_chrome

let write_file ~path fmt evs =
  let oc = open_out path in
  output_string oc (render fmt evs);
  close_out oc
