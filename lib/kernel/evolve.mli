(** Kernel evolution model: deterministic "releases" that mutate a
    generated kernel the way real kernel development does, so staleness
    experiments can measure how much of a profile survives k releases.

    Each release, seeded by [(seed, index)], performs four mutation
    families against the current program:

    - {b adds}: fresh leaf functions (subsystem ["evolved"]) wired into a
      random live caller — code nobody has profiled yet;
    - {b removes}: existing non-protected functions disappear; remaining
      call sites to them are rewritten in place (result uses become 0);
    - {b resizes}: functions grow a live identity-arithmetic pad (loads a
      scratch cell, mangles and un-mangles it, stores it back) — bigger
      and slower, but semantically neutral;
    - {b reshuffles}: whole functions get brand-new call-site identities,
      as if their bodies were rewritten between releases.

    Surviving functions keep their site ids, which is what makes stale
    profiles partially usable — exactly the AutoFDO/Go-PGO situation.
    Protected anchors (the syscall entry, the attack-drill gadgets,
    fptr-table members, and the functions holding the pinned victim/pv
    site ids) are never removed, resized, or reshuffled, so workloads and
    drills still run on every release.  The result is validated after
    every release. *)

type config = {
  adds : int;  (** new functions per release *)
  removes : int;  (** function removals per release *)
  resizes : int;  (** functions padded per release *)
  pad_len : int;  (** approximate pad instructions per resize *)
  reshuffles : int;  (** functions whose sites are re-identified *)
}

val default_config : config
(** 3 adds, 2 removes, 4 resizes (12-instruction pads), 6 reshuffles. *)

type stats = {
  release : int;  (** release index, 0-based *)
  added : int;
  removed : int;
  resized : int;
  reshuffled_funcs : int;
  renamed_sites : int;  (** call sites that lost their profile identity *)
}

val release : ?config:config -> seed:int -> index:int -> Gen.info -> Gen.info * stats
(** One release step.  Deterministic in [(config, seed, index)] and the
    input program. *)

val evolve : ?config:config -> seed:int -> k:int -> Gen.info -> Gen.info * stats list
(** [evolve ~seed ~k info] applies releases [0 .. k-1] in order,
    returning the evolved kernel and per-release stats ([k = 0] is the
    identity). *)
