(** Syscall entry layer: per-syscall wrappers (entry/exit bookkeeping plus
    a call into the owning subsystem) and the numbered dispatcher
    [syscall_entry] whose multiway switch stands in for the syscall
    table. *)

type t = {
  entry : string;  (** [syscall_entry (nr, a0, a1)] *)
  nrs : (string * int) list;  (** syscall name -> number *)
  nr_tbl : (string, int) Hashtbl.t;
      (** same mapping, hashed — [nr] resolves once per simulated request *)
}

val nr : t -> string -> int
(** Raises [Not_found] for unknown syscall names. *)

val build : Ctx.t -> Common.t -> Fs.t -> Net.t -> Mm.t -> Misc.t -> Drivers.t -> Callbacks.t -> t
