(** Workload drivers: LMBench-style micro operations and the
    Apache/Nginx/DBench-style macro request mixes (paper §8).

    An [op] runs one iteration of a micro-benchmark — one or a few
    syscalls with arguments drawn from the op's own RNG stream (fd
    popularity is Zipfian, giving the multi-target profiles of paper
    Table 4).  A [mix] runs one application-level request composed of many
    syscalls. *)

type op = {
  op_name : string;
  run : Pibe_cpu.Engine.t -> Pibe_util.Rng.t -> unit;
}

val lmbench : Gen.info -> op list
(** The 20 LMBench latency tests of paper Table 2, in table order:
    null, read, write, open, stat, fstat, af_unix, fork/exit, fork/exec,
    fork/shell, pipe, select_file, select_tcp, tcp_conn, udp, tcp, mmap,
    page_fault, sig_install, sig_dispatch. *)

val lmbench_op : Gen.info -> string -> op
(** Lookup by name; raises [Not_found]. *)

type mix = {
  mix_name : string;
  request : Pibe_cpu.Engine.t -> Pibe_util.Rng.t -> unit;
      (** one application request / transaction *)
  user_ratio : float;
      (** userspace cycles per request as a fraction of the baseline
          kernel cycles — macro benchmarks spend most of their time in
          user code that defenses do not slow down, which is why paper
          Table 7's degradations are milder than LMBench's.  Calibrated
          per application (nginx is the most kernel-bound). *)
}

val apache : Gen.info -> mix
val nginx : Gen.info -> mix
val dbench : Gen.info -> mix

(** {2 Phased deployments}

    A [phase] is a segment of a long-running deployment: [request] issues
    one unit of that phase's traffic (one application request, or one
    sweep of the LMBench suite).  The online re-optimization loop
    ({!Pibe_online}) drives a phase list to create profile drift
    mid-run. *)

type phase = {
  phase_name : string;
  request : Pibe_cpu.Engine.t -> Pibe_util.Rng.t -> unit;
}

val phase_of_mix : mix -> phase
val lmbench_phase : Gen.info -> phase
(** One request = one sweep over all 20 LMBench ops. *)

val standard_phases : Gen.info -> phase list
(** The drifting deployment of the online experiment:
    LMBench -> Apache -> DBench. *)

val blend : string -> (phase * int) list -> phase
(** [blend name parts] is a skewed traffic mix: each request draws one
    component phase with probability proportional to its weight, from the
    request's own RNG stream (so the draw sequence is deterministic per
    seed).  Fleet instances use blends so no machine's traffic exactly
    matches a canonical phase.  Raises [Invalid_argument] on an empty
    part list; weights follow {!Pibe_util.Rng.weighted}'s contract. *)
