open Pibe_ir
open Types

type info = {
  prog : Program.t;
  entry : string;
  syscalls : Syscalls.t;
  mm : Memmap.t;
  fs : Fs.t;
  net : Net.t;
  gadget : string;
  gadget_fptr : int;
  valid_gadget : string;
  victim_icall_site : int;
  victim_ops_addr : int;
  pv_call_site : int;
}

let nr info name = Syscalls.nr info.syscalls name

(* fd-table population: files 0-63 with a skewed fs mix, pipes 64-79,
   sockets 80-127 (tcp/udp/unix/raw). *)
let init_fd_tables ctx =
  let mm = ctx.Ctx.mm in
  let file_fs fd =
    (* ext4-heavy, long tail over the other disk filesystems *)
    if fd < 36 then 0 (* ext4 *)
    else if fd < 46 then 3 (* tmpfs *)
    else if fd < 54 then 1 (* xfs *)
    else if fd < 58 then 2 (* btrfs *)
    else if fd < 61 then 4 (* procfs *)
    else 5 (* devfs *)
  in
  for fd = 0 to 63 do
    Ctx.init_global ctx ~addr:(mm.Memmap.fd_table + fd) ~value:(file_fs fd)
  done;
  for fd = 64 to 79 do
    Ctx.init_global ctx ~addr:(mm.Memmap.fd_table + fd) ~value:6 (* pipefs *)
  done;
  for fd = 80 to 127 do
    Ctx.init_global ctx ~addr:(mm.Memmap.fd_table + fd) ~value:7 (* sockfs *);
    let proto =
      if fd < 100 then 0 (* tcp *)
      else if fd < 112 then 1 (* udp *)
      else if fd < 124 then 2 (* unix *)
      else 3 (* raw *)
    in
    Ctx.init_global ctx ~addr:(mm.Memmap.proto_table + fd) ~value:proto
  done

(* The gadget the transient drills try to reach: it observably leaks the
   secret cell, so reaching it transiently = information disclosure. *)
let build_gadget ctx =
  let mm = ctx.Ctx.mm in
  let b = Builder.create ~name:"spectre_gadget" ~params:2 in
  let addr = Builder.reg b in
  Builder.assign b addr (Const mm.Memmap.secret);
  let secret = Builder.reg b in
  Builder.assign b secret (Load (Reg addr));
  Builder.observe b (Reg secret);
  Builder.ret b (Some (Reg secret));
  Ctx.add ctx
    (Builder.finish b ~attrs:{ default_attrs with subsystem = "gadget"; noinline = true } ());
  let idx = Ctx.register_fptr ctx "spectre_gadget" in
  ("spectre_gadget", idx)

let generate cfg =
  let mm = Memmap.make ~nfs:8 ~nproto:4 ~n_drv:(12 * cfg.Ctx.scale) in
  let ctx = Ctx.create cfg mm in
  let common = Common.build ctx in
  let block = Block.build ctx common in
  let net = Net.build ctx common in
  let fs = Fs.build ctx common block net in
  let mm_sub = Mm.build ctx common in
  let misc = Misc.build ctx common block fs mm_sub in
  let drivers = Drivers.build ctx common in
  let cbs = Callbacks.build ctx common in
  let syscalls = Syscalls.build ctx common fs net mm_sub misc drivers cbs in
  init_fd_tables ctx;
  Ctx.init_global ctx ~addr:mm.Memmap.secret ~value:0xdeadbeef;
  let gadget, gadget_fptr = build_gadget ctx in
  let prog = ctx.Ctx.prog in
  Validate.check_exn prog;
  {
    prog;
    entry = syscalls.Syscalls.entry;
    syscalls;
    mm;
    fs;
    net;
    gadget;
    gadget_fptr;
    (* a pad-carrying, arity-matching hijack target for the CFI drills:
       another filesystem's read handler, legitimately installed in its
       ops structure, with the victim site's two-argument signature *)
    valid_gadget = fs.Fs.fs_names.(1) ^ "_read";
    victim_icall_site = fs.Fs.victim_icall_site;
    victim_ops_addr = fs.Fs.victim_ops_addr;
    pv_call_site = mm_sub.Mm.pv_call_site;
  }
