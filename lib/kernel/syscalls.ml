open Pibe_ir
open Types

type t = {
  entry : string;
  nrs : (string * int) list;
  nr_tbl : (string, int) Hashtbl.t;
      (** same mapping as [nrs]; workloads resolve a name per request, so
          the lookup must not walk the list *)
}

let nr t name =
  match Hashtbl.find_opt t.nr_tbl name with
  | Some n -> n
  | None -> raise Not_found
let sub = "syscall"

let define ctx ~name ~params body =
  let b = Builder.create ~name ~params in
  body b;
  Ctx.add ctx (Builder.finish b ~attrs:{ default_attrs with subsystem = sub } ());
  name

(* A syscall wrapper: user->kernel entry bookkeeping, one call into the
   owning subsystem, exit bookkeeping. *)
let wrapper ctx (common : Common.t) ~name ~entry_work ~target =
  define ctx ~name ~params:2 (fun b ->
      let a0 = Builder.param b 0 and a1 = Builder.param b 1 in
      let v = Gen_util.compute ctx b ~seeds:[ a0; a1 ] ~n:entry_work in
      ignore (Gen_util.call ctx b common.Common.get_current [ Reg v; Reg v ]);
      let r = Gen_util.call ctx b target [ Reg a0; Reg a1 ] in
      let out = Gen_util.compute ctx b ~seeds:[ r; v ] ~n:4 in
      Builder.ret b (Some (Reg out)))

let build ctx (common : Common.t) (fs : Fs.t) (net : Net.t) (mm_sub : Mm.t) (misc : Misc.t)
    (drivers : Drivers.t) (cbs : Callbacks.t) =
  let sys_null =
    define ctx ~name:"sys_getpid" ~params:2 (fun b ->
        let a0 = Builder.param b 0 and a1 = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ a0; a1 ] ~n:8 in
        let r = Gen_util.call ctx b common.Common.get_current [ Reg v; Reg v ] in
        Builder.ret b (Some (Reg r)))
  in
  let sys_read = wrapper ctx common ~name:"sys_read" ~entry_work:14 ~target:fs.Fs.vfs_read in
  let sys_write =
    wrapper ctx common ~name:"sys_write" ~entry_work:14 ~target:fs.Fs.vfs_write
  in
  let sys_open =
    wrapper ctx common ~name:"sys_open" ~entry_work:12 ~target:fs.Fs.do_filp_open
  in
  let sys_stat = wrapper ctx common ~name:"sys_stat" ~entry_work:12 ~target:fs.Fs.vfs_stat in
  let sys_fstat =
    wrapper ctx common ~name:"sys_fstat" ~entry_work:12 ~target:fs.Fs.vfs_fstat
  in
  let sys_fsync =
    wrapper ctx common ~name:"sys_fsync" ~entry_work:10 ~target:fs.Fs.vfs_fsync
  in
  (* select: poll every fd in [first, first+n). *)
  let sys_select =
    define ctx ~name:"sys_select" ~params:2 (fun b ->
        let first = Builder.param b 0 and n = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ first; n ] ~n:10 in
        let acc =
          Gen_util.loop ctx b ~count:(Reg n) ~body:(fun b i ->
              let fd = Builder.reg b in
              Builder.assign b fd (Binop (Add, Reg first, Reg i));
              let r = Gen_util.call ctx b fs.Fs.vfs_poll [ Reg fd; Reg i ] in
              Some r)
        in
        let out =
          match acc with
          | Some r -> r
          | None -> v
        in
        Builder.ret b (Some (Reg out)))
  in
  let sys_send =
    wrapper ctx common ~name:"sys_send" ~entry_work:10 ~target:net.Net.sock_sendmsg
  in
  let sys_recv =
    wrapper ctx common ~name:"sys_recv" ~entry_work:10 ~target:net.Net.sock_recvmsg
  in
  let sys_connect =
    define ctx ~name:"sys_connect" ~params:2 (fun b ->
        let fd = Builder.param b 0 and addr = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ fd; addr ] ~n:10 in
        ignore (Gen_util.call ctx b net.Net.sock_connect [ Reg fd; Reg addr ]);
        (* connect blocks: the scheduler runs. *)
        let r = Gen_util.call ctx b misc.Misc.schedule [ Reg v; Reg fd ] in
        Builder.ret b (Some (Reg r)))
  in
  let sys_accept =
    wrapper ctx common ~name:"sys_accept" ~entry_work:10 ~target:net.Net.sock_accept
  in
  let sys_fork =
    define ctx ~name:"sys_fork" ~params:2 (fun b ->
        let flags = Builder.param b 0 and sp = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ flags; sp ] ~n:16 in
        let r = Gen_util.call ctx b misc.Misc.do_fork [ Reg v; Reg sp ] in
        ignore (Gen_util.call ctx b misc.Misc.schedule [ Reg r; Reg v ]);
        Builder.ret b (Some (Reg r)))
  in
  let sys_exec =
    wrapper ctx common ~name:"sys_exec" ~entry_work:14 ~target:misc.Misc.do_execve
  in
  let sys_exit =
    wrapper ctx common ~name:"sys_exit" ~entry_work:8 ~target:misc.Misc.do_exit
  in
  let sys_mmap = wrapper ctx common ~name:"sys_mmap" ~entry_work:12 ~target:mm_sub.Mm.do_mmap in
  let sys_brk = wrapper ctx common ~name:"sys_brk" ~entry_work:8 ~target:mm_sub.Mm.do_brk in
  let sys_page_fault =
    define ctx ~name:"sys_page_fault" ~params:2 (fun b ->
        (* Fault entry is leaner than a syscall. *)
        let addr = Builder.param b 0 and code = Builder.param b 1 in
        let v = Gen_util.compute ctx b ~seeds:[ addr; code ] ~n:6 in
        let r = Gen_util.call ctx b mm_sub.Mm.handle_page_fault [ Reg addr; Reg v ] in
        Builder.ret b (Some (Reg r)))
  in
  let sys_sig_install =
    wrapper ctx common ~name:"sys_sig_install" ~entry_work:10 ~target:misc.Misc.sig_install
  in
  let sys_sig_dispatch =
    wrapper ctx common ~name:"sys_sig_dispatch" ~entry_work:10
      ~target:misc.Misc.sig_dispatch
  in
  let sys_yield =
    wrapper ctx common ~name:"sys_yield" ~entry_work:8 ~target:misc.Misc.schedule
  in
  let sys_ioctl =
    wrapper ctx common ~name:"sys_ioctl" ~entry_work:10 ~target:drivers.Drivers.drv_dispatch
  in
  let table =
    [
      ("null", sys_null);
      ("read", sys_read);
      ("write", sys_write);
      ("open", sys_open);
      ("stat", sys_stat);
      ("fstat", sys_fstat);
      ("select", sys_select);
      ("send", sys_send);
      ("recv", sys_recv);
      ("connect", sys_connect);
      ("accept", sys_accept);
      ("fork", sys_fork);
      ("exec", sys_exec);
      ("exit", sys_exit);
      ("mmap", sys_mmap);
      ("brk", sys_brk);
      ("page_fault", sys_page_fault);
      ("sig_install", sys_sig_install);
      ("sig_dispatch", sys_sig_dispatch);
      ("yield", sys_yield);
      ("fsync", sys_fsync);
      ("ioctl", sys_ioctl);
    ]
  in
  let enosys = Gen_util.leaf ctx ~name:"sys_enosys" ~params:2 ~compute:3 ~subsystem:sub in
  let entry =
    define ctx ~name:"syscall_entry" ~params:3 (fun b ->
        let nr = Builder.param b 0 in
        let a0 = Builder.param b 1 and a1 = Builder.param b 2 in
        (* user->kernel transition: swapgs, cr3 switch, stack setup...
           modelled as a fixed-cost loop the optimizer cannot elide and
           the defenses do not touch (no calls, no indirect branches). *)
        let _ = Gen_util.compute ctx b ~seeds:[ nr; a0 ] ~n:10 in
        ignore
          (Gen_util.loop ctx b ~count:(Imm 45) ~body:(fun b i ->
               let x = Builder.reg b in
               Builder.assign b x (Binop (Add, Reg i, Imm 7));
               let y = Builder.reg b in
               Builder.assign b y (Binop (Xor, Reg x, Reg i));
               None));
        (* jiffies++ and deferred-work processing every 32nd syscall *)
        let mm = ctx.Ctx.mm in
        let tick_addr = Builder.reg b in
        Builder.assign b tick_addr (Const mm.Memmap.tick);
        let tick = Builder.reg b in
        Builder.assign b tick (Load (Reg tick_addr));
        let tick2 = Builder.reg b in
        Builder.assign b tick2 (Binop (Add, Reg tick, Imm 1));
        Builder.store b ~addr:(Reg tick_addr) ~value:(Reg tick2);
        let tmask = Builder.reg b in
        Builder.assign b tmask (Binop (And, Reg tick2, Imm 31));
        let tz = Builder.reg b in
        Builder.assign b tz (Binop (Eq, Reg tmask, Imm 0));
        let timers_bl = Builder.new_block b in
        let wq_bl = Builder.new_block b in
        let dispatch_bl = Builder.new_block b in
        Builder.br b (Reg tz) timers_bl dispatch_bl;
        Builder.switch_to b timers_bl;
        ignore (Gen_util.call ctx b cbs.Callbacks.run_timers [ Reg tick2; Reg a0 ]);
        let wmask = Builder.reg b in
        Builder.assign b wmask (Binop (And, Reg tick2, Imm 127));
        let wz = Builder.reg b in
        Builder.assign b wz (Binop (Eq, Reg wmask, Imm 0));
        Builder.br b (Reg wz) wq_bl dispatch_bl;
        Builder.switch_to b wq_bl;
        ignore (Gen_util.call ctx b cbs.Callbacks.run_workqueue [ Reg tick2; Reg a0 ]);
        Builder.jmp b dispatch_bl;
        Builder.switch_to b dispatch_bl;
        let blocks = List.map (fun (_, f) -> (Builder.new_block b, f)) table in
        let default = Builder.new_block b in
        Builder.switch b ~lowering:Jump_table (Reg nr)
          (List.mapi (fun i (l, _) -> (i, l)) blocks)
          ~default;
        List.iter
          (fun (l, f) ->
            Builder.switch_to b l;
            let r = Gen_util.call ctx b f [ Reg a0; Reg a1 ] in
            Builder.ret b (Some (Reg r)))
          blocks;
        Builder.switch_to b default;
        let r = Gen_util.call ctx b enosys [ Reg nr; Reg a0 ] in
        Builder.ret b (Some (Reg r)))
  in
  let nrs = List.mapi (fun i (name, _) -> (name, i)) table in
  let nr_tbl = Hashtbl.create (2 * List.length nrs) in
  List.iter (fun (name, i) -> Hashtbl.replace nr_tbl name i) nrs;
  { entry; nrs; nr_tbl }
