open Pibe_ir
open Types
module Rng = Pibe_util.Rng

type config = {
  adds : int;
  removes : int;
  resizes : int;
  pad_len : int;
  reshuffles : int;
}

let default_config = { adds = 3; removes = 2; resizes = 4; pad_len = 12; reshuffles = 6 }

type stats = {
  release : int;
  added : int;
  removed : int;
  resized : int;
  reshuffled_funcs : int;
  renamed_sites : int;
}

(* Functions the mutations must leave alone: the syscall entry (workload
   anchor), the attack-drill anchors, everything reachable through the
   fptr table (removal would break indirect dispatch), and the functions
   holding the drills' pinned victim/pv site ids. *)
let protected (info : Gen.info) =
  let set = Hashtbl.create 64 in
  Hashtbl.replace set info.Gen.entry ();
  Hashtbl.replace set info.Gen.gadget ();
  Hashtbl.replace set info.Gen.valid_gadget ();
  Array.iter (fun n -> Hashtbl.replace set n ()) info.Gen.prog.Program.fptr_table;
  let pinned_sites = [ info.Gen.victim_icall_site; info.Gen.pv_call_site ] in
  Program.iter_funcs info.Gen.prog (fun f ->
      Func.iter_insts f (fun _ i ->
          match i with
          | Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ } ->
            if List.mem site.site_id pinned_sites then Hashtbl.replace set f.fname ()
          | Assign _ | Store _ | Observe _ -> ()));
  set

let eligible prog keep_out =
  Array.of_list
    (List.filter
       (fun n ->
         let f = Program.find prog n in
         (not (Hashtbl.mem keep_out n)) && (not f.attrs.is_asm) && not f.attrs.optnone)
       (Program.layout_order prog))

(* ------------------------------ mutations ------------------------------ *)

(* A fresh leaf: a short arithmetic body, one return.  New releases gain
   functions nobody has profiled yet. *)
let add_func prog rng ~name =
  let b = Builder.create ~name ~params:1 in
  let x = Builder.param b 0 in
  let r = Builder.reg b in
  Builder.assign b r (Binop (Mul, Reg x, Imm (3 + Rng.int rng 13)));
  let r2 = Builder.reg b in
  Builder.assign b r2 (Binop (Xor, Reg r, Imm (Rng.int rng 255)));
  Builder.ret b (Some (Reg r2));
  let f = Builder.finish b ~attrs:{ default_attrs with subsystem = "evolved" } () in
  Program.add_func prog f

(* Wire a call to [callee] into a random block of [caller], so the new
   function is live from release one. *)
let wire_call prog rng ~caller ~callee =
  let f = Program.find prog caller in
  let prog, site = Program.fresh_site prog in
  let bi = Rng.int rng (Array.length f.blocks) in
  let call = Call { dst = None; callee; args = [ Imm (Rng.int rng 64) ]; site; tail = false } in
  let f =
    Func.map_blocks f ~f:(fun l b ->
        if l = bi then { b with insts = Array.append [| call |] b.insts } else b)
  in
  Program.update_func prog f

(* Remove a function: every remaining call site to it is rewritten in the
   callers (result uses become 0), then the body goes away. *)
let remove_func_and_rewrite prog victim =
  let prog =
    Program.fold_funcs prog ~init:prog ~f:(fun prog f ->
        let touched = ref false in
        let f' =
          Func.map_blocks f ~f:(fun _ b ->
              let insts =
                Array.of_list
                  (List.filter_map
                     (fun i ->
                       match i with
                       | Call { callee; dst; _ } when String.equal callee victim ->
                         touched := true;
                         (match dst with
                         | Some r -> Some (Assign (r, Const 0))
                         | None -> None)
                       | _ -> Some i)
                     (Array.to_list b.insts))
              in
              if !touched then { b with insts } else b)
        in
        if !touched then Program.update_func prog f' else prog)
  in
  Program.remove_func prog victim

(* Grow a function with a live pad: load a scratch cell, push the value
   through an arithmetic chain that nets out to the identity, store it
   back.  Every assign feeds the store, so pipeline cleanup cannot strip
   the pad, and the net memory effect is nil — the release only got
   bigger and slower, as releases do. *)
let resize_func prog rng mm ~name ~pad_len =
  let f = Program.find prog name in
  let cell =
    mm.Memmap.scratch + Rng.int rng mm.Memmap.scratch_len
  in
  let r0 = f.nregs in
  (* identity chain: +c1, ^c2, ^c2, -c1 repeated *)
  let insts = ref [ Assign (r0, Load (Imm cell)) ] in
  let reg = ref r0 in
  let quads = max 1 (pad_len / 4) in
  for _ = 1 to quads do
    let c1 = 1 + Rng.int rng 1023 and c2 = 1 + Rng.int rng 1023 in
    let emit op imm =
      let d = !reg + 1 in
      insts := Assign (d, Binop (op, Reg !reg, Imm imm)) :: !insts;
      reg := d
    in
    emit Add c1;
    emit Xor c2;
    emit Xor c2;
    emit Sub c1
  done;
  insts := Store (Imm cell, Reg !reg) :: !insts;
  let pad = Array.of_list (List.rev !insts) in
  let f = { f with nregs = !reg + 1 } in
  let f =
    Func.map_blocks f ~f:(fun l b ->
        if l = f.entry then { b with insts = Array.append pad b.insts } else b)
  in
  Program.update_func prog f

(* Call-site reshuffle: the function's sites get brand-new identities, as
   if the surrounding code was rewritten between releases — stale profiles
   keyed on the old origins no longer match. *)
let reshuffle_sites prog ~name ~pinned =
  let f = Program.find prog name in
  let prog = ref prog in
  let renamed = ref 0 in
  let f' =
    Func.rename_sites f ~fresh:(fun old ->
        if List.mem old.site_id pinned then old
        else begin
          let p, s = Program.fresh_site !prog in
          prog := p;
          incr renamed;
          s
        end)
  in
  (Program.update_func !prog f', !renamed)

(* ------------------------------ releases ------------------------------ *)

let release ?(config = default_config) ~seed ~index (info : Gen.info) =
  let rng = Rng.create (seed lxor (0x9e3779b9 * (index + 1))) in
  let keep_out = protected info in
  let prog = ref info.Gen.prog in
  (* adds *)
  let added = ref 0 in
  for j = 1 to config.adds do
    let name = Printf.sprintf "evo_r%d_s%d_f%d" index (seed land 0xffff) j in
    if not (Program.mem !prog name) then begin
      prog := add_func !prog rng ~name;
      let callers = eligible !prog keep_out in
      let callers = Array.of_list (List.filter (fun c -> c <> name) (Array.to_list callers)) in
      if Array.length callers > 0 then
        prog := wire_call !prog rng ~caller:(Rng.choose rng callers) ~callee:name;
      incr added
    end
  done;
  (* removes *)
  let removed = ref 0 in
  for _ = 1 to config.removes do
    let victims =
      Array.of_list
        (List.filter
           (fun n -> not (String.length n >= 4 && String.sub n 0 4 = "evo_"))
           (Array.to_list (eligible !prog keep_out)))
    in
    if Array.length victims > 0 then begin
      prog := remove_func_and_rewrite !prog (Rng.choose rng victims);
      incr removed
    end
  done;
  (* resizes *)
  let resized = ref 0 in
  for _ = 1 to config.resizes do
    let targets = eligible !prog keep_out in
    if Array.length targets > 0 then begin
      prog :=
        resize_func !prog rng info.Gen.mm ~name:(Rng.choose rng targets)
          ~pad_len:config.pad_len;
      incr resized
    end
  done;
  (* reshuffles *)
  let pinned = [ info.Gen.victim_icall_site; info.Gen.pv_call_site ] in
  let reshuffled = ref 0 in
  let renamed = ref 0 in
  for _ = 1 to config.reshuffles do
    let targets = eligible !prog keep_out in
    if Array.length targets > 0 then begin
      let p, n = reshuffle_sites !prog ~name:(Rng.choose rng targets) ~pinned in
      prog := p;
      reshuffled := !reshuffled + 1;
      renamed := !renamed + n
    end
  done;
  Validate.check_exn !prog;
  ( { info with Gen.prog = !prog },
    {
      release = index;
      added = !added;
      removed = !removed;
      resized = !resized;
      reshuffled_funcs = !reshuffled;
      renamed_sites = !renamed;
    } )

let evolve ?(config = default_config) ~seed ~k (info : Gen.info) =
  let rec go info acc i =
    if i >= k then (info, List.rev acc)
    else
      let info, st = release ~config ~seed ~index:i info in
      go info (st :: acc) (i + 1)
  in
  go info [] 0
