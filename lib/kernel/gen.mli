(** Top-level synthetic kernel generator.

    [generate cfg] deterministically builds the whole image — core
    utilities, networking, VFS + filesystems, mm + para-virt, scheduler,
    signals, process lifecycle, the driver/cold bulk, the syscall layer —
    seeds the dispatch tables in global memory, and returns everything
    the pipeline, workloads and attack drills need to reference it. *)

type info = {
  prog : Pibe_ir.Program.t;
  entry : string;  (** the syscall dispatcher *)
  syscalls : Syscalls.t;
  mm : Memmap.t;
  fs : Fs.t;
  net : Net.t;
  gadget : string;  (** never called legitimately; attack drills aim here *)
  gadget_fptr : int;
  valid_gadget : string;
      (** hijack target for the CFI drills: a pad-carrying function
          (installed in an ops structure) whose arity matches the victim
          site — xfs's read handler *)
  victim_icall_site : int;  (** the indirect call inside [vfs_read] *)
  victim_ops_addr : int;  (** the ext4 read-slot address that call loads from *)
  pv_call_site : int;  (** an *executed* inline-assembly hypercall site (mmap path) *)
}

val generate : Ctx.config -> info

val nr : info -> string -> int
(** Syscall number by name. *)
