module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng

type op = {
  op_name : string;
  run : Engine.t -> Rng.t -> unit;
}

type mix = {
  mix_name : string;
  request : Engine.t -> Rng.t -> unit;
  user_ratio : float;
}

let sc info eng name a0 a1 =
  ignore (Engine.call eng info.Gen.entry [ Gen.nr info name; a0; a1 ])

(* fd draws: Zipfian popularity within each fd class, so each dispatch
   table sees one dominant target plus a tail (paper Table 4). *)
let file_fd rng = Rng.zipf rng ~n:64 ~s:1.1
let pipe_fd rng = 64 + Rng.zipf rng ~n:16 ~s:1.0
let tcp_fd rng = 80 + Rng.zipf rng ~n:20 ~s:1.1
let udp_fd rng = 100 + Rng.zipf rng ~n:12 ~s:1.0
let unix_fd rng = 112 + Rng.zipf rng ~n:12 ~s:1.0
let buf_len rng = 1 + Rng.int rng 4000
let path_id rng = Rng.int rng 1_000_000

let lmbench info =
  let op name run = { op_name = name; run } in
  [
    op "null" (fun eng rng -> sc info eng "null" (Rng.int rng 64) 0);
    op "read" (fun eng rng -> sc info eng "read" (file_fd rng) (buf_len rng));
    op "write" (fun eng rng -> sc info eng "write" (file_fd rng) (buf_len rng));
    op "open" (fun eng rng -> sc info eng "open" (path_id rng) (Rng.int rng 8));
    op "stat" (fun eng rng -> sc info eng "stat" (path_id rng) (Rng.int rng 64));
    op "fstat" (fun eng rng -> sc info eng "fstat" (file_fd rng) 0);
    op "af_unix" (fun eng rng ->
        let fd = unix_fd rng in
        sc info eng "send" fd (buf_len rng);
        sc info eng "recv" fd (buf_len rng));
    op "fork/exit" (fun eng rng ->
        sc info eng "fork" (Rng.int rng 256) (Rng.int rng 4096);
        sc info eng "exit" 0 0);
    op "fork/exec" (fun eng rng ->
        sc info eng "fork" (Rng.int rng 256) (Rng.int rng 4096);
        sc info eng "exec" (path_id rng) (Rng.int rng 16);
        sc info eng "exit" 0 0);
    op "fork/shell" (fun eng rng ->
        sc info eng "fork" (Rng.int rng 256) (Rng.int rng 4096);
        sc info eng "exec" (path_id rng) (Rng.int rng 16);
        sc info eng "open" (path_id rng) 0;
        sc info eng "stat" (path_id rng) 0;
        for _ = 1 to 4 do
          sc info eng "read" (file_fd rng) (buf_len rng)
        done;
        sc info eng "write" (file_fd rng) (buf_len rng);
        sc info eng "exit" 0 0);
    op "pipe" (fun eng rng ->
        let fd = pipe_fd rng in
        sc info eng "write" fd (buf_len rng);
        sc info eng "read" fd (buf_len rng));
    op "select_file" (fun eng _rng -> sc info eng "select" 0 32);
    op "select_tcp" (fun eng _rng -> sc info eng "select" 80 40);
    op "tcp_conn" (fun eng rng -> sc info eng "connect" (tcp_fd rng) (path_id rng));
    op "udp" (fun eng rng ->
        let fd = udp_fd rng in
        sc info eng "send" fd (buf_len rng);
        sc info eng "recv" fd (buf_len rng));
    op "tcp" (fun eng rng ->
        let fd = tcp_fd rng in
        sc info eng "send" fd (buf_len rng);
        sc info eng "recv" fd (buf_len rng));
    op "mmap" (fun eng rng -> sc info eng "mmap" (Rng.int rng 65536) 4096);
    op "page_fault" (fun eng rng -> sc info eng "page_fault" (Rng.int rng 65536) 2);
    op "sig_install" (fun eng rng ->
        sc info eng "sig_install" (Rng.int rng 16) (Rng.int rng 4));
    op "sig_dispatch" (fun eng rng -> sc info eng "sig_dispatch" (Rng.int rng 16) 1);
  ]

let lmbench_op info name =
  List.find (fun o -> String.equal o.op_name name) (lmbench info)

let apache info =
  {
    mix_name = "Apache";
    user_ratio = 1.30;
    request =
      (fun eng rng ->
        let conn = tcp_fd rng in
        (* the MPM event loop polls its listeners before accepting *)
        sc info eng "select" 80 16;
        sc info eng "accept" conn 0;
        sc info eng "recv" conn (buf_len rng);
        sc info eng "stat" (path_id rng) 0;
        sc info eng "open" (path_id rng) 0;
        sc info eng "read" (file_fd rng) (buf_len rng);
        sc info eng "read" (file_fd rng) (buf_len rng);
        sc info eng "send" conn (buf_len rng);
        sc info eng "send" conn (buf_len rng);
        (* mapped I/O, the occasional fault, signal delivery, and worker
           management show up across requests *)
        if Rng.int rng 8 = 0 then sc info eng "mmap" (Rng.int rng 65536) 4096;
        if Rng.int rng 4 = 0 then sc info eng "page_fault" (Rng.int rng 65536) 2;
        if Rng.int rng 8 = 0 then sc info eng "sig_dispatch" (Rng.int rng 16) 0;
        if Rng.int rng 32 = 0 then begin
          sc info eng "fork" (Rng.int rng 256) (Rng.int rng 4096);
          sc info eng "exec" (path_id rng) 1;
          sc info eng "exit" 0 0
        end;
        if Rng.int rng 16 = 0 then begin
          let fd = pipe_fd rng in
          sc info eng "write" fd (buf_len rng);
          sc info eng "read" fd (buf_len rng)
        end;
        if Rng.int rng 16 = 0 then sc info eng "fstat" (file_fd rng) 0;
        sc info eng "yield" 0 0);
  }

let nginx info =
  {
    mix_name = "Nginx";
    user_ratio = 0.39;
    request =
      (fun eng rng ->
        let conn = tcp_fd rng in
        sc info eng "accept" conn 0;
        sc info eng "recv" conn (buf_len rng);
        sc info eng "stat" (path_id rng) 0;
        sc info eng "read" (file_fd rng) (buf_len rng);
        sc info eng "send" conn (buf_len rng);
        sc info eng "send" conn (buf_len rng));
  }

type phase = {
  phase_name : string;
  request : Engine.t -> Rng.t -> unit;
}

let phase_of_mix m = { phase_name = m.mix_name; request = m.request }

let lmbench_phase info =
  let ops = lmbench info in
  {
    phase_name = "LMBench";
    request = (fun eng rng -> List.iter (fun o -> o.run eng rng) ops);
  }

let dbench info =
  {
    mix_name = "DBench";
    user_ratio = 0.64;
    request =
      (fun eng rng ->
        sc info eng "open" (path_id rng) 0;
        sc info eng "read" (file_fd rng) (buf_len rng);
        sc info eng "read" (file_fd rng) (buf_len rng);
        sc info eng "write" (file_fd rng) (buf_len rng);
        sc info eng "write" (file_fd rng) (buf_len rng);
        sc info eng "stat" (path_id rng) 0;
        sc info eng "fsync" (file_fd rng) 0;
        sc info eng "yield" 0 0);
  }

(* The canonical drifting deployment: a microbenchmark phase, then a web
   phase, then a file-server phase.  Each transition reshuffles which
   dispatch-table targets are hot, which is exactly the staleness the
   online loop must detect. *)
let standard_phases info =
  [ lmbench_phase info; phase_of_mix (apache info); phase_of_mix (dbench info) ]
