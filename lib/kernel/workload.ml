module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng

type op = {
  op_name : string;
  run : Engine.t -> Rng.t -> unit;
}

type mix = {
  mix_name : string;
  request : Engine.t -> Rng.t -> unit;
  user_ratio : float;
}

(* Resolve the entry point and syscall number once, at table-construction
   time: replay loops issue one [sc] per simulated syscall, millions per
   run, and the per-request name hash (plus its [find_opt] allocation)
   was measurable.  The closures below close over the resolved [nr], so
   the per-request work is exactly the engine call. *)
let sc info name =
  let entry = info.Gen.entry and nr = Gen.nr info name in
  fun eng a0 a1 -> ignore (Engine.call eng entry [ nr; a0; a1 ])

(* fd draws: Zipfian popularity within each fd class, so each dispatch
   table sees one dominant target plus a tail (paper Table 4). *)
let file_fd rng = Rng.zipf rng ~n:64 ~s:1.1
let pipe_fd rng = 64 + Rng.zipf rng ~n:16 ~s:1.0
let tcp_fd rng = 80 + Rng.zipf rng ~n:20 ~s:1.1
let udp_fd rng = 100 + Rng.zipf rng ~n:12 ~s:1.0
let unix_fd rng = 112 + Rng.zipf rng ~n:12 ~s:1.0
let buf_len rng = 1 + Rng.int rng 4000
let path_id rng = Rng.int rng 1_000_000

let lmbench info =
  let op name run = { op_name = name; run } in
  let null = sc info "null" and read = sc info "read" and write = sc info "write" in
  let open_ = sc info "open" and stat = sc info "stat" and fstat = sc info "fstat" in
  let send = sc info "send" and recv = sc info "recv" in
  let fork = sc info "fork" and exec = sc info "exec" and exit_ = sc info "exit" in
  let select = sc info "select" and connect = sc info "connect" in
  let mmap = sc info "mmap" and page_fault = sc info "page_fault" in
  let sig_install = sc info "sig_install" and sig_dispatch = sc info "sig_dispatch" in
  [
    op "null" (fun eng rng -> null eng (Rng.int rng 64) 0);
    op "read" (fun eng rng -> read eng (file_fd rng) (buf_len rng));
    op "write" (fun eng rng -> write eng (file_fd rng) (buf_len rng));
    op "open" (fun eng rng -> open_ eng (path_id rng) (Rng.int rng 8));
    op "stat" (fun eng rng -> stat eng (path_id rng) (Rng.int rng 64));
    op "fstat" (fun eng rng -> fstat eng (file_fd rng) 0);
    op "af_unix" (fun eng rng ->
        let fd = unix_fd rng in
        send eng fd (buf_len rng);
        recv eng fd (buf_len rng));
    op "fork/exit" (fun eng rng ->
        fork eng (Rng.int rng 256) (Rng.int rng 4096);
        exit_ eng 0 0);
    op "fork/exec" (fun eng rng ->
        fork eng (Rng.int rng 256) (Rng.int rng 4096);
        exec eng (path_id rng) (Rng.int rng 16);
        exit_ eng 0 0);
    op "fork/shell" (fun eng rng ->
        fork eng (Rng.int rng 256) (Rng.int rng 4096);
        exec eng (path_id rng) (Rng.int rng 16);
        open_ eng (path_id rng) 0;
        stat eng (path_id rng) 0;
        for _ = 1 to 4 do
          read eng (file_fd rng) (buf_len rng)
        done;
        write eng (file_fd rng) (buf_len rng);
        exit_ eng 0 0);
    op "pipe" (fun eng rng ->
        let fd = pipe_fd rng in
        write eng fd (buf_len rng);
        read eng fd (buf_len rng));
    op "select_file" (fun eng _rng -> select eng 0 32);
    op "select_tcp" (fun eng _rng -> select eng 80 40);
    op "tcp_conn" (fun eng rng -> connect eng (tcp_fd rng) (path_id rng));
    op "udp" (fun eng rng ->
        let fd = udp_fd rng in
        send eng fd (buf_len rng);
        recv eng fd (buf_len rng));
    op "tcp" (fun eng rng ->
        let fd = tcp_fd rng in
        send eng fd (buf_len rng);
        recv eng fd (buf_len rng));
    op "mmap" (fun eng rng -> mmap eng (Rng.int rng 65536) 4096);
    op "page_fault" (fun eng rng -> page_fault eng (Rng.int rng 65536) 2);
    op "sig_install" (fun eng rng ->
        sig_install eng (Rng.int rng 16) (Rng.int rng 4));
    op "sig_dispatch" (fun eng rng -> sig_dispatch eng (Rng.int rng 16) 1);
  ]

let lmbench_op info name =
  List.find (fun o -> String.equal o.op_name name) (lmbench info)

let apache info =
  let select = sc info "select" and accept = sc info "accept" in
  let recv = sc info "recv" and send = sc info "send" in
  let stat = sc info "stat" and open_ = sc info "open" in
  let read = sc info "read" and write = sc info "write" in
  let mmap = sc info "mmap" and page_fault = sc info "page_fault" in
  let sig_dispatch = sc info "sig_dispatch" and fstat = sc info "fstat" in
  let fork = sc info "fork" and exec = sc info "exec" and exit_ = sc info "exit" in
  let yield = sc info "yield" in
  {
    mix_name = "Apache";
    user_ratio = 1.30;
    request =
      (fun eng rng ->
        let conn = tcp_fd rng in
        (* the MPM event loop polls its listeners before accepting *)
        select eng 80 16;
        accept eng conn 0;
        recv eng conn (buf_len rng);
        stat eng (path_id rng) 0;
        open_ eng (path_id rng) 0;
        read eng (file_fd rng) (buf_len rng);
        read eng (file_fd rng) (buf_len rng);
        send eng conn (buf_len rng);
        send eng conn (buf_len rng);
        (* mapped I/O, the occasional fault, signal delivery, and worker
           management show up across requests *)
        if Rng.int rng 8 = 0 then mmap eng (Rng.int rng 65536) 4096;
        if Rng.int rng 4 = 0 then page_fault eng (Rng.int rng 65536) 2;
        if Rng.int rng 8 = 0 then sig_dispatch eng (Rng.int rng 16) 0;
        if Rng.int rng 32 = 0 then begin
          fork eng (Rng.int rng 256) (Rng.int rng 4096);
          exec eng (path_id rng) 1;
          exit_ eng 0 0
        end;
        if Rng.int rng 16 = 0 then begin
          let fd = pipe_fd rng in
          write eng fd (buf_len rng);
          read eng fd (buf_len rng)
        end;
        if Rng.int rng 16 = 0 then fstat eng (file_fd rng) 0;
        yield eng 0 0);
  }

let nginx info =
  let accept = sc info "accept" and recv = sc info "recv" in
  let stat = sc info "stat" and read = sc info "read" and send = sc info "send" in
  {
    mix_name = "Nginx";
    user_ratio = 0.39;
    request =
      (fun eng rng ->
        let conn = tcp_fd rng in
        accept eng conn 0;
        recv eng conn (buf_len rng);
        stat eng (path_id rng) 0;
        read eng (file_fd rng) (buf_len rng);
        send eng conn (buf_len rng);
        send eng conn (buf_len rng));
  }

type phase = {
  phase_name : string;
  request : Engine.t -> Rng.t -> unit;
}

let phase_of_mix m = { phase_name = m.mix_name; request = m.request }

let lmbench_phase info =
  let ops = lmbench info in
  {
    phase_name = "LMBench";
    request = (fun eng rng -> List.iter (fun o -> o.run eng rng) ops);
  }

let dbench info =
  let open_ = sc info "open" and read = sc info "read" and write = sc info "write" in
  let stat = sc info "stat" and fsync = sc info "fsync" and yield = sc info "yield" in
  {
    mix_name = "DBench";
    user_ratio = 0.64;
    request =
      (fun eng rng ->
        open_ eng (path_id rng) 0;
        read eng (file_fd rng) (buf_len rng);
        read eng (file_fd rng) (buf_len rng);
        write eng (file_fd rng) (buf_len rng);
        write eng (file_fd rng) (buf_len rng);
        stat eng (path_id rng) 0;
        fsync eng (file_fd rng) 0;
        yield eng 0 0);
  }

(* The canonical drifting deployment: a microbenchmark phase, then a web
   phase, then a file-server phase.  Each transition reshuffles which
   dispatch-table targets are hot, which is exactly the staleness the
   online loop must detect. *)
let standard_phases info =
  [ lmbench_phase info; phase_of_mix (apache info); phase_of_mix (dbench info) ]

let blend name parts =
  if parts = [] then invalid_arg "Workload.blend: empty part list";
  let arr = Array.of_list (List.map (fun (p, w) -> (w, p)) parts) in
  {
    phase_name = name;
    request = (fun eng rng -> (Rng.weighted rng arr).request eng rng);
  }
