(* A small work-sharing domain pool.

   [map] fans a list out over up to [jobs] domains (the caller counts as
   one worker) and returns results in submission order, so a parallel run
   is observably identical to the sequential one whenever the work items
   are independent and deterministic.  A process-global counter bounds the
   number of live helper domains across every pool, so nested or
   concurrent [map] calls never oversubscribe the machine: when no slot is
   available the caller simply processes items itself.  [jobs = 1] is
   exactly today's sequential behaviour (no domain is ever spawned). *)

module Trace = Pibe_trace.Trace

type t = { jobs : int }

(* Helper domains alive right now, and the most ever requested.  [limit]
   only grows (to the largest [jobs - 1] any pool asked for), so a pool
   created for 8 jobs is not throttled by an earlier 2-job pool. *)
let live = Atomic.make 0
let limit = Atomic.make 0

let rec raise_limit n =
  let cur = Atomic.get limit in
  if n > cur && not (Atomic.compare_and_set limit cur n) then raise_limit n

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  raise_limit (jobs - 1);
  { jobs }

let jobs t = t.jobs

let rec try_acquire () =
  let cur = Atomic.get live in
  if cur >= Atomic.get limit then false
  else if Atomic.compare_and_set live cur (cur + 1) then true
  else try_acquire ()

let acquire want =
  let got = ref 0 in
  while !got < want && try_acquire () do
    incr got
  done;
  !got

let release n = ignore (Atomic.fetch_and_add live (-n))

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.jobs <= 1 -> List.map f xs
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* Work-distribution events live in the "sched" category: they carry
       the executing domain id (so a parallel trace stays explainable) and
       are exactly what Trace.canonical excludes, since which domain runs
       which item is the one scheduling-dependent fact here. *)
    let run_item i =
      if Trace.enabled () then
        Trace.span ~cat:"sched" "pool:item"
          ~args:[ ("index", Trace.Int i) ]
          (fun () -> f items.(i))
      else f items.(i)
    in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match run_item i with
        | v -> results.(i) <- Some v
        | exception e ->
          (* keep draining; the first failure is re-raised after the join
             so no domain is left running *)
          ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    Trace.span ~cat:"sched" "pool:map"
      ~args:[ ("jobs", Trace.Int t.jobs); ("items", Trace.Int n) ]
      (fun () ->
        let extra = acquire (min (t.jobs - 1) (n - 1)) in
        Trace.counter ~cat:"sched" "pool:domains" [ ("spawned", Trace.Int extra) ];
        let domains = List.init extra (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join domains;
        release extra);
    (match Atomic.get failure with
    | Some e -> raise e
    | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)

let iter t f xs = ignore (map t (fun x -> f x) xs)
