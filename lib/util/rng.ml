type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let weighted t arr =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 arr in
  assert (total > 0);
  let pick = int t total in
  let rec go i acc =
    let w, v = arr.(i) in
    let acc = acc + w in
    if pick < acc then v else go (i + 1) acc
  in
  go 0 0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.round (log u /. log (1.0 -. p)))

(* The Zipf weight table is a pure function of (n, s), and the workloads
   draw from a handful of fixed distributions millions of times — so the
   table (and the [**] calls building it) is computed once per shape and
   shared.  Lock-free: a racing domain recomputes the identical pure
   value and the prepend retries, so every reader sees the same floats. *)
let zipf_cache : ((int * float) * (float array * float)) list Atomic.t =
  Atomic.make []

let zipf_table n s =
  let rec find = function
    | [] -> None
    | ((n', (s' : float)), v) :: rest ->
      if n' = n && s' = s then Some v else find rest
  in
  match find (Atomic.get zipf_cache) with
  | Some v -> v
  | None ->
    let weights = Array.init n (fun k -> (float_of_int (k + 1)) ** (-.s)) in
    let v = (weights, Array.fold_left ( +. ) 0.0 weights) in
    let rec add () =
      let cur = Atomic.get zipf_cache in
      if not (Atomic.compare_and_set zipf_cache cur (((n, s), v) :: cur)) then
        add ()
    in
    add ();
    v

let zipf t ~n ~s =
  assert (n > 0);
  (* Linear-scan inverse CDF; [n] stays small (indirect-call target lists). *)
  let weights, total = zipf_table n s in
  let pick = float t total in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if pick < acc then i else go (i + 1) acc
  in
  go 0 0.0
