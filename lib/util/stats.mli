(** Small statistics toolbox used by the measurement harness and the
    experiment reports (medians over 11 iterations, geometric means of
    overheads, as in the paper's methodology, §8). *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty list. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths).
    Raises [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val geomean : float list -> float
(** Geometric mean of positive values.  Raises [Invalid_argument] on the
    empty list or non-positive elements. *)

val geomean_overhead : float list -> float
(** Geometric mean of overhead percentages that may be negative (speedups),
    computed as the paper does: gm over ratios [1 + p/100], mapped back to a
    percentage.  E.g. [geomean_overhead [10.; -10.]] is roughly [-0.5].
    All-speedup lists are fine as long as every element is above [-100]
    (the gm of speedups is itself a speedup, bounded by the extremes);
    any element at or below [-100] makes its ratio non-positive and
    raises [Invalid_argument], as does the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs], nearest-rank: the element at rank
    [ceil (p/100 * n)] of the sorted list.  [p = 0] returns the minimum,
    [p = 100] the maximum, and a singleton list returns its element for
    every [p]; out-of-range [p] clamps to those extremes.  Raises
    [Invalid_argument] on the empty list. *)

val overhead_pct : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100].  Positive = slowdown. *)

val throughput_delta_pct : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100].  Positive = higher throughput. *)

val sum_int : int list -> int

val ratio_pct : num:int -> den:int -> float
(** [100 * num / den] as a float; 0 if [den = 0]. *)
