(** Bounded domain pool for embarrassingly-parallel experiment cells.

    One pool is created per process (sized by [--jobs], default
    [Domain.recommended_domain_count]) and shared by every fan-out point:
    a global token counter caps the number of live helper domains, so
    nested or concurrent [map] calls never oversubscribe the machine —
    callers that cannot get a token just do the work themselves.

    When {!Pibe_trace.Trace} collection is on, the parallel path emits
    ["sched"]-category spans (one per [map], one per item) tagged with the
    executing domain id, so a parallel trace remains explainable without
    making event content depend on scheduling ([Trace.canonical] drops the
    ["sched"] category). *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] is clamped to at least 1; default
    [Domain.recommended_domain_count ()].  With [jobs = 1] no domain is
    ever spawned and [map] is exactly [List.map]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], but items may be processed by up to [jobs] domains
    concurrently.  Results come back in submission order; if any item
    raises, the remaining items still drain and the first exception is
    re-raised in the caller after all helper domains have joined. *)

val iter : t -> ('a -> unit) -> 'a list -> unit
