(** Windowed profile store for continuous profiling — one {e shard} of
    the fleet aggregator.

    A fixed-size ring of the last [window] per-window profile snapshots;
    slots are reused in place as the ring wraps, so observing is O(1) and
    at most [window] profiles stay alive regardless of deployment length.
    [merged] collapses the ring into one recency-biased training profile
    by weighting each snapshot [decay^age] (newest weight 1) and summing
    pointwise through {!Pibe_profile.Profile.merge_weighted} — the
    exponential-decay aggregation of AutoFDO-style continuous-PGO
    systems.  A fleet aggregator holds one store per instance and merges
    all rings in a single batched [merge_weighted] call over
    {!weighted_snapshots}, so merge cost scales with the number of live
    snapshots rather than with merge rounds.  All operations are
    deterministic. *)

type t

val create : window:int -> decay:float -> unit -> t
(** [window >= 1] snapshots retained; [decay] in (0, 1] ([1.0] = plain
    unweighted merge of the window).  Raises [Invalid_argument]
    otherwise. *)

val observe : t -> Pibe_profile.Profile.t -> unit
(** Push the newest window snapshot, evicting the oldest beyond the
    window.  A deep copy is taken because the caller retains the
    profile; use {!observe_owned} to hand the profile over instead. *)

val observe_owned : t -> Pibe_profile.Profile.t -> unit
(** Like {!observe} but takes ownership of [p] without copying — for
    freshly collected window profiles the caller will not mutate again
    (the per-window collection path of the simulators). *)

val length : t -> int

val merged : t -> Pibe_profile.Profile.t
(** The decayed weighted merge of the ring; the empty profile when
    nothing has been observed yet. *)

val weighted_snapshots : t -> (float * Pibe_profile.Profile.t) list
(** The ring's [(decay^age, snapshot)] pairs, newest first — the raw
    parts of {!merged}, exposed so a fleet aggregator can flatten many
    shards into one batched {!Pibe_profile.Profile.merge_weighted}
    call.  The returned profiles alias the ring; treat them as
    read-only. *)

val clear : t -> unit
