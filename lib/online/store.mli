(** Windowed profile store for continuous profiling.

    A ring of the last [window] per-window profile snapshots.  [merged]
    collapses the ring into one recency-biased training profile by
    weighting each snapshot [decay^age] (newest weight 1) and summing
    pointwise through {!Pibe_profile.Profile.merge_weighted} — the
    exponential-decay aggregation of AutoFDO-style continuous-PGO
    systems.  All operations are deterministic. *)

type t

val create : window:int -> decay:float -> unit -> t
(** [window >= 1] snapshots retained; [decay] in (0, 1] ([1.0] = plain
    unweighted merge of the window).  Raises [Invalid_argument]
    otherwise. *)

val observe : t -> Pibe_profile.Profile.t -> unit
(** Push the newest window snapshot (a deep copy is taken), evicting the
    oldest beyond the window. *)

val length : t -> int

val merged : t -> Pibe_profile.Profile.t
(** The decayed weighted merge of the ring; the empty profile when
    nothing has been observed yet. *)

val clear : t -> unit
