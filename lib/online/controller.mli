(** Re-optimization controller.

    Holds the currently deployed hardened image, the pipeline spec it was
    built with, and the training profile it was optimized for (the
    {e reference} the drift detector compares production windows
    against).  When drift fires, [reoptimize] re-runs the spec through
    the {!Pibe_pm} pass manager on the pristine kernel with the new
    (decayed, merged) profile, charges a patching/downtime cost — the
    {!Pibe_jumpswitch.Jumpswitch.patch_cost} stop-machine model, one
    batched sync plus a text write per function whose code changed — and
    swaps the image in. *)

type t

val create :
  ?patch_config:Pibe_jumpswitch.Jumpswitch.config ->
  ?verify:bool ->
  prog:Pibe_ir.Program.t ->
  spec:Pibe_pm.Spec.t ->
  profile:Pibe_profile.Profile.t ->
  unit ->
  (t, string) result
(** Builds the initial image; [Error] reports an unresolvable spec.
    [verify] runs the IR validator between passes on every (re)build. *)

val image : t -> Pibe_harden.Pass.image
(** The currently deployed image. *)

val reference : t -> Pibe_profile.Profile.t
(** The profile the deployed image was trained on. *)

val spec : t -> Pibe_pm.Spec.t
val rebuilds : t -> int
val total_patch_cycles : t -> int

val reoptimize : t -> Pibe_profile.Profile.t -> int
(** Rebuild on the new profile, swap images, update the reference, and
    return the patch cycles charged for this swap (0 when the rebuild
    produced an identical image). *)

val changed_funcs : Pibe_ir.Program.t -> Pibe_ir.Program.t -> int
(** Functions added, removed, or with a differing body — the live-patch
    site count of a swap. *)
