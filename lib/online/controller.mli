(** Re-optimization controller.

    Holds the currently deployed hardened image, the pipeline spec it was
    built with, and the training profile it was optimized for (the
    {e reference} the drift detector compares production windows
    against).  When drift fires, [reoptimize] re-runs the spec through
    the {!Pibe_pm} pass manager on the pristine kernel with the new
    (decayed, merged) profile, charges a patching/downtime cost — the
    {!Pibe_jumpswitch.Jumpswitch.patch_cost} stop-machine model, one
    batched sync plus a text write per function whose code changed — and
    swaps the image in.

    The rebuild-and-swap is split into {!prepare} (build a candidate
    image, no state change) and {!commit} (swap, charge, update the
    reference) so a fleet controller can stage a rollout: prepare once,
    deploy the candidate to a canary instance, and only commit — and
    patch the rest of the fleet — after the canary evaluation passes.
    {!reoptimize} is [prepare] followed by [commit], the single-instance
    fast path. *)

type t

val create :
  ?patch_config:Pibe_jumpswitch.Jumpswitch.config ->
  ?verify:bool ->
  prog:Pibe_ir.Program.t ->
  spec:Pibe_pm.Spec.t ->
  profile:Pibe_profile.Profile.t ->
  unit ->
  (t, string) result
(** Builds the initial image; [Error] reports an unresolvable spec.
    [verify] runs the IR validator between passes on every (re)build. *)

val image : t -> Pibe_harden.Pass.image
(** The currently deployed image. *)

val provenance : t -> Pibe_profile.Provenance.t
(** The inline/promotion tree of the currently deployed image — what the
    collector needs to lift profiles sampled on the deployed binary back
    to pristine origins (see {!Pibe_profile.Provenance}). *)

val reference : t -> Pibe_profile.Profile.t
(** The profile the deployed image was trained on. *)

val spec : t -> Pibe_pm.Spec.t
val rebuilds : t -> int
val total_patch_cycles : t -> int

val reoptimize : t -> Pibe_profile.Profile.t -> int
(** Rebuild on the new profile, swap images, update the reference, and
    return the patch cycles charged for this swap (0 when the rebuild
    produced an identical image).  Exactly {!prepare} then {!commit}. *)

(** {2 Staged rollout} *)

type candidate = {
  cand_image : Pibe_harden.Pass.image;  (** freshly built, not yet deployed *)
  cand_provenance : Pibe_profile.Provenance.t;
      (** the candidate's inline/promotion tree — deployed with it *)
  cand_profile : Pibe_profile.Profile.t;
      (** the (copied) profile it was trained on — becomes the reference
          on {!commit} *)
}

val prepare : t -> Pibe_profile.Profile.t -> candidate
(** Re-run the spec on the pristine kernel with the new profile and
    return the candidate image without touching the deployed state.
    Raises [Invalid_argument] if the spec no longer resolves (it was
    validated at [create], so this indicates registry corruption). *)

val commit : t -> candidate -> int
(** Swap the candidate in, make its profile the drift reference, count
    the rebuild, and return (and accumulate) the patch cycles of the
    swap. *)

val patch_sites :
  from_image:Pibe_harden.Pass.image -> to_image:Pibe_harden.Pass.image -> int
(** {!changed_funcs} over the two images' programs — the live-patch site
    count of moving one deployed instance between them. *)

val patch_cycles : t -> sites:int -> int
(** The stop-machine downtime of one batched live-patch of [sites]
    functions under this controller's patch configuration. *)

val changed_funcs : Pibe_ir.Program.t -> Pibe_ir.Program.t -> int
(** Functions added, removed, or with a differing body — the live-patch
    site count of a swap. *)
