(** The continuous-profiling deployment simulator — the closed loop that
    turns PIBE's one-shot pipeline into sample / detect drift /
    re-optimize / live-patch.

    Time is divided into fixed-size windows.  By default each window
    replays the same seeded request stream on two machines: the
    {e deployed} hardened image (cycle accounting — what production pays)
    and a profiling build of the pristine kernel (edge collection lifted
    to origin ids — what the profiler sees).  With
    [config.profile_on_deployed] the second machine disappears: the
    collector hooks the deployed engine itself and the lift resolves the
    optimized image's clones, promotions, and inlined-away edges through
    its recorded provenance back to pristine origins — the AutoFDO
    production regime.  Either way the window profile feeds the {!Store}
    ring; the
    decayed merge is compared against the deployed image's training
    profile by {!Drift}; when the detector fires (and the re-opt budget
    allows), the {!Controller} rebuilds on the merged profile and the
    patch/downtime cycles are charged to that window.

    Everything is a pure function of [config.seed]: the per-window RNG
    streams are derived by splitting one master generator, so every
    variant (static or adaptive, any spec) faces byte-identical
    traffic. *)

type config = {
  requests_per_window : int;  (** phase requests replayed per window *)
  store_window : int;  (** snapshots retained by the profile store *)
  decay : float;  (** per-window exponential decay of old snapshots *)
  drift_threshold : float;  (** {!Drift.distance} above this is suspect *)
  hysteresis : int;  (** consecutive suspect windows before a rebuild *)
  top_k : int;  (** hot-site ranking depth of the distance metric *)
  max_reopts : int;  (** re-optimization budget for the whole run *)
  seed : int;
  profile_on_deployed : bool;
      (** collect windows on the deployed optimized image (single replay,
          provenance-based lift) instead of a pristine-kernel shadow *)
}

val default_config : config
(** 150 requests/window, window 3, decay 0.5, threshold 0.25,
    hysteresis 2, top-16, at most 3 rebuilds, seed 23, pristine-shadow
    profiling. *)

type window_record = {
  index : int;
  phase : string;
  cycles : int;  (** deployed-engine cycles for the window's requests *)
  patch_cycles : int;  (** downtime charged in this window (0 unless fired) *)
  distance : float;  (** drift of this window's profile vs the reference *)
  fired : bool;  (** a rebuild+swap happened at the end of this window *)
}

type outcome = {
  windows : window_record list;  (** in execution order *)
  rebuilds : int;
  total_cycles : int;  (** workload + patch cycles over the whole run *)
  total_patch_cycles : int;
  aborted : string option;
      (** [None] for a clean run.  If a window raised mid-flight the run
          stops, every {e completed} window's record is retained (the
          accounting is pushed inside the traced closure, right after the
          effects it describes), and the exception text lands here
          instead of losing the whole deployment's history. *)
}

val run :
  ?config:config ->
  ?verify:bool ->
  adaptive:bool ->
  prog:Pibe_ir.Program.t ->
  spec:Pibe_pm.Spec.t ->
  training:Pibe_profile.Profile.t ->
  phases:(Pibe_kernel.Workload.phase * int) list ->
  unit ->
  (outcome, string) result
(** Simulate the deployment: each phase runs for its window count, in
    order.  With [adaptive:false] the loop still profiles and reports
    drift but never rebuilds (the static baselines).  [Error] reports an
    unresolvable spec. *)

val training_profile :
  ?config:config ->
  prog:Pibe_ir.Program.t ->
  phases:(Pibe_kernel.Workload.phase * int) list ->
  unit ->
  Pibe_profile.Profile.t
(** The offline oracle: profile the {e whole} phased stream (same seed
    derivation as [run], pristine kernel) in one run — what a perfectly
    fresh static profile would look like. *)
