(** Profile drift detection.

    The distance metric combines two magnitude-invariant views of the
    indirect-branch profile — exactly the data PIBE's optimization
    decisions key on:

    - {e weighted Jaccard} over normalized per-(origin, target)
      value-profile weights (how the probability mass over dispatch
      targets moved), and
    - {e top-K rank overlap} over the hottest indirect origins (whether
      the sites worth spending budget on are still the same sites).

    [distance] = 1 - (jaccard + overlap) / 2, in [0, 1]; 0 means the
    production windows still look like the training run, 1 means a
    completely different workload.

    The {!detector} wraps the metric in a threshold-plus-hysteresis
    policy: drift must stay above the threshold for [hysteresis]
    {e consecutive} windows before {!Fire} is returned, so sampling noise
    and one-window bursts never trigger a rebuild. *)

val weighted_jaccard : Pibe_profile.Profile.t -> Pibe_profile.Profile.t -> float
(** Similarity in [0, 1]; 1 for identical target distributions (and for
    two profiles with no indirect weight at all), 0 for disjoint ones. *)

val hot_origins : ?k:int -> Pibe_profile.Profile.t -> int list
(** Indirect origins by descending value-profile weight (ties by origin
    id), truncated to [k] when given. *)

val topk_overlap : k:int -> Pibe_profile.Profile.t -> Pibe_profile.Profile.t -> float
(** Overlap of the two top-[k] hot-origin sets in [0, 1], normalized by
    the larger set.  Raises [Invalid_argument] if [k < 1]. *)

val distance : ?k:int -> Pibe_profile.Profile.t -> Pibe_profile.Profile.t -> float
(** Symmetric drift distance in [0, 1] ([k] defaults to 16). *)

type decision =
  | Stable  (** below threshold; streak reset *)
  | Suspect of int  (** above threshold for this many consecutive windows *)
  | Fire  (** hysteresis satisfied; streak reset, caller should re-optimize *)

type detector

val detector : threshold:float -> hysteresis:int -> detector
(** [hysteresis >= 1] consecutive above-threshold windows required. *)

val observe : detector -> float -> decision
(** Feed one window's distance. *)

val reset : detector -> unit
