(** Fleet-scale online optimization: N kernel instances, a sharded
    profile aggregator, and a staged-rollout controller.

    Production PGO does not optimize for one machine's replay — it
    aggregates production-representative samples from a fleet of
    instances with heterogeneous workload mixes and amortizes one
    re-optimization decision across all of them.  This module lifts the
    single-instance {!Sim} loop to that shape, in three tiers:

    - {e Instances}: [config.instances] independent deployments, each
      with its own phase schedule derived from the caller's base phases
      (jittered transition boundaries, skewed
      {!Pibe_kernel.Workload.blend} mixes on odd instances).  Every
      window, each instance replays its own seeded request stream on its
      deployed image and lifts a window profile on the pristine kernel —
      instance-windows run domain-parallel on the caller's
      {!Pibe_util.Pool}.
    - {e Aggregator}: one {!Store} ring ({e shard}) per instance.
      Collection only appends to the instance's own shard; the merge is
      batched — all rings flatten into a single weighted
      {!Pibe_profile.Profile.merge_weighted} call per window, so merge
      cost scales with live counters, not with merge rounds.  Merge batch
      sizes and counts are exported through {!Pibe_trace.Trace}
      ([online:fleet-merge] spans, ["fleet-merge"] counters).
    - {e Fleet controller}: drift is detected on the freshest cross-fleet
      aggregate (retraining uses the decayed one).  A fire prepares one
      candidate image ({!Controller.prepare}, drawing on the shared
      [max_reopts] budget) and live-patches {e only the canary instance}
      (instance 0), charging its {!Pibe_jumpswitch.Jumpswitch.patch_cost}.
      After [canary_windows] evaluation windows — during which the canary
      also replays its stream on the old image as a counterfactual — the
      candidate is promoted fleet-wide (every other instance pays its own
      patch downtime) only if the canary ran within
      [promote_tolerance_pct] of the counterfactual; otherwise the canary
      rolls back and the fleet is never patched.

    Determinism: instance streams are split from one master generator on
    the coordinator in instance order, results return in submission
    order, and all fleet state mutates after the parallel join — the
    outcome is byte-identical at any pool size (pinned by
    [test/test_online.ml]). *)

type config = {
  instances : int;  (** fleet size (>= 1); instance 0 is the canary *)
  windows : int;  (** fleet windows simulated (>= 1) *)
  requests_per_window : int;  (** per instance, per window *)
  store_window : int;  (** per-instance shard ring depth *)
  decay : float;  (** per-window decay of older shard snapshots *)
  drift_threshold : float;  (** {!Drift.distance} above this is suspect *)
  hysteresis : int;  (** consecutive suspect windows before a rollout *)
  top_k : int;  (** hot-site ranking depth of the distance metric *)
  max_reopts : int;  (** shared fleet re-optimization budget *)
  canary_windows : int;
      (** evaluation windows on the canary before the promote/reject
          decision; [0] promotes fleet-wide immediately (staging off) *)
  promote_tolerance_pct : float;
      (** promote only if the canary's evaluation cycles are within this
          percentage of the old-image counterfactual (negative forces
          rejection — useful to pin the gating behaviour) *)
  seed : int;
}

val default_config : config
(** 8 instances, 9 windows, 60 requests/window, ring 2, decay 0.5,
    threshold 0.25, hysteresis 2, top-16, 3 re-opts, 1 canary window,
    1% promote tolerance, seed 23. *)

type instance_record = {
  inst_id : int;
  inst_mix : string;  (** schedule descriptor, e.g. ["LMBench -> Apache"] *)
  inst_cycles : int;  (** deployed cycles over all windows (no patches) *)
  inst_patch_cycles : int;  (** downtime this instance paid *)
  inst_patches : int;  (** live-patch events (deploys, promotions, rollbacks) *)
}

type rollout_status =
  | Promoted  (** canary passed; fleet-wide patch happened *)
  | Rejected  (** canary regressed; rolled back, fleet untouched *)
  | Pending  (** the run ended inside the evaluation window *)

val rollout_status_name : rollout_status -> string

type rollout = {
  ro_fired : int;  (** window index where drift fired (canary patched) *)
  ro_canary : int;  (** canary instance id *)
  ro_decided : int;  (** decision window index; [-1] while [Pending] *)
  ro_status : rollout_status;
  ro_sites : int;  (** per-instance live-patch sites of the candidate *)
}

type outcome = {
  instances : instance_record list;  (** by instance id *)
  rollouts : rollout list;  (** in firing order *)
  rebuilds : int;  (** candidates prepared (budget consumed) *)
  merges : int;  (** batched aggregator merges performed *)
  profiles_merged : int;  (** shard snapshots consumed across all merges *)
  total_cycles : int;  (** fleet workload + patch cycles *)
  total_patch_cycles : int;
  aborted : string option;
      (** as {!Sim.outcome.aborted}: completed windows are retained and
          the failing window's exception text lands here *)
}

val run :
  ?config:config ->
  ?verify:bool ->
  ?pool:Pibe_util.Pool.t ->
  adaptive:bool ->
  prog:Pibe_ir.Program.t ->
  spec:Pibe_pm.Spec.t ->
  training:Pibe_profile.Profile.t ->
  phases:Pibe_kernel.Workload.phase list ->
  unit ->
  (outcome, string) result
(** Simulate the fleet deployment.  [phases] are the base phases the
    per-instance schedules are derived from (must be non-empty;
    typically {!Pibe_kernel.Workload.standard_phases}).  With
    [adaptive:false] instances replay their streams but no drift
    detection or rollout happens (the static baselines — every variant
    faces byte-identical traffic).  [pool] supplies the worker domains
    (default: sequential).  [Error] reports an unresolvable spec;
    invalid numeric configuration raises [Invalid_argument]. *)
