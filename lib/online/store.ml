module Profile = Pibe_profile.Profile

type t = {
  window : int;
  decay : float;
  mutable snapshots : Profile.t list;  (* newest first *)
}

let create ~window ~decay () =
  if window < 1 then invalid_arg "Store.create: window must be >= 1";
  if not (decay > 0.0 && decay <= 1.0) then
    invalid_arg "Store.create: decay must be in (0, 1]";
  { window; decay; snapshots = [] }

let length t = List.length t.snapshots

let observe t p =
  let keep = List.filteri (fun i _ -> i < t.window - 1) t.snapshots in
  t.snapshots <- Profile.copy p :: keep

let merged t =
  Profile.merge_weighted
    (List.mapi (fun age p -> (t.decay ** float_of_int age, p)) t.snapshots)

let clear t = t.snapshots <- []
