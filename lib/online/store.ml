module Profile = Pibe_profile.Profile

(* Fixed-size ring over the last [window] snapshots.  Slots are reused in
   place as the ring wraps — observing is O(1) and a long-running
   deployment holds at most [window] profiles alive, where the previous
   list-based store rebuilt the whole snapshot list (and deep-copied the
   incoming profile) on every window. *)

type t = {
  window : int;
  decay : float;
  slots : Profile.t option array;
  mutable head : int;  (* slot holding the newest snapshot; -1 when empty *)
  mutable count : int;
}

let create ~window ~decay () =
  if window < 1 then invalid_arg "Store.create: window must be >= 1";
  if not (decay > 0.0 && decay <= 1.0) then
    invalid_arg "Store.create: decay must be in (0, 1]";
  { window; decay; slots = Array.make window None; head = -1; count = 0 }

let length t = t.count

let observe_owned t p =
  let slot = (t.head + 1) mod t.window in
  t.slots.(slot) <- Some p;
  t.head <- slot;
  if t.count < t.window then t.count <- t.count + 1

let observe t p = observe_owned t (Profile.copy p)

let weighted_snapshots t =
  List.init t.count (fun age ->
      let slot = (t.head - age + (2 * t.window)) mod t.window in
      match t.slots.(slot) with
      | Some p -> (t.decay ** float_of_int age, p)
      | None -> assert false)

let merged t = Profile.merge_weighted (weighted_snapshots t)

let clear t =
  Array.fill t.slots 0 t.window None;
  t.head <- -1;
  t.count <- 0
