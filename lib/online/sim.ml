module Profile = Pibe_profile.Profile
module Collector = Pibe_profile.Collector
module Program = Pibe_ir.Program
module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng
module Workload = Pibe_kernel.Workload
module H = Pibe_harden.Pass
module Trace = Pibe_trace.Trace

type config = {
  requests_per_window : int;
  store_window : int;
  decay : float;
  drift_threshold : float;
  hysteresis : int;
  top_k : int;
  max_reopts : int;
  seed : int;
  profile_on_deployed : bool;
}

let default_config =
  {
    requests_per_window = 150;
    store_window = 3;
    decay = 0.5;
    drift_threshold = 0.25;
    hysteresis = 2;
    top_k = 16;
    max_reopts = 3;
    seed = 23;
    profile_on_deployed = false;
  }

type window_record = {
  index : int;
  phase : string;
  cycles : int;
  patch_cycles : int;
  distance : float;
  fired : bool;
}

type outcome = {
  windows : window_record list;
  rebuilds : int;
  total_cycles : int;
  total_patch_cycles : int;
  aborted : string option;
}

(* One production window, in one of two collection regimes.

   Default (the paper's idealization): replay the same request stream
   twice — once on the deployed engine for cycle accounting, once on a
   profiling build of the pristine kernel (default costs + collector
   hook) for the lifted window profile, which keeps every window in the
   same origin-id coordinate system as the training profiles.

   With [profile_on_deployed] (production reality, AutoFDO-style): a
   single replay on the deployed image with the collector hooked into it;
   the lift resolves clones/promotions/inlined-away edges through the
   image's provenance back to pristine origins.  No second machine
   exists — samples come from the binary users actually run. *)
let run_window ~cfg ~prog ~image ~provenance ~(phase : Workload.phase) rng =
  if cfg.profile_on_deployed then begin
    let collector = Collector.create ~provenance image.H.prog in
    let dconfig =
      {
        (H.engine_config image) with
        Engine.on_edge = Some (Collector.hook collector);
        on_entry = Some (Collector.hook_entry collector);
      }
    in
    let deployed = Engine.create ~config:dconfig image.H.prog in
    for _ = 1 to cfg.requests_per_window do
      phase.Workload.request deployed rng
    done;
    Engine.trace_counters ~cat:"online" ~name:"window-deployed" deployed;
    (Engine.cycles deployed, Collector.lift collector)
  end
  else begin
    let rng_profile = Rng.copy rng in
    let deployed = Engine.create ~config:(H.engine_config image) image.H.prog in
    for _ = 1 to cfg.requests_per_window do
      phase.Workload.request deployed rng
    done;
    Engine.trace_counters ~cat:"online" ~name:"window-deployed" deployed;
    let collector = Collector.create prog in
    let pconfig =
      {
      Engine.default_config with
      Engine.on_edge = Some (Collector.hook collector);
      on_entry = Some (Collector.hook_entry collector);
    }
    in
    let profiler = Engine.create ~config:pconfig prog in
    for _ = 1 to cfg.requests_per_window do
      phase.Workload.request profiler rng_profile
    done;
    (Engine.cycles deployed, Collector.lift collector)
  end

let run ?(config = default_config) ?(verify = false) ~adaptive ~prog ~spec ~training
    ~phases () =
  match Controller.create ~verify ~prog ~spec ~profile:training () with
  | Error e -> Error e
  | Ok controller ->
    let cfg = config in
    let store = Store.create ~window:cfg.store_window ~decay:cfg.decay () in
    let detector =
      Drift.detector ~threshold:cfg.drift_threshold ~hysteresis:cfg.hysteresis
    in
    let master = Rng.create cfg.seed in
    let index = ref 0 in
    let windows = ref [] in
    (* Window accounting is exception-safe: the record is pushed (and the
       index advanced) inside the traced closure, immediately after the
       state mutations it describes, so a failure anywhere later — even in
       the span's own End emission — can never leave a completed window
       (with its store/detector/controller effects applied) unaccounted.
       A failure mid-window aborts the run but keeps every completed
       record, reported through [aborted]. *)
    let aborted = ref None in
    (try
       List.iter
         (fun ((phase : Workload.phase), nwindows) ->
           for _ = 1 to nwindows do
             let rng = Rng.split master in
             let span_args =
               if Trace.enabled () then
                 [
                   ("index", Trace.Int !index);
                   ("phase", Trace.Str phase.Workload.phase_name);
                   ("adaptive", Trace.Int (if adaptive then 1 else 0));
                 ]
               else []
             in
             Trace.span ~cat:"online" "online:window" ~args:span_args (fun () ->
                 let cycles, wprof =
                   run_window ~cfg ~prog ~image:(Controller.image controller)
                     ~provenance:(Controller.provenance controller) ~phase rng
                 in
                 (* Detect on the freshest window (fast reaction); rebuild on the
                    decayed merge (stable training data).  Hysteresis, not
                    smoothing, is what keeps one-window noise from firing. *)
                 let dist =
                   Drift.distance ~k:cfg.top_k (Controller.reference controller) wprof
                 in
                 (* the window profile is freshly lifted and never touched
                    again: hand it to the ring without a copy *)
                 Store.observe_owned store wprof;
                 let decision = Drift.observe detector dist in
                 let fire =
                   adaptive && decision = Drift.Fire
                   && Controller.rebuilds controller < cfg.max_reopts
                 in
                 let patch_cycles =
                   if fire then Controller.reoptimize controller (Store.merged store)
                   else 0
                 in
                 if Trace.enabled () then
                   Trace.counter ~cat:"online" "window"
                     [
                       ("index", Trace.Int !index);
                       ("cycles", Trace.Int cycles);
                       ("patch_cycles", Trace.Int patch_cycles);
                       ("drift", Trace.Float dist);
                       ("fired", Trace.Int (if fire then 1 else 0));
                     ];
                 windows :=
                   {
                     index = !index;
                     phase = phase.Workload.phase_name;
                     cycles;
                     patch_cycles;
                     distance = dist;
                     fired = fire;
                   }
                   :: !windows;
                 incr index)
           done)
         phases
     with e -> aborted := Some (Printexc.to_string e));
    let windows = List.rev !windows in
    Ok
      {
        windows;
        rebuilds = Controller.rebuilds controller;
        total_cycles =
          List.fold_left (fun acc w -> acc + w.cycles + w.patch_cycles) 0 windows;
        total_patch_cycles = Controller.total_patch_cycles controller;
        aborted = !aborted;
      }

let training_profile ?(config = default_config) ~prog ~phases () =
  let collector = Collector.create prog in
  let pconfig =
    {
      Engine.default_config with
      Engine.on_edge = Some (Collector.hook collector);
      on_entry = Some (Collector.hook_entry collector);
    }
  in
  let engine = Engine.create ~config:pconfig prog in
  let master = Rng.create config.seed in
  List.iter
    (fun ((phase : Workload.phase), nwindows) ->
      for _ = 1 to nwindows do
        let rng = Rng.split master in
        for _ = 1 to config.requests_per_window do
          phase.Workload.request engine rng
        done
      done)
    phases;
  Collector.lift collector
