module Profile = Pibe_profile.Profile
module Collector = Pibe_profile.Collector
module Program = Pibe_ir.Program
module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng
module Pool = Pibe_util.Pool
module Workload = Pibe_kernel.Workload
module H = Pibe_harden.Pass
module Trace = Pibe_trace.Trace

type config = {
  instances : int;
  windows : int;
  requests_per_window : int;
  store_window : int;
  decay : float;
  drift_threshold : float;
  hysteresis : int;
  top_k : int;
  max_reopts : int;
  canary_windows : int;
  promote_tolerance_pct : float;
  seed : int;
}

let default_config =
  {
    instances = 8;
    windows = 9;
    requests_per_window = 60;
    store_window = 2;
    decay = 0.5;
    drift_threshold = 0.25;
    hysteresis = 2;
    top_k = 16;
    max_reopts = 3;
    canary_windows = 1;
    promote_tolerance_pct = 1.0;
    seed = 23;
  }

type instance_record = {
  inst_id : int;
  inst_mix : string;
  inst_cycles : int;
  inst_patch_cycles : int;
  inst_patches : int;
}

type rollout_status = Promoted | Rejected | Pending

let rollout_status_name = function
  | Promoted -> "promoted"
  | Rejected -> "rejected"
  | Pending -> "pending"

type rollout = {
  ro_fired : int;
  ro_canary : int;
  ro_decided : int;
  ro_status : rollout_status;
  ro_sites : int;
}

type outcome = {
  instances : instance_record list;
  rollouts : rollout list;
  rebuilds : int;
  merges : int;
  profiles_merged : int;
  total_cycles : int;
  total_patch_cycles : int;
  aborted : string option;
}

(* ---------------------------- instances ----------------------------- *)

(* Per-instance phase schedules over the caller's base phases.  The fleet
   follows one macro trend (phase 0, then 1, ...), but no two instances
   see quite the same traffic: transition boundaries are jittered by up
   to one window per instance (the fleet's phase change is a ramp, not a
   step), and odd-numbered instances run a 3:1 blend of their current
   phase with the next one — machines whose mix never matches a
   canonical workload.  Everything is a pure function of (instance,
   window), so schedules are identical across variants and job counts. *)
let schedules ~phases ~instances ~windows =
  let base = Array.of_list phases in
  let n = Array.length base in
  let seg = max 1 (windows / n) in
  Array.init instances (fun i ->
      Array.init windows (fun w ->
          let w' = max 0 (w + (i mod 3) - 1) in
          let s = min (n - 1) (w' / seg) in
          let p = base.(s) in
          if i land 1 = 1 && n > 1 then
            let q = base.((s + 1) mod n) in
            Workload.blend
              (p.Workload.phase_name ^ "+" ^ q.Workload.phase_name)
              [ (p, 3); (q, 1) ]
          else p))

let mix_descriptor sched =
  let dedup =
    Array.fold_left
      (fun acc (p : Workload.phase) ->
        match acc with
        | x :: _ when String.equal x p.Workload.phase_name -> acc
        | _ -> p.Workload.phase_name :: acc)
      [] sched
  in
  String.concat " -> " (List.rev dedup)

let replay ~requests ~image ~(phase : Workload.phase) rng =
  let eng = Engine.create ~config:(H.engine_config image) image.H.prog in
  for _ = 1 to requests do
    phase.Workload.request eng rng
  done;
  eng

let profile_window ~requests ~prog ~(phase : Workload.phase) rng =
  let collector = Collector.create prog in
  let pconfig =
    {
      Engine.default_config with
      Engine.on_edge = Some (Collector.hook collector);
      on_entry = Some (Collector.hook_entry collector);
    }
  in
  let profiler = Engine.create ~config:pconfig prog in
  for _ = 1 to requests do
    phase.Workload.request profiler rng
  done;
  Collector.lift collector

type wresult = {
  w_cycles : int;  (* what this instance's deployed image paid *)
  w_counter_cycles : int;  (* counterfactual on the fleet image; 0 unless requested *)
  w_profile : Profile.t;  (* origin-id window profile (pristine kernel) *)
}

(* One instance-window: replay the same seeded request stream on the
   instance's deployed image (cycle accounting), optionally on a
   counterfactual image (canary evaluation), and on a profiling build of
   the pristine kernel (the shard's window profile) — the same dual-replay
   discipline as [Sim.run_window], per instance. *)
let run_instance_window ~requests ~prog ~image ~counterfactual ~phase rng =
  let rng_prof = Rng.copy rng in
  let rng_old = Rng.copy rng in
  let deployed = replay ~requests ~image ~phase rng in
  Engine.trace_counters ~cat:"online" ~name:"fleet-deployed" deployed;
  let w_counter_cycles =
    match counterfactual with
    | None -> 0
    | Some old_image -> Engine.cycles (replay ~requests ~image:old_image ~phase rng_old)
  in
  {
    w_cycles = Engine.cycles deployed;
    w_counter_cycles;
    w_profile = profile_window ~requests ~prog ~phase rng_prof;
  }

(* --------------------------- fleet controller ----------------------- *)

type canary_state = {
  cand : Controller.candidate;
  fired : int;
  sites : int;  (* per-instance live-patch sites of the candidate *)
  mutable new_cycles : int;  (* canary on the candidate image *)
  mutable old_cycles : int;  (* same stream on the fleet image *)
  mutable seen : int;  (* evaluation windows consumed *)
}

type stage = Steady | Canary of canary_state

let run ?(config = default_config) ?(verify = false) ?pool ~adaptive ~prog ~spec
    ~training ~phases () =
  let cfg = config in
  if cfg.instances < 1 then invalid_arg "Fleet.run: instances must be >= 1";
  if cfg.windows < 1 then invalid_arg "Fleet.run: windows must be >= 1";
  if cfg.canary_windows < 0 then invalid_arg "Fleet.run: canary_windows must be >= 0";
  if phases = [] then invalid_arg "Fleet.run: phases must be non-empty";
  match Controller.create ~verify ~prog ~spec ~profile:training () with
  | Error e -> Error e
  | Ok controller ->
    let pool = match pool with Some p -> p | None -> Pool.create ~jobs:1 () in
    let n = cfg.instances in
    let scheds = schedules ~phases ~instances:n ~windows:cfg.windows in
    let images = Array.make n (Controller.image controller) in
    let shards =
      Array.init n (fun _ -> Store.create ~window:cfg.store_window ~decay:cfg.decay ())
    in
    let detector =
      Drift.detector ~threshold:cfg.drift_threshold ~hysteresis:cfg.hysteresis
    in
    let master = Rng.create cfg.seed in
    let cycles = Array.make n 0 in
    let patch_cycles = Array.make n 0 in
    let patches = Array.make n 0 in
    let rollouts = ref [] in
    let rebuilds = ref 0 in
    let merges = ref 0 in
    let profiles_merged = ref 0 in
    let stage = ref Steady in
    (* The canary is the lowest-id instance: deterministic, and (by the
       schedule construction) an un-skewed one following the macro trend. *)
    let canary = 0 in
    let ids = List.init n (fun i -> i) in
    let patch_instance i to_image =
      let sites = Controller.patch_sites ~from_image:images.(i) ~to_image in
      let pc = Controller.patch_cycles controller ~sites in
      images.(i) <- to_image;
      patch_cycles.(i) <- patch_cycles.(i) + pc;
      patches.(i) <- patches.(i) + 1;
      pc
    in
    (* Batched shard merge: flatten every instance ring into one weighted
       part list and round once, instead of merging per instance and
       re-merging the results — one pass over all live counters, however
       large the fleet. *)
    let merge_shards parts =
      merges := !merges + 1;
      profiles_merged := !profiles_merged + List.length parts;
      let merged =
        Trace.span ~cat:"online" "online:fleet-merge"
          ~args:
            (if Trace.enabled () then [ ("parts", Trace.Int (List.length parts)) ]
             else [])
          (fun () -> Profile.merge_weighted parts)
      in
      if Trace.enabled () then
        Trace.counter ~cat:"online" "fleet-merge"
          [
            ("parts", Trace.Int (List.length parts));
            ("merges", Trace.Int !merges);
          ];
      merged
    in
    let decide ~window (st : canary_state) =
      let args =
        if Trace.enabled () then
          [
            ("window", Trace.Int window);
            ("fired", Trace.Int st.fired);
            ("new_cycles", Trace.Int st.new_cycles);
            ("old_cycles", Trace.Int st.old_cycles);
          ]
        else []
      in
      Trace.span ~cat:"online" "online:canary" ~args (fun () ->
          let ok =
            float_of_int st.new_cycles
            <= float_of_int st.old_cycles
               *. (1.0 +. (cfg.promote_tolerance_pct /. 100.0))
          in
          if ok then begin
            (* fleet-wide patch: every non-canary instance pays its own
               stop-machine window *)
            List.iter
              (fun j -> if j <> canary then ignore (patch_instance j st.cand.Controller.cand_image))
              ids;
            (* the candidate becomes the fleet image and its training
               profile the new drift reference (the fleet's own patch
               cycles are charged per instance above, so the commit's
               aggregate accounting is not reused) *)
            ignore (Controller.commit controller st.cand)
          end
          else
            (* roll the canary back to the fleet image; the rebuild spent
               its budget but the fleet never patched *)
            ignore (patch_instance canary (Controller.image controller));
          Drift.reset detector;
          rollouts :=
            {
              ro_fired = st.fired;
              ro_canary = canary;
              ro_decided = window;
              ro_status = (if ok then Promoted else Rejected);
              ro_sites = st.sites;
            }
            :: !rollouts;
          stage := Steady)
    in
    let aborted = ref None in
    (try
       for w = 0 to cfg.windows - 1 do
         (* derive every instance's window stream on the coordinator, in
            instance order, so streams are independent of scheduling *)
         let rngs = Array.init n (fun _ -> Rng.split master) in
         let span_args =
           if Trace.enabled () then
             [
               ("window", Trace.Int w);
               ("instances", Trace.Int n);
               ("adaptive", Trace.Int (if adaptive then 1 else 0));
             ]
           else []
         in
         Trace.span ~cat:"online" "online:fleet" ~args:span_args (fun () ->
             let counterfactual =
               match !stage with
               | Canary _ -> Some (Controller.image controller)
               | Steady -> None
             in
             let results =
               Array.of_list
                 (Pool.map pool
                    (fun i ->
                      run_instance_window ~requests:cfg.requests_per_window ~prog
                        ~image:images.(i)
                        ~counterfactual:(if i = canary then counterfactual else None)
                        ~phase:scheds.(i).(w) rngs.(i))
                    ids)
             in
             (* ingest: each window profile is freshly lifted and handed to
                its instance's shard without a copy *)
             Array.iteri
               (fun i r ->
                 cycles.(i) <- cycles.(i) + r.w_cycles;
                 Store.observe_owned shards.(i) r.w_profile)
               results;
             (match !stage with
             | Canary st ->
               st.new_cycles <- st.new_cycles + results.(canary).w_cycles;
               st.old_cycles <- st.old_cycles + results.(canary).w_counter_cycles;
               st.seen <- st.seen + 1
             | Steady -> ());
             match !stage with
             | Canary st -> if st.seen >= cfg.canary_windows then decide ~window:w st
             | Steady ->
               if adaptive && !rebuilds < cfg.max_reopts then begin
                 (* detect on the freshest window across the fleet (fast
                    reaction), retrain on the decayed shard aggregate
                    (stable data) — the same split as the single-instance
                    loop, lifted to fleet scope *)
                 let fresh =
                   merge_shards
                     (Array.to_list (Array.map (fun r -> (1.0, r.w_profile)) results))
                 in
                 let dist =
                   Drift.distance ~k:cfg.top_k (Controller.reference controller) fresh
                 in
                 let decision = Drift.observe detector dist in
                 if Trace.enabled () then
                   Trace.counter ~cat:"online" "fleet-drift"
                     [
                       ("window", Trace.Int w);
                       ("drift", Trace.Float dist);
                       ("fired", Trace.Int (if decision = Drift.Fire then 1 else 0));
                     ];
                 if decision = Drift.Fire then begin
                   let parts =
                     List.concat_map Store.weighted_snapshots (Array.to_list shards)
                   in
                   let aggregate = merge_shards parts in
                   let cand = Controller.prepare controller aggregate in
                   incr rebuilds;
                   let sites =
                     Controller.patch_sites ~from_image:images.(canary)
                       ~to_image:cand.Controller.cand_image
                   in
                   ignore (patch_instance canary cand.Controller.cand_image);
                   let st =
                     {
                       cand;
                       fired = w;
                       sites;
                       new_cycles = 0;
                       old_cycles = 0;
                       seen = 0;
                     }
                   in
                   if cfg.canary_windows = 0 then decide ~window:w st
                   else stage := Canary st
                 end
               end)
       done
     with e -> aborted := Some (Printexc.to_string e));
    (match !stage with
    | Canary st ->
      rollouts :=
        {
          ro_fired = st.fired;
          ro_canary = canary;
          ro_decided = -1;
          ro_status = Pending;
          ro_sites = st.sites;
        }
        :: !rollouts
    | Steady -> ());
    let instances =
      List.init n (fun i ->
          {
            inst_id = i;
            inst_mix = mix_descriptor scheds.(i);
            inst_cycles = cycles.(i);
            inst_patch_cycles = patch_cycles.(i);
            inst_patches = patches.(i);
          })
    in
    let total_patch_cycles = Array.fold_left ( + ) 0 patch_cycles in
    Ok
      {
        instances;
        rollouts = List.rev !rollouts;
        rebuilds = !rebuilds;
        merges = !merges;
        profiles_merged = !profiles_merged;
        total_cycles = Array.fold_left ( + ) 0 cycles + total_patch_cycles;
        total_patch_cycles;
        aborted = !aborted;
      }
