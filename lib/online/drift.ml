module Profile = Pibe_profile.Profile

(* Normalized indirect weight per (origin, target): magnitude-invariant,
   so a short sampling window compares cleanly against a long training
   run.  Iteration is over sorted origins and sorted value profiles, so
   float accumulation order is fixed. *)
let normalized_indirect p =
  let total = float_of_int (Profile.total_indirect_weight p) in
  if total <= 0.0 then []
  else
    List.concat_map
      (fun origin ->
        List.map
          (fun (target, c) -> ((origin, target), float_of_int c /. total))
          (Profile.value_profile p ~origin))
      (Profile.profiled_indirect_origins p)

let weighted_jaccard a b =
  let na = normalized_indirect a and nb = normalized_indirect b in
  match (na, nb) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | _ ->
    let tbl = Hashtbl.create 256 in
    List.iter (fun (k, w) -> Hashtbl.replace tbl k (w, 0.0)) na;
    List.iter
      (fun (k, w) ->
        match Hashtbl.find_opt tbl k with
        | Some (wa, _) -> Hashtbl.replace tbl k (wa, w)
        | None -> Hashtbl.replace tbl k (0.0, w))
      nb;
    (* fold over the sorted key list for deterministic summation order *)
    let keys = List.sort_uniq compare (List.map fst na @ List.map fst nb) in
    let num, den =
      List.fold_left
        (fun (num, den) k ->
          let wa, wb = Hashtbl.find tbl k in
          (num +. Float.min wa wb, den +. Float.max wa wb))
        (0.0, 0.0) keys
    in
    if den <= 0.0 then 1.0 else num /. den

(* Hot-site ranking: indirect origins ordered by total value-profile
   weight (ties by origin id). *)
let hot_origins ?(k = max_int) p =
  let ranked =
    List.sort
      (fun (o1, w1) (o2, w2) -> if w1 <> w2 then compare w2 w1 else compare o1 o2)
      (List.map
         (fun origin ->
           ( origin,
             List.fold_left (fun acc (_, c) -> acc + c) 0 (Profile.value_profile p ~origin) ))
         (Profile.profiled_indirect_origins p))
  in
  List.filteri (fun i _ -> i < k) (List.map fst ranked)

let topk_overlap ~k a b =
  if k < 1 then invalid_arg "Drift.topk_overlap: k must be >= 1";
  let ta = hot_origins ~k a and tb = hot_origins ~k b in
  match (ta, tb) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | _ ->
    let inter = List.length (List.filter (fun o -> List.mem o tb) ta) in
    float_of_int inter /. float_of_int (max (List.length ta) (List.length tb))

let distance ?(k = 16) a b =
  let sim = 0.5 *. (weighted_jaccard a b +. topk_overlap ~k a b) in
  Float.max 0.0 (Float.min 1.0 (1.0 -. sim))

(* ----------------------------- detector ----------------------------- *)

type decision =
  | Stable
  | Suspect of int
  | Fire

type detector = {
  threshold : float;
  hysteresis : int;
  mutable streak : int;
}

let detector ~threshold ~hysteresis =
  if hysteresis < 1 then invalid_arg "Drift.detector: hysteresis must be >= 1";
  { threshold; hysteresis; streak = 0 }

let reset d = d.streak <- 0

let observe d dist =
  if dist > d.threshold then begin
    d.streak <- d.streak + 1;
    if d.streak >= d.hysteresis then begin
      d.streak <- 0;
      Fire
    end
    else Suspect d.streak
  end
  else begin
    d.streak <- 0;
    Stable
  end
