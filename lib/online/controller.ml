module Profile = Pibe_profile.Profile
module Program = Pibe_ir.Program
module Spec = Pibe_pm.Spec
module Registry = Pibe_pm.Registry
module Manager = Pibe_pm.Manager
module Jumpswitch = Pibe_jumpswitch.Jumpswitch
module Trace = Pibe_trace.Trace

type t = {
  base_prog : Program.t;  (* pristine kernel; every rebuild starts here *)
  spec : Spec.t;
  verify : bool;
  patch_config : Jumpswitch.config;
  mutable image : Pibe_harden.Pass.image;
  mutable provenance : Pibe_profile.Provenance.t;
  mutable reference : Profile.t;
  mutable rebuilds : int;
  mutable total_patch_cycles : int;
}

let build ~verify base_prog spec profile =
  match Registry.of_spec spec with
  | Error e -> Error e
  | Ok passes ->
    let r = Manager.run ~verify base_prog profile passes in
    Ok (r.Manager.image, r.Manager.provenance)

let create ?(patch_config = Jumpswitch.default_config) ?(verify = false) ~prog ~spec
    ~profile () =
  match build ~verify prog spec profile with
  | Error e -> Error e
  | Ok (image, provenance) ->
    Ok
      {
        base_prog = prog;
        spec;
        verify;
        patch_config;
        image;
        provenance;
        reference = Profile.copy profile;
        rebuilds = 0;
        total_patch_cycles = 0;
      }

let image t = t.image
let provenance t = t.provenance
let reference t = t.reference
let rebuilds t = t.rebuilds
let total_patch_cycles t = t.total_patch_cycles
let spec t = t.spec

(* Functions whose body changed between the deployed image and the fresh
   one (plus additions and removals): each is one live-patch site the
   runtime must stop-machine over.  The IR is pure data, so structural
   equality is exact. *)
let changed_funcs old_prog new_prog =
  let changed =
    Program.fold_funcs new_prog ~init:0 ~f:(fun acc (f : Pibe_ir.Types.func) ->
        match Program.find_opt old_prog f.Pibe_ir.Types.fname with
        | Some g when g = f -> acc
        | Some _ | None -> acc + 1)
  in
  Program.fold_funcs old_prog ~init:changed ~f:(fun acc (f : Pibe_ir.Types.func) ->
      if Program.mem new_prog f.Pibe_ir.Types.fname then acc else acc + 1)

type candidate = {
  cand_image : Pibe_harden.Pass.image;
  cand_provenance : Pibe_profile.Provenance.t;
  cand_profile : Profile.t;
}

let prepare t new_profile =
  Trace.span ~cat:"online" "online:rebuild" (fun () ->
      match build ~verify:t.verify t.base_prog t.spec new_profile with
      | Error e ->
        (* the spec was validated at [create]; the registry cannot reject it now *)
        invalid_arg (Printf.sprintf "Controller.prepare: %s" e)
      | Ok (image, provenance) ->
        { cand_image = image; cand_provenance = provenance; cand_profile = Profile.copy new_profile })

let patch_sites ~from_image ~to_image =
  changed_funcs from_image.Pibe_harden.Pass.prog to_image.Pibe_harden.Pass.prog

let patch_cycles t ~sites = Jumpswitch.patch_cost ~config:t.patch_config ~sites ()

let commit t cand =
  let sites = patch_sites ~from_image:t.image ~to_image:cand.cand_image in
  let cycles = patch_cycles t ~sites in
  t.image <- cand.cand_image;
  t.provenance <- cand.cand_provenance;
  t.reference <- cand.cand_profile;
  t.rebuilds <- t.rebuilds + 1;
  t.total_patch_cycles <- t.total_patch_cycles + cycles;
  if Trace.enabled () then
    Trace.counter ~cat:"online" "patch"
      [
        ("sites", Trace.Int sites);
        ("downtime_cycles", Trace.Int cycles);
        ("rebuilds", Trace.Int t.rebuilds);
      ];
  cycles

let reoptimize t new_profile = commit t (prepare t new_profile)
