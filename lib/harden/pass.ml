open Pibe_ir
open Types

type defenses = {
  retpolines : bool;
  ret_retpolines : bool;
  lvi : bool;
}

let no_defenses = { retpolines = false; ret_retpolines = false; lvi = false }
let all_defenses = { retpolines = true; ret_retpolines = true; lvi = true }

let defenses_name d =
  match (d.retpolines, d.ret_retpolines, d.lvi) with
  | false, false, false -> "none"
  | true, false, false -> "retpolines"
  | false, true, false -> "ret-retpolines"
  | false, false, true -> "lvi-cfi"
  | true, true, true -> "all-defenses"
  | true, true, false -> "retpolines+ret-retpolines"
  | true, false, true -> "retpolines+lvi"
  | false, true, true -> "ret-retpolines+lvi"

let forward_kind d =
  match (d.retpolines, d.lvi) with
  | true, true -> Protection.F_fenced_retpoline
  | true, false -> Protection.F_retpoline
  | false, true -> Protection.F_lvi
  | false, false -> Protection.F_none

let backward_kind d =
  match (d.ret_retpolines, d.lvi) with
  | true, true -> Protection.B_fenced_ret_retpoline
  | true, false -> Protection.B_ret_retpoline
  | false, true -> Protection.B_lvi
  | false, false -> Protection.B_none

type image = {
  prog : Program.t;
  defenses : defenses;
  rsb_refill : bool;
  fwd : (int, Protection.forward) Hashtbl.t;
  bwd : (string, Protection.backward) Hashtbl.t;
  thunk_bytes : int;
  hardened_icall_sites : int;
  hardened_ret_sites : int;
}

let any_defense d = d.retpolines || d.ret_retpolines || d.lvi

let lower_jump_tables f =
  Func.map_blocks f ~f:(fun _ b ->
      match b.term with
      | Switch ({ lowering = Jump_table; _ } as s) ->
        { b with term = Switch { s with lowering = Branch_ladder } }
      | Switch { lowering = Branch_ladder; _ } | Jmp _ | Br _ | Ret _ -> b)

(* Jump tables: disabled program-wide when any transient defense is on,
   except inside opaque assembly bodies.  Also exposed as a standalone
   pass-manager pass ([no-jump-tables]); the re-lowering is idempotent, so
   running it before [harden] yields the same image. *)
let disable_jump_tables prog =
  let p = ref prog in
  Program.iter_funcs prog (fun f ->
      if not f.attrs.is_asm then p := Program.update_func !p (lower_jump_tables f));
  !p

let harden ?(rsb_refill = false) prog defenses =
  let fkind = forward_kind defenses in
  let bkind = backward_kind defenses in
  let fwd = Hashtbl.create 1024 in
  let bwd = Hashtbl.create 1024 in
  let hardened_icalls = ref 0 in
  let hardened_rets = ref 0 in
  let prog = ref prog in
  if any_defense defenses then prog := disable_jump_tables !prog;
  Program.iter_funcs !prog (fun f ->
      if not f.attrs.is_asm then begin
        (if fkind <> Protection.F_none then
           List.iter
             (fun (site : site) ->
               Hashtbl.replace fwd site.site_id fkind;
               incr hardened_icalls)
             (Func.icall_sites f));
        if bkind <> Protection.B_none && not f.attrs.boot_only then begin
          let rets = Func.ret_count f in
          if rets > 0 then begin
            Hashtbl.replace bwd f.fname bkind;
            hardened_rets := !hardened_rets + rets
          end
        end
      end);
  let thunk_bytes = Thunks.shared_thunk_bytes fkind in
  {
    prog = !prog;
    defenses;
    rsb_refill;
    fwd;
    bwd;
    thunk_bytes;
    hardened_icall_sites = !hardened_icalls;
    hardened_ret_sites = !hardened_rets;
  }

let fwd_protection image (s : site) =
  Option.value ~default:Protection.F_none (Hashtbl.find_opt image.fwd s.site_id)

let bwd_protection image fname =
  Option.value ~default:Protection.B_none (Hashtbl.find_opt image.bwd fname)

let footprint image f =
  let base = Layout.func_size f in
  let fkind_bytes =
    List.fold_left
      (fun acc (site : site) ->
        acc + Thunks.per_icall_bytes (fwd_protection image site))
      0 (Func.icall_sites f)
  in
  let bkind = bwd_protection image f.fname in
  base + fkind_bytes + (Func.ret_count f * Thunks.per_ret_bytes bkind)

let image_bytes image =
  Program.fold_funcs image.prog ~init:image.thunk_bytes ~f:(fun acc f ->
      acc + footprint image f)

let engine_config ?(base = Pibe_cpu.Engine.default_config) image =
  {
    base with
    Pibe_cpu.Engine.fwd_protection = fwd_protection image;
    bwd_protection = bwd_protection image;
    footprint = footprint image;
    rsb_refill = image.rsb_refill;
  }
