open Pibe_ir
open Types

type defenses = {
  retpolines : bool;
  ret_retpolines : bool;
  lvi : bool;
  fineibt : bool;
  pac : bool;
  coarse_cfi : bool;
}

let no_defenses =
  {
    retpolines = false;
    ret_retpolines = false;
    lvi = false;
    fineibt = false;
    pac = false;
    coarse_cfi = false;
  }

(* "all-defenses" keeps its historical meaning — the paper's full
   retpoline/LVI stack.  The CFI/PAC family is an alternative frontier
   point, not a layer on top of it. *)
let all_defenses = { no_defenses with retpolines = true; ret_retpolines = true; lvi = true }

let defenses_name d =
  let legacy =
    match (d.retpolines, d.ret_retpolines, d.lvi) with
    | false, false, false -> []
    | true, false, false -> [ "retpolines" ]
    | false, true, false -> [ "ret-retpolines" ]
    | false, false, true -> [ "lvi-cfi" ]
    | true, true, true -> [ "all-defenses" ]
    | true, true, false -> [ "retpolines"; "ret-retpolines" ]
    | true, false, true -> [ "retpolines"; "lvi" ]
    | false, true, true -> [ "ret-retpolines"; "lvi" ]
  in
  let parts =
    legacy
    @ (if d.fineibt then [ "fineibt" ] else [])
    @ (if d.pac then [ "pac-ret" ] else [])
    @ if d.coarse_cfi then [ "coarse-cfi" ] else []
  in
  match parts with
  | [] -> "none"
  | parts -> String.concat "+" parts

(* Kind precedence when several forward (or backward) requests are
   combined: the thunk-based retpoline/LVI family subsumes the check-based
   CFI kinds (a retpoline never executes the predicted branch the check
   would have to vet), and FineIBT subsumes the coarse label. *)
let forward_kind d =
  match (d.retpolines, d.lvi) with
  | true, true -> Protection.F_fenced_retpoline
  | true, false -> Protection.F_retpoline
  | false, true -> Protection.F_lvi
  | false, false ->
    if d.fineibt then Protection.F_fineibt
    else if d.coarse_cfi then Protection.F_coarse_cfi
    else Protection.F_none

let backward_kind d =
  match (d.ret_retpolines, d.lvi) with
  | true, true -> Protection.B_fenced_ret_retpoline
  | true, false -> Protection.B_ret_retpoline
  | false, true -> Protection.B_lvi
  | false, false -> if d.pac then Protection.B_pac else Protection.B_none

type image = {
  prog : Program.t;
  defenses : defenses;
  rsb_refill : bool;
  fwd : (int, Protection.forward) Hashtbl.t;
  bwd : (string, Protection.backward) Hashtbl.t;
  cfi : Cfi.t option;
  thunk_bytes : int;
  hardened_icall_sites : int;
  hardened_ret_sites : int;
}

let any_defense d =
  d.retpolines || d.ret_retpolines || d.lvi || d.fineibt || d.pac || d.coarse_cfi

let lower_jump_tables f =
  Func.map_blocks f ~f:(fun _ b ->
      match b.term with
      | Switch ({ lowering = Jump_table; _ } as s) ->
        { b with term = Switch { s with lowering = Branch_ladder } }
      | Switch { lowering = Branch_ladder; _ } | Jmp _ | Br _ | Ret _ -> b)

(* Jump tables: disabled program-wide when any transient defense is on,
   except inside opaque assembly bodies.  Also exposed as a standalone
   pass-manager pass ([no-jump-tables]); the re-lowering is idempotent, so
   running it before [harden] yields the same image. *)
let disable_jump_tables prog =
  let p = ref prog in
  Program.iter_funcs prog (fun f ->
      if not f.attrs.is_asm then p := Program.update_func !p (lower_jump_tables f));
  !p

let harden ?(rsb_refill = false) prog defenses =
  let fkind = forward_kind defenses in
  let bkind = backward_kind defenses in
  let fwd = Hashtbl.create 1024 in
  let bwd = Hashtbl.create 1024 in
  let hardened_icalls = ref 0 in
  let hardened_rets = ref 0 in
  let prog = ref prog in
  if any_defense defenses then prog := disable_jump_tables !prog;
  Program.iter_funcs !prog (fun f ->
      if not f.attrs.is_asm then begin
        (if fkind <> Protection.F_none then
           List.iter
             (fun (site : site) ->
               Hashtbl.replace fwd site.site_id fkind;
               incr hardened_icalls)
             (Func.icall_sites f));
        if bkind <> Protection.B_none && not f.attrs.boot_only then begin
          let rets = Func.ret_count f in
          if rets > 0 then begin
            Hashtbl.replace bwd f.fname bkind;
            hardened_rets := !hardened_rets + rets
          end
        end
      end);
  let thunk_bytes = Thunks.shared_thunk_bytes fkind in
  (* The CFI kinds need the target-set oracle; run it on the hardened
     program so promoted/cloned sites resolve. *)
  let cfi =
    match fkind with
    | Protection.F_fineibt | Protection.F_coarse_cfi -> Some (Cfi.analyze !prog)
    | Protection.F_none | Protection.F_retpoline | Protection.F_lvi
    | Protection.F_fenced_retpoline ->
      None
  in
  {
    prog = !prog;
    defenses;
    rsb_refill;
    fwd;
    bwd;
    cfi;
    thunk_bytes;
    hardened_icall_sites = !hardened_icalls;
    hardened_ret_sites = !hardened_rets;
  }

let fwd_protection image (s : site) =
  Option.value ~default:Protection.F_none (Hashtbl.find_opt image.fwd s.site_id)

let bwd_protection image fname =
  Option.value ~default:Protection.B_none (Hashtbl.find_opt image.bwd fname)

let footprint image f =
  let base = Layout.func_size f in
  let fkind_bytes =
    List.fold_left
      (fun acc (site : site) ->
        acc + Thunks.per_icall_bytes (fwd_protection image site))
      0 (Func.icall_sites f)
  in
  let bkind = bwd_protection image f.fname in
  let pad_bytes =
    match image.cfi with
    | Some cfi -> Cfi.pad_bytes cfi ~protection:(forward_kind image.defenses) f.fname
    | None -> 0
  in
  base + fkind_bytes + pad_bytes + (Func.ret_count f * Thunks.per_ret_bytes bkind)

let image_bytes image =
  Program.fold_funcs image.prog ~init:image.thunk_bytes ~f:(fun acc f ->
      acc + footprint image f)

let engine_config ?(base = Pibe_cpu.Engine.default_config) image =
  {
    base with
    Pibe_cpu.Engine.fwd_protection = fwd_protection image;
    bwd_protection = bwd_protection image;
    cfi_valid =
      (match image.cfi with
      | None -> base.Pibe_cpu.Engine.cfi_valid
      | Some cfi -> fun ~site ~target ~protection -> Cfi.valid cfi ~protection ~site ~target);
    footprint = footprint image;
    rsb_refill = image.rsb_refill;
  }
