(** CFI validity oracle for the FineIBT / coarse-CFI forward defenses:
    wraps the [Pibe_cg.Targets] target-set analysis with the per-kind
    policy ({!valid}) the engine's [cfi_valid] hook consumes, and the
    landing-pad byte accounting the image footprints consume. *)

open Pibe_ir

type t

val analyze : Program.t -> t
(** Run on the post-optimization program whose image is being hardened,
    so cloned/promoted site ids resolve. *)

val valid :
  t -> protection:Protection.forward -> site:Types.site -> target:string -> bool
(** Does a transient transfer [site -> target] pass the inserted check?
    FineIBT: the target carries an arity-matching landing pad; coarse
    CFI: the target is address-taken; every other kind: vacuously true
    (those kinds never consult the oracle). *)

val has_pad : t -> string -> bool
val pad_count : t -> int
val address_taken_count : t -> int

val pad_bytes : t -> protection:Protection.forward -> string -> int
(** Prologue bytes the named function pays for its landing pad under the
    given forward kind (0 when it carries none, and for non-CFI kinds). *)
