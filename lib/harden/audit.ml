open Pibe_ir
open Types

type report = {
  defended_icalls : int;
  vulnerable_icalls : int;
  asm_icalls : int;
  vulnerable_ijumps : int;
  defended_rets : int;
  vulnerable_rets : int;
  boot_only_rets : int;
  asm_rets : int;
}

let run (image : Pass.image) =
  let defended_icalls = ref 0 in
  let vulnerable_icalls = ref 0 in
  let asm_icalls = ref 0 in
  let vulnerable_ijumps = ref 0 in
  let defended_rets = ref 0 in
  let vulnerable_rets = ref 0 in
  let boot_only_rets = ref 0 in
  let asm_rets = ref 0 in
  Program.iter_funcs image.Pass.prog (fun f ->
      List.iter
        (fun (site : site) ->
          if Pass.fwd_protection image site <> Protection.F_none then incr defended_icalls
          else incr vulnerable_icalls)
        (Func.icall_sites f);
      (* Inline-assembly indirect calls are always unprotected. *)
      List.iter
        (fun _ ->
          incr vulnerable_icalls;
          incr asm_icalls)
        (Func.asm_icall_sites f);
      vulnerable_ijumps := !vulnerable_ijumps + Func.jump_table_count f;
      let rets = Func.ret_count f in
      if Pass.bwd_protection image f.fname <> Protection.B_none then
        defended_rets := !defended_rets + rets
      else begin
        vulnerable_rets := !vulnerable_rets + rets;
        if f.attrs.boot_only then boot_only_rets := !boot_only_rets + rets;
        if f.attrs.is_asm then asm_rets := !asm_rets + rets
      end);
  {
    defended_icalls = !defended_icalls;
    vulnerable_icalls = !vulnerable_icalls;
    asm_icalls = !asm_icalls;
    vulnerable_ijumps = !vulnerable_ijumps;
    defended_rets = !defended_rets;
    vulnerable_rets = !vulnerable_rets;
    boot_only_rets = !boot_only_rets;
    asm_rets = !asm_rets;
  }

let fully_protected report ~against =
  (* Forward edges: every vulnerable indirect call must be an untouchable
     assembly site. *)
  let fwd_ok =
    (not
       (against.Pass.retpolines || against.Pass.lvi || against.Pass.fineibt
      || against.Pass.coarse_cfi))
    || report.vulnerable_icalls = report.asm_icalls
  in
  (* Backward edges: every bare return must belong to boot-only (or asm)
     code. *)
  let bwd_ok =
    (not (against.Pass.ret_retpolines || against.Pass.lvi || against.Pass.pac))
    || report.vulnerable_rets <= report.boot_only_rets + report.asm_rets
  in
  fwd_ok && bwd_ok
