(** CFI validity oracle for the FineIBT / coarse-CFI forward defenses.

    A thin policy layer over the [Pibe_cg.Targets] analysis: it decides,
    per protection kind, whether a transient transfer [site -> target]
    passes the inserted check.  [Pass.harden] runs the analysis on the
    hardened (post-optimization) program and [Pass.engine_config]
    installs {!valid} as the engine's [cfi_valid] hook, so both execution
    backends share one oracle.  Also the source of the landing-pad byte
    accounting (a pad lives in each padded function's prologue). *)

open Pibe_ir

type t = { targets : Pibe_cg.Targets.t }

let analyze prog = { targets = Pibe_cg.Targets.analyze prog }

let valid t ~(protection : Protection.forward) ~site ~target =
  match protection with
  | Protection.F_fineibt -> Pibe_cg.Targets.fineibt_valid t.targets ~site ~target
  | Protection.F_coarse_cfi -> Pibe_cg.Targets.coarse_valid t.targets ~target
  | Protection.F_none | Protection.F_retpoline | Protection.F_lvi
  | Protection.F_fenced_retpoline ->
    true

let has_pad t name = Pibe_cg.Targets.has_pad t.targets name
let pad_count t = Pibe_cg.Targets.pad_count t.targets
let address_taken_count t = Pibe_cg.Targets.address_taken_count t.targets

let pad_bytes t ~(protection : Protection.forward) fname =
  match protection with
  | Protection.F_fineibt ->
    if has_pad t fname then Thunks.per_pad_bytes protection else 0
  | Protection.F_coarse_cfi ->
    (* every address-taken function gets the shared endbr64 label *)
    if Pibe_cg.Targets.address_taken t.targets fname then
      Thunks.per_pad_bytes protection
    else 0
  | Protection.F_none | Protection.F_retpoline | Protection.F_lvi
  | Protection.F_fenced_retpoline ->
    0
