(** Defense code sequences: byte-size accounting and the assembly listings
    the paper shows (Listings 4-7).

    Sizes feed the image-growth statistics (Table 12) and the i-cache
    footprints used by the engine; listings feed documentation and the
    [--listings] bench output. *)

open Pibe_ir

val shared_thunk_bytes : Protection.forward -> int
(** One-time cost of the out-of-line thunk body a forward defense calls
    into (0 for [F_none]). *)

val per_icall_bytes : Protection.forward -> int
(** Extra bytes at each protected indirect call site (register move +
    thunk call vs. the bare [call *reg]). *)

val per_pad_bytes : Protection.forward -> int
(** Extra bytes in the prologue of each function carrying a landing pad
    (FineIBT's endbr64 + hash check, coarse CFI's bare endbr64); 0 for the
    thunk-based kinds, which add nothing to callees. *)

val per_ret_bytes : Protection.backward -> int
(** Extra bytes for each return instruction (return retpolines are inlined
    at the return site, per the paper §6.1; PAC adds the sign/auth pair). *)

val listing :
  [ `Retpoline
  | `Lvi_forward
  | `Lvi_backward
  | `Fenced_retpoline
  | `Fineibt
  | `Coarse_cfi
  | `Pac_ret ] ->
  string
(** The corresponding assembly sequence, matching the paper's listings
    (the CFI/PAC sequences follow the FineIBT paper and the AArch64
    kernel's PAC usage rather than a PIBE listing). *)
