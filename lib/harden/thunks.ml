open Pibe_ir

let shared_thunk_bytes = function
  | Protection.F_none -> 0
  | Protection.F_retpoline -> 32 (* __llvm_retpoline_r11 *)
  | Protection.F_lvi -> 16 (* __x86_indirect_thunk_r11 with lfence *)
  | Protection.F_fenced_retpoline -> 48 (* retpoline + notq/notq/lfence tail *)
  | Protection.F_fineibt | Protection.F_coarse_cfi ->
    0 (* CFI checks are inlined at sites and pads; no out-of-line thunk *)

let per_icall_bytes = function
  | Protection.F_none -> 0
  | Protection.F_retpoline | Protection.F_lvi | Protection.F_fenced_retpoline ->
    5 (* mov %target,%r11 (3) + call thunk (5) replaces call *reg (3) *)
  | Protection.F_fineibt -> 7 (* mov $hash,%r10d (6) + sub $0x?,%rip offset glue *)
  | Protection.F_coarse_cfi -> 4 (* cmp label(%reg) + jne __cfi_slowpath stub *)

let per_pad_bytes = function
  | Protection.F_fineibt -> 16 (* endbr64 + xor-hash check + jne __fineibt_fail *)
  | Protection.F_coarse_cfi -> 4 (* endbr64 as the single coarse label *)
  | Protection.F_none | Protection.F_retpoline | Protection.F_lvi
  | Protection.F_fenced_retpoline ->
    0

let per_ret_bytes = function
  | Protection.B_none -> 0
  | Protection.B_lvi -> 3 (* lfence *)
  | Protection.B_ret_retpoline -> 14 (* inlined call/pause/lfence/loop + stack fix *)
  | Protection.B_fenced_ret_retpoline -> 19
  | Protection.B_pac -> 8 (* paciasp in the prologue + autiasp before ret *)

let listing = function
  | `Retpoline ->
    String.concat "\n"
      [
        "  call __llvm_retpoline_r11";
        "__llvm_retpoline_r11:";
        "  callq jump";
        "loop: pause";
        "  lfence";
        "  jmp loop";
        "  nopl 0x0(%rax)";
        "jump: mov %r11, (%rsp)";
        "  retq";
      ]
  | `Lvi_forward ->
    String.concat "\n"
      [
        "  call __x86_indirect_thunk_r11";
        "__x86_indirect_thunk_r11:";
        "  lfence";
        "  jmpq *%r11";
      ]
  | `Lvi_backward -> String.concat "\n" [ "  pop %rcx"; "  lfence"; "  jmpq *%rcx" ]
  | `Fineibt ->
    String.concat "\n"
      [
        "  movl $0x12345678, %r10d  # caller: load callee's type hash";
        "  call *%r11";
        "callee:";
        "  endbr64                  # landing pad";
        "  xorl $0x12345678, %r10d  # hash check";
        "  jne __fineibt_fail";
      ]
  | `Coarse_cfi ->
    String.concat "\n"
      [
        "  call *%r11";
        "callee:";
        "  endbr64                  # single shared label: any address-taken";
        "                           # function is a valid target";
      ]
  | `Pac_ret ->
    String.concat "\n"
      [
        "prologue:";
        "  paciasp                  # sign LR with SP as modifier";
        "  ...";
        "epilogue:";
        "  autiasp                  # authenticate; poisoned prediction faults";
        "  ret";
      ]
  | `Fenced_retpoline ->
    String.concat "\n"
      [
        "  call __llvm_retpoline_r11";
        "__llvm_retpoline_r11:";
        "  callq jump";
        "loop: pause";
        "  lfence";
        "  jmp loop";
        "  nopl 0x0(%rax)";
        "jump: mov %r11, (%rsp)";
        "  notq (%rsp)";
        "  notq (%rsp)";
        "  lfence";
        "  retq";
      ]
