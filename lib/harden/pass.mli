(** The hardening pass (paper §4, §6): applies any combination of the
    transient defenses to every remaining indirect branch.

    The paper's retpoline/LVI stack:
    - Spectre V2 -> retpolines on indirect calls;
    - LVI -> LFENCE'd thunks on indirect calls and fenced returns;
    - Ret2spec -> return retpolines on every return instruction;
    - both forward defenses together -> the combined fenced retpoline;

    and the defense-diversity family (different cost/precision shapes,
    same PIBE front-end):
    - FineIBT-style landing pads (cheap per-branch check, set-based
      precision via the [Cfi] target-set oracle);
    - PAC-style return signing (per-return auth, no RSB refill needed,
      forged-signature attacks survive);
    - coarse single-label CFI (the frontier's cheap, weak end).

    Any defense enabled -> jump tables are re-lowered as branch ladders
    (LLVM's behaviour once retpolines/LVI are on; the CFI kinds need it
    so every indirect transfer goes through a checked site).

    Exemptions mirror the paper's findings (§8.6): inline-assembly
    indirect calls (the para-virt layer) cannot be converted, functions
    marked [is_asm] keep their jump tables, and [boot_only] functions do
    not need backward-edge protection. *)

open Pibe_ir

type defenses = {
  retpolines : bool;
  ret_retpolines : bool;
  lvi : bool;
  fineibt : bool;
  pac : bool;
  coarse_cfi : bool;
}

val no_defenses : defenses

val all_defenses : defenses
(** The paper's full stack (retpolines + ret-retpolines + LVI), keeping
    its historical name and output strings; the CFI/PAC kinds are
    alternative frontier points, not part of it. *)

val defenses_name : defenses -> string

val forward_kind : defenses -> Protection.forward
(** Combination precedence: the retpoline/LVI thunks subsume the
    check-based CFI kinds, and FineIBT subsumes the coarse label. *)

val backward_kind : defenses -> Protection.backward
(** Return retpolines (plain or fenced) subsume PAC signing. *)

type image = {
  prog : Program.t;
  defenses : defenses;
  rsb_refill : bool;
  fwd : (int, Protection.forward) Hashtbl.t;  (** per protected icall site *)
  bwd : (string, Protection.backward) Hashtbl.t;  (** per protected function *)
  cfi : Cfi.t option;
      (** target-set oracle, present iff the forward kind is CFI-based *)
  thunk_bytes : int;  (** shared out-of-line thunk code *)
  hardened_icall_sites : int;
  hardened_ret_sites : int;
}

val disable_jump_tables : Program.t -> Program.t
(** Re-lowers every jump-table switch outside assembly bodies as a branch
    ladder (LLVM's behaviour once retpolines/LVI are enabled).  [harden]
    applies this automatically when any defense is on; it is also
    registered as the standalone [no-jump-tables] pipeline pass.
    Idempotent. *)

val harden : ?rsb_refill:bool -> Program.t -> defenses -> image
(** [rsb_refill] (default false) additionally stuffs the RSB at every
    kernel entry — the cheap, partial Ret2spec mitigation deployed ad hoc
    in real kernels (paper §6.4); it is orthogonal to the per-branch
    defenses. *)

val fwd_protection : image -> Types.site -> Protection.forward
val bwd_protection : image -> string -> Protection.backward

val footprint : image -> Types.func -> int
(** Function code footprint including per-site hardening bytes, for the
    engine's i-cache. *)

val image_bytes : image -> int
(** Total text bytes: all function footprints plus shared thunks. *)

val engine_config : ?base:Pibe_cpu.Engine.config -> image -> Pibe_cpu.Engine.config
(** An engine configuration wired to this image's protections and
    footprints. *)
