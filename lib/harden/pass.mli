(** The hardening pass (paper §4, §6): applies any combination of the
    three transient defenses to every remaining indirect branch.

    - Spectre V2 -> retpolines on indirect calls;
    - LVI -> LFENCE'd thunks on indirect calls and fenced returns;
    - Ret2spec -> return retpolines on every return instruction;
    - both forward defenses together -> the combined fenced retpoline;
    - any defense enabled -> jump tables are re-lowered as branch ladders
      (LLVM's behaviour once retpolines/LVI are on).

    Exemptions mirror the paper's findings (§8.6): inline-assembly
    indirect calls (the para-virt layer) cannot be converted, functions
    marked [is_asm] keep their jump tables, and [boot_only] functions do
    not need backward-edge protection. *)

open Pibe_ir

type defenses = {
  retpolines : bool;
  ret_retpolines : bool;
  lvi : bool;
}

val no_defenses : defenses
val all_defenses : defenses
val defenses_name : defenses -> string

val forward_kind : defenses -> Protection.forward
val backward_kind : defenses -> Protection.backward

type image = {
  prog : Program.t;
  defenses : defenses;
  rsb_refill : bool;
  fwd : (int, Protection.forward) Hashtbl.t;  (** per protected icall site *)
  bwd : (string, Protection.backward) Hashtbl.t;  (** per protected function *)
  thunk_bytes : int;  (** shared out-of-line thunk code *)
  hardened_icall_sites : int;
  hardened_ret_sites : int;
}

val disable_jump_tables : Program.t -> Program.t
(** Re-lowers every jump-table switch outside assembly bodies as a branch
    ladder (LLVM's behaviour once retpolines/LVI are enabled).  [harden]
    applies this automatically when any defense is on; it is also
    registered as the standalone [no-jump-tables] pipeline pass.
    Idempotent. *)

val harden : ?rsb_refill:bool -> Program.t -> defenses -> image
(** [rsb_refill] (default false) additionally stuffs the RSB at every
    kernel entry — the cheap, partial Ret2spec mitigation deployed ad hoc
    in real kernels (paper §6.4); it is orthogonal to the per-branch
    defenses. *)

val fwd_protection : image -> Types.site -> Protection.forward
val bwd_protection : image -> string -> Protection.backward

val footprint : image -> Types.func -> int
(** Function code footprint including per-site hardening bytes, for the
    engine's i-cache. *)

val image_bytes : image -> int
(** Total text bytes: all function footprints plus shared thunks. *)

val engine_config : ?base:Pibe_cpu.Engine.config -> image -> Pibe_cpu.Engine.config
(** An engine configuration wired to this image's protections and
    footprints. *)
