module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Workload = Pibe_kernel.Workload
module Sim = Pibe_online.Sim

type params = {
  windows_per_phase : int;
  sim : Sim.config;
}

(* Six windows per phase: with hysteresis 2 the detector fires in the
   second window after a phase change, leaving four windows to amortize
   the patch downtime and show the recovered performance. *)
let default_params ~quick =
  if quick then
    {
      windows_per_phase = 6;
      sim = { Sim.default_config with Sim.requests_per_window = 60 };
    }
  else { windows_per_phase = 6; sim = Sim.default_config }

type variant = {
  v_name : string;
  v_spec : Pibe_pm.Spec.t;
  v_training : Pibe_profile.Profile.t;
  v_adaptive : bool;
}

(* Per-phase cycles (patch/downtime included), phases in first-seen order. *)
let phase_cycles (o : Sim.outcome) =
  List.fold_left
    (fun acc (w : Sim.window_record) ->
      let cycles = w.Sim.cycles + w.Sim.patch_cycles in
      match List.assoc_opt w.Sim.phase acc with
      | Some _ ->
        List.map
          (fun (p, v) -> if String.equal p w.Sim.phase then (p, v + cycles) else (p, v))
          acc
      | None -> acc @ [ (w.Sim.phase, cycles) ])
    [] o.Sim.windows

let run_with params env =
  let info = Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  let phases =
    List.map (fun p -> (p, params.windows_per_phase)) (Workload.standard_phases info)
  in
  let spec = Pipeline.spec_of_config (Exp_common.best_config Exp_common.all_defenses) in
  let lto_spec = Pipeline.spec_of_config Config.lto in
  (* shared prerequisites once, before the parallel fan-out *)
  let stale = Env.lmbench_profile env in
  let fresh = Sim.training_profile ~config:params.sim ~prog ~phases () in
  let variants =
    [
      { v_name = "LTO baseline"; v_spec = lto_spec; v_training = stale; v_adaptive = false };
      { v_name = "static-fresh"; v_spec = spec; v_training = fresh; v_adaptive = false };
      { v_name = "static-stale"; v_spec = spec; v_training = stale; v_adaptive = false };
      { v_name = "online-adaptive"; v_spec = spec; v_training = stale; v_adaptive = true };
    ]
  in
  let outcomes =
    Env.par_map env
      (fun v ->
        match
          Sim.run ~config:params.sim ~verify:(Env.verify env) ~adaptive:v.v_adaptive
            ~prog ~spec:v.v_spec ~training:v.v_training ~phases ()
        with
        | Ok o -> (v, o)
        | Error e -> invalid_arg (Printf.sprintf "Exp_online: %s: %s" v.v_name e))
      variants
  in
  let baseline, hardened =
    match outcomes with
    | (_, b) :: rest -> (b, rest)
    | [] -> assert false
  in
  let base_phases = phase_cycles baseline in
  let cmp =
    Tbl.create
      ~title:
        "Continuous profiling: phased deployment overhead vs LTO (all defenses, \
         patch downtime charged)"
      ~columns:("phase" :: List.map (fun (v, _) -> v.v_name) hardened)
  in
  List.iter
    (fun (phase, base) ->
      Tbl.add_row cmp
        (Tbl.Str phase
        :: List.map
             (fun (_, o) ->
               let c = List.assoc phase (phase_cycles o) in
               Exp_common.pct (Stats.overhead_pct ~baseline:(float_of_int base) (float_of_int c)))
             hardened))
    base_phases;
  Tbl.add_separator cmp;
  Tbl.add_row cmp
    (Tbl.Str "whole deployment"
    :: List.map
         (fun (_, o) ->
           Exp_common.pct
             (Stats.overhead_pct
                ~baseline:(float_of_int baseline.Sim.total_cycles)
                (float_of_int o.Sim.total_cycles)))
         hardened);
  Tbl.add_row cmp
    (Tbl.Str "rebuilds"
    :: List.map (fun (_, o) -> Tbl.Int o.Sim.rebuilds) hardened);
  Tbl.add_row cmp
    (Tbl.Str "patch cycles"
    :: List.map (fun (_, o) -> Tbl.Int o.Sim.total_patch_cycles) hardened);
  let online =
    match List.rev hardened with
    | (_, o) :: _ -> o
    | [] -> assert false
  in
  let trace =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Online drift trace (threshold %.2f, hysteresis %d, window %d, decay %.2f)"
           params.sim.Sim.drift_threshold params.sim.Sim.hysteresis
           params.sim.Sim.store_window params.sim.Sim.decay)
      ~columns:[ "window"; "phase"; "drift distance"; "action"; "patch cycles" ]
  in
  List.iter
    (fun (w : Sim.window_record) ->
      Tbl.add_row trace
        [
          Tbl.Int w.Sim.index;
          Tbl.Str w.Sim.phase;
          Tbl.Float w.Sim.distance;
          Tbl.Str (if w.Sim.fired then "re-optimize + patch" else "");
          (if w.Sim.patch_cycles > 0 then Tbl.Int w.Sim.patch_cycles else Tbl.Empty);
        ])
    online.Sim.windows;
  [ cmp; trace ]

let run env =
  run_with (default_params ~quick:(Env.settings env = Measure.quick_settings)) env
