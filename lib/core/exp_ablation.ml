module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Engine = Pibe_cpu.Engine
module Pass = Pibe_harden.Pass
module Profile = Pibe_profile.Profile

let d () = Exp_common.all_defenses

let suite env ~icache built =
  let config = Pass.engine_config built.Pipeline.image in
  let config = if icache then config else { config with Engine.icache_bytes = 0 } in
  let engine = Engine.create ~config built.Pipeline.image.Pass.prog in
  Measure.suite_latencies ~settings:(Env.settings env) engine (Env.ops env)

let geo_of_image env ?(icache = true) built =
  (* Compare against an LTO baseline measured under the same i-cache
     setting, so the ablation isolates the model itself. *)
  let base =
    if icache then Env.latencies env Config.lto
    else suite env ~icache:false (Env.build env Config.lto)
  in
  let lat = suite env ~icache built in
  Stats.geomean_overhead
    (List.map2 (fun (_, b) (_, x) -> Stats.overhead_pct ~baseline:b x) base lat)

(* Full optimization with the inliner's size rules disabled entirely. *)
let no_rules_build env =
  let info = Env.info env in
  let profile = Profile.copy (Env.lmbench_profile env) in
  let prog, _ =
    Pibe_opt.Icp.run info.Pibe_kernel.Gen.prog profile
      { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = 99.999 }
  in
  let prog, _ =
    Pibe_opt.Inliner.run prog profile
      {
        Pibe_opt.Inliner.budget_pct = 99.9999;
        rule2_threshold = max_int;
        rule3_threshold = max_int;
        lax_within_pct = None;
      }
  in
  Pibe_ir.Validate.check_exn prog;
  let image = Pass.harden prog (d ()) in
  {
    Pipeline.image;
    config = Exp_common.lto_with (d ());
    icp_stats = None;
    inline_stats = None;
    llvm_inline_stats = None;
    post_icp_profile = profile;
    provenance = Pibe_profile.Provenance.create ();
    pass_stats = [];
  }

(* ICP limited to one promoted target per site. *)
let top1_build env =
  let info = Env.info env in
  let profile = Profile.copy (Env.lmbench_profile env) in
  let prog, _ =
    Pibe_opt.Icp.run info.Pibe_kernel.Gen.prog profile
      { Pibe_opt.Icp.budget_pct = 99.999; max_targets = Some 1 }
  in
  Pibe_ir.Validate.check_exn prog;
  let image = Pass.harden prog Exp_common.retpolines_only in
  {
    Pipeline.image;
    config = Exp_common.lto_with Exp_common.retpolines_only;
    icp_stats = None;
    inline_stats = None;
    llvm_inline_stats = None;
    post_icp_profile = profile;
    provenance = Pibe_profile.Provenance.create ();
    pass_stats = [];
  }

let run env =
  let t =
    Tbl.create ~title:"Ablations (LMBench geomean overhead vs LTO baseline)"
      ~columns:[ "variant"; "overhead" ]
  in
  Env.warm env
    [
      Config.lto;
      Exp_common.best_config (d ());
      {
        Config.defenses = d ();
        opt = Config.Llvm_pgo { icp_budget = 99.999; inline_budget = 99.9999 };
      };
      Exp_common.icp_only ~budget:99.999 Exp_common.retpolines_only;
    ];
  let add label v = Tbl.add_row t [ Tbl.Str label; Exp_common.pct v ] in
  add "PIBE full (all defenses, lax)"
    (Env.geomean_overhead env ~baseline:Config.lto (Exp_common.best_config (d ())));
  add "inline order: LLVM bottom-up (all defenses)"
    (Env.geomean_overhead env ~baseline:Config.lto
       {
         Config.defenses = d ();
         opt = Config.Llvm_pgo { icp_budget = 99.999; inline_budget = 99.9999 };
       });
  add "size rules disabled entirely (all defenses)" (geo_of_image env (no_rules_build env));
  add "ICP unlimited targets (retpolines)"
    (Env.geomean_overhead env ~baseline:Config.lto
       (Exp_common.icp_only ~budget:99.999 Exp_common.retpolines_only));
  add "ICP top-1 target (retpolines)" (geo_of_image env (top1_build env));
  add "PIBE full, i-cache model off"
    (geo_of_image env ~icache:false (Env.build env (Exp_common.best_config (d ()))));
  add "size rules disabled, i-cache model off"
    (geo_of_image env ~icache:false (no_rules_build env));
  t
