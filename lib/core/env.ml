module Profile = Pibe_profile.Profile
module Rng = Pibe_util.Rng
module Stats = Pibe_util.Stats
module Pool = Pibe_util.Pool

(* Caches are guarded by [lock]; expensive steps (kernel generation,
   profiling, builds, measurement) run OUTSIDE the lock so independent
   cells proceed concurrently.  Two domains racing on the same cold key
   may both compute it — every step is deterministic (fixed seeds, own
   engine), so both results are identical and the second insert is a
   no-op.  [warm] pre-computes the shared prerequisites once to keep that
   duplication off the expensive paths. *)

type t = {
  scale : int;
  seed : int;
  msettings : Measure.settings;
  profile_iters : int;
  verify : bool;
  engine : Pibe_cpu.Engine.backend;
  pool : Pool.t;
  lock : Mutex.t;
  mutable kernel : Pibe_kernel.Gen.info option;
  mutable lmb_profile : Profile.t option;
  mutable ap_profile : Profile.t option;
  builds : (Config.t, Pipeline.built) Hashtbl.t;
  lat_cache : (Config.t, (string * float) list) Hashtbl.t;
}

let create ?(scale = 3) ?(seed = 42) ?(settings = Measure.default_settings)
    ?(profile_iters = 300) ?(jobs = 1) ?(verify = false) ?engine () =
  (* The engine knob is process-wide: engines are created deep inside
     measure/pipeline/online cells (including on worker domains), all of
     which follow [Engine.default_backend].  Explicitly choosing a
     backend here re-points that default; omitting it inherits it. *)
  (match engine with
  | Some b -> Pibe_cpu.Engine.set_default_backend b
  | None -> ());
  {
    scale;
    seed;
    msettings = settings;
    profile_iters;
    verify;
    engine =
      (match engine with
      | Some b -> b
      | None -> Pibe_cpu.Engine.default_backend ());
    pool = Pool.create ~jobs ();
    lock = Mutex.create ();
    kernel = None;
    lmb_profile = None;
    ap_profile = None;
    builds = Hashtbl.create 16;
    lat_cache = Hashtbl.create 16;
  }

let quick ?(jobs = 1) ?(verify = true) ?engine () =
  create ~scale:1 ~settings:Measure.quick_settings ~profile_iters:60 ~jobs ~verify
    ?engine ()

let pool t = t.pool
let verify t = t.verify
let engine_backend t = t.engine
let jobs t = Pool.jobs t.pool

let par_map t f xs =
  let args =
    if Pibe_trace.Trace.enabled () then
      [ ("items", Pibe_trace.Trace.Int (List.length xs)) ]
    else []
  in
  Pibe_trace.Trace.span ~cat:"sched" "env:par_map" ~args (fun () -> Pool.map t.pool f xs)

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let info t =
  match locked t (fun () -> t.kernel) with
  | Some i -> i
  | None ->
    let i = Pibe_kernel.Gen.generate { Pibe_kernel.Ctx.seed = t.seed; scale = t.scale } in
    locked t (fun () ->
        match t.kernel with
        | Some i -> i
        | None ->
          t.kernel <- Some i;
          i)

let ops t = Pibe_kernel.Workload.lmbench (info t)
let settings t = t.msettings
let profile_iters t = t.profile_iters

let lmbench_profile t =
  match locked t (fun () -> t.lmb_profile) with
  | Some p -> p
  | None ->
    let i = info t in
    let p =
      Pipeline.profile i.Pibe_kernel.Gen.prog ~run:(fun engine ->
          let rng = Rng.create 11 in
          List.iter
            (fun (op : Pibe_kernel.Workload.op) ->
              for _ = 1 to t.profile_iters do
                op.Pibe_kernel.Workload.run engine rng
              done)
            (ops t))
    in
    locked t (fun () ->
        match t.lmb_profile with
        | Some p -> p
        | None ->
          t.lmb_profile <- Some p;
          p)

let apache_profile t =
  match locked t (fun () -> t.ap_profile) with
  | Some p -> p
  | None ->
    let i = info t in
    let mix = Pibe_kernel.Workload.apache i in
    let p =
      Pipeline.profile i.Pibe_kernel.Gen.prog ~run:(fun engine ->
          let rng = Rng.create 13 in
          for _ = 1 to t.profile_iters * 4 do
            mix.Pibe_kernel.Workload.request engine rng
          done)
    in
    locked t (fun () ->
        match t.ap_profile with
        | Some p -> p
        | None ->
          t.ap_profile <- Some p;
          p)

let build t config =
  match locked t (fun () -> Hashtbl.find_opt t.builds config) with
  | Some b -> b
  | None ->
    let i = info t in
    let profile = lmbench_profile t in
    let b = Pipeline.build ~verify:t.verify i.Pibe_kernel.Gen.prog profile config in
    locked t (fun () ->
        match Hashtbl.find_opt t.builds config with
        | Some b -> b
        | None ->
          Hashtbl.replace t.builds config b;
          b)

let build_with_profile t ~profile config =
  let i = info t in
  Pipeline.build ~verify:t.verify i.Pibe_kernel.Gen.prog profile config

let latencies t config =
  match locked t (fun () -> Hashtbl.find_opt t.lat_cache config) with
  | Some l -> l
  | None ->
    let b = build t config in
    let engine = Pipeline.engine b in
    let l = Measure.suite_latencies ~settings:t.msettings engine (ops t) in
    locked t (fun () ->
        match Hashtbl.find_opt t.lat_cache config with
        | Some l -> l
        | None ->
          Hashtbl.replace t.lat_cache config l;
          l)

let distinct configs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.replace seen c ();
        true
      end)
    configs

let warm_with t ~mem step configs =
  let cold =
    List.filter (fun c -> not (locked t (fun () -> mem t c))) (distinct configs)
  in
  if cold <> [] then begin
    (* shared prerequisites first, exactly once *)
    ignore (info t);
    ignore (lmbench_profile t);
    (* distinct cold cells, each with its own engine, in parallel *)
    Pool.iter t.pool (fun c -> ignore (step t c)) cold
  end

let warm t configs =
  warm_with t ~mem:(fun t c -> Hashtbl.mem t.lat_cache c) latencies configs

let warm_builds t configs =
  warm_with t ~mem:(fun t c -> Hashtbl.mem t.builds c) build configs

let overheads t ~baseline config =
  warm t [ baseline; config ];
  let base = latencies t baseline in
  let v = latencies t config in
  List.map2
    (fun (name, b) (name', x) ->
      assert (String.equal name name');
      (name, Stats.overhead_pct ~baseline:b x))
    base v

let geomean_overhead t ~baseline config =
  Stats.geomean_overhead (List.map snd (overheads t ~baseline config))
