module Tbl = Pibe_util.Tbl
module Attack = Pibe_cpu.Attack
module Speculation = Pibe_cpu.Speculation
module Pass = Pibe_harden.Pass
module Gen = Pibe_kernel.Gen

(* The frontier's defense sets, cheap/weak to expensive/strong: the new
   CFI/PAC family against the paper's retpoline stack.  Each is measured
   under plain LTO and under the PIBE PGO front-end (ICP + profile-guided
   inlining first, hardening on what survives). *)
let defense_sets =
  [
    ("none", Pass.no_defenses);
    ("coarse-cfi", Exp_common.coarse_cfi_only);
    ("fineibt", Exp_common.fineibt_only);
    ("pac-ret", Exp_common.pac_only);
    ("fineibt+pac-ret", Exp_common.fineibt_pac);
    ("retp+ret-retp", { Pass.no_defenses with Pass.retpolines = true; ret_retpolines = true });
    ("all-defenses", Exp_common.all_defenses);
  ]

let drill_names = [ "v2"; "v2-pad"; "r2s"; "pac-forge"; "lvi" ]

(* The per-image security ledger: five drills, each on a fresh engine so
   one drill's predictor pollution cannot bleed into the next, each
   reporting whether its gadget was transiently entered. *)
let ledger info (built : Pipeline.built) =
  let entry = info.Gen.entry in
  let args = [ Gen.nr info "read"; 0; 5 ] in
  let gadget = info.Gen.gadget in
  let site =
    Option.value
      ~default:info.Gen.victim_icall_site
      (Exp_common.victim_site_in built.Pipeline.image.Pass.prog info.Gen.victim_icall_site)
  in
  let outcome drill =
    let e = Exp_common.drill_engine built in
    (drill e).Attack.gadget_reached
  in
  [
    ("v2", outcome (fun e -> Attack.spectre_v2 e ~victim_site:site ~gadget ~entry ~args));
    ( "v2-pad",
      outcome (fun e ->
          Attack.spectre_v2_valid_pad e ~victim_site:site
            ~valid_gadget:info.Gen.valid_gadget ~entry ~args) );
    ( "r2s",
      outcome (fun e ->
          Attack.ret2spec e ~scenario:Speculation.User_pollution ~gadget ~entry ~args) );
    ("pac-forge", outcome (fun e -> Attack.pac_forgery e ~gadget ~entry ~args));
    ( "lvi",
      outcome (fun e ->
          Attack.lvi e ~poisoned_addr:info.Gen.victim_ops_addr
            ~injected_fptr:info.Gen.gadget_fptr ~entry ~args) );
  ]

let surface reached =
  let hit = List.filter snd reached in
  let n = List.length hit in
  let label =
    if n = 0 then "-" else String.concat "," (List.map fst hit)
  in
  (Printf.sprintf "%d/%d" n (List.length reached), label)

let run env =
  let info = Env.info env in
  let t =
    Tbl.create
      ~title:
        "Frontier: geomean overhead vs surviving attack surface, per defense set, LTO vs \
         PIBE-PGO"
      ~columns:[ "defense"; "front-end"; "overhead"; "surface"; "surviving attacks" ]
  in
  let configs =
    List.concat_map
      (fun (_, d) ->
        if d = Pass.no_defenses then []
        else [ Exp_common.lto_with d; Exp_common.best_config d ])
      defense_sets
  in
  Env.warm env (Config.lto :: Config.pibe_baseline :: configs);
  List.iter
    (fun (label, d) ->
      (* The ledger is a property of the defense set, so it is taken on
         the unoptimized image and shared by both rows: the PGO front-end
         may remove the drilled branch outright (the security experiment
         shows that), but it must never weaken what a defense blocks. *)
      let n, hit = surface (ledger info (Env.build env (Exp_common.lto_with d))) in
      let rows =
        if d = Pass.no_defenses then
          [ ("LTO", Config.lto, 0.0); ("PIBE-PGO", Config.pibe_baseline, nan) ]
        else
          [
            ("LTO", Exp_common.lto_with d, nan);
            ("PIBE-PGO", Exp_common.best_config d, nan);
          ]
      in
      List.iter
        (fun (fe, config, fixed_ov) ->
          let ov =
            if Float.is_nan fixed_ov then
              Env.geomean_overhead env ~baseline:Config.lto config
            else fixed_ov
          in
          Tbl.add_row t
            [ Tbl.Str label; Tbl.Str fe; Exp_common.pct ov; Tbl.Str n; Tbl.Str hit ])
        rows)
    defense_sets;
  t
