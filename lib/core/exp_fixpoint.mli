(** The [fixpoint] experiment: iterative build -> profile-on-hardened ->
    rebuild stability.

    Iteration 0 builds with the pristine-kernel training profile; each
    later iteration re-profiles the hardened, inlined image it just built
    (via {!Pipeline.profile_built}, lifting through the recorded
    provenance) and rebuilds on the lifted profile.  The table reports,
    per iteration, the optimization activity (inlined sites, promoted
    targets), the lift-loss accounting (dropped pairs, recovered weight,
    unrecovered instances), the {!Pibe_online.Drift} distance between the
    training profile and what was collected on its own image, and the
    geomean overhead vs pristine LTO.  A well-behaved lift makes the loop
    converge: drift collapses after the first iteration and the overhead
    stays flat instead of oscillating — the Go-PGO "iterative stability"
    property.

    Sequential by construction, so trivially byte-identical at any
    [--jobs]. *)

val run : Env.t -> Pibe_util.Tbl.t list
