(** Fleet-scale online optimization experiment (ROADMAP follow-up to the
    single-instance online loop; {!Pibe_online.Fleet}).

    Simulates [instances] kernel deployments with heterogeneous,
    drifting workload mixes, three variants facing byte-identical
    per-instance traffic:

    - {e LTO baseline}: per-instance cycle baselines (no defenses);
    - {e static-stale}: all defenses, trained on the stale LMBench
      profile, never re-optimized;
    - {e fleet-adaptive}: same starting image, plus the sharded
      aggregator and the staged (canary-gated) rollout controller.

    Reports the {e distribution} of per-instance overhead (p50/p90/p99
    via {!Pibe_util.Stats.percentile} — a fleet is judged by its tail,
    not its geomean), the staged-rollout log, and the aggregator's
    batched-merge counters. *)

type params = {
  fleet : Pibe_online.Fleet.config;
}

val default_params : quick:bool -> params
(** Quick: 6 instances, 6 windows, 30 requests/window.  Full: 16
    instances, 9 windows, 60 requests/window.  Everything else is
    {!Pibe_online.Fleet.default_config}. *)

val run_with : params -> Env.t -> Pibe_util.Tbl.t list
val run : Env.t -> Pibe_util.Tbl.t list
