(** The [stale] experiment: how much of PIBE's profile-guided benefit
    survives a training profile that is k kernel releases old.

    For each k in 0..4 the base kernel is evolved k releases (see
    {!Pibe_kernel.Evolve}), then the {e evolved} kernel is built three
    ways — no profile, a fresh profile collected on the evolved kernel
    itself, and the base kernel's profile matched through
    {!Pibe_profile.Profile.match_to} — all with every defense enabled.
    The headline column is benefit retained:
    [(none - stale) / (none - fresh)].  Fresh-profile benefit should
    degrade monotonically with k while a 2-release-stale profile still
    recovers the majority of it, the Go-PGO production observation.

    Deterministic: evolution seeds are fixed and the per-k work is
    independent, so output is byte-identical at any [--jobs]. *)

val run : Env.t -> Pibe_util.Tbl.t list

val overheads : Env.t -> k:int -> float * float * float
(** [(no_profile, fresh, stale)] geomean overheads vs the same-release
    LTO baseline for a kernel evolved [k] releases — the raw cells of
    one table row, exposed for {!Report}. *)
