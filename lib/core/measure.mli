(** The measurement harness: median-of-rounds latency and throughput, as
    in the paper's methodology (§8: "each measurement was performed at
    least 11 times, and we report the median").

    When {!Pibe_trace.Trace} collection is on, every measured op/mix/entry
    gets a ["measure"]-category span plus one cumulative
    {!Pibe_cpu.Engine.trace_counters} sample (cycles, branch-predictor and
    i-cache hits/misses, speculation events) — all simulated quantities,
    so trace content stays deterministic.  Tracing never perturbs the
    measured cycle counts (pinned by [test/test_trace.ml]). *)

type settings = {
  warmup : int;  (** iterations run before measuring (caches/predictors warm) *)
  iters : int;  (** iterations per measurement round *)
  rounds : int;  (** rounds; the median is reported *)
  rng_seed : int;
}

val default_settings : settings
(** warmup 40, iters 120, rounds 5, seed 7. *)

val quick_settings : settings
(** A smaller configuration for unit tests. *)

val op_latency :
  ?settings:settings -> Pibe_cpu.Engine.t -> Pibe_kernel.Workload.op -> float
(** Median simulated cycles per iteration of the micro-op. *)

val suite_latencies :
  ?settings:settings ->
  Pibe_cpu.Engine.t ->
  Pibe_kernel.Workload.op list ->
  (string * float) list
(** Latency of every op on one machine, in op order. *)

val mix_kernel_cycles :
  ?settings:settings -> Pibe_cpu.Engine.t -> Pibe_kernel.Workload.mix -> float
(** Median kernel cycles per application request. *)

val throughput :
  kernel_cycles:float -> user_cycles:float -> float
(** Requests per million cycles given fixed userspace work per request. *)

val entry_cycles :
  ?settings:settings -> Pibe_cpu.Engine.t -> entry:string -> args:int list -> float
(** Median cycles of one call to an arbitrary entry point (used by the
    Table-1 micro and SPEC harnesses). *)
