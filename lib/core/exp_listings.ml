let render () =
  String.concat "\n\n"
    (List.map
       (fun (title, key) ->
         Printf.sprintf "%s:\n%s" title (Pibe_harden.Thunks.listing key))
       [
         ("Listing 4: retpoline", `Retpoline);
         ("Listing 5: LVI-CFI forward thunk", `Lvi_forward);
         ("Listing 6: LVI-CFI backward sequence", `Lvi_backward);
         ("Listing 7: LVI-protected (fenced) retpoline", `Fenced_retpoline);
         ("Listing 8: FineIBT landing pad + hash check", `Fineibt);
         ("Listing 9: coarse single-label CFI", `Coarse_cfi);
         ("Listing 10: PAC return signing", `Pac_ret);
       ])
