module Pass = Pibe_harden.Pass
module Tbl = Pibe_util.Tbl

let retpolines_only = { Pass.no_defenses with Pass.retpolines = true }
let ret_retpolines_only = { Pass.no_defenses with Pass.ret_retpolines = true }
let lvi_only = { Pass.no_defenses with Pass.lvi = true }
let fineibt_only = { Pass.no_defenses with Pass.fineibt = true }
let pac_only = { Pass.no_defenses with Pass.pac = true }
let coarse_cfi_only = { Pass.no_defenses with Pass.coarse_cfi = true }
let fineibt_pac = { Pass.no_defenses with Pass.fineibt = true; pac = true }
let all_defenses = Pass.all_defenses
let lto_with defenses = { Config.defenses; opt = Config.No_opt }

let full_opt ?(lax = false) ?(icp = 99.999) ~inline defenses =
  { Config.defenses; opt = Config.Full { icp_budget = icp; inline_budget = inline; lax } }

let icp_only ~budget defenses = { Config.defenses; opt = Config.Icp_only { budget } }

let best_config defenses =
  if defenses = retpolines_only then icp_only ~budget:99.999 defenses
  else full_opt ~lax:true ~inline:99.9999 defenses

let pct v = Tbl.Pct v
let cycles v = Tbl.Float v

(* --- shared attack-drill helpers (Exp_security, Exp_frontier) --- *)

(* After ICP/inlining the victim site has been rewritten or cloned; the
   fallback / clone inherits the origin, so we can find the surviving
   surface.  Preferring the highest id picks the clone on the hot
   (inlined) path rather than the dead original body. *)
let site_by_origin ~sites_of prog origin =
  let found = ref None in
  Pibe_ir.Program.iter_funcs prog (fun f ->
      List.iter
        (fun (s : Pibe_ir.Types.site) ->
          if s.Pibe_ir.Types.site_origin = origin then
            match !found with
            | Some best when best >= s.Pibe_ir.Types.site_id -> ()
            | _ -> found := Some s.Pibe_ir.Types.site_id)
        (sites_of f));
  !found

let victim_site_in prog origin = site_by_origin ~sites_of:Pibe_ir.Func.icall_sites prog origin
let asm_site_in prog origin = site_by_origin ~sites_of:Pibe_ir.Func.asm_icall_sites prog origin

let drill_engine (built : Pipeline.built) =
  let spec = Pibe_cpu.Speculation.create () in
  let config =
    {
      (Pass.engine_config built.Pipeline.image) with
      Pibe_cpu.Engine.speculation = Some spec;
    }
  in
  Pibe_cpu.Engine.create ~config built.Pipeline.image.Pass.prog

let verdict (outcome : Pibe_cpu.Attack.outcome) =
  if outcome.Pibe_cpu.Attack.gadget_reached then "GADGET REACHED" else "blocked"
