(** Online extension experiment: static-fresh vs static-stale vs
    online-adaptive over a phased (LMBench -> Apache -> DBench)
    deployment, reported like the paper's §8.4 robustness table.

    All four variants (the LTO baseline included) replay byte-identical
    seeded traffic through {!Pibe_online.Sim}; the comparison charges the
    online variant's re-optimization patch/downtime cycles against it.
    Variants run in parallel under the environment's pool and the output
    is identical at any job count. *)

type params = {
  windows_per_phase : int;
  sim : Pibe_online.Sim.config;
}

val default_params : quick:bool -> params

val run_with : params -> Env.t -> Pibe_util.Tbl.t list
(** The comparison table and the online variant's drift trace. *)

val run : Env.t -> Pibe_util.Tbl.t list
(** [run_with] at the defaults (quick sizing when the environment uses
    the quick measurement settings). *)
