module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Rng = Pibe_util.Rng
module Profile = Pibe_profile.Profile
module Workload = Pibe_kernel.Workload
module Evolve = Pibe_kernel.Evolve

(* The seed driving the release mutations; fixed so the k-release kernels
   are the same in every run and at any --jobs. *)
let evolve_seed = 77

let max_k = 4

type row = {
  k : int;
  ev : Evolve.stats list;
  mstats : Profile.match_stats;
  ov_none : float;
  ov_fresh : float;
  ov_stale : float;
}

let geomean_vs ~baseline latencies =
  Stats.geomean_overhead
    (List.map2
       (fun (name, b) (name', x) ->
         assert (String.equal name name');
         Stats.overhead_pct ~baseline:b x)
       baseline latencies)

let measure env built ops =
  Measure.suite_latencies ~settings:(Env.settings env) (Pipeline.engine built) ops

(* Fresh profile of an evolved kernel, collected exactly the way
   [Env.lmbench_profile] collects the base kernel's. *)
let fresh_profile env (info : Pibe_kernel.Gen.info) ops =
  Pipeline.profile info.Pibe_kernel.Gen.prog ~run:(fun engine ->
      let rng = Rng.create 11 in
      List.iter
        (fun (op : Workload.op) ->
          for _ = 1 to Env.profile_iters env do
            op.Workload.run engine rng
          done)
        ops)

let one_release env base k =
  let info, ev = Evolve.evolve ~seed:evolve_seed ~k base in
  let prog = info.Pibe_kernel.Gen.prog in
  let ops = Workload.lmbench info in
  let fresh = fresh_profile env info ops in
  let stale, mstats = Profile.match_to (Env.lmbench_profile env) prog in
  let cfg = Exp_common.best_config Exp_common.all_defenses in
  let build profile = Pipeline.build ~verify:(Env.verify env) prog profile cfg in
  let lto =
    Pipeline.build ~verify:(Env.verify env) prog fresh Config.lto
  in
  let base_lat = measure env lto ops in
  let ov profile = geomean_vs ~baseline:base_lat (measure env (build profile) ops) in
  {
    k;
    ev;
    mstats;
    ov_none = ov (Profile.create ());
    ov_fresh = ov fresh;
    ov_stale = ov stale;
  }

let kept_pct (m : Profile.match_stats) =
  let kept = m.Profile.direct_kept + m.Profile.indirect_kept + m.Profile.entries_kept in
  let dropped =
    m.Profile.direct_dropped + m.Profile.indirect_dropped + m.Profile.entries_dropped
  in
  if kept + dropped = 0 then 100.0
  else 100.0 *. float_of_int kept /. float_of_int (kept + dropped)

let overheads env ~k =
  let r = one_release env (Env.info env) k in
  (r.ov_none, r.ov_fresh, r.ov_stale)

let run env =
  (* shared prerequisites once, before the parallel fan-out *)
  let base = Env.info env in
  ignore (Env.lmbench_profile env);
  let rows =
    Env.par_map env (one_release env base) (List.init (max_k + 1) Fun.id)
  in
  let t =
    Tbl.create
      ~title:
        "Stale-profile benefit: k-releases-stale training profile vs fresh and \
         no-profile (all defenses, geomean overhead vs same-release LTO)"
      ~columns:
        [
          "releases stale (k)";
          "profile weight kept";
          "no profile";
          "fresh profile";
          "stale profile";
          "benefit retained";
        ]
  in
  List.iter
    (fun r ->
      let retained =
        if r.ov_none -. r.ov_fresh <= 0.0 then 100.0
        else 100.0 *. (r.ov_none -. r.ov_stale) /. (r.ov_none -. r.ov_fresh)
      in
      Tbl.add_row t
        [
          Tbl.Int r.k;
          Exp_common.pct (kept_pct r.mstats);
          Exp_common.pct r.ov_none;
          Exp_common.pct r.ov_fresh;
          Exp_common.pct r.ov_stale;
          Exp_common.pct retained;
        ])
    rows;
  let churn =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Release churn per step (seed %d): functions added/removed/resized, call \
            sites re-identified" evolve_seed)
      ~columns:[ "release"; "added"; "removed"; "resized"; "reshuffled funcs"; "renamed sites" ]
  in
  (match List.rev rows with
  | last :: _ ->
    List.iter
      (fun (s : Evolve.stats) ->
        Tbl.add_row churn
          [
            Tbl.Int s.Evolve.release;
            Tbl.Int s.Evolve.added;
            Tbl.Int s.Evolve.removed;
            Tbl.Int s.Evolve.resized;
            Tbl.Int s.Evolve.reshuffled_funcs;
            Tbl.Int s.Evolve.renamed_sites;
          ])
      last.ev
  | [] -> ());
  [ t; churn ]
