module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Profile = Pibe_profile.Profile
module Budget = Pibe_opt.Budget
module Program = Pibe_ir.Program
module Func = Pibe_ir.Func

(* Candidate sets at a budget, as (site-or-pair identifier, weight). *)
let icp_candidates prog profile ~budget =
  let pairs =
    List.rev
      (Program.fold_funcs prog ~init:[] ~f:(fun acc f ->
           List.fold_left
             (fun acc (site : Pibe_ir.Types.site) ->
               List.fold_left
                 (fun acc (target, count) ->
                   (((site.Pibe_ir.Types.site_origin, target) : int * string), count) :: acc)
                 acc
                 (Profile.value_profile profile ~origin:site.Pibe_ir.Types.site_origin))
             acc (Func.icall_sites f)))
  in
  (Budget.select ~budget_pct:budget pairs).Budget.selected

let inline_candidates prog profile ~budget =
  let sites =
    List.rev
      (Program.fold_funcs prog ~init:[] ~f:(fun acc f ->
           List.fold_left
             (fun acc ((site : Pibe_ir.Types.site), _) ->
               (site.Pibe_ir.Types.site_origin, Profile.site_weight profile site) :: acc)
             acc (Func.call_sites f)))
  in
  (Budget.select ~budget_pct:budget sites).Budget.selected

let shared_weight_pct selected_a selected_b =
  let in_b = Hashtbl.create 256 in
  List.iter (fun (key, _) -> Hashtbl.replace in_b key ()) selected_b;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 selected_a in
  let shared =
    List.fold_left
      (fun acc (key, w) -> if Hashtbl.mem in_b key then acc + w else acc)
      0 selected_a
  in
  Stats.ratio_pct ~num:shared ~den:(max 1 total)

let run env =
  let info = Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  (* the two training runs are independent; profile them concurrently *)
  (match
     Env.par_map env
       (fun p -> p env)
       [ Env.lmbench_profile; Env.apache_profile ]
   with
  | [ _; _ ] -> ()
  | _ -> assert false);
  let lmb = Env.lmbench_profile env in
  let apache = Env.apache_profile env in
  let d = Exp_common.all_defenses in
  Env.warm env
    [
      Config.lto;
      Exp_common.best_config d;
      Exp_common.lto_with d;
      {
        Config.defenses = d;
        opt = Config.Llvm_pgo { icp_budget = 99.999; inline_budget = 99.9999 };
      };
    ];
  let overlap =
    Tbl.create ~title:"Workload overlap at the 99% budget (LMBench vs ApacheBench)"
      ~columns:[ "candidate kind"; "shared weight" ]
  in
  Tbl.add_row overlap
    [
      Tbl.Str "indirect call promotion";
      Exp_common.pct
        (shared_weight_pct
           (icp_candidates prog lmb ~budget:99.0)
           (icp_candidates prog apache ~budget:99.0));
    ];
  Tbl.add_row overlap
    [
      Tbl.Str "inlining";
      Exp_common.pct
        (shared_weight_pct
           (inline_candidates prog lmb ~budget:99.0)
           (inline_candidates prog apache ~budget:99.0));
    ];
  (* LMBench overhead of the hardened kernel under different trainings. *)
  let d = Exp_common.all_defenses in
  let lat_of built =
    let engine = Pipeline.engine built in
    Measure.suite_latencies ~settings:(Env.settings env) engine (Env.ops env)
  in
  let geo latencies =
    let base = Env.latencies env Config.lto in
    Stats.geomean_overhead
      (List.map2
         (fun (_, b) (_, x) -> Stats.overhead_pct ~baseline:b x)
         base latencies)
  in
  let matched = Env.geomean_overhead env ~baseline:Config.lto (Exp_common.best_config d) in
  let apache_trained =
    geo (lat_of (Env.build_with_profile env ~profile:apache (Exp_common.best_config d)))
  in
  let llvm_inliner =
    geo
      (lat_of
         (Env.build env
            {
              Config.defenses = d;
              opt = Config.Llvm_pgo { icp_budget = 99.999; inline_budget = 99.9999 };
            }))
  in
  let unopt = Env.geomean_overhead env ~baseline:Config.lto (Exp_common.lto_with d) in
  let t =
    Tbl.create
      ~title:"Robustness: LMBench geomean overhead (all defenses) per training strategy"
      ~columns:[ "training"; "geomean overhead" ]
  in
  Tbl.add_row t [ Tbl.Str "matched profile (LMBench)"; Exp_common.pct matched ];
  Tbl.add_row t [ Tbl.Str "mismatched profile (ApacheBench)"; Exp_common.pct apache_trained ];
  Tbl.add_row t [ Tbl.Str "default LLVM inliner (LMBench)"; Exp_common.pct llvm_inliner ];
  Tbl.add_row t [ Tbl.Str "no optimization"; Exp_common.pct unopt ];
  (overlap, t)
