module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module W = Pibe_kernel.Workload

let defense_rows =
  [
    ("w/retpolines", Exp_common.retpolines_only);
    ("w/ret-retpolines", Exp_common.ret_retpolines_only);
    ("w/LVI-CFI", Exp_common.lvi_only);
    ("w/all-defenses", Exp_common.all_defenses);
  ]

let mix_cycles env config mix =
  let built = Env.build env config in
  let engine = Pipeline.engine built in
  Measure.mix_kernel_cycles ~settings:(Env.settings env) engine mix

let run env =
  let info = Env.info env in
  let t =
    Tbl.create
      ~title:"Table 7: macro-benchmark throughput (requests per Mcycle; % vs vanilla)"
      ~columns:[ "benchmark"; "configuration"; "vanilla"; "no optimization"; "PIBE" ]
  in
  let mixes = [ W.nginx info; W.apache info; W.dbench info ] in
  let configs =
    Config.lto
    :: List.concat_map
         (fun (_, d) -> [ Exp_common.lto_with d; Exp_common.best_config d ])
         defense_rows
  in
  (* build every image once, then measure all (mix, config) cells in
     parallel — each cell runs on its own engine *)
  Env.warm_builds env configs;
  let cells = List.concat_map (fun mix -> List.map (fun c -> (mix, c)) configs) mixes in
  let measured = Env.par_map env (fun (mix, c) -> mix_cycles env c mix) cells in
  let table = Hashtbl.create 64 in
  List.iter2
    (fun (mix, c) cycles -> Hashtbl.replace table (mix.W.mix_name, c) cycles)
    cells measured;
  let mix_cycles env config mix =
    match Hashtbl.find_opt table (mix.W.mix_name, config) with
    | Some cycles -> cycles
    | None -> mix_cycles env config mix
  in
  List.iter
    (fun mix ->
      let base_kernel = mix_cycles env Config.lto mix in
      let user = mix.W.user_ratio *. base_kernel in
      let base_tp = Measure.throughput ~kernel_cycles:base_kernel ~user_cycles:user in
      List.iteri
        (fun i (label, defenses) ->
          let unopt = mix_cycles env (Exp_common.lto_with defenses) mix in
          let opt = mix_cycles env (Exp_common.best_config defenses) mix in
          let unopt_tp = Measure.throughput ~kernel_cycles:unopt ~user_cycles:user in
          let opt_tp = Measure.throughput ~kernel_cycles:opt ~user_cycles:user in
          Tbl.add_row t
            [
              Tbl.Str (if i = 0 then mix.W.mix_name else "");
              Tbl.Str label;
              (if i = 0 then Tbl.Float base_tp else Tbl.Empty);
              Exp_common.pct (Stats.throughput_delta_pct ~baseline:base_tp unopt_tp);
              Exp_common.pct (Stats.throughput_delta_pct ~baseline:base_tp opt_tp);
            ])
        defense_rows;
      Tbl.add_separator t)
    mixes;
  t
