(** Shared vocabulary for the experiment modules: the paper's defense
    sets, standard configurations, and formatting helpers. *)

val retpolines_only : Pibe_harden.Pass.defenses
val ret_retpolines_only : Pibe_harden.Pass.defenses
val lvi_only : Pibe_harden.Pass.defenses

val fineibt_only : Pibe_harden.Pass.defenses
(** FineIBT landing pads on forward edges, returns bare. *)

val pac_only : Pibe_harden.Pass.defenses
(** PAC return signing only. *)

val coarse_cfi_only : Pibe_harden.Pass.defenses
val fineibt_pac : Pibe_harden.Pass.defenses
(** The FineIBT + PAC pairing real arm64/x86 kernels ship. *)

val all_defenses : Pibe_harden.Pass.defenses

val lto_with : Pibe_harden.Pass.defenses -> Config.t
(** No optimization, given defenses. *)

val full_opt : ?lax:bool -> ?icp:float -> inline:float -> Pibe_harden.Pass.defenses -> Config.t
(** ICP (default 99.999%) + PIBE inlining at the given budget. *)

val icp_only : budget:float -> Pibe_harden.Pass.defenses -> Config.t

val best_config : Pibe_harden.Pass.defenses -> Config.t
(** The per-defense optimal configuration the paper selects in Table 6:
    ICP only for retpolines, full lax optimization otherwise. *)

val pct : float -> Pibe_util.Tbl.cell
val cycles : float -> Pibe_util.Tbl.cell

(** Shared helpers for the attack-drill experiments ([Exp_security],
    [Exp_frontier]). *)

val victim_site_in : Pibe_ir.Program.t -> int -> int option
(** The surviving site whose origin is the given pre-optimization site id
    (the hot clone when ICP/inlining duplicated it), among icall sites. *)

val asm_site_in : Pibe_ir.Program.t -> int -> int option
(** Same, among inline-assembly icall sites. *)

val drill_engine : Pipeline.built -> Pibe_cpu.Engine.t
(** A fresh engine on the built image with speculation drill state armed
    and the image's protections installed. *)

val verdict : Pibe_cpu.Attack.outcome -> string
(** ["GADGET REACHED"] / ["blocked"]. *)
