module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats

let configurations =
  let d = Exp_common.all_defenses in
  [
    ("no opt", Exp_common.lto_with d);
    ("+icp(99.999%)", Exp_common.icp_only ~budget:99.999 d);
    ("+inl(99%)", Exp_common.full_opt ~icp:99.999 ~inline:99.0 d);
    ("+inl(99.9%)", Exp_common.full_opt ~icp:99.999 ~inline:99.9 d);
    ("+inl(99.9999%)", Exp_common.full_opt ~icp:99.999 ~inline:99.9999 d);
    ("lax heuristics", Exp_common.full_opt ~icp:99.999 ~inline:99.9999 ~lax:true d);
  ]

let run env =
  let t =
    Tbl.create ~title:"Table 5: overhead with all defenses enabled, by optimization level"
      ~columns:("test" :: List.map fst configurations)
  in
  Env.warm env (Config.lto :: List.map snd configurations);
  let per_config = List.map (fun (_, c) -> Env.overheads env ~baseline:Config.lto c) configurations in
  let names = List.map fst (List.hd per_config) in
  List.iter
    (fun op ->
      Tbl.add_row t
        (Tbl.Str op
        :: List.map (fun column -> Exp_common.pct (List.assoc op column)) per_config))
    names;
  Tbl.add_separator t;
  Tbl.add_row t
    (Tbl.Str "Geometric Mean"
    :: List.map
         (fun column -> Exp_common.pct (Stats.geomean_overhead (List.map snd column)))
         per_config);
  t
