module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats

(* The paper reports microseconds on a 3.7 GHz part; we print both the raw
   simulated cycles and their microsecond equivalent at that clock. *)
let ghz = 3.7
let us_of_cycles c = c /. (ghz *. 1000.0)

let run env =
  let t =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Table 2: LTO vs PIBE-PGO baselines (simulated cycles; us at %.1f GHz)" ghz)
      ~columns:[ "test"; "LTO cycles"; "LTO us"; "PIBE cycles"; "PIBE us"; "overhead" ]
  in
  Env.warm env [ Config.lto; Config.pibe_baseline ];
  let lto = Env.latencies env Config.lto in
  let pibe = Env.latencies env Config.pibe_baseline in
  let overheads =
    List.map2
      (fun (name, b) (_, x) -> (name, b, x, Stats.overhead_pct ~baseline:b x))
      lto pibe
  in
  List.iter
    (fun (name, b, x, ov) ->
      Tbl.add_row t
        [
          Tbl.Str name;
          Tbl.Float b;
          Tbl.Str (Printf.sprintf "%.3f" (us_of_cycles b));
          Tbl.Float x;
          Tbl.Str (Printf.sprintf "%.3f" (us_of_cycles x));
          Exp_common.pct ov;
        ])
    overheads;
  Tbl.add_separator t;
  let geo = Stats.geomean_overhead (List.map (fun (_, _, _, ov) -> ov) overheads) in
  Tbl.add_row t
    [ Tbl.Str "Geometric Mean"; Tbl.Empty; Tbl.Empty; Tbl.Empty; Tbl.Empty; Exp_common.pct geo ];
  t
