(** The overhead-vs-security frontier (bench id [frontier]): the paper's
    headline — optimize indirect branches first, then pay for hardening
    only on what survives — generalized beyond retpolines.

    For each defense set (none, coarse CFI, FineIBT, PAC, FineIBT+PAC,
    retpoline stack, all paper defenses) x {plain LTO, PIBE PGO
    front-end}, one row: LMBench geomean overhead over the LTO baseline
    next to the security ledger — how many of the five transient drills
    (Spectre-V2, valid-pad V2, Ret2spec, PAC forgery, LVI) still reach
    their gadget, and which.  PGO rows carry the same ledger at strictly
    lower overhead: the front-end removes branches, never weakens a
    defense. *)

val run : Env.t -> Pibe_util.Tbl.t

val drill_names : string list
(** The ledger's drill labels, in column order. *)
