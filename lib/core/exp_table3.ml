module Engine = Pibe_cpu.Engine
module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module W = Pibe_kernel.Workload

let subset =
  [
    "null"; "read"; "write"; "open"; "stat"; "fstat"; "select_tcp"; "udp"; "tcp";
    "tcp_conn"; "af_unix"; "pipe";
  ]

let jumpswitch_latencies env =
  (* JumpSwitches patch the plain LTO kernel at runtime; remaining misses
     fall back to (learning) retpolines.  Returns are untouched — the
     technique only covers forward edges. *)
  let lto = Env.build env Config.lto in
  let js = Pibe_jumpswitch.Jumpswitch.create () in
  let config =
    {
      Engine.default_config with
      Engine.fwd_override = Some (Pibe_jumpswitch.Jumpswitch.transfer_cost js);
    }
  in
  let engine =
    Engine.create ~config lto.Pipeline.image.Pibe_harden.Pass.prog
  in
  Measure.suite_latencies ~settings:(Env.settings env) engine (Env.ops env)

let run env =
  let t =
    Tbl.create ~title:"Table 3: retpolines overhead compared to the LTO baseline"
      ~columns:
        [ "test"; "LTO w/retpolines"; "JumpSwitches"; "+icp (99%)"; "+icp (99.999%)" ]
  in
  Env.warm env
    [
      Config.lto;
      Exp_common.lto_with Exp_common.retpolines_only;
      Exp_common.icp_only ~budget:99.0 Exp_common.retpolines_only;
      Exp_common.icp_only ~budget:99.999 Exp_common.retpolines_only;
    ];
  let base = Env.latencies env Config.lto in
  let plain = Env.latencies env (Exp_common.lto_with Exp_common.retpolines_only) in
  let js = jumpswitch_latencies env in
  let icp99 = Env.latencies env (Exp_common.icp_only ~budget:99.0 Exp_common.retpolines_only) in
  let icp999 =
    Env.latencies env (Exp_common.icp_only ~budget:99.999 Exp_common.retpolines_only)
  in
  let overhead column name =
    let b = List.assoc name base in
    Stats.overhead_pct ~baseline:b (List.assoc name column)
  in
  let col_geos = Array.make 4 [] in
  List.iter
    (fun name ->
      let cells =
        List.mapi
          (fun i column ->
            let ov = overhead column name in
            col_geos.(i) <- ov :: col_geos.(i);
            Exp_common.pct ov)
          [ plain; js; icp99; icp999 ]
      in
      Tbl.add_row t (Tbl.Str name :: cells))
    subset;
  Tbl.add_separator t;
  Tbl.add_row t
    (Tbl.Str "Geometric Mean"
    :: List.map
         (fun i -> Exp_common.pct (Stats.geomean_overhead col_geos.(i)))
         [ 0; 1; 2; 3 ]);
  t
