(** Memoized experiment environment.

    Every experiment (one per paper table/figure) draws from the same
    generated kernel, the same profiling runs, and a cache of built
    images and measured latency suites, so running all experiments in one
    process does each expensive step once.

    The caches are thread-safe: with [jobs > 1] independent
    (configuration, workload) cells may be built and measured on separate
    domains via [par_map]/[warm].  Each cell gets its own engine and every
    step is deterministic, so results are identical to a sequential run. *)

type t

val create :
  ?scale:int ->
  ?seed:int ->
  ?settings:Measure.settings ->
  ?profile_iters:int ->
  ?jobs:int ->
  ?verify:bool ->
  ?engine:Pibe_cpu.Engine.backend ->
  unit ->
  t
(** Defaults: scale 3, seed 42, [Measure.default_settings], 300 profiling
    iterations per micro-op, [jobs] 1 (fully sequential), [verify] false
    (release builds skip the IR validator between pipeline passes).

    [engine] selects the execution backend for every engine the
    environment's cells create; when given it re-points the process-wide
    [Engine.default_backend] (engines are created deep inside
    measure/pipeline/online, on worker domains too).  Omitted, the
    current default — normally [Compiled] — is inherited.  Both backends
    are bit-exact, so results do not depend on this knob. *)

val quick : ?jobs:int -> ?verify:bool -> ?engine:Pibe_cpu.Engine.backend -> unit -> t
(** Small and fast, for unit tests: scale 1, quick settings, 60 profiling
    iterations; [verify] defaults to {e true} so tests keep validating the
    IR between every pipeline pass. *)

val engine_backend : t -> Pibe_cpu.Engine.backend
(** The execution backend this environment was created with. *)

val pool : t -> Pibe_util.Pool.t
val jobs : t -> int

val verify : t -> bool
(** Whether pipeline runs driven by this environment validate the IR
    between passes (on in the test environments). *)

val par_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [Pool.map] on the environment's pool: parallel when [jobs > 1],
    exactly [List.map] when [jobs = 1]. *)

val warm : t -> Config.t list -> unit
(** Populate the build+latency caches for the given configurations,
    in parallel across distinct configurations when [jobs > 1].  The
    shared kernel and training profile are computed first (once), so
    subsequent [latencies]/[overheads] calls are pure cache hits. *)

val warm_builds : t -> Config.t list -> unit
(** Like [warm] but only populates the build cache (no latency
    measurement) — for experiments that measure something other than the
    LMBench suite. *)

val info : t -> Pibe_kernel.Gen.info
val ops : t -> Pibe_kernel.Workload.op list
val settings : t -> Measure.settings

val profile_iters : t -> int
(** Profiling iterations per micro-op this environment was created with —
    for experiments that run their own profiling drivers and want to
    match [lmbench_profile]'s sampling effort. *)

val lmbench_profile : t -> Pibe_profile.Profile.t
(** Phase-1 profile over the full LMBench suite (the paper's default
    training workload). *)

val apache_profile : t -> Pibe_profile.Profile.t
(** Training profile from the ApacheBench-style workload (§8.4). *)

val build : t -> Config.t -> Pipeline.built
(** Cached optimize+harden for a configuration (LMBench profile). *)

val build_with_profile :
  t -> profile:Pibe_profile.Profile.t -> Config.t -> Pipeline.built
(** Uncached variant for alternate training profiles. *)

val latencies : t -> Config.t -> (string * float) list
(** Cached LMBench latency suite on the configuration's image. *)

val overheads : t -> baseline:Config.t -> Config.t -> (string * float) list
(** Per-op overhead (%) of a configuration against a baseline
    configuration. *)

val geomean_overhead : t -> baseline:Config.t -> Config.t -> float
