module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Pass = Pibe_harden.Pass
module Engine = Pibe_cpu.Engine

let page = 64 * 1024

let pages bytes = (bytes + page - 1) / page

let peak_stack env config =
  let built = Env.build env config in
  let engine = Pipeline.engine built in
  let rng = Pibe_util.Rng.create 5 in
  List.iter
    (fun (op : Pibe_kernel.Workload.op) ->
      for _ = 1 to 20 do
        op.Pibe_kernel.Workload.run engine rng
      done)
    (Env.ops env);
  (Engine.counters engine).Engine.peak_stack_bytes

let rows =
  [
    ("w/all-defenses", Exp_common.all_defenses, [ 99.0; 99.9; 99.9999 ]);
    ("w/retpolines", Exp_common.retpolines_only, [ 99.999 ]);
    ("w/LVI-CFI", Exp_common.lvi_only, [ 99.0; 99.9999 ]);
    ("w/ret-retpolines", Exp_common.ret_retpolines_only, [ 99.0; 99.9999 ]);
  ]

let run env =
  let t =
    Tbl.create ~title:"Table 12: image size and memory growth"
      ~columns:
        [ "config"; "budget"; "abs size"; "img size"; "mem size"; "peak stack" ]
  in
  Env.warm_builds env
    (Config.lto
    :: List.concat_map
         (fun (_, defenses, budgets) ->
           Exp_common.lto_with defenses
           :: List.map
                (fun budget -> Exp_common.full_opt ~icp:budget ~inline:budget defenses)
                budgets)
         rows);
  let lto_bytes = Pass.image_bytes (Env.build env Config.lto).Pipeline.image in
  List.iter
    (fun (label, defenses, budgets) ->
      let unopt = Env.build env (Exp_common.lto_with defenses) in
      let unopt_bytes = Pass.image_bytes unopt.Pipeline.image in
      let unopt_stack = peak_stack env (Exp_common.lto_with defenses) in
      List.iteri
        (fun i budget ->
          let config = Exp_common.full_opt ~icp:budget ~inline:budget defenses in
          let built = Env.build env config in
          let bytes = Pass.image_bytes built.Pipeline.image in
          let stack = peak_stack env config in
          Tbl.add_row t
            [
              Tbl.Str (if i = 0 then label else "");
              Tbl.Str (Printf.sprintf "%g%%" budget);
              Exp_common.pct (Stats.overhead_pct ~baseline:(float_of_int lto_bytes) (float_of_int bytes));
              Exp_common.pct
                (Stats.overhead_pct ~baseline:(float_of_int unopt_bytes) (float_of_int bytes));
              Exp_common.pct
                (Stats.overhead_pct
                   ~baseline:(float_of_int (pages unopt_bytes))
                   (float_of_int (pages bytes)));
              Exp_common.pct
                (Stats.overhead_pct ~baseline:(float_of_int unopt_stack) (float_of_int stack));
            ])
        budgets)
    rows;
  t
