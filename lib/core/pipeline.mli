(** The two-phase PIBE pipeline (paper §4), as a thin driver over the
    pass manager.

    Phase 1 runs a profiling image of the program under a representative
    workload, collecting edge counts at the binary level and lifting them
    back to IR identities.  Phase 2 lowers the configuration to a textual
    pipeline spec (see {!Pibe_pm.Spec}), resolves it against the pass
    registry, and runs it under the manager: the profile is copied, each
    pass is timed and IR-delta-instrumented, and the remaining indirect
    branches are hardened into an image.  [verify] (off by default in
    release runs, on in the test environments) re-validates the IR between
    every pass. *)

open Pibe_ir

type built = {
  image : Pibe_harden.Pass.image;
  config : Config.t;
  icp_stats : Pibe_opt.Icp.stats option;
  inline_stats : Pibe_opt.Inliner.stats option;
  llvm_inline_stats : Pibe_opt.Llvm_inliner.stats option;
  post_icp_profile : Pibe_profile.Profile.t;
      (** the profile as mutated by ICP (promoted sites are direct now) *)
  provenance : Pibe_profile.Provenance.t;
      (** inline/promotion tree recorded while optimizing; feed it to
          {!profile_built} to lift optimized-image profiles back to
          pristine origins *)
  pass_stats : Pibe_pm.Manager.pass_stats list;
      (** per-pass wall-clock time and IR deltas, in execution order *)
}

val profile :
  Program.t -> run:(Pibe_cpu.Engine.t -> unit) -> Pibe_profile.Profile.t
(** Phase 1: build the profiling engine (edge hook -> LBR -> collector),
    run the workload, lift. *)

val spec_of_config : Config.t -> Pibe_pm.Spec.t
(** Lowers a configuration to its pipeline spec, e.g. [pibe_baseline] to
    [icp(budget=99.999),inline(budget=99.9999,lax),cleanup].  The spec
    round-trips through {!Pibe_pm.Spec.to_string}/[of_string] and running
    it reproduces [build]'s image byte for byte. *)

val run_spec :
  ?verify:bool ->
  ?check:(Program.t -> unit) ->
  Program.t ->
  Pibe_profile.Profile.t ->
  Pibe_pm.Spec.t ->
  (Pibe_pm.Manager.result, string) result
(** Phase 2 on an arbitrary spec: resolve against the registry and run.
    [Error] reports unknown passes or bad options. *)

val build : ?verify:bool -> Program.t -> Pibe_profile.Profile.t -> Config.t -> built
(** Phase 2 on a configuration: optimize then harden; the input profile is
    copied, never mutated. *)

val profile_built :
  built ->
  run:(Pibe_cpu.Engine.t -> unit) ->
  Pibe_profile.Profile.t * Pibe_profile.Collector.lift_stats
(** Phase 1 on the {e hardened, optimized} image itself — the production
    regime where profiles are sampled from the deployed binary.  The
    engine runs with the image's own hardening config (defense costs
    included) plus the collector edge hook; the lift resolves clones
    through their origins, folds promoted direct counts back into
    pristine value profiles, and reconstructs inlined-away edges from the
    recorded provenance.  Returns the lifted profile and the lift stats
    (dropped pairs, recovered weight). *)

val engine : ?base:Pibe_cpu.Engine.config -> built -> Pibe_cpu.Engine.t
(** A fresh machine running this image. *)
