(* Per-pass pipeline instrumentation: what each pass of the lowered spec
   did to the IR and what it cost in wall-clock time, for the two
   headline configurations.  This is the pass-manager view of the
   pipeline — the equivalent of LLVM's -time-passes over our driver. *)

module Tbl = Pibe_util.Tbl
module Manager = Pibe_pm.Manager
module Spec = Pibe_pm.Spec

let run env =
  let configs =
    [
      ("PGO baseline (no defenses)", Config.pibe_baseline);
      ("best config (all defenses)", Exp_common.best_config Exp_common.all_defenses);
    ]
  in
  Env.warm_builds env (List.map snd configs);
  List.map
    (fun (label, config) ->
      let built = Env.build env config in
      let spec = Pipeline.spec_of_config config in
      let t =
        Manager.table
          ~title:(Printf.sprintf "Pipeline passes: %s = %s" label (Spec.to_string spec))
          built.Pipeline.pass_stats
      in
      List.iter
        (fun (s : Manager.pass_stats) ->
          List.iter
            (fun line -> Tbl.add_row t [ Tbl.Str ("  " ^ s.Manager.pass ^ ": " ^ line) ])
            (Manager.detail_lines s))
        built.Pipeline.pass_stats;
      t)
    configs
