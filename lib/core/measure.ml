module Engine = Pibe_cpu.Engine
module Rng = Pibe_util.Rng
module Stats = Pibe_util.Stats
module Trace = Pibe_trace.Trace

type settings = {
  warmup : int;
  iters : int;
  rounds : int;
  rng_seed : int;
}

let default_settings = { warmup = 40; iters = 120; rounds = 5; rng_seed = 7 }
let quick_settings = { warmup = 8; iters = 30; rounds = 3; rng_seed = 7 }

let measure_rounds ~settings ~(once : Rng.t -> unit) engine =
  let rng = Rng.create settings.rng_seed in
  for _ = 1 to settings.warmup do
    once rng
  done;
  let rounds =
    List.init settings.rounds (fun _ ->
        Engine.reset_cycles engine;
        for _ = 1 to settings.iters do
          once rng
        done;
        float_of_int (Engine.cycles engine) /. float_of_int settings.iters)
  in
  Stats.median rounds

let op_latency ?(settings = default_settings) engine (op : Pibe_kernel.Workload.op) =
  Trace.span ~cat:"measure" ("measure:" ^ op.Pibe_kernel.Workload.op_name) (fun () ->
      let v =
        measure_rounds ~settings engine ~once:(fun rng ->
            op.Pibe_kernel.Workload.run engine rng)
      in
      (* Cumulative engine counters at this point in the suite: simulated,
         hence deterministic — only the sample's timestamp varies. *)
      Engine.trace_counters ~cat:"measure"
        ~name:("engine:" ^ op.Pibe_kernel.Workload.op_name)
        engine;
      v)

let suite_latencies ?(settings = default_settings) engine ops =
  List.map (fun op -> (op.Pibe_kernel.Workload.op_name, op_latency ~settings engine op)) ops

let mix_kernel_cycles ?(settings = default_settings) engine (mix : Pibe_kernel.Workload.mix) =
  Trace.span ~cat:"measure" ("measure:mix:" ^ mix.Pibe_kernel.Workload.mix_name) (fun () ->
      let v =
        measure_rounds ~settings engine ~once:(fun rng ->
            mix.Pibe_kernel.Workload.request engine rng)
      in
      Engine.trace_counters ~cat:"measure"
        ~name:("engine:mix:" ^ mix.Pibe_kernel.Workload.mix_name)
        engine;
      v)

let throughput ~kernel_cycles ~user_cycles =
  1_000_000.0 /. (kernel_cycles +. user_cycles)

let entry_cycles ?(settings = default_settings) engine ~entry ~args =
  Trace.span ~cat:"measure" ("measure:entry:" ^ entry) (fun () ->
      measure_rounds ~settings engine ~once:(fun _rng ->
          ignore (Engine.call engine entry args)))
