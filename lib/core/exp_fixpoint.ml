module Tbl = Pibe_util.Tbl
module Rng = Pibe_util.Rng
module Profile = Pibe_profile.Profile
module Collector = Pibe_profile.Collector
module Workload = Pibe_kernel.Workload
module Drift = Pibe_online.Drift

let iterations = 4

let lmbench_driver env ops engine =
  let rng = Rng.create 11 in
  List.iter
    (fun (op : Workload.op) ->
      for _ = 1 to Env.profile_iters env do
        op.Workload.run engine rng
      done)
    ops

type iter_row = {
  index : int;
  inlined : int;
  promoted : int;
  stats : Collector.lift_stats;
  drift : float;
  overhead : float;
}

let run env =
  let info = Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  let ops = Env.ops env in
  let cfg = Exp_common.best_config Exp_common.all_defenses in
  let base_lat = Env.latencies env Config.lto in
  let overhead_of built =
    Pibe_util.Stats.geomean_overhead
      (List.map2
         (fun (name, b) (name', x) ->
           assert (String.equal name name');
           Pibe_util.Stats.overhead_pct ~baseline:b x)
         base_lat
         (Measure.suite_latencies ~settings:(Env.settings env) (Pipeline.engine built) ops))
  in
  (* Iteration 0 trains on the pristine-kernel profile (the paper's
     regime); every later iteration re-profiles the hardened image it
     just deployed and lifts through the provenance tree — the
     build -> profile -> rebuild loop a production kernel would live in. *)
  let p0 = Env.lmbench_profile env in
  let rec go i profile acc =
    if i >= iterations then List.rev acc
    else begin
      let built = Pipeline.build ~verify:(Env.verify env) prog profile cfg in
      let lifted, stats = Pipeline.profile_built built ~run:(lmbench_driver env ops) in
      let row =
        {
          index = i;
          inlined =
            (match built.Pipeline.inline_stats with
            | Some s -> s.Pibe_opt.Inliner.inlined_sites
            | None -> 0);
          promoted =
            (match built.Pipeline.icp_stats with
            | Some s -> s.Pibe_opt.Icp.promoted_targets
            | None -> 0);
          stats;
          drift = Drift.distance ~k:16 profile lifted;
          overhead = overhead_of built;
        }
      in
      go (i + 1) lifted (row :: acc)
    end
  in
  let rows = go 0 p0 [] in
  let t =
    Tbl.create
      ~title:
        "Iterative build->profile-on-hardened->rebuild: provenance-lifted profiles \
         converge to a fixpoint (all defenses; overhead vs pristine LTO)"
      ~columns:
        [
          "iteration";
          "inlined sites";
          "promoted targets";
          "lifted pairs";
          "dropped pairs";
          "recovered weight";
          "unrecovered insts";
          "drift vs training";
          "overhead";
        ]
  in
  List.iter
    (fun r ->
      Tbl.add_row t
        [
          Tbl.Int r.index;
          Tbl.Int r.inlined;
          Tbl.Int r.promoted;
          Tbl.Int r.stats.Collector.lifted_pairs;
          Tbl.Int r.stats.Collector.dropped_pairs;
          Tbl.Int r.stats.Collector.recovered_weight;
          Tbl.Int r.stats.Collector.unrecovered_instances;
          Tbl.Float r.drift;
          Exp_common.pct r.overhead;
        ])
    rows;
  [ t ]
