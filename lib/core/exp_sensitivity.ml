module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats

let seeds = [ 42; 1234; 777 ]

let run env =
  let t =
    Tbl.create
      ~title:
        "Sensitivity: headline geomeans across kernel-generator seeds (scale 2)"
      ~columns:
        [ "seed"; "PGO baseline"; "all defenses, no opt"; "all defenses, PIBE"; "defended speedup" ]
  in
  (* each seed is a fully independent environment; run them in parallel
     and let the nested warm fan out further if slots remain *)
  let measured =
    Env.par_map env
      (fun seed ->
        let senv = Env.create ~scale:2 ~seed ~jobs:(Env.jobs env) () in
        Env.warm senv
          [
            Config.lto;
            Config.pibe_baseline;
            Exp_common.lto_with Exp_common.all_defenses;
            Exp_common.best_config Exp_common.all_defenses;
          ];
        let pgo = Env.geomean_overhead senv ~baseline:Config.lto Config.pibe_baseline in
        let unopt =
          Env.geomean_overhead senv ~baseline:Config.lto
            (Exp_common.lto_with Exp_common.all_defenses)
        in
        let pibe =
          Env.geomean_overhead senv ~baseline:Config.lto
            (Exp_common.best_config Exp_common.all_defenses)
        in
        (seed, pgo, unopt, pibe))
      seeds
  in
  List.iter
    (fun (seed, pgo, unopt, pibe) ->
      let reduction = (100.0 +. unopt) /. (100.0 +. pibe) in
      Tbl.add_row t
        [
          Tbl.Int seed;
          Exp_common.pct pgo;
          Exp_common.pct unopt;
          Exp_common.pct pibe;
          Tbl.Str (Printf.sprintf "%.2fx" reduction);
        ])
    measured;
  t
