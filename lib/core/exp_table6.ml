module Tbl = Pibe_util.Tbl

let rows =
  [
    ("None", Pibe_harden.Pass.no_defenses);
    ("Retpolines", Exp_common.retpolines_only);
    ("Return retpolines", Exp_common.ret_retpolines_only);
    ("LVI-CFI", Exp_common.lvi_only);
    ("All", Exp_common.all_defenses);
  ]

let run env =
  let t =
    Tbl.create ~title:"Table 6: LMBench geometric-mean overhead per defense"
      ~columns:[ "defense"; "LTO"; "PIBE" ]
  in
  Env.warm env
    (Config.lto :: Config.pibe_baseline
    :: List.concat_map
         (fun (_, defenses) ->
           if defenses = Pibe_harden.Pass.no_defenses then []
           else [ Exp_common.lto_with defenses; Exp_common.best_config defenses ])
         rows);
  List.iter
    (fun (label, defenses) ->
      let lto_ov =
        if defenses = Pibe_harden.Pass.no_defenses then 0.0
        else Env.geomean_overhead env ~baseline:Config.lto (Exp_common.lto_with defenses)
      in
      let pibe_config =
        if defenses = Pibe_harden.Pass.no_defenses then Config.pibe_baseline
        else Exp_common.best_config defenses
      in
      let pibe_ov = Env.geomean_overhead env ~baseline:Config.lto pibe_config in
      Tbl.add_row t [ Tbl.Str label; Exp_common.pct lto_ov; Exp_common.pct pibe_ov ])
    rows;
  t
