type t = {
  id : string;
  paper_ref : string;
  description : string;
  run : Env.t -> Pibe_util.Tbl.t list;
}

let one f env = [ f env ]

let all =
  [
    {
      id = "table1";
      paper_ref = "Table 1";
      description = "per-branch mitigation ticks and SPEC-suite slowdown";
      run = one Exp_table1.run;
    };
    {
      id = "table2";
      paper_ref = "Table 2";
      description = "LTO vs PIBE-PGO baselines on LMBench";
      run = one Exp_table2.run;
    };
    {
      id = "table3";
      paper_ref = "Table 3";
      description = "retpolines: LTO vs JumpSwitches vs static ICP";
      run = one Exp_table3.run;
    };
    {
      id = "table4";
      paper_ref = "Table 4";
      description = "indirect-call target multiplicity histogram";
      run = one Exp_table4.run;
    };
    {
      id = "table5";
      paper_ref = "Table 5";
      description = "all defenses across optimization levels";
      run = one Exp_table5.run;
    };
    {
      id = "table6";
      paper_ref = "Table 6";
      description = "per-defense geometric means, LTO vs PIBE";
      run = one Exp_table6.run;
    };
    {
      id = "table7";
      paper_ref = "Table 7";
      description = "macro-benchmark throughput (Nginx/Apache/DBench)";
      run = one Exp_table7.run;
    };
    {
      id = "table8";
      paper_ref = "Table 8";
      description = "gadgets eliminated per budget";
      run = one Exp_table8.run;
    };
    {
      id = "table9";
      paper_ref = "Table 9";
      description = "weight blocked by Rules 2/3 and other attributes";
      run = one Exp_table9.run;
    };
    {
      id = "table10";
      paper_ref = "Table 10";
      description = "candidates vs total indirect branches";
      run = one Exp_table10.run;
    };
    {
      id = "table11";
      paper_ref = "Table 11";
      description = "protected vs vulnerable forward edges";
      run = one Exp_table11.run;
    };
    {
      id = "table12";
      paper_ref = "Table 12";
      description = "image size and memory growth";
      run = one Exp_table12.run;
    };
    {
      id = "figure1";
      paper_ref = "Figure 1";
      description = "the Rule-3 inlining counter-example";
      run = one Exp_figure1.run;
    };
    {
      id = "robustness";
      paper_ref = "Section 8.4";
      description = "workload-profile robustness and LLVM-inliner comparison";
      run =
        (fun env ->
          let a, b = Exp_robustness.run env in
          [ a; b ]);
    };
    {
      id = "security";
      paper_ref = "Section 8.6";
      description = "transient attack drills against live images";
      run = one Exp_security.run;
    };
    {
      id = "userspace";
      paper_ref = "Section 1";
      description = "extension: PIBE applied to userspace programs";
      run = one Exp_userspace.run;
    };
    {
      id = "v1scan";
      paper_ref = "Sections 3, 6.1";
      description = "extension: static Spectre-V1 gadget scan";
      run = one Exp_v1.run;
    };
    {
      id = "sensitivity";
      paper_ref = "DESIGN.md section 6";
      description = "extension: headline results across generator seeds";
      run = one Exp_sensitivity.run;
    };
    {
      id = "ablation";
      paper_ref = "DESIGN.md section 4";
      description = "ablations of PIBE's design choices";
      run = one Exp_ablation.run;
    };
    {
      id = "online";
      paper_ref = "Section 8.4 / PAPERS.md";
      description = "extension: continuous profiling, drift detection, adaptive re-optimization";
      run = Exp_online.run;
    };
    {
      id = "fleet";
      paper_ref = "ROADMAP / PAPERS.md";
      description = "extension: fleet-scale sharded aggregation with staged canary rollout";
      run = Exp_fleet.run;
    };
    {
      id = "frontier";
      paper_ref = "DESIGN.md defense diversity";
      description = "extension: overhead-vs-security frontier across defense sets";
      run = one Exp_frontier.run;
    };
    {
      id = "stale";
      paper_ref = "ROADMAP / Go PGO lessons";
      description = "extension: optimization benefit surviving k-releases-stale profiles";
      run = Exp_stale.run;
    };
    {
      id = "fixpoint";
      paper_ref = "ROADMAP / Go PGO lessons";
      description = "extension: iterative build-profile-rebuild convergence on the hardened image";
      run = Exp_fixpoint.run;
    };
    {
      id = "passes";
      paper_ref = "DESIGN.md section 2";
      description = "extension: per-pass pipeline instrumentation (pass manager)";
      run = Exp_passes.run;
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all
let run_all env = List.map (fun e -> (e, e.run env)) all
let listings = Exp_listings.render
