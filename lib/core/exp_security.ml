module Tbl = Pibe_util.Tbl
module Engine = Pibe_cpu.Engine
module Attack = Pibe_cpu.Attack
module Speculation = Pibe_cpu.Speculation
module Pass = Pibe_harden.Pass
module Gen = Pibe_kernel.Gen

let images env =
  Env.warm_builds env
    [
      Exp_common.lto_with Pass.no_defenses;
      Exp_common.lto_with Exp_common.retpolines_only;
      Exp_common.lto_with Exp_common.ret_retpolines_only;
      Exp_common.lto_with Exp_common.lvi_only;
      Exp_common.lto_with Exp_common.all_defenses;
      Exp_common.best_config Exp_common.all_defenses;
    ];
  let build_refill () =
    (* retpolines + the kernel's ad-hoc RSB refilling (paper §6.4) *)
    let built = Env.build env (Exp_common.lto_with Exp_common.retpolines_only) in
    let image =
      Pass.harden ~rsb_refill:true built.Pipeline.image.Pass.prog
        Exp_common.retpolines_only
    in
    { built with Pipeline.image }
  in
  List.map
    (fun (label, config) -> (label, Env.build env config))
    [
      ("vanilla (no defenses)", Exp_common.lto_with Pass.no_defenses);
      ("retpolines only", Exp_common.lto_with Exp_common.retpolines_only);
      ("ret-retpolines only", Exp_common.lto_with Exp_common.ret_retpolines_only);
      ("LVI-CFI only", Exp_common.lto_with Exp_common.lvi_only);
    ]
  @ [ ("retpolines + RSB refill", build_refill ()) ]
  @ List.map
      (fun (label, config) -> (label, Env.build env config))
      [
        ("all defenses", Exp_common.lto_with Exp_common.all_defenses);
        ("all defenses + PIBE opt", Exp_common.best_config Exp_common.all_defenses);
      ]

let victim_site_in = Exp_common.victim_site_in
let asm_site_in = Exp_common.asm_site_in
let drill_engine = Exp_common.drill_engine
let verdict = Exp_common.verdict

let run env =
  let info = Env.info env in
  let read_nr = Gen.nr info "read" in
  let mmap_nr = Gen.nr info "mmap" in
  let t =
    Tbl.create ~title:"Security drills: transient entry into the leak gadget"
      ~columns:
        [
          "image"; "spectre-v2"; "ret2spec (user)"; "ret2spec (xthread)"; "lvi";
          "v2 via pv asm call";
        ]
  in
  List.iter
    (fun (label, built) ->
      let gadget = info.Gen.gadget in
      (* ext4 file fd 0, length 5: the hot vfs_read dispatch *)
      let args = [ read_nr; 0; 5 ] in
      let entry = info.Gen.entry in
      let site =
        Option.value
          ~default:info.Gen.victim_icall_site
          (victim_site_in built.Pipeline.image.Pass.prog info.Gen.victim_icall_site)
      in
      let v2 =
        let e = drill_engine built in
        Attack.spectre_v2 e ~victim_site:site ~gadget ~entry ~args
      in
      let r2s_user =
        let e = drill_engine built in
        Attack.ret2spec e ~scenario:Speculation.User_pollution ~gadget ~entry ~args
      in
      let r2s_xthread =
        let e = drill_engine built in
        Attack.ret2spec e ~scenario:Speculation.Cross_thread ~gadget ~entry ~args
      in
      let lvi =
        let e = drill_engine built in
        Attack.lvi e ~poisoned_addr:info.Gen.victim_ops_addr
          ~injected_fptr:info.Gen.gadget_fptr ~entry ~args
      in
      let pv =
        let e = drill_engine built in
        let pv_site =
          Option.value
            ~default:info.Gen.pv_call_site
            (asm_site_in built.Pipeline.image.Pass.prog info.Gen.pv_call_site)
        in
        Attack.spectre_v2 e ~victim_site:pv_site ~gadget ~entry ~args:[ mmap_nr; 4096; 4096 ]
      in
      Tbl.add_row t
        [
          Tbl.Str label;
          Tbl.Str (verdict v2);
          Tbl.Str (verdict r2s_user);
          Tbl.Str (verdict r2s_xthread);
          Tbl.Str (verdict lvi);
          Tbl.Str (verdict pv);
        ])
    (images env);
  t
