module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats
module Workload = Pibe_kernel.Workload
module Fleet = Pibe_online.Fleet

type params = {
  fleet : Fleet.config;
}

(* Three phases over the window budget: with jittered per-instance
   boundaries and hysteresis 2 the aggregate fires shortly after each
   macro transition, leaving room for one canary evaluation window and a
   few post-promotion windows to amortize the fleet-wide patch. *)
let default_params ~quick =
  if quick then
    {
      fleet =
        {
          Fleet.default_config with
          Fleet.instances = 6;
          windows = 6;
          requests_per_window = 30;
        };
    }
  else
    {
      fleet =
        {
          Fleet.default_config with
          Fleet.instances = 16;
          windows = 9;
          requests_per_window = 60;
        };
    }

type variant = {
  v_name : string;
  v_spec : Pibe_pm.Spec.t;
  v_training : Pibe_profile.Profile.t;
  v_adaptive : bool;
}

let per_instance_cost (o : Fleet.outcome) =
  List.map
    (fun (r : Fleet.instance_record) ->
      float_of_int (r.Fleet.inst_cycles + r.Fleet.inst_patch_cycles))
    o.Fleet.instances

let run_with params env =
  let info = Env.info env in
  let prog = info.Pibe_kernel.Gen.prog in
  let phases = Workload.standard_phases info in
  let spec = Pipeline.spec_of_config (Exp_common.best_config Exp_common.all_defenses) in
  let lto_spec = Pipeline.spec_of_config Config.lto in
  let stale = Env.lmbench_profile env in
  let variants =
    [
      { v_name = "LTO baseline"; v_spec = lto_spec; v_training = stale; v_adaptive = false };
      { v_name = "static-stale"; v_spec = spec; v_training = stale; v_adaptive = false };
      { v_name = "fleet-adaptive"; v_spec = spec; v_training = stale; v_adaptive = true };
    ]
  in
  (* Variants run sequentially; the parallelism is inside each fleet run,
     across instance-windows on the environment's pool. *)
  let outcomes =
    List.map
      (fun v ->
        match
          Fleet.run ~config:params.fleet ~verify:(Env.verify env) ~pool:(Env.pool env)
            ~adaptive:v.v_adaptive ~prog ~spec:v.v_spec ~training:v.v_training ~phases ()
        with
        | Ok o ->
          (match o.Fleet.aborted with
          | Some e -> invalid_arg (Printf.sprintf "Exp_fleet: %s aborted: %s" v.v_name e)
          | None -> ());
          (v, o)
        | Error e -> invalid_arg (Printf.sprintf "Exp_fleet: %s: %s" v.v_name e))
      variants
  in
  let baseline, hardened =
    match outcomes with
    | (_, b) :: rest -> (b, rest)
    | [] -> assert false
  in
  let base_costs = Array.of_list (per_instance_cost baseline) in
  let overheads (o : Fleet.outcome) =
    List.mapi
      (fun i c -> Stats.overhead_pct ~baseline:base_costs.(i) c)
      (per_instance_cost o)
  in
  let count status (o : Fleet.outcome) =
    List.length (List.filter (fun (r : Fleet.rollout) -> r.Fleet.ro_status = status) o.Fleet.rollouts)
  in
  let cfg = params.fleet in
  let dist =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Fleet deployment: per-instance overhead distribution vs LTO fleet (%d \
            instances, %d windows, canary %d, patch downtime charged)"
           cfg.Fleet.instances cfg.Fleet.windows cfg.Fleet.canary_windows)
      ~columns:
        [
          "variant"; "p50"; "p90"; "p99"; "worst"; "geomean"; "rebuilds"; "promoted";
          "rejected"; "patch cycles";
        ]
  in
  List.iter
    (fun (v, o) ->
      let ov = overheads o in
      Tbl.add_row dist
        [
          Tbl.Str v.v_name;
          Exp_common.pct (Stats.percentile 50.0 ov);
          Exp_common.pct (Stats.percentile 90.0 ov);
          Exp_common.pct (Stats.percentile 99.0 ov);
          Exp_common.pct (Stats.percentile 100.0 ov);
          Exp_common.pct (Stats.geomean_overhead ov);
          Tbl.Int o.Fleet.rebuilds;
          Tbl.Int (count Fleet.Promoted o);
          Tbl.Int (count Fleet.Rejected o);
          Tbl.Int o.Fleet.total_patch_cycles;
        ])
    hardened;
  let adaptive =
    match List.rev hardened with
    | (_, o) :: _ -> o
    | [] -> assert false
  in
  let static =
    match hardened with
    | (_, o) :: _ -> o
    | [] -> assert false
  in
  let rollouts =
    Tbl.create
      ~title:
        (Printf.sprintf
           "Staged rollouts (fleet-adaptive: threshold %.2f, hysteresis %d, canary \
            %d window(s), tolerance %+.1f%%)"
           cfg.Fleet.drift_threshold cfg.Fleet.hysteresis cfg.Fleet.canary_windows
           cfg.Fleet.promote_tolerance_pct)
      ~columns:[ "fired at"; "canary"; "decided at"; "decision"; "patch sites/instance" ]
  in
  if adaptive.Fleet.rollouts = [] then
    Tbl.add_row rollouts [ Tbl.Str "(no drift fired)"; Tbl.Empty; Tbl.Empty; Tbl.Empty; Tbl.Empty ]
  else
    List.iter
      (fun (r : Fleet.rollout) ->
        Tbl.add_row rollouts
          [
            Tbl.Int r.Fleet.ro_fired;
            Tbl.Int r.Fleet.ro_canary;
            (if r.Fleet.ro_decided < 0 then Tbl.Empty else Tbl.Int r.Fleet.ro_decided);
            Tbl.Str (Fleet.rollout_status_name r.Fleet.ro_status);
            Tbl.Int r.Fleet.ro_sites;
          ])
      adaptive.Fleet.rollouts;
  let agg =
    Tbl.create
      ~title:"Sharded profile aggregation (fleet-adaptive)"
      ~columns:[ "metric"; "value" ]
  in
  Tbl.add_row agg [ Tbl.Str "shards (instances)"; Tbl.Int cfg.Fleet.instances ];
  Tbl.add_row agg [ Tbl.Str "shard ring depth"; Tbl.Int cfg.Fleet.store_window ];
  Tbl.add_row agg [ Tbl.Str "batched merges"; Tbl.Int adaptive.Fleet.merges ];
  Tbl.add_row agg [ Tbl.Str "profiles merged"; Tbl.Int adaptive.Fleet.profiles_merged ];
  Tbl.add_row agg
    [
      Tbl.Str "avg profiles/merge";
      (if adaptive.Fleet.merges = 0 then Tbl.Empty
       else
         Tbl.Float
           (float_of_int adaptive.Fleet.profiles_merged
           /. float_of_int adaptive.Fleet.merges));
    ];
  let per_inst =
    Tbl.create
      ~title:"Per-instance overhead vs LTO fleet (same seeded traffic per instance)"
      ~columns:[ "instance"; "workload mix"; "patches"; "static-stale"; "fleet-adaptive" ]
  in
  let static_ov = Array.of_list (overheads static) in
  let adaptive_ov = Array.of_list (overheads adaptive) in
  List.iter
    (fun (r : Fleet.instance_record) ->
      let i = r.Fleet.inst_id in
      Tbl.add_row per_inst
        [
          Tbl.Int i;
          Tbl.Str r.Fleet.inst_mix;
          Tbl.Int r.Fleet.inst_patches;
          Exp_common.pct static_ov.(i);
          Exp_common.pct adaptive_ov.(i);
        ])
    adaptive.Fleet.instances;
  [ dist; rollouts; agg; per_inst ]

let run env =
  run_with (default_params ~quick:(Env.settings env = Measure.quick_settings)) env
