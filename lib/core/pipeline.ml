module Profile = Pibe_profile.Profile
module Spec = Pibe_pm.Spec
module Registry = Pibe_pm.Registry
module Manager = Pibe_pm.Manager
module Pm_pass = Pibe_pm.Pass

type built = {
  image : Pibe_harden.Pass.image;
  config : Config.t;
  icp_stats : Pibe_opt.Icp.stats option;
  inline_stats : Pibe_opt.Inliner.stats option;
  llvm_inline_stats : Pibe_opt.Llvm_inliner.stats option;
  post_icp_profile : Profile.t;
  provenance : Pibe_profile.Provenance.t;
  pass_stats : Manager.pass_stats list;
}

module Trace = Pibe_trace.Trace

let profile prog ~run =
  Trace.span ~cat:"core" "pipeline:profile" (fun () ->
      let collector = Pibe_profile.Collector.create prog in
      let config =
        {
          Pibe_cpu.Engine.default_config with
          Pibe_cpu.Engine.on_edge = Some (Pibe_profile.Collector.hook collector);
          on_entry = Some (Pibe_profile.Collector.hook_entry collector);
        }
      in
      let engine = Pibe_cpu.Engine.create ~config prog in
      run engine;
      Pibe_cpu.Engine.trace_counters ~cat:"core" ~name:"engine:profile-run" engine;
      Pibe_profile.Collector.lift collector)

(* ----------------------- Config -> pipeline spec ----------------------- *)

let budget b = ("budget", Some (Spec.float_arg b))

(* Scalar cleanup runs in every configuration: it is part of the plain
   LTO pipeline the paper's baseline uses, and it is what converts the
   inliner's opportunities (propagated constants, dead argument moves)
   into actual savings. *)
let opt_spec = function
  | Config.No_opt -> [ Spec.elem "cleanup" ]
  | Config.Icp_only { budget = b } ->
    [ Spec.elem ~args:[ budget b ] "icp"; Spec.elem "cleanup" ]
  | Config.Full { icp_budget; inline_budget; lax } ->
    [
      Spec.elem ~args:[ budget icp_budget ] "icp";
      Spec.elem
        ~args:(budget inline_budget :: (if lax then [ ("lax", None) ] else []))
        "inline";
      Spec.elem "cleanup";
    ]
  | Config.Llvm_pgo { icp_budget; inline_budget } ->
    [
      Spec.elem ~args:[ budget icp_budget ] "icp";
      Spec.elem ~args:[ budget inline_budget ] "llvm-inline";
      Spec.elem "cleanup";
    ]

let defense_spec (d : Pibe_harden.Pass.defenses) =
  (if d.Pibe_harden.Pass.retpolines then [ Spec.elem "retpoline" ] else [])
  @ (if d.Pibe_harden.Pass.ret_retpolines then [ Spec.elem "ret-retpoline" ] else [])
  @ (if d.Pibe_harden.Pass.lvi then [ Spec.elem "lvi-cfi" ] else [])
  @ (if d.Pibe_harden.Pass.fineibt then [ Spec.elem "fineibt" ] else [])
  @ (if d.Pibe_harden.Pass.pac then [ Spec.elem "pac-ret" ] else [])
  @ if d.Pibe_harden.Pass.coarse_cfi then [ Spec.elem "coarse-cfi" ] else []

let spec_of_config (c : Config.t) = opt_spec c.Config.opt @ defense_spec c.Config.defenses

(* ------------------------------ driver ------------------------------ *)

let run_spec ?verify ?check prog profile spec =
  match Registry.of_spec spec with
  | Error _ as e -> e
  | Ok passes -> Ok (Manager.run ?verify ?check prog profile passes)

let build ?(verify = false) prog profile config =
  let spec = spec_of_config config in
  let args =
    if Trace.enabled () then [ ("spec", Trace.Str (Spec.to_string spec)) ] else []
  in
  Trace.span ~cat:"core" "pipeline:build" ~args (fun () ->
  let r =
    match run_spec ~verify prog profile spec with
    | Ok r -> r
    | Error e ->
      (* Every [Config] variant lowers to registered passes; reaching this
         means the lowering and the registry have diverged. *)
      invalid_arg (Printf.sprintf "Pipeline.build: bad lowered spec %S: %s" (Spec.to_string spec) e)
  in
  let detail f = List.find_map (fun (s : Manager.pass_stats) -> f s.Manager.detail) r.Manager.passes in
  {
    image = r.Manager.image;
    config;
    icp_stats = detail (function Pm_pass.Icp s -> Some s | _ -> None);
    inline_stats = detail (function Pm_pass.Inline s -> Some s | _ -> None);
    llvm_inline_stats = detail (function Pm_pass.Llvm_inline s -> Some s | _ -> None);
    post_icp_profile = r.Manager.profile;
    provenance = r.Manager.provenance;
    pass_stats = r.Manager.passes;
  })

let profile_built built ~run =
  Trace.span ~cat:"core" "pipeline:profile-built" (fun () ->
      let prog = built.image.Pibe_harden.Pass.prog in
      let collector = Pibe_profile.Collector.create ~provenance:built.provenance prog in
      let config =
        {
          (Pibe_harden.Pass.engine_config built.image) with
          Pibe_cpu.Engine.on_edge = Some (Pibe_profile.Collector.hook collector);
          on_entry = Some (Pibe_profile.Collector.hook_entry collector);
        }
      in
      let engine = Pibe_cpu.Engine.create ~config prog in
      run engine;
      Pibe_cpu.Engine.trace_counters ~cat:"core" ~name:"engine:profile-built-run" engine;
      let p = Pibe_profile.Collector.lift collector in
      (p, Pibe_profile.Collector.stats collector))

let engine ?base built =
  let config = Pibe_harden.Pass.engine_config ?base built.image in
  Pibe_cpu.Engine.create ~config built.image.Pibe_harden.Pass.prog
