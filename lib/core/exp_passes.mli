(** Extension: per-pass pipeline instrumentation (wall-clock time, IR
    deltas, pass-specific statistics) for the headline configurations, as
    reported by the pass manager. *)

val run : Env.t -> Pibe_util.Tbl.t list
