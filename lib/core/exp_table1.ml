module Engine = Pibe_cpu.Engine
module Pass = Pibe_harden.Pass
module Spec = Pibe_kernel.Spec
module Tbl = Pibe_util.Tbl
module Stats = Pibe_util.Stats

type row_config =
  | Uninstrumented
  | Nontransient of {
      label : string;
      call : int;
      icall : int;
      ret : int;
    }
  | Transient of {
      label : string;
      defenses : Pass.defenses;
    }

let rows =
  [
    Uninstrumented;
    (* Cheap non-transient defenses, for contrast (paper's justification
       for focusing on transient mitigations). *)
    Nontransient { label = "LLVM-CFI"; call = 0; icall = 3; ret = 0 };
    Nontransient { label = "stackprotector"; call = 2; icall = 2; ret = 2 };
    Nontransient { label = "safestack"; call = 1; icall = 1; ret = 1 };
    Transient { label = "LVI-CFI"; defenses = Exp_common.lvi_only };
    Transient { label = "retpolines"; defenses = Exp_common.retpolines_only };
    Transient
      {
        label = "retpolines + LVI-CFI";
        defenses = { Pass.no_defenses with Pass.retpolines = true; lvi = true };
      };
    Transient { label = "return retpolines"; defenses = Exp_common.ret_retpolines_only };
    Transient { label = "all defenses"; defenses = Exp_common.all_defenses };
  ]

let engine_for spec row =
  match row with
  | Uninstrumented ->
    Engine.create ~config:Engine.default_config spec.Spec.prog
  | Nontransient { call; icall; ret; _ } ->
    let config =
      {
        Engine.default_config with
        Engine.extra_call_cycles = call;
        extra_icall_cycles = icall;
        extra_ret_cycles = ret;
      }
    in
    Engine.create ~config spec.Spec.prog
  | Transient { defenses; _ } ->
    let image = Pass.harden spec.Spec.prog defenses in
    Engine.create ~config:(Pass.engine_config image) image.Pass.prog

let label = function
  | Uninstrumented -> "uninstrumented"
  | Nontransient { label; _ } -> label
  | Transient { label; _ } -> label

(* Per-call ticks: cycles of [iters] calls divided by iters, minus the
   uninstrumented figure. *)
let micro_ticks engine entry =
  let settings = { Measure.default_settings with Measure.iters = 3; warmup = 1; rounds = 3 } in
  Measure.entry_cycles ~settings engine ~entry ~args:[ Spec.micro_iters; 0 ]
  /. float_of_int Spec.micro_iters

let spec_cycles engine spec =
  List.map
    (fun (name, entry) ->
      let settings =
        { Measure.default_settings with Measure.iters = 2; warmup = 1; rounds = 3 }
      in
      (name, Measure.entry_cycles ~settings engine ~entry ~args:[ Spec.bench_iters; 0 ]))
    spec.Spec.benchmarks

let run env =
  let spec = Spec.build () in
  let columns = [ "defense"; "dcall (ticks)"; "icall (ticks)"; "vcall (ticks)"; "spec %" ] in
  let t = Tbl.create ~title:"Table 1: per-branch mitigation overhead + SPEC slowdown" ~columns in
  let base_engine = engine_for spec Uninstrumented in
  let base_d = micro_ticks base_engine spec.Spec.micro_dcall in
  let base_i = micro_ticks base_engine spec.Spec.micro_icall in
  let base_v = micro_ticks base_engine spec.Spec.micro_vcall in
  let base_spec = spec_cycles base_engine spec in
  (* rows are independent (each gets its own engine over the shared,
     immutable spec program), so measure them in parallel *)
  let measured =
    Env.par_map env
      (fun row ->
        let engine = engine_for spec row in
        let d = micro_ticks engine spec.Spec.micro_dcall -. base_d in
        let i = micro_ticks engine spec.Spec.micro_icall -. base_i in
        let v = micro_ticks engine spec.Spec.micro_vcall -. base_v in
        let spec_now = spec_cycles engine spec in
        let slowdowns =
          List.map2
            (fun (_, b) (_, x) -> Stats.overhead_pct ~baseline:b x)
            base_spec spec_now
        in
        (row, d, i, v, Stats.geomean_overhead slowdowns))
      rows
  in
  List.iter
    (fun (row, d, i, v, geo) ->
      Tbl.add_row t
        [
          Tbl.Str (label row);
          Tbl.Int (int_of_float (Float.round d));
          Tbl.Int (int_of_float (Float.round i));
          Tbl.Int (int_of_float (Float.round v));
          Exp_common.pct geo;
        ])
    measured;
  t
