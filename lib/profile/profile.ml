type t = {
  direct : (int, int) Hashtbl.t;
  indirect : (int, (string, int) Hashtbl.t) Hashtbl.t;
  entries : (string, int) Hashtbl.t;
}

let create () =
  { direct = Hashtbl.create 512; indirect = Hashtbl.create 256; entries = Hashtbl.create 512 }

let bump tbl key count =
  Hashtbl.replace tbl key (count + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_direct t ~origin ~count = bump t.direct origin count

let add_indirect t ~origin ~target ~count =
  let vp =
    match Hashtbl.find_opt t.indirect origin with
    | Some vp -> vp
    | None ->
      let vp = Hashtbl.create 4 in
      Hashtbl.replace t.indirect origin vp;
      vp
  in
  bump vp target count

let add_entry t ~func ~count = bump t.entries func count
let direct_count t ~origin = Option.value ~default:0 (Hashtbl.find_opt t.direct origin)

let value_profile t ~origin =
  match Hashtbl.find_opt t.indirect origin with
  | None -> []
  | Some vp ->
    let items = Hashtbl.fold (fun target count acc -> (target, count) :: acc) vp [] in
    List.sort
      (fun (n1, c1) (n2, c2) -> if c1 <> c2 then compare c2 c1 else String.compare n1 n2)
      items

let site_weight t (s : Pibe_ir.Types.site) =
  let origin = s.Pibe_ir.Types.site_origin in
  match Hashtbl.find_opt t.direct origin with
  | Some c -> c
  | None -> List.fold_left (fun acc (_, c) -> acc + c) 0 (value_profile t ~origin)

let invocations t func = Option.value ~default:0 (Hashtbl.find_opt t.entries func)
let total_direct_weight t = Hashtbl.fold (fun _ c acc -> acc + c) t.direct 0

let total_indirect_weight t =
  Hashtbl.fold
    (fun _ vp acc -> Hashtbl.fold (fun _ c acc -> acc + c) vp acc)
    t.indirect 0

let profiled_indirect_origins t =
  List.sort compare (Hashtbl.fold (fun origin _ acc -> origin :: acc) t.indirect [])

let remove_indirect_target t ~origin ~target =
  match Hashtbl.find_opt t.indirect origin with
  | None -> ()
  | Some vp ->
    Hashtbl.remove vp target;
    if Hashtbl.length vp = 0 then Hashtbl.remove t.indirect origin

let copy t =
  let indirect = Hashtbl.create (max 16 (Hashtbl.length t.indirect)) in
  Hashtbl.iter (fun origin vp -> Hashtbl.replace indirect origin (Hashtbl.copy vp)) t.indirect;
  { direct = Hashtbl.copy t.direct; indirect; entries = Hashtbl.copy t.entries }

let merge a b =
  let t = create () in
  let copy_from src =
    Hashtbl.iter (fun origin c -> add_direct t ~origin ~count:c) src.direct;
    Hashtbl.iter
      (fun origin vp -> Hashtbl.iter (fun target c -> add_indirect t ~origin ~target ~count:c) vp)
      src.indirect;
    Hashtbl.iter (fun func c -> add_entry t ~func ~count:c) src.entries
  in
  copy_from a;
  copy_from b;
  t

(* Weighted merge accumulates in float per key and rounds once at the
   end (better than rounding each addend); keys whose weighted sum rounds
   to zero are dropped so decayed profiles stay sparse.  Per-key addition
   order follows the part list, so the result is deterministic. *)
let merge_weighted parts =
  let dir : (int, float) Hashtbl.t = Hashtbl.create 512 in
  let ind : (int * string, float) Hashtbl.t = Hashtbl.create 512 in
  let ent : (string, float) Hashtbl.t = Hashtbl.create 512 in
  let bumpf tbl key v =
    Hashtbl.replace tbl key (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))
  in
  List.iter
    (fun (w, src) ->
      if w < 0.0 then invalid_arg "Profile.merge_weighted: negative weight";
      Hashtbl.iter (fun origin c -> bumpf dir origin (w *. float_of_int c)) src.direct;
      Hashtbl.iter
        (fun origin vp ->
          Hashtbl.iter (fun target c -> bumpf ind (origin, target) (w *. float_of_int c)) vp)
        src.indirect;
      Hashtbl.iter (fun func c -> bumpf ent func (w *. float_of_int c)) src.entries)
    parts;
  let t = create () in
  let round v = int_of_float (Float.round v) in
  Hashtbl.iter
    (fun origin v ->
      let c = round v in
      if c > 0 then add_direct t ~origin ~count:c)
    dir;
  Hashtbl.iter
    (fun (origin, target) v ->
      let c = round v in
      if c > 0 then add_indirect t ~origin ~target ~count:c)
    ind;
  Hashtbl.iter
    (fun func v ->
      let c = round v in
      if c > 0 then add_entry t ~func ~count:c)
    ent;
  t

let scale t f = merge_weighted [ (f, t) ]

type match_stats = {
  direct_kept : int;
  direct_dropped : int;
  indirect_kept : int;
  indirect_dropped : int;
  entries_kept : int;
  entries_dropped : int;
  renamed_weight : int;
}

(* Staleness matching: keep only the counts whose identity still exists —
   with the same call kind — in the target program.  A site id that
   vanished and was later re-minted for a different-kind site would
   otherwise smuggle weight across kinds (direct counter read as an
   indirect origin or vice versa), so existence is checked per kind. *)
let match_to ?(renames = []) t prog =
  let open Pibe_ir in
  let direct_origins = Hashtbl.create 512 in
  let indirect_origins = Hashtbl.create 256 in
  let funcs = Hashtbl.create 512 in
  Program.iter_funcs prog (fun f ->
      Hashtbl.replace funcs f.Types.fname ();
      Func.iter_insts f (fun _ i ->
          match i with
          | Types.Call { site; _ } ->
            Hashtbl.replace direct_origins site.Types.site_origin ()
          | Types.Icall { site; _ } | Types.Asm_icall { site; _ } ->
            Hashtbl.replace indirect_origins site.Types.site_origin ()
          | Types.Assign _ | Types.Store _ | Types.Observe _ -> ()));
  let renamed_weight = ref 0 in
  let rename f count =
    match List.assoc_opt f renames with
    | Some f' ->
      renamed_weight := !renamed_weight + count;
      f'
    | None -> f
  in
  let out = create () in
  let dk = ref 0 and dd = ref 0 and ik = ref 0 and id_ = ref 0 in
  let ek = ref 0 and ed = ref 0 in
  Hashtbl.iter
    (fun origin count ->
      if Hashtbl.mem direct_origins origin then begin
        dk := !dk + count;
        add_direct out ~origin ~count
      end
      else dd := !dd + count)
    t.direct;
  Hashtbl.iter
    (fun origin vp ->
      let live = Hashtbl.mem indirect_origins origin in
      Hashtbl.iter
        (fun target count ->
          let target = rename target count in
          if live && Hashtbl.mem funcs target then begin
            ik := !ik + count;
            add_indirect out ~origin ~target ~count
          end
          else id_ := !id_ + count)
        vp)
    t.indirect;
  Hashtbl.iter
    (fun func count ->
      let func = rename func count in
      if Hashtbl.mem funcs func then begin
        ek := !ek + count;
        add_entry out ~func ~count
      end
      else ed := !ed + count)
    t.entries;
  ( out,
    {
      direct_kept = !dk;
      direct_dropped = !dd;
      indirect_kept = !ik;
      indirect_dropped = !id_;
      entries_kept = !ek;
      entries_dropped = !ed;
      renamed_weight = !renamed_weight;
    } )

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "profile {\n";
  let entries = Hashtbl.fold (fun f c acc -> (f, c) :: acc) t.entries [] in
  List.iter
    (fun (f, c) -> Buffer.add_string buf (Printf.sprintf "  entry @%s = %d\n" f c))
    (List.sort compare entries);
  let directs = Hashtbl.fold (fun o c acc -> (o, c) :: acc) t.direct [] in
  List.iter
    (fun (o, c) -> Buffer.add_string buf (Printf.sprintf "  direct %d = %d\n" o c))
    (List.sort compare directs);
  List.iter
    (fun origin ->
      List.iter
        (fun (target, c) ->
          Buffer.add_string buf (Printf.sprintf "  vp %d @%s = %d\n" origin target c))
        (value_profile t ~origin))
    (profiled_indirect_origins t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_string text =
  let t = create () in
  let lines = String.split_on_char '\n' text in
  let fail line = failwith ("Profile.of_string: malformed line: " ^ line) in
  let parse_name tok line =
    if String.length tok >= 2 && tok.[0] = '@' then String.sub tok 1 (String.length tok - 1)
    else fail line
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line = "profile {" || line = "}" then ()
      else
        match String.split_on_char ' ' line with
        | [ "entry"; name; "="; c ] ->
          add_entry t ~func:(parse_name name line)
            ~count:(try int_of_string c with Failure _ -> fail line)
        | [ "direct"; o; "="; c ] -> (
          try add_direct t ~origin:(int_of_string o) ~count:(int_of_string c)
          with Failure _ -> fail line)
        | [ "vp"; o; name; "="; c ] -> (
          try
            add_indirect t ~origin:(int_of_string o) ~target:(parse_name name line)
              ~count:(int_of_string c)
          with Failure _ -> fail line)
        | _ -> fail line)
    lines;
  t
