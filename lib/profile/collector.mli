(** The profiling-phase plumbing: engine edge events -> binary addresses ->
    LBR ring -> address-pair aggregation -> lifted {!Profile.t}.

    Mirrors the paper's §7 flow: the profiling binary records edges at the
    {e binary} level; after the run, the aggregated address pairs are
    lifted back to IR call-site identities through the layout symbol
    table.  Two collection regimes are supported:

    - {e pristine image} (the paper's assumption): every site id is its
      own origin and the lift is a pure address→site table walk;
    - {e optimized/hardened image} (production reality — AutoFDO, Go
      PGO): clones resolve through their inherited origin, ICP-promoted
      direct sites fold back into the pristine indirect site's value
      profile, and call edges consumed by inlining — which emit nothing
      at all — are reconstructed from the {!Provenance} witness tree by a
      monotone fixpoint over instance counts.  Pass the image's
      provenance via [create ?provenance] to enable this.

    Address pairs that resolve to no known site or function (stale
    addresses from a mismatched layout, raw-PMU noise) are dropped, and
    the drop is counted: see {!lift_stats}. *)

type t

type lift_stats = {
  lifted_pairs : int;  (** pair weight lifted onto known sites *)
  dropped_pairs : int;
      (** pair weight falling outside any known site/function range *)
  recovered_instances : int;
      (** inline instances assigned a non-zero count, by witness or by
          the scaled carry-forward estimate *)
  unrecovered_instances : int;
      (** inline instances whose count stayed zero: no witness signal,
          no carry-forward (e.g. the site was cold in training too) *)
  recovered_weight : int;  (** total count reconstructed for inlined-away edges *)
}

val create : ?provenance:Provenance.t -> Pibe_ir.Program.t -> t
(** Builds the layout symbol table for the profiling image, its
    site-id→origin map, and an empty aggregation.  [provenance] is the
    inline/promotion tree recorded when the image was built; omit it for
    pristine images. *)

val hook_entry : t -> string -> unit
(** Record one top-level (kernel-entry) invocation of a function; wire as
    [Engine.on_entry].  These entries survive total inlining — no call
    edge is needed — and anchor the carry-forward scaling of the lift. *)

val hook : t -> Pibe_cpu.Engine.edge_event -> unit
(** Install as the engine's [on_edge] callback. *)

val record_raw : t -> from_addr:int -> to_addr:int -> unit
(** Feed a raw address pair into the ring, bypassing the engine hook —
    the ingestion path for externally captured (PMU-style) samples, whose
    addresses may not resolve at lift time. *)

val lift : t -> Profile.t
(** Flushes the LBR ring, then lifts every aggregated (from, to) pair:
    [from] resolves to a call site and through it to the site's {e origin}
    (direct counter, or value-profile entry for indirect sites), [to] to
    the entered function (invocation counts).  With provenance attached,
    direct counts at ICP-promoted origins are re-emitted as value-profile
    counts at the pristine indirect origin, and inlined-away edges are
    reconstructed from witness counts.  Unresolvable pairs are dropped
    and counted.  Updates {!stats}; when tracing is enabled, emits a
    ["collector:lift"] counter with the stats. *)

val stats : t -> lift_stats
(** Stats of the most recent {!lift} (zeros before the first). *)

val raw_pairs : t -> ((int * int) * int) list
(** Aggregated ((from_addr, to_addr), count) pairs, for inspection. *)
