open Pibe_ir
module Trace = Pibe_trace.Trace

type lift_stats = {
  lifted_pairs : int;
  dropped_pairs : int;
  recovered_instances : int;
  unrecovered_instances : int;
  recovered_weight : int;
}

let zero_stats =
  {
    lifted_pairs = 0;
    dropped_pairs = 0;
    recovered_instances = 0;
    unrecovered_instances = 0;
    recovered_weight = 0;
  }

type t = {
  prog : Program.t;
  layout : Layout.t;
  pairs : (int * int, int) Hashtbl.t;
  lbr : Lbr.t;
  (* site identity map, built once: site_id -> (origin, is the site a
     direct call?).  On a pristine program origin = site_id; on an
     optimized one clones report their inherited origin. *)
  site_info : (int, int * bool) Hashtbl.t;
  provenance : Provenance.t option;
  (* top-level (kernel-entry) invocations, observed through
     [Engine.on_entry]: the one entry signal that survives total
     inlining, and the anchor of the carry-forward scaling *)
  external_entries : (string, int) Hashtbl.t;
  mutable last_stats : lift_stats;
}

let create ?provenance prog =
  let layout = Layout.build prog in
  let pairs = Hashtbl.create 4096 in
  let drain (r : Lbr.record) =
    let key = (r.Lbr.from_addr, r.Lbr.to_addr) in
    Hashtbl.replace pairs key (1 + Option.value ~default:0 (Hashtbl.find_opt pairs key))
  in
  let site_info = Hashtbl.create 1024 in
  Program.iter_funcs prog (fun f ->
      Func.iter_insts f (fun _ i ->
          match i with
          | Types.Call { site; _ } ->
            Hashtbl.replace site_info site.Types.site_id (site.Types.site_origin, true)
          | Types.Icall { site; _ } | Types.Asm_icall { site; _ } ->
            Hashtbl.replace site_info site.Types.site_id (site.Types.site_origin, false)
          | Types.Assign _ | Types.Store _ | Types.Observe _ -> ()));
  {
    prog;
    layout;
    pairs;
    lbr = Lbr.create ~drain ();
    site_info;
    provenance;
    external_entries = Hashtbl.create 64;
    last_stats = zero_stats;
  }

let hook t (e : Pibe_cpu.Engine.edge_event) =
  (* The profiling run observes addresses, as LBR hardware would. *)
  match
    ( Layout.site_addr t.layout e.Pibe_cpu.Engine.site.Types.site_id,
      Layout.func_addr t.layout e.Pibe_cpu.Engine.callee )
  with
  | from_addr, to_addr -> Lbr.record t.lbr ~from_addr ~to_addr
  | exception Not_found -> ()

let record_raw t ~from_addr ~to_addr = Lbr.record t.lbr ~from_addr ~to_addr

let hook_entry t func =
  Hashtbl.replace t.external_entries func
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.external_entries func))

let bump tbl key count =
  Hashtbl.replace tbl key (count + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Resolve the witness-based instance counts to their least fixpoint.
   An instance's count feeds credits back onto the site it consumed and
   onto its callee's entry count; witnesses of other instances may read
   exactly those credited quantities (a witness clone can itself be
   consumed by a later inline; a caller-entries witness reads an entry
   count other instances recover).  Counts start at zero and every
   update is monotone non-decreasing, so iterating to stability yields
   the least solution; the round cap only guards degenerate input.

   When the witness observes nothing — the common case of a leaf callee
   inlined into a loop body, where the edge stream retains no signal at
   all — the resolver falls back to the carry-forward estimate AutoFDO
   and Go's PGO use in the same situation: the training profile's count
   for the consumed site, scaled by the observed/trained entry ratio of
   its caller.  A statically observed witness always takes precedence
   over the estimate. *)
let resolve_instances ~site_total ~entry_total insts =
  let n = Array.length insts in
  let counts = Array.make n 0 in
  let site_credit = Hashtbl.create 64 in
  let entry_credit = Hashtbl.create 64 in
  let observed_site id = Option.value ~default:0 (Hashtbl.find_opt site_total id) in
  let credit tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  let observed_entries f =
    Option.value ~default:0 (Hashtbl.find_opt entry_total f) + credit entry_credit f
  in
  let witness_observed (i : Provenance.instance) =
    match i.Provenance.witness with
    | Provenance.W_sites ids -> List.exists (fun id -> observed_site id > 0) ids
    | Provenance.W_caller_entries _ | Provenance.W_none -> false
  in
  let scaled (i : Provenance.instance) =
    if i.Provenance.trained_count <= 0 || i.Provenance.trained_caller_entries <= 0 then 0
    else
      int_of_float
        (float_of_int i.Provenance.trained_count
        *. float_of_int (observed_entries i.Provenance.caller)
        /. float_of_int i.Provenance.trained_caller_entries)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    (* reverse chronological: late instances have un-consumed witnesses,
       so most counts settle in the first round *)
    for j = n - 1 downto 0 do
      let (i : Provenance.instance) = insts.(j) in
      let witnessed =
        match i.Provenance.witness with
        | Provenance.W_sites ids ->
          List.fold_left
            (fun acc id -> max acc (observed_site id + credit site_credit id))
            0 ids
        | Provenance.W_caller_entries f -> observed_entries f
        | Provenance.W_none -> 0
      in
      let w = if witness_observed i then witnessed else max witnessed (scaled i) in
      if w > counts.(j) then begin
        let delta = w - counts.(j) in
        counts.(j) <- w;
        bump site_credit i.Provenance.site_id delta;
        bump entry_credit i.Provenance.callee delta;
        changed := true
      end
    done
  done;
  counts

let lift t =
  Lbr.flush t.lbr;
  let profile = Profile.create () in
  (* 1. aggregate the address pairs back onto site ids / entered funcs *)
  let site_total : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let site_targets : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let entry_total : (string, int) Hashtbl.t = Hashtbl.create 512 in
  Hashtbl.iter (fun func count -> bump entry_total func count) t.external_entries;
  let dropped = ref 0 in
  let lifted = ref 0 in
  Hashtbl.iter
    (fun (from_addr, to_addr) count ->
      match (Layout.site_at t.layout from_addr, Layout.func_at t.layout to_addr) with
      | Some site_id, Some target when Hashtbl.mem t.site_info site_id ->
        lifted := !lifted + count;
        bump site_total site_id count;
        bump entry_total target count;
        let _, is_direct = Hashtbl.find t.site_info site_id in
        if not is_direct then begin
          let vp =
            match Hashtbl.find_opt site_targets site_id with
            | Some vp -> vp
            | None ->
              let vp = Hashtbl.create 4 in
              Hashtbl.replace site_targets site_id vp;
              vp
          in
          bump vp target count
        end
      | _ ->
        (* stale address: outside any known site or function range *)
        dropped := !dropped + count)
    t.pairs;
  (* 2. emission helper: direct counts at an ICP-promoted origin fold
     back into the pristine indirect site's value profile *)
  let add_direct_resolved ~origin ~count =
    match Option.bind t.provenance (fun pv -> Provenance.promotion pv origin) with
    | Some (pristine_origin, target) ->
      Profile.add_indirect profile ~origin:pristine_origin ~target ~count
    | None -> Profile.add_direct profile ~origin ~count
  in
  (* 3. observed sites, keyed by origin *)
  Hashtbl.iter
    (fun site_id count ->
      let origin, is_direct = Hashtbl.find t.site_info site_id in
      if is_direct then add_direct_resolved ~origin ~count
      else
        Hashtbl.iter
          (fun target c -> Profile.add_indirect profile ~origin ~target ~count:c)
          (Option.value ~default:(Hashtbl.create 1) (Hashtbl.find_opt site_targets site_id)))
    site_total;
  Hashtbl.iter (fun func count -> Profile.add_entry profile ~func ~count) entry_total;
  (* 4. inlined-away edges, recovered through the provenance witnesses *)
  let recovered_instances = ref 0 in
  let unrecovered_instances = ref 0 in
  let recovered_weight = ref 0 in
  (match t.provenance with
  | None -> ()
  | Some pv ->
    let insts = Array.of_list (Provenance.instances pv) in
    let counts = resolve_instances ~site_total ~entry_total insts in
    Array.iteri
      (fun j (i : Provenance.instance) ->
        let c = counts.(j) in
        if c > 0 then begin
          incr recovered_instances;
          recovered_weight := !recovered_weight + c;
          add_direct_resolved ~origin:i.Provenance.origin ~count:c;
          Profile.add_entry profile ~func:i.Provenance.callee ~count:c
        end
        else incr unrecovered_instances)
      insts);
  let stats =
    {
      lifted_pairs = !lifted;
      dropped_pairs = !dropped;
      recovered_instances = !recovered_instances;
      unrecovered_instances = !unrecovered_instances;
      recovered_weight = !recovered_weight;
    }
  in
  t.last_stats <- stats;
  if Trace.enabled () then
    Trace.counter ~cat:"profile" "collector:lift"
      [
        ("lifted_pairs", Trace.Int stats.lifted_pairs);
        ("dropped_pairs", Trace.Int stats.dropped_pairs);
        ("recovered_instances", Trace.Int stats.recovered_instances);
        ("unrecovered_instances", Trace.Int stats.unrecovered_instances);
        ("recovered_weight", Trace.Int stats.recovered_weight);
      ];
  profile

let stats t = t.last_stats

let raw_pairs t =
  Lbr.flush t.lbr;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pairs [])
