(** Inline/promotion provenance: the record the optimization passes leave
    behind so profiles collected on the {e optimized, hardened} image can
    be lifted back to pristine-kernel origin site ids.

    Production PGO systems (AutoFDO, Go's PGO) face the same problem:
    samples are taken from an already-optimized binary, where hot call
    sites have been inlined away (they emit no call edges at all) and
    promoted indirect calls show up as direct ones.  The tree records,
    per inline instance, which site was consumed and a {e witness} — an
    observable quantity whose count on the optimized image equals the
    number of times the inlined body ran — so {!Collector.lift} can
    reconstruct the vanished call edges and callee entries.  Promotions
    record the fresh direct-site origin ICP minted so its counts fold
    back into the pristine indirect site's value profile. *)

open Pibe_ir

type witness =
  | W_sites of int list
      (** live site ids whose event count equals the instance count
          (clones from once-per-invocation callee blocks, or sibling
          sites sharing the consumed site's basic block) *)
  | W_caller_entries of string
      (** the consumed block ran once per invocation of this caller:
          instance count = the caller's (recovered) entry count *)
  | W_none
      (** nothing observable on the optimized image; the lift falls back
          to the scaled carry-forward estimate recorded below *)

type instance = {
  caller : string;
  callee : string;
  site_id : int;  (** id of the consumed direct-call site *)
  origin : int;  (** its profile origin *)
  witness : witness;
  trained_count : int;
      (** the training profile's weight for the consumed site when it was
          inlined — the carry-forward estimate the lift falls back to
          (scaled by the observed/trained caller-entry ratio) when the
          witness observes nothing, e.g. a leaf callee inlined into a
          loop body *)
  trained_caller_entries : int;
      (** the training profile's entry count for [caller] at inline time,
          the denominator of that scaling ratio *)
}

type t

val create : unit -> t
val is_empty : t -> bool

val record_inline :
  t ->
  prog_before:Program.t ->
  caller:string ->
  site_id:int ->
  callee:string ->
  cloned:(int * int) list ->
  trained_count:int ->
  trained_caller_entries:int ->
  unit
(** Record one inline of [site_id] (a direct call in [caller] to
    [callee]) against the program as it was {e before} the transform.
    [cloned] lists [(new site id, callee site id)] for every call site
    cloned into the caller; the witness is derived here (dominator-based
    once-per-invocation analysis on the callee, then sibling sites, then
    the caller-entries fallback).  [trained_count] and
    [trained_caller_entries] snapshot what the training profile said
    about the consumed site and its caller, for the lift's carry-forward
    fallback. *)

val record_promotion : t -> promoted_origin:int -> origin:int -> target:string -> unit
(** ICP minted a fresh direct site with origin [promoted_origin] for
    calls from indirect site [origin] to [target]. *)

val instances : t -> instance list
(** In recording (chronological) order. *)

val inline_count : t -> int
val promotion : t -> int -> (int * string) option
val promotions : t -> (int * (int * string)) list
(** Sorted by promoted origin. *)

val promotion_count : t -> int

(** {2 Persistence}

    The tree is persisted alongside the image it describes (text form,
    like {!Profile}); a later profiling session reloads it to lift. *)

val to_string : t -> string

val of_string : string -> t
(** Raises [Failure] on malformed input. *)
