(** Lifted execution profiles.

    A profile maps *origin* call-site ids to execution counts — direct
    sites carry a plain counter, indirect sites a value profile of
    [(target function, count)] tuples — plus per-function invocation
    counts.  This is the LLVM-IR-friendly form the paper lifts its binary
    profile into (§7): optimization passes never see addresses, only these
    counts keyed by stable site identities that survive cloning (each
    clone inherits its origin id). *)

type t

val create : unit -> t

(** {2 Recording} *)

val add_direct : t -> origin:int -> count:int -> unit
val add_indirect : t -> origin:int -> target:string -> count:int -> unit
val add_entry : t -> func:string -> count:int -> unit

(** {2 Queries} *)

val direct_count : t -> origin:int -> int
val value_profile : t -> origin:int -> (string * int) list
(** Targets with counts, hottest first (ties by name for determinism). *)

val site_weight : t -> Pibe_ir.Types.site -> int
(** Count for a site by its origin: the direct counter if present, else
    the sum of its value profile. *)

val invocations : t -> string -> int
(** How often the function was entered. *)

val total_direct_weight : t -> int
val total_indirect_weight : t -> int

val profiled_indirect_origins : t -> int list
(** Origin ids that carry a value profile, ascending. *)

val merge : t -> t -> t
(** Pointwise sum (combining the 11 profiling iterations of the paper's
    methodology). *)

val merge_weighted : (float * t) list -> t
(** [merge_weighted [(w1, p1); ...]] sums every counter pointwise with the
    given non-negative weights, accumulating in floating point and
    rounding once (nearest) at the end; keys whose weighted sum rounds to
    zero are dropped.  This is the continuous-profiling combinator: a
    window ring merged with exponentially decaying weights yields the
    recency-biased training profile.  Raises [Invalid_argument] on a
    negative weight. *)

val scale : t -> float -> t
(** [scale t f] is [merge_weighted [(f, t)]]: every counter multiplied by
    [f] (non-negative) with nearest rounding, zero-rounding keys
    dropped. *)

val copy : t -> t
(** A deep, independent copy: mutating the copy (as ICP does when it moves
    promoted weight) never touches the original.  Every pipeline run
    operates on a copy of the caller's profile. *)

val remove_indirect_target : t -> origin:int -> target:string -> unit
(** Drops one target from a value profile (used by ICP when the target has
    been promoted to a direct call, leaving the fallback indirect site
    with only the residual weight). *)

(** {2 Staleness matching} *)

type match_stats = {
  direct_kept : int;
  direct_dropped : int;
  indirect_kept : int;
  indirect_dropped : int;
  entries_kept : int;
  entries_dropped : int;
  renamed_weight : int;  (** weight that flowed through a rename *)
}
(** All fields are count weights, not key counts. *)

val match_to :
  ?renames:(string * string) list -> t -> Pibe_ir.Program.t -> t * match_stats
(** Match a (possibly stale) profile against the program about to be
    built: direct counts survive only at origins that are direct-call
    origins in [prog], value-profile counts only at indirect origins
    whose target function still exists, entry counts only for existing
    functions.  The per-kind check means a site id removed in one release
    and re-minted for a different-kind site in a later one cannot leak
    weight across kinds.  [renames] maps old function names to new ones
    (applied to value-profile targets and entry counts before the
    existence check), mirroring AutoFDO's symbol-remapping input.  The
    input is not mutated.  Matching is idempotent: matching the result
    against the same program is the identity. *)

(** {2 Persistence} *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input. *)
