open Pibe_ir
open Types

type witness =
  | W_sites of int list
  | W_caller_entries of string
  | W_none

type instance = {
  caller : string;
  callee : string;
  site_id : int;
  origin : int;
  witness : witness;
  trained_count : int;
  trained_caller_entries : int;
}

type t = {
  mutable rev_instances : instance list;  (* newest first *)
  promotions : (int, int * string) Hashtbl.t;
}

let create () = { rev_instances = []; promotions = Hashtbl.create 64 }
let instances t = List.rev t.rev_instances
let inline_count t = List.length t.rev_instances
let promotion t origin = Hashtbl.find_opt t.promotions origin
let promotion_count t = Hashtbl.length t.promotions

let promotions t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.promotions [])

let is_empty t = t.rev_instances = [] && Hashtbl.length t.promotions = 0

(* ------------------------- once-block analysis ------------------------- *)

(* Blocks of [f] that execute exactly once per complete invocation: the
   block lies on every entry-to-return path (it dominates every reachable
   [Ret] block) and cannot repeat (it is not reachable from itself).
   Call sites inside such a block are witnesses: their event count on the
   profiled image equals the number of times the surrounding body ran. *)
(* Near-linear, because it runs once per inline instance on callers that
   aggressive inlining can grow to thousands of blocks: dominators by the
   Cooper-Harvey-Kennedy iterative idom scheme (RPO sweeps with chain
   intersection, O(E) per sweep and a couple of sweeps in practice) and
   cycling by one Kosaraju SCC pass, instead of O(n^2) dominator bitsets
   and a per-block DFS. *)
let once_blocks (f : func) =
  let n = Array.length f.blocks in
  let succs = Array.map (fun b -> Func.successors b.term) f.blocks in
  let reachable = Func.reachable_labels f in
  (* postorder over reachable blocks, iteratively (inlined callers can be
     deep enough to overflow the OCaml stack on a recursive DFS) *)
  let post = ref [] in
  let visited = Array.make n false in
  let rec_stack = ref [ (f.entry, ref succs.(f.entry)) ] in
  visited.(f.entry) <- true;
  while !rec_stack <> [] do
    match !rec_stack with
    | [] -> ()
    | (b, rest) :: tl -> (
      match !rest with
      | [] ->
        post := b :: !post;
        rec_stack := tl
      | s :: ss ->
        rest := ss;
        if reachable.(s) && not visited.(s) then begin
          visited.(s) <- true;
          rec_stack := (s, ref succs.(s)) :: !rec_stack
        end)
  done;
  let rpo = !post in
  let rpo_num = Array.make n (-1) in
  List.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss ->
      if reachable.(i) then
        List.iter (fun s -> if reachable.(s) then preds.(s) <- i :: preds.(s)) ss)
    succs;
  let idom = Array.make n (-1) in
  idom.(f.entry) <- f.entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_num.(!a) > rpo_num.(!b) do
        a := idom.(!a)
      done;
      while rpo_num.(!b) > rpo_num.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> f.entry then
          let ni =
            List.fold_left
              (fun acc p ->
                if idom.(p) = -1 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None preds.(b)
          in
          match ni with
          | Some ni when idom.(b) <> ni ->
            idom.(b) <- ni;
            changed := true
          | _ -> ())
      rpo
  done;
  let ret_blocks = ref [] in
  Array.iteri
    (fun i b ->
      match b.term with
      | Ret _ when reachable.(i) -> ret_blocks := i :: !ret_blocks
      | _ -> ())
    f.blocks;
  let out = Array.make n false in
  (match !ret_blocks with
  | [] -> ()
  | r0 :: rest ->
    (* blocks dominating every ret = the idom chain of the rets' nearest
       common dominator, inclusive *)
    let nca = List.fold_left intersect r0 rest in
    let b = ref nca in
    out.(!b) <- true;
    while !b <> f.entry do
      b := idom.(!b);
      out.(!b) <- true
    done;
    (* strike the chain blocks that can repeat: members of a non-trivial
       SCC, or self-loops (Kosaraju: the postorder above, then reverse
       reachability in completion order) *)
    let comp = Array.make n (-1) in
    let comp_size = Array.make n 0 in
    List.iter
      (fun root ->
        if comp.(root) = -1 then begin
          let stack = ref [ root ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | b :: tl ->
              stack := tl;
              if comp.(b) = -1 then begin
                comp.(b) <- root;
                comp_size.(root) <- comp_size.(root) + 1;
                List.iter
                  (fun p -> if reachable.(p) && comp.(p) = -1 then stack := p :: !stack)
                  preds.(b)
              end
          done
        end)
      rpo;
    Array.iteri
      (fun b on_chain ->
        if
          on_chain
          && (comp_size.(comp.(b)) > 1 || List.mem b succs.(b))
        then out.(b) <- false)
      out);
  out

let sites_in_block (b : block) =
  Array.to_list
    (Array.map
       (function
         | Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ } ->
           Some site.site_id
         | Assign _ | Store _ | Observe _ -> None)
       b.insts)
  |> List.filter_map Fun.id

(* ----------------------------- recording ----------------------------- *)

let record_inline t ~prog_before ~caller ~site_id ~callee ~cloned ~trained_count
    ~trained_caller_entries =
  let cf = Program.find prog_before caller in
  let ff = Program.find prog_before callee in
  (* the consumed site: its origin and the caller block holding it *)
  let consumed = ref None in
  Array.iteri
    (fun bi b ->
      Array.iter
        (function
          | Call { site; _ } when site.site_id = site_id ->
            consumed := Some (site.site_origin, bi)
          | _ -> ())
        b.insts)
    cf.blocks;
  let origin, bi =
    match !consumed with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Provenance.record_inline: site %d not found in %s" site_id caller)
  in
  (* preferred witness: a clone of a callee site that ran once per
     invocation of the callee body *)
  let callee_once = once_blocks ff in
  let callee_block_of = Hashtbl.create 16 in
  Array.iteri
    (fun cbi b ->
      List.iter (fun sid -> Hashtbl.replace callee_block_of sid cbi) (sites_in_block b))
    ff.blocks;
  let internal =
    List.filter_map
      (fun (new_id, callee_sid) ->
        match Hashtbl.find_opt callee_block_of callee_sid with
        | Some cbi when callee_once.(cbi) -> Some new_id
        | _ -> None)
      cloned
  in
  let witness =
    if internal <> [] then W_sites (List.sort compare internal)
    else
      (* fallback 1: a sibling site in the consumed site's own block runs
         exactly as often as the consumed call did *)
      let siblings =
        List.filter (fun sid -> sid <> site_id) (sites_in_block cf.blocks.(bi))
      in
      if siblings <> [] then W_sites (List.sort compare siblings)
      else if (once_blocks cf).(bi) then
        (* fallback 2: the consumed block runs once per caller entry *)
        W_caller_entries caller
      else W_none
  in
  t.rev_instances <-
    { caller; callee; site_id; origin; witness; trained_count; trained_caller_entries }
    :: t.rev_instances

let record_promotion t ~promoted_origin ~origin ~target =
  Hashtbl.replace t.promotions promoted_origin (origin, target)

(* ---------------------------- persistence ---------------------------- *)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "provenance {\n";
  List.iter
    (fun (po, (origin, target)) ->
      Buffer.add_string buf (Printf.sprintf "  promo %d = %d @%s\n" po origin target))
    (promotions t);
  List.iter
    (fun i ->
      let w =
        match i.witness with
        | W_sites ids -> "sites " ^ String.concat "," (List.map string_of_int ids)
        | W_caller_entries f -> "entries @" ^ f
        | W_none -> "none"
      in
      Buffer.add_string buf
        (Printf.sprintf "  inline @%s @%s %d %d %d %d %s\n" i.caller i.callee i.site_id
           i.origin i.trained_count i.trained_caller_entries w))
    (instances t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_string text =
  let t = create () in
  let fail line = failwith ("Provenance.of_string: malformed line: " ^ line) in
  let parse_name tok line =
    if String.length tok >= 2 && tok.[0] = '@' then String.sub tok 1 (String.length tok - 1)
    else fail line
  in
  let parse_int tok line = try int_of_string tok with Failure _ -> fail line in
  let rev = ref [] in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || line = "provenance {" || line = "}" then ()
      else
        match String.split_on_char ' ' line with
        | [ "promo"; po; "="; origin; target ] ->
          record_promotion t ~promoted_origin:(parse_int po line)
            ~origin:(parse_int origin line) ~target:(parse_name target line)
        | "inline" :: caller :: callee :: site_id :: origin :: trained :: tce :: w ->
          let witness =
            match w with
            | [ "none" ] -> W_none
            | [ "entries"; f ] -> W_caller_entries (parse_name f line)
            | [ "sites"; ids ] ->
              W_sites (List.map (fun s -> parse_int s line) (String.split_on_char ',' ids))
            | _ -> fail line
          in
          rev :=
            {
              caller = parse_name caller line;
              callee = parse_name callee line;
              site_id = parse_int site_id line;
              origin = parse_int origin line;
              witness;
              trained_count = parse_int trained line;
              trained_caller_entries = parse_int tce line;
            }
            :: !rev
        | _ -> fail line)
    (String.split_on_char '\n' text);
  t.rev_instances <- !rev;
  t
