(** PIBE's profile-guided inliner (paper §5.2).

    Inlining here is a *security* transformation: each inlined call site
    removes one backward edge (the callee's return) from the hot path, so
    the weight-ordered greedy walk maximizes the execution count of
    returns elided.  Three rules govern it:

    - Rule 1 (hot budget): only candidates within [budget_pct] percent of
      the cumulative profiled weight are considered, hottest first;
      call sites exposed by earlier inlining inherit the heuristic count
      [weight(site in callee) * inlined_weight / invocations(callee)]
      (Scheifler-style constant-ratio assumption) and join the worklist
      when they still fit the budget cutoff;
    - Rule 2 (caller complexity): a site is skipped when the caller's
      InlineCost would exceed [rule2_threshold] (default 12,000);
    - Rule 3 (callee complexity): a site is skipped when the callee's
      InlineCost alone exceeds [rule3_threshold] (default 3,000).

    The [lax_within_pct] option reproduces the paper's best "lax
    heuristics" configuration: size rules are disabled for sites hot
    enough to fit in that (tighter) budget. *)

open Pibe_ir

type config = {
  budget_pct : float;
  rule2_threshold : int;
  rule3_threshold : int;
  lax_within_pct : float option;
}

val default_config : config
(** 99.9% budget, thresholds 12,000 / 3,000, no lax window. *)

type stats = {
  total_weight : int;  (** profiled weight over every direct call site *)
  eligible_weight : int;  (** weight of candidates within the budget (Table 9 "Ovr.") *)
  initial_candidates : int;
  initial_candidate_weight : int;
  inlined_sites : int;  (** inline operations performed = return sites elided *)
  inlined_weight : int;  (** execution counts whose backward edge was elided *)
  blocked_rule2_weight : int;
  blocked_rule3_weight : int;
  blocked_other_weight : int;  (** noinline / optnone / asm / recursion *)
  total_ret_sites_before : int;
  total_ret_sites_after : int;
}

val run :
  ?provenance:Pibe_profile.Provenance.t ->
  Program.t ->
  Pibe_profile.Profile.t ->
  config ->
  Program.t * stats
(** Runs promotion-aware greedy inlining over the whole program.  The
    profile is read-only; cloned sites keep their origins so later passes
    still find their counts.  When [provenance] is given, every inline is
    recorded there so profiles collected on the optimized image can be
    lifted back to pristine origins (see {!Pibe_profile.Provenance}). *)
