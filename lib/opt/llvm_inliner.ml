open Pibe_ir
open Types
module Profile = Pibe_profile.Profile

type config = {
  budget_pct : float;
  hot_callee_threshold : int;
  cold_callee_threshold : int;
  caller_cap : int;
}

(* The kernel builds the paper compares against do not feed a profile to
   the inliner, so every call site is sized against LLVM's *default*
   threshold (225) with only a mild bump for inline-hinted (formerly hot)
   sites -- "its inlining decisions are made solely based on size
   complexity and inline hints" (paper section 8.4). *)
let default_config =
  {
    budget_pct = 99.9;
    hot_callee_threshold = 325;
    cold_callee_threshold = 225;
    caller_cap = Inline_cost.rule2_default;
  }

type stats = {
  inlined_sites : int;
  inlined_weight : int;
  blocked_weight : int;
}

let run ?provenance prog profile config =
  let cg = Pibe_cg.Callgraph.build prog in
  let order = Pibe_cg.Callgraph.bottom_up_order cg in
  let prog = ref prog in
  (* Hot cutoff from the budget over all direct sites. *)
  let weighted =
    List.rev
      (Program.fold_funcs !prog ~init:[] ~f:(fun acc f ->
           List.fold_left
             (fun acc (site, _) -> (site.site_id, Profile.site_weight profile site) :: acc)
             acc (Func.call_sites f)))
  in
  let hot_cutoff = (Budget.select ~budget_pct:config.budget_pct weighted).Budget.cutoff_weight in
  let inlined_sites = ref 0 in
  let inlined_weight = ref 0 in
  let blocked_weight = ref 0 in
  let blocked_seen = Hashtbl.create 256 in
  let cost_of name = Inline_cost.func_cost (Program.find !prog name) in
  let inlinable ~caller ~callee =
    match Program.find_opt !prog callee with
    | None -> false
    | Some callee_f ->
      let caller_f = Program.find !prog caller in
      (not callee_f.attrs.noinline) && (not callee_f.attrs.optnone)
      && (not callee_f.attrs.is_asm) && (not caller_f.attrs.optnone)
      && (not caller_f.attrs.is_asm)
      && (not (String.equal caller callee))
      && (not (Pibe_cg.Callgraph.in_recursive_cycle cg callee))
      && not (Pibe_cg.Callgraph.reaches cg ~src:callee ~dst:caller)
  in
  let process_caller caller =
    (* Iterate to a fixed point: inlining exposes the callee's sites in
       source order, which LLVM's inliner would also visit. *)
    let continue = ref true in
    let iterations = ref 0 in
    while !continue && !iterations < 200 do
      incr iterations;
      continue := false;
      let f = Program.find !prog caller in
      let sites = Func.call_sites f in
      let caller_cost = Inline_cost.func_cost f in
      let try_site (site, callee) =
        if inlinable ~caller ~callee then begin
          let weight = Profile.site_weight profile site in
          let callee_cost = cost_of callee in
          let threshold =
            if weight >= hot_cutoff && weight > 0 then config.hot_callee_threshold
            else config.cold_callee_threshold
          in
          if callee_cost <= threshold && caller_cost + callee_cost <= config.caller_cap then begin
            let prog_before = !prog in
            let p, cloned = Transform.inline_call !prog ~caller ~site_id:site.site_id in
            prog := p;
            Option.iter
              (fun pv ->
                Pibe_profile.Provenance.record_inline pv ~prog_before ~caller
                  ~site_id:site.site_id ~callee
                  ~cloned:
                    (List.map
                       (fun (c : Transform.cloned_site) ->
                         (c.Transform.new_site.site_id, c.Transform.callee_site.site_id))
                       cloned)
                  ~trained_count:weight
                  ~trained_caller_entries:(Profile.invocations profile caller))
              provenance;
            incr inlined_sites;
            inlined_weight := !inlined_weight + weight;
            continue := true;
            true
          end
          else begin
            if weight > 0 && not (Hashtbl.mem blocked_seen site.site_id) then begin
              Hashtbl.replace blocked_seen site.site_id ();
              blocked_weight := !blocked_weight + weight
            end;
            false
          end
        end
        else false
      in
      (* Inline at most one site per scan; costs are recomputed next
         round. *)
      ignore (List.exists try_site sites)
    done
  in
  List.iter process_caller order;
  (!prog, { inlined_sites = !inlined_sites; inlined_weight = !inlined_weight; blocked_weight = !blocked_weight })
