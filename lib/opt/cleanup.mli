(** Post-inlining scalar cleanup.

    The paper (§5.2) notes that inlining's main traditional benefit is the
    follow-on optimization it unlocks (constant propagation, dead-code
    elimination, ...).  This pass supplies exactly that follow-on work so
    the PGO baseline earns its speedup the same way the authors' LTO
    pipeline does:

    - constant folding and block-local constant/copy propagation,
    - branch folding ([br] on a known condition, [switch] on a constant),
    - unreachable-block removal,
    - jump threading through empty forwarding blocks,
    - dead-store elimination of pure assignments (global register
      liveness; calls, stores and observes are never touched).

    The pass is a fixed point of all of the above and preserves observable
    semantics (differentially tested). *)

open Pibe_ir

val run_func : Types.func -> Types.func
val run : Program.t -> Program.t
(** Cleans every function that is not [optnone]/[is_asm]. *)

type stats = {
  folded : int;  (** operands/exprs replaced by constants or copies *)
  branches_folded : int;
  blocks_removed : int;
  dead_assigns_removed : int;
}

val run_func_with_stats : Types.func -> Types.func * stats

val run_with_stats : Program.t -> Program.t * stats
(** [run] with the per-function statistics summed program-wide (fed to the
    pass manager's per-pass reporting). *)
