(** IR-to-IR surgery shared by the optimization passes: callee splicing
    for the inliners and block splitting for indirect call promotion.
    All transformations preserve observable semantics (checked by
    differential interpretation in the test suite). *)

open Pibe_ir

type clone_kind =
  | Cloned_direct of string  (** a direct call to the named callee *)
  | Cloned_indirect
  | Cloned_asm

type cloned_site = {
  new_site : Types.site;  (** fresh id, origin inherited from the callee's site *)
  callee_site : Types.site;  (** the site as it appeared inside the callee *)
  kind : clone_kind;
}

val find_site_in_func : Types.func -> int -> (int * int * Types.inst) option
(** [(block index, instruction index, instruction)] of the call site with
    the given id, if present.  Site ids are unique program-wide, so the
    scan stops at the first hit. *)

val inline_call :
  Program.t -> caller:string -> site_id:int -> Program.t * cloned_site list
(** Replaces the direct call with the callee's body: arguments become
    register moves, every [Ret] becomes an assignment to the call's
    destination plus a jump to the continuation block.  The callee's call
    sites are cloned with fresh ids (origins preserved) and reported.
    Raises [Invalid_argument] if the site is missing, is not a direct
    call, or the callee is unknown. *)

type promotion = {
  fallback_site : Types.site;  (** the residual indirect call *)
  promoted : (string * Types.site) list;  (** target -> its new direct-call site *)
}

val promote_icall :
  Program.t -> caller:string -> site_id:int -> targets:string list -> Program.t * promotion
(** Rewrites the indirect call into a compare ladder over [targets] (in
    the given order, hottest first) with direct calls, keeping the
    original indirect call as the final fallback.  Each target must be in
    the program's fptr table.  Raises [Invalid_argument] on a missing or
    non-indirect site or an unregistered target. *)
