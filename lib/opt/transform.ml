open Pibe_ir
open Types

type clone_kind =
  | Cloned_direct of string
  | Cloned_indirect
  | Cloned_asm

type cloned_site = {
  new_site : site;
  callee_site : site;
  kind : clone_kind;
}

type promotion = {
  fallback_site : site;
  promoted : (string * site) list;
}

exception Found_site of int * int * inst

(* Site ids are unique program-wide (validated), so the first hit is the
   only hit: stop scanning as soon as it is found instead of walking the
   remaining blocks and instructions. *)
let find_site_in_func f site_id =
  try
    Array.iteri
      (fun bi b ->
        Array.iteri
          (fun j i ->
            match i with
            | (Call { site; _ } | Icall { site; _ } | Asm_icall { site; _ })
              when site.site_id = site_id ->
              raise_notrace (Found_site (bi, j, i))
            | _ -> ())
          b.insts)
      f.blocks;
    None
  with Found_site (bi, j, i) -> Some (bi, j, i)

let offset_operand off = function
  | Reg r -> Reg (r + off)
  | Imm _ as o -> o

let offset_expr off = function
  | Const _ as e -> e
  | Move o -> Move (offset_operand off o)
  | Binop (op, a, b) -> Binop (op, offset_operand off a, offset_operand off b)
  | Load o -> Load (offset_operand off o)

(* ------------------------------------------------------------------ *)
(* Inlining                                                             *)
(* ------------------------------------------------------------------ *)

let inline_call prog ~caller ~site_id =
  let cf =
    match Program.find_opt prog caller with
    | Some f -> f
    | None -> invalid_arg ("Transform.inline_call: unknown caller " ^ caller)
  in
  let bi, j, inst =
    match find_site_in_func cf site_id with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Transform.inline_call: site %d not found in %s" site_id caller)
  in
  let dst, callee, args =
    match inst with
    | Call { dst; callee; args; _ } -> (dst, callee, args)
    | Icall _ | Asm_icall _ | Assign _ | Store _ | Observe _ ->
      invalid_arg
        (Printf.sprintf "Transform.inline_call: site %d in %s is not a direct call" site_id
           caller)
  in
  let ff =
    match Program.find_opt prog callee with
    | Some f -> f
    | None -> invalid_arg ("Transform.inline_call: unknown callee " ^ callee)
  in
  let n = Array.length cf.blocks in
  let m = Array.length ff.blocks in
  let off = cf.nregs in
  let cont = n + m in
  let prog = ref prog in
  let cloned = ref [] in
  let clone_site_inst i =
    let fresh origin =
      let p, s = Program.clone_site !prog ~origin in
      prog := p;
      s
    in
    match i with
    | Call c ->
      let s = fresh c.site in
      cloned := { new_site = s; callee_site = c.site; kind = Cloned_direct c.callee } :: !cloned;
      Call
        {
          c with
          site = s;
          dst = Option.map (fun r -> r + off) c.dst;
          args = List.map (offset_operand off) c.args;
        }
    | Icall c ->
      let s = fresh c.site in
      cloned := { new_site = s; callee_site = c.site; kind = Cloned_indirect } :: !cloned;
      Icall
        {
          site = s;
          dst = Option.map (fun r -> r + off) c.dst;
          fptr = offset_operand off c.fptr;
          args = List.map (offset_operand off) c.args;
        }
    | Asm_icall c ->
      let s = fresh c.site in
      cloned := { new_site = s; callee_site = c.site; kind = Cloned_asm } :: !cloned;
      Asm_icall { fptr = offset_operand off c.fptr; site = s }
    | Assign (r, e) -> Assign (r + off, offset_expr off e)
    | Store (a, v) -> Store (offset_operand off a, offset_operand off v)
    | Observe v -> Observe (offset_operand off v)
  in
  let map_label l = n + l in
  let map_callee_term = function
    | Jmp l -> ([||], Jmp (map_label l))
    | Br (c, l1, l2) -> ([||], Br (offset_operand off c, map_label l1, map_label l2))
    | Switch s ->
      ( [||],
        Switch
          {
            s with
            scrutinee = offset_operand off s.scrutinee;
            cases = Array.map (fun (v, l) -> (v, map_label l)) s.cases;
            default = map_label s.default;
          } )
    | Ret v ->
      let extra =
        match (dst, v) with
        | Some d, Some o -> [| Assign (d, Move (offset_operand off o)) |]
        | Some d, None -> [| Assign (d, Const 0) |]
        | None, _ -> [||]
      in
      (extra, Jmp cont)
  in
  let split_block = cf.blocks.(bi) in
  let prefix = Array.sub split_block.insts 0 j in
  let suffix =
    Array.sub split_block.insts (j + 1) (Array.length split_block.insts - j - 1)
  in
  (* Calling-convention glue, matching the engine's frame semantics:
     surplus arguments are dropped, missing parameters read as zero.  The
     explicit zeroing matters when the caller's CFG re-enters the inlined
     body (a loop): a fresh frame would have reset the register. *)
  let param_moves =
    Array.init ff.params (fun i ->
        match List.nth_opt args i with
        | Some a -> Assign (off + i, Move a)
        | None -> Assign (off + i, Const 0))
  in
  let blocks =
    Array.init (n + m + 1) (fun l ->
        if l = bi then
          { insts = Array.append prefix param_moves; term = Jmp (map_label ff.entry) }
        else if l < n then cf.blocks.(l)
        else if l < n + m then begin
          let fb = ff.blocks.(l - n) in
          let insts = Array.map clone_site_inst fb.insts in
          let extra, term = map_callee_term fb.term in
          { insts = Array.append insts extra; term }
        end
        else { insts = suffix; term = split_block.term })
  in
  let cf' = { cf with blocks; nregs = cf.nregs + ff.nregs } in
  (Program.update_func !prog cf', List.rev !cloned)

(* ------------------------------------------------------------------ *)
(* Indirect call promotion                                              *)
(* ------------------------------------------------------------------ *)

let promote_icall prog ~caller ~site_id ~targets =
  let cf =
    match Program.find_opt prog caller with
    | Some f -> f
    | None -> invalid_arg ("Transform.promote_icall: unknown caller " ^ caller)
  in
  let bi, j, inst =
    match find_site_in_func cf site_id with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Transform.promote_icall: site %d not found in %s" site_id caller)
  in
  let dst, fptr, args, orig_site =
    match inst with
    | Icall { dst; fptr; args; site } -> (dst, fptr, args, site)
    | Call _ | Asm_icall _ | Assign _ | Store _ | Observe _ ->
      invalid_arg
        (Printf.sprintf "Transform.promote_icall: site %d in %s is not an indirect call"
           site_id caller)
  in
  if targets = [] then invalid_arg "Transform.promote_icall: empty target list";
  let prog = ref prog in
  let target_indices =
    List.map
      (fun t ->
        match Program.fptr_index !prog t with
        | Some i -> (t, i)
        | None -> invalid_arg ("Transform.promote_icall: target not in fptr table: @" ^ t))
      targets
  in
  let fresh_site () =
    let p, s = Program.fresh_site !prog in
    prog := p;
    s
  in
  let clone_fallback () =
    let p, s = Program.clone_site !prog ~origin:orig_site in
    prog := p;
    s
  in
  let n = Array.length cf.blocks in
  let split_block = cf.blocks.(bi) in
  let prefix = Array.sub split_block.insts 0 j in
  let suffix =
    Array.sub split_block.insts (j + 1) (Array.length split_block.insts - j - 1)
  in
  let k = List.length target_indices in
  (* Layout of the new blocks appended after the existing ones:
       n + 2*i     : direct call to target i, jmp cont
       n + 2*i + 1 : test for target i+1 (or the fallback when i = k-1)
       n + 2*k     : cont (suffix + original terminator)
     The head block [bi] keeps the prefix and tests target 0. *)
  let cont = n + (2 * k) in
  let nregs = ref cf.nregs in
  let fresh_reg () =
    let r = !nregs in
    incr nregs;
    r
  in
  let test_insts_and_term (t_idx : int) ~(call_block : label) ~(next_block : label) =
    let c = fresh_reg () in
    ([| Assign (c, Binop (Eq, fptr, Imm t_idx)) |], Br (Reg c, call_block, next_block))
  in
  let promoted = ref [] in
  let call_block target =
    let s = fresh_site () in
    promoted := (target, s) :: !promoted;
    { insts = [| Call { dst; callee = target; args; site = s; tail = false } |]; term = Jmp cont }
  in
  let fallback_site = clone_fallback () in
  let fallback_block =
    { insts = [| Icall { dst; fptr; args; site = fallback_site } |]; term = Jmp cont }
  in
  let targets_arr = Array.of_list target_indices in
  (* Build test/call blocks. *)
  let extra_blocks = Array.make ((2 * k) + 1) fallback_block in
  List.iteri
    (fun i (t, _) ->
      extra_blocks.(2 * i) <- call_block t;
      if i < k - 1 then begin
        let _, next_idx = targets_arr.(i + 1) in
        let insts, term =
          test_insts_and_term next_idx
            ~call_block:(n + (2 * (i + 1)))
            ~next_block:(if i + 1 < k - 1 then n + (2 * (i + 1)) + 1 else n + (2 * (k - 1)) + 1)
        in
        extra_blocks.((2 * i) + 1) <- { insts; term }
      end
      else extra_blocks.((2 * i) + 1) <- fallback_block)
    target_indices;
  extra_blocks.(2 * k) <- { insts = suffix; term = split_block.term };
  let head_insts, head_term =
    let _, idx0 = targets_arr.(0) in
    let insts, term =
      test_insts_and_term idx0 ~call_block:n
        ~next_block:(if k > 1 then n + 1 else n + 1 (* fallback at n+1 when k=1 *))
    in
    (Array.append prefix insts, term)
  in
  let blocks =
    Array.init (n + (2 * k) + 1) (fun l ->
        if l = bi then { insts = head_insts; term = head_term }
        else if l < n then cf.blocks.(l)
        else extra_blocks.(l - n))
  in
  let cf' = { cf with blocks; nregs = !nregs } in
  ( Program.update_func !prog cf',
    { fallback_site; promoted = List.rev !promoted } )
