(** Model of LLVM's default (bottom-up, size-driven) PGO inliner, the
    baseline of paper §8.4.

    It visits the call graph bottom-up and inlines purely on size
    complexity: callees under a mildly raised threshold (325) at
    inline-hinted (profiled-hot) sites, callees under LLVM's default
    threshold (225) elsewhere, with the same caller-growth cap as PIBE's
    Rule 2.  The visit order ignores profile weight and the thresholds
    only admit small callees, so most of the hot backward edges PIBE
    removes stay in place — the §8.4 defect PIBE's weight-ordered,
    elision-targeted walk removes. *)

open Pibe_ir

type config = {
  budget_pct : float;  (** sites within this budget count as hot *)
  hot_callee_threshold : int;
  cold_callee_threshold : int;
  caller_cap : int;
}

val default_config : config

type stats = {
  inlined_sites : int;
  inlined_weight : int;  (** profiled weight of inlined sites *)
  blocked_weight : int;  (** profiled weight blocked by size limits *)
}

val run :
  ?provenance:Pibe_profile.Provenance.t ->
  Program.t ->
  Pibe_profile.Profile.t ->
  config ->
  Program.t * stats
(** [provenance], when given, records every inline for optimized-image
    profile lifting (see {!Pibe_profile.Provenance}). *)
