open Pibe_ir
open Types

type stats = {
  folded : int;
  branches_folded : int;
  blocks_removed : int;
  dead_assigns_removed : int;
}

let zero_stats = { folded = 0; branches_folded = 0; blocks_removed = 0; dead_assigns_removed = 0 }

let add_stats a b =
  {
    folded = a.folded + b.folded;
    branches_folded = a.branches_folded + b.branches_folded;
    blocks_removed = a.blocks_removed + b.blocks_removed;
    dead_assigns_removed = a.dead_assigns_removed + b.dead_assigns_removed;
  }

(* ------------------------------------------------------------------ *)
(* Block-local constant / copy propagation with folding.               *)
(* ------------------------------------------------------------------ *)

type binding =
  | Known of int
  | Copy of reg

let propagate_block b =
  let env : (reg, binding) Hashtbl.t = Hashtbl.create 16 in
  let folded = ref 0 in
  let resolve_operand o =
    match o with
    | Imm _ -> o
    | Reg r -> (
      match Hashtbl.find_opt env r with
      | Some (Known c) ->
        incr folded;
        Imm c
      | Some (Copy r') ->
        incr folded;
        Reg r'
      | None -> o)
  in
  (* Reassigning [d] kills both its binding and any copies of it. *)
  let kill d =
    Hashtbl.remove env d;
    let stale =
      Hashtbl.fold (fun k v acc -> if v = Copy d then k :: acc else acc) env []
    in
    List.iter (Hashtbl.remove env) stale
  in
  let rewrite_expr e =
    match e with
    | Const _ -> e
    | Move o -> (
      match resolve_operand o with
      | Imm c -> Const c
      | Reg _ as o' -> Move o')
    | Binop (op, a, b) -> (
      match (resolve_operand a, resolve_operand b) with
      | Imm x, Imm y ->
        incr folded;
        Const (eval_binop op x y)
      | a', b' -> Binop (op, a', b'))
    | Load o -> Load (resolve_operand o)
  in
  let rewrite_inst i =
    match i with
    | Assign (d, e) ->
      let e' = rewrite_expr e in
      kill d;
      (match e' with
      | Const c -> Hashtbl.replace env d (Known c)
      | Move (Reg s) -> Hashtbl.replace env d (Copy s)
      | Move (Imm _) | Binop _ | Load _ -> ());
      Assign (d, e')
    | Store (a, v) -> Store (resolve_operand a, resolve_operand v)
    | Observe v -> Observe (resolve_operand v)
    | Call c ->
      let i' = Call { c with args = List.map resolve_operand c.args } in
      Option.iter kill c.dst;
      i'
    | Icall c ->
      let i' =
        Icall
          { c with fptr = resolve_operand c.fptr; args = List.map resolve_operand c.args }
      in
      Option.iter kill c.dst;
      i'
    | Asm_icall c -> Asm_icall { c with fptr = resolve_operand c.fptr }
  in
  let insts = Array.map rewrite_inst b.insts in
  let branches_folded = ref 0 in
  let term =
    match b.term with
    | Jmp _ as t -> t
    | Br (c, l1, l2) -> (
      match resolve_operand c with
      | Imm v ->
        incr branches_folded;
        Jmp (if v <> 0 then l1 else l2)
      | Reg _ as c' -> Br (c', l1, l2))
    | Switch s -> (
      match resolve_operand s.scrutinee with
      | Imm v ->
        incr branches_folded;
        let target =
          match Array.find_opt (fun (case, _) -> case = v) s.cases with
          | Some (_, l) -> l
          | None -> s.default
        in
        Jmp target
      | Reg _ as sc -> Switch { s with scrutinee = sc })
    | Ret v -> Ret (Option.map resolve_operand v)
  in
  ({ insts; term }, !folded, !branches_folded)

(* ------------------------------------------------------------------ *)
(* Jump threading + unreachable-block removal (joint label rewrite).   *)
(* ------------------------------------------------------------------ *)

let map_labels term ~f =
  match term with
  | Jmp l -> Jmp (f l)
  | Br (c, l1, l2) -> Br (c, f l1, f l2)
  | Switch s ->
    Switch { s with cases = Array.map (fun (v, l) -> (v, f l)) s.cases; default = f s.default }
  | Ret _ as t -> t

let thread_and_compact f =
  let n = Array.length f.blocks in
  (* forwarding: an empty block ending in jmp forwards to its target *)
  let forward = Array.init n (fun l -> l) in
  Array.iteri
    (fun l b ->
      match b.term with
      | Jmp m when Array.length b.insts = 0 && m <> l -> forward.(l) <- m
      | _ -> ())
    f.blocks;
  let rec resolve seen l =
    if List.mem l seen then l
    else if forward.(l) = l then l
    else resolve (l :: seen) forward.(l)
  in
  let resolve l = resolve [] l in
  let blocks =
    Array.map (fun b -> { b with term = map_labels b.term ~f:resolve }) f.blocks
  in
  let f = { f with blocks } in
  (* drop unreachable blocks and compact the label space *)
  let reachable = Func.reachable_labels f in
  let mapping = Array.make n (-1) in
  let next = ref 0 in
  Array.iteri
    (fun l r ->
      if r then begin
        mapping.(l) <- !next;
        incr next
      end)
    reachable;
  let removed = n - !next in
  if removed = 0 then (f, 0)
  else begin
    let kept = Array.make !next { insts = [||]; term = Ret None } in
    Array.iteri
      (fun l b ->
        if reachable.(l) then
          kept.(mapping.(l)) <- { b with term = map_labels b.term ~f:(fun m -> mapping.(m)) })
      f.blocks;
    ({ f with blocks = kept }, removed)
  end

(* ------------------------------------------------------------------ *)
(* Global liveness + dead pure-assignment elimination.                 *)
(* ------------------------------------------------------------------ *)

module Regset = Set.Make (Int)

let operand_uses acc = function
  | Imm _ -> acc
  | Reg r -> Regset.add r acc

let expr_uses acc = function
  | Const _ -> acc
  | Move o | Load o -> operand_uses acc o
  | Binop (_, a, b) -> operand_uses (operand_uses acc a) b

let inst_uses acc = function
  | Assign (_, e) -> expr_uses acc e
  | Store (a, v) -> operand_uses (operand_uses acc a) v
  | Observe v -> operand_uses acc v
  | Call { args; _ } -> List.fold_left operand_uses acc args
  | Icall { fptr; args; _ } -> List.fold_left operand_uses (operand_uses acc fptr) args
  | Asm_icall { fptr; _ } -> operand_uses acc fptr

let term_uses acc = function
  | Jmp _ -> acc
  | Br (c, _, _) -> operand_uses acc c
  | Switch { scrutinee; _ } -> operand_uses acc scrutinee
  | Ret (Some v) -> operand_uses acc v
  | Ret None -> acc

let eliminate_dead f =
  let n = Array.length f.blocks in
  (* backward dataflow: live-in/live-out per block *)
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let block_live_in l =
    let b = f.blocks.(l) in
    let live = ref (term_uses live_out.(l) b.term) in
    for i = Array.length b.insts - 1 downto 0 do
      (match b.insts.(i) with
      | Assign (d, _) -> live := Regset.remove d !live
      | Call { dst = Some d; _ } | Icall { dst = Some d; _ } -> live := Regset.remove d !live
      | Call { dst = None; _ } | Icall { dst = None; _ } | Asm_icall _ | Store _ | Observe _
        -> ());
      live := inst_uses !live b.insts.(i)
    done;
    !live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for l = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Regset.union acc live_in.(s))
          Regset.empty
          (Func.successors f.blocks.(l).term)
      in
      if not (Regset.equal out live_out.(l)) then begin
        live_out.(l) <- out;
        changed := true
      end;
      let inn = block_live_in l in
      if not (Regset.equal inn live_in.(l)) then begin
        live_in.(l) <- inn;
        changed := true
      end
    done
  done;
  let removed = ref 0 in
  let blocks =
    Array.mapi
      (fun l b ->
        let live = ref (term_uses live_out.(l) b.term) in
        let kept = ref [] in
        for i = Array.length b.insts - 1 downto 0 do
          let inst = b.insts.(i) in
          let keep =
            match inst with
            | Assign (d, _) when not (Regset.mem d !live) ->
              (* pure computation whose result is never read: drop it
                 (loads are treated as speculatable, as in LLVM) *)
              incr removed;
              false
            | Assign _ | Store _ | Observe _ | Call _ | Icall _ | Asm_icall _ -> true
          in
          if keep then begin
            (match inst with
            | Assign (d, _) -> live := Regset.remove d !live
            | Call { dst = Some d; _ } | Icall { dst = Some d; _ } ->
              live := Regset.remove d !live
            | _ -> ());
            live := inst_uses !live inst;
            kept := inst :: !kept
          end
        done;
        { b with insts = Array.of_list !kept })
      f.blocks
  in
  ({ f with blocks }, !removed)

(* ------------------------------------------------------------------ *)

let run_once f =
  let folded = ref 0 and branches = ref 0 in
  let blocks =
    Array.map
      (fun b ->
        let b', fo, br = propagate_block b in
        folded := !folded + fo;
        branches := !branches + br;
        b')
      f.blocks
  in
  let f = { f with blocks } in
  let f, removed_blocks = thread_and_compact f in
  let f, dead = eliminate_dead f in
  ( f,
    {
      folded = !folded;
      branches_folded = !branches;
      blocks_removed = removed_blocks;
      dead_assigns_removed = dead;
    } )

let run_func_with_stats f =
  let rec go f acc iters =
    if iters = 0 then (f, acc)
    else
      let f', s = run_once f in
      let acc = add_stats acc s in
      if f' = f then (f', acc) else go f' acc (iters - 1)
  in
  go f zero_stats 8

let run_func f = fst (run_func_with_stats f)

let run_with_stats prog =
  Program.fold_funcs prog ~init:(prog, zero_stats) ~f:(fun (acc, total) f ->
      if f.attrs.optnone || f.attrs.is_asm then (acc, total)
      else
        let f', s = run_func_with_stats f in
        (Program.update_func acc f', add_stats total s))

let run prog = fst (run_with_stats prog)
