open Pibe_ir
open Types

type stats = {
  folded : int;
  branches_folded : int;
  blocks_removed : int;
  dead_assigns_removed : int;
}

let zero_stats = { folded = 0; branches_folded = 0; blocks_removed = 0; dead_assigns_removed = 0 }

let add_stats a b =
  {
    folded = a.folded + b.folded;
    branches_folded = a.branches_folded + b.branches_folded;
    blocks_removed = a.blocks_removed + b.blocks_removed;
    dead_assigns_removed = a.dead_assigns_removed + b.dead_assigns_removed;
  }

(* ------------------------------------------------------------------ *)
(* Block-local constant / copy propagation with folding.               *)
(* ------------------------------------------------------------------ *)

type binding =
  | Known of int
  | Copy of reg

(* All rewrites below preserve physical identity when nothing changes:
   an untouched instruction comes back [==] to the input, an untouched
   block comes back as the same record, and a converged [run_once]
   returns the function it was given.  That makes the fixpoint check in
   [run_func_with_stats] (and the structural compares inside it) hit the
   O(1) pointer-equality shortcut instead of retraversing the whole IR,
   and it stops every pass from reallocating an identical copy of every
   function it merely inspects.  The produced values are structurally
   identical either way, so pass output and stats do not change. *)

let rec map_shared f = function
  | [] -> []
  | x :: rest as l ->
    let x' = f x in
    let rest' = map_shared f rest in
    if x' == x && rest' == rest then l else x' :: rest'

let array_shared a' a =
  let n = Array.length a' in
  let rec same i = i >= n || (Array.unsafe_get a' i == Array.unsafe_get a i && same (i + 1)) in
  if Array.length a = n && same 0 then a else a'

let propagate_block b =
  let env : (reg, binding) Hashtbl.t = Hashtbl.create 16 in
  let folded = ref 0 in
  let resolve_operand o =
    match o with
    | Imm _ -> o
    | Reg r -> (
      match Hashtbl.find_opt env r with
      | Some (Known c) ->
        incr folded;
        Imm c
      | Some (Copy r') ->
        incr folded;
        Reg r'
      | None -> o)
  in
  (* Reassigning [d] kills both its binding and any copies of it. *)
  let kill d =
    Hashtbl.remove env d;
    let stale =
      Hashtbl.fold
        (fun k v acc -> match v with Copy r when r = d -> k :: acc | _ -> acc)
        env []
    in
    List.iter (Hashtbl.remove env) stale
  in
  let rewrite_expr e =
    match e with
    | Const _ -> e
    | Move (Imm c) -> Const c
    | Move (Reg _ as o) -> (
      match resolve_operand o with
      | Imm c -> Const c
      | Reg _ as o' -> if o' == o then e else Move o')
    | Binop (op, a, b) -> (
      match (resolve_operand a, resolve_operand b) with
      | Imm x, Imm y ->
        incr folded;
        Const (eval_binop op x y)
      | a', b' -> if a' == a && b' == b then e else Binop (op, a', b'))
    | Load o ->
      let o' = resolve_operand o in
      if o' == o then e else Load o'
  in
  let rewrite_inst i =
    match i with
    | Assign (d, e) ->
      let e' = rewrite_expr e in
      kill d;
      (match e' with
      | Const c -> Hashtbl.replace env d (Known c)
      | Move (Reg s) -> Hashtbl.replace env d (Copy s)
      | Move (Imm _) | Binop _ | Load _ -> ());
      if e' == e then i else Assign (d, e')
    | Store (a, v) ->
      let a' = resolve_operand a and v' = resolve_operand v in
      if a' == a && v' == v then i else Store (a', v')
    | Observe v ->
      let v' = resolve_operand v in
      if v' == v then i else Observe v'
    | Call c ->
      let args' = map_shared resolve_operand c.args in
      let i' = if args' == c.args then i else Call { c with args = args' } in
      Option.iter kill c.dst;
      i'
    | Icall c ->
      let fptr' = resolve_operand c.fptr in
      let args' = map_shared resolve_operand c.args in
      let i' =
        if fptr' == c.fptr && args' == c.args then i
        else Icall { c with fptr = fptr'; args = args' }
      in
      Option.iter kill c.dst;
      i'
    | Asm_icall c ->
      let fptr' = resolve_operand c.fptr in
      if fptr' == c.fptr then i else Asm_icall { c with fptr = fptr' }
  in
  let insts = array_shared (Array.map rewrite_inst b.insts) b.insts in
  let branches_folded = ref 0 in
  let term =
    match b.term with
    | Jmp _ as t -> t
    | Br (c, l1, l2) as t -> (
      match resolve_operand c with
      | Imm v ->
        incr branches_folded;
        Jmp (if v <> 0 then l1 else l2)
      | Reg _ as c' -> if c' == c then t else Br (c', l1, l2))
    | Switch s as t -> (
      match resolve_operand s.scrutinee with
      | Imm v ->
        incr branches_folded;
        let target =
          match Array.find_opt (fun (case, _) -> case = v) s.cases with
          | Some (_, l) -> l
          | None -> s.default
        in
        Jmp target
      | Reg _ as sc -> if sc == s.scrutinee then t else Switch { s with scrutinee = sc })
    | Ret None as t -> t
    | Ret (Some v) as t ->
      let v' = resolve_operand v in
      if v' == v then t else Ret (Some v')
  in
  let b' = if insts == b.insts && term == b.term then b else { insts; term } in
  (b', !folded, !branches_folded)

(* ------------------------------------------------------------------ *)
(* Jump threading + unreachable-block removal (joint label rewrite).   *)
(* ------------------------------------------------------------------ *)

let map_labels term ~f =
  match term with
  | Jmp l ->
    let l' = f l in
    if l' = l then term else Jmp l'
  | Br (c, l1, l2) ->
    let l1' = f l1 and l2' = f l2 in
    if l1' = l1 && l2' = l2 then term else Br (c, l1', l2')
  | Switch s ->
    let cases =
      array_shared
        (Array.map
           (fun ((v, l) as p) ->
             let l' = f l in
             if l' = l then p else (v, l'))
           s.cases)
        s.cases
    in
    let default = f s.default in
    if cases == s.cases && default = s.default then term
    else Switch { s with cases; default }
  | Ret _ as t -> t

let thread_and_compact f =
  let n = Array.length f.blocks in
  (* forwarding: an empty block ending in jmp forwards to its target *)
  let forward = Array.init n (fun l -> l) in
  Array.iteri
    (fun l b ->
      match b.term with
      | Jmp m when Array.length b.insts = 0 && m <> l -> forward.(l) <- m
      | _ -> ())
    f.blocks;
  let rec resolve seen l =
    if List.mem l seen then l
    else if forward.(l) = l then l
    else resolve (l :: seen) forward.(l)
  in
  let resolve l = resolve [] l in
  let blocks =
    array_shared
      (Array.map
         (fun b ->
           let term = map_labels b.term ~f:resolve in
           if term == b.term then b else { b with term })
         f.blocks)
      f.blocks
  in
  let f = if blocks == f.blocks then f else { f with blocks } in
  (* drop unreachable blocks and compact the label space *)
  let reachable = Func.reachable_labels f in
  let mapping = Array.make n (-1) in
  let next = ref 0 in
  Array.iteri
    (fun l r ->
      if r then begin
        mapping.(l) <- !next;
        incr next
      end)
    reachable;
  let removed = n - !next in
  if removed = 0 then (f, 0)
  else begin
    let kept = Array.make !next { insts = [||]; term = Ret None } in
    Array.iteri
      (fun l b ->
        if reachable.(l) then
          kept.(mapping.(l)) <- { b with term = map_labels b.term ~f:(fun m -> mapping.(m)) })
      f.blocks;
    ({ f with blocks = kept }, removed)
  end

(* ------------------------------------------------------------------ *)
(* Global liveness + dead pure-assignment elimination.                 *)
(* ------------------------------------------------------------------ *)

module Regset = Set.Make (Int)

let operand_uses acc = function
  | Imm _ -> acc
  | Reg r -> Regset.add r acc

let expr_uses acc = function
  | Const _ -> acc
  | Move o | Load o -> operand_uses acc o
  | Binop (_, a, b) -> operand_uses (operand_uses acc a) b

let inst_uses acc = function
  | Assign (_, e) -> expr_uses acc e
  | Store (a, v) -> operand_uses (operand_uses acc a) v
  | Observe v -> operand_uses acc v
  | Call { args; _ } -> List.fold_left operand_uses acc args
  | Icall { fptr; args; _ } -> List.fold_left operand_uses (operand_uses acc fptr) args
  | Asm_icall { fptr; _ } -> operand_uses acc fptr

let term_uses acc = function
  | Jmp _ -> acc
  | Br (c, _, _) -> operand_uses acc c
  | Switch { scrutinee; _ } -> operand_uses acc scrutinee
  | Ret (Some v) -> operand_uses acc v
  | Ret None -> acc

let eliminate_dead f =
  let n = Array.length f.blocks in
  (* Backward dataflow: live-in/live-out per block, worklist-driven.  A
     block is rescanned only when the live-in of a successor changed, so
     converged regions are never revisited and there is no final
     verify-everything pass.  Liveness is a monotone framework with a
     unique least fixpoint, so the visit order cannot change the
     result. *)
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let block_live_in l =
    let b = f.blocks.(l) in
    let live = ref (term_uses live_out.(l) b.term) in
    for i = Array.length b.insts - 1 downto 0 do
      (match b.insts.(i) with
      | Assign (d, _) -> live := Regset.remove d !live
      | Call { dst = Some d; _ } | Icall { dst = Some d; _ } -> live := Regset.remove d !live
      | Call { dst = None; _ } | Icall { dst = None; _ } | Asm_icall _ | Store _ | Observe _
        -> ());
      live := inst_uses !live b.insts.(i)
    done;
    !live
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun l b ->
      List.iter (fun s -> preds.(s) <- l :: preds.(s)) (Func.successors b.term))
    f.blocks;
  let queued = Array.make n true in
  (* seed head-first with block n-1 so the initial sweep runs in the
     reverse order that backward liveness converges fastest in *)
  let work = ref [] in
  for l = 0 to n - 1 do
    work := l :: !work
  done;
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | l :: rest ->
      work := rest;
      queued.(l) <- false;
      live_out.(l) <-
        List.fold_left
          (fun acc s -> Regset.union acc live_in.(s))
          Regset.empty
          (Func.successors f.blocks.(l).term);
      let inn = block_live_in l in
      if not (Regset.equal inn live_in.(l)) then begin
        live_in.(l) <- inn;
        List.iter
          (fun p ->
            if not queued.(p) then begin
              queued.(p) <- true;
              work := p :: !work
            end)
          preds.(l)
      end
  done;
  let removed = ref 0 in
  let blocks =
    Array.mapi
      (fun l b ->
        let removed_before = !removed in
        let live = ref (term_uses live_out.(l) b.term) in
        let kept = ref [] in
        for i = Array.length b.insts - 1 downto 0 do
          let inst = b.insts.(i) in
          let keep =
            match inst with
            | Assign (d, _) when not (Regset.mem d !live) ->
              (* pure computation whose result is never read: drop it
                 (loads are treated as speculatable, as in LLVM) *)
              incr removed;
              false
            | Assign _ | Store _ | Observe _ | Call _ | Icall _ | Asm_icall _ -> true
          in
          if keep then begin
            (match inst with
            | Assign (d, _) -> live := Regset.remove d !live
            | Call { dst = Some d; _ } | Icall { dst = Some d; _ } ->
              live := Regset.remove d !live
            | _ -> ());
            live := inst_uses !live inst;
            kept := inst :: !kept
          end
        done;
        if !removed = removed_before then b else { b with insts = Array.of_list !kept })
      f.blocks
  in
  if !removed = 0 then (f, 0) else ({ f with blocks }, !removed)

(* ------------------------------------------------------------------ *)

let run_once f =
  let folded = ref 0 and branches = ref 0 in
  let blocks =
    array_shared
      (Array.map
         (fun b ->
           let b', fo, br = propagate_block b in
           folded := !folded + fo;
           branches := !branches + br;
           b')
         f.blocks)
      f.blocks
  in
  let f = if blocks == f.blocks then f else { f with blocks } in
  let f, removed_blocks = thread_and_compact f in
  let f, dead = eliminate_dead f in
  ( f,
    {
      folded = !folded;
      branches_folded = !branches;
      blocks_removed = removed_blocks;
      dead_assigns_removed = dead;
    } )

let run_func_with_stats f =
  let rec go f acc iters =
    if iters = 0 then (f, acc)
    else
      let f', s = run_once f in
      let acc = add_stats acc s in
      if f' = f then (f', acc) else go f' acc (iters - 1)
  in
  go f zero_stats 8

let run_func f = fst (run_func_with_stats f)

let run_with_stats prog =
  Program.fold_funcs prog ~init:(prog, zero_stats) ~f:(fun (acc, total) f ->
      if f.attrs.optnone || f.attrs.is_asm then (acc, total)
      else
        let f', s = run_func_with_stats f in
        (Program.update_func acc f', add_stats total s))

let run prog = fst (run_with_stats prog)
