open Pibe_ir
open Types
module Profile = Pibe_profile.Profile

type config = {
  budget_pct : float;
  rule2_threshold : int;
  rule3_threshold : int;
  lax_within_pct : float option;
}

let default_config =
  {
    budget_pct = 99.9;
    rule2_threshold = Inline_cost.rule2_default;
    rule3_threshold = Inline_cost.rule3_default;
    lax_within_pct = None;
  }

type stats = {
  total_weight : int;
  eligible_weight : int;
  initial_candidates : int;
  initial_candidate_weight : int;
  inlined_sites : int;
  inlined_weight : int;
  blocked_rule2_weight : int;
  blocked_rule3_weight : int;
  blocked_other_weight : int;
  total_ret_sites_before : int;
  total_ret_sites_after : int;
}

type candidate = {
  uid : int;
  caller : string;
  site_id : int;
  callee : string;
  weight : int;
}

(* Max-heap via a set ordered by (weight, uid): max_elt pops the hottest;
   among equal weights the youngest uid wins, which keeps the walk
   deterministic. *)
module Pq = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let run ?provenance prog profile config =
  let cg = Pibe_cg.Callgraph.build prog in
  let prog = ref prog in
  let ret_sites_before = Program.total_ret_sites !prog in
  (* ---------------- initial candidates ---------------- *)
  let all_direct =
    Program.fold_funcs !prog ~init:[] ~f:(fun acc f ->
        List.fold_left
          (fun acc (site, callee) ->
            (f.fname, site, callee, Profile.site_weight profile site) :: acc)
          acc (Func.call_sites f))
  in
  let all_direct = List.rev all_direct in
  let total_weight = List.fold_left (fun acc (_, _, _, w) -> acc + w) 0 all_direct in
  let weighted = List.map (fun (c, s, t, w) -> ((c, s, t), w)) all_direct in
  let sel = Budget.select ~budget_pct:config.budget_pct weighted in
  let lax_cutoff =
    match config.lax_within_pct with
    | None -> max_int (* nothing is lax *)
    | Some pct -> (Budget.select ~budget_pct:pct weighted).Budget.cutoff_weight
  in
  let next_uid = ref 0 in
  let fresh_uid () =
    let u = !next_uid in
    incr next_uid;
    u
  in
  let by_uid = Hashtbl.create 1024 in
  let pq = ref Pq.empty in
  let push cand =
    Hashtbl.replace by_uid cand.uid cand;
    pq := Pq.add (cand.weight, cand.uid) !pq
  in
  List.iter
    (fun ((caller, (site : site), callee), weight) ->
      push { uid = fresh_uid (); caller; site_id = site.site_id; callee; weight })
    sel.Budget.selected;
  let initial_candidates = List.length sel.Budget.selected in
  let initial_candidate_weight = sel.Budget.selected_weight in
  let cutoff = sel.Budget.cutoff_weight in
  (* ---------------- cost caches ---------------- *)
  let cost_cache = Hashtbl.create 1024 in
  let func_cost name =
    match Hashtbl.find_opt cost_cache name with
    | Some c -> c
    | None ->
      let c = Inline_cost.func_cost (Program.find !prog name) in
      Hashtbl.replace cost_cache name c;
      c
  in
  let invalidate name = Hashtbl.remove cost_cache name in
  (* Remaining-invocation discounting: once a function's callers have
     inlined it, the body that remains executes correspondingly less
     often, so candidates *inside* it are worth less.  Without this the
     walk would re-optimize dead copies and the elision statistics would
     double-count. *)
  let invocations_of = Hashtbl.create 256 in
  let invocations name =
    match Hashtbl.find_opt invocations_of name with
    | Some v -> v
    | None ->
      let v = Profile.invocations profile name in
      Hashtbl.replace invocations_of name v;
      v
  in
  let inv_rem = Hashtbl.create 256 in
  let remaining name =
    match Hashtbl.find_opt inv_rem name with
    | Some v -> v
    | None ->
      let v = invocations name in
      Hashtbl.replace inv_rem name v;
      v
  in
  let consume name amount = Hashtbl.replace inv_rem name (max 0 (remaining name - amount)) in
  let effective_weight cand =
    let total = invocations cand.caller in
    if total <= 0 then cand.weight
    else
      int_of_float
        (float_of_int cand.weight *. float_of_int (remaining cand.caller)
        /. float_of_int total)
  in
  (* Recursion safety: never inline a callee that can (transitively,
     through direct calls in the original graph) reach its caller. *)
  let reach_memo = Hashtbl.create 256 in
  let unsafe_recursion ~caller ~callee =
    String.equal caller callee
    || Pibe_cg.Callgraph.in_recursive_cycle cg callee
    ||
    match Hashtbl.find_opt reach_memo (callee, caller) with
    | Some b -> b
    | None ->
      let b = Pibe_cg.Callgraph.reaches cg ~src:callee ~dst:caller in
      Hashtbl.replace reach_memo (callee, caller) b;
      b
  in
  (* ---------------- greedy walk ---------------- *)
  let inlined_sites = ref 0 in
  let inlined_weight = ref 0 in
  let blocked_rule2 = ref 0 in
  let blocked_rule3 = ref 0 in
  let blocked_other = ref 0 in
  let eligible_weight = ref initial_candidate_weight in
  let attrs_block cand =
    let callee_f = Program.find !prog cand.callee in
    let caller_f = Program.find !prog cand.caller in
    callee_f.attrs.noinline || callee_f.attrs.optnone || callee_f.attrs.is_asm
    || caller_f.attrs.optnone || caller_f.attrs.is_asm
  in
  let do_inline cand ~effective =
    let prog_before = !prog in
    let p, cloned = Transform.inline_call !prog ~caller:cand.caller ~site_id:cand.site_id in
    prog := p;
    Option.iter
      (fun pv ->
        Pibe_profile.Provenance.record_inline pv ~prog_before ~caller:cand.caller
          ~site_id:cand.site_id ~callee:cand.callee
          ~cloned:
            (List.map
               (fun (c : Transform.cloned_site) ->
                 (c.Transform.new_site.site_id, c.Transform.callee_site.site_id))
               cloned)
          ~trained_count:cand.weight ~trained_caller_entries:(invocations cand.caller))
      provenance;
    invalidate cand.caller;
    incr inlined_sites;
    inlined_weight := !inlined_weight + effective;
    consume cand.callee effective;
    (* Constant-ratio inheritance for the callee's own direct calls, now
       cloned into the caller. *)
    let invocations = invocations cand.callee in
    List.iter
      (fun (c : Transform.cloned_site) ->
        match c.Transform.kind with
        | Transform.Cloned_direct grand_callee ->
          if invocations > 0 then begin
            let orig_w = Profile.site_weight profile c.Transform.callee_site in
            let inherited =
              int_of_float
                (float_of_int orig_w *. float_of_int effective /. float_of_int invocations)
            in
            if inherited > 0 && inherited >= cutoff then begin
              eligible_weight := !eligible_weight + inherited;
              push
                {
                  uid = fresh_uid ();
                  caller = cand.caller;
                  site_id = c.Transform.new_site.site_id;
                  callee = grand_callee;
                  weight = inherited;
                }
            end
          end
        | Transform.Cloned_indirect | Transform.Cloned_asm -> ())
      cloned
  in
  let rec loop () =
    match Pq.max_elt_opt !pq with
    | None -> ()
    | Some ((weight, uid) as key) ->
      pq := Pq.remove key !pq;
      let cand = Hashtbl.find by_uid uid in
      Hashtbl.remove by_uid uid;
      let effective = min weight (effective_weight cand) in
      (if effective > 0 then
         if attrs_block cand || unsafe_recursion ~caller:cand.caller ~callee:cand.callee
         then blocked_other := !blocked_other + effective
         else begin
           let lax = weight >= lax_cutoff && lax_cutoff < max_int in
           let callee_cost = func_cost cand.callee in
           let caller_cost = func_cost cand.caller in
           if (not lax) && callee_cost > config.rule3_threshold then
             blocked_rule3 := !blocked_rule3 + effective
           else if (not lax) && caller_cost + callee_cost > config.rule2_threshold then
             blocked_rule2 := !blocked_rule2 + effective
           else do_inline cand ~effective
         end);
      loop ()
  in
  loop ();
  let stats =
    {
      total_weight;
      eligible_weight = !eligible_weight;
      initial_candidates;
      initial_candidate_weight;
      inlined_sites = !inlined_sites;
      inlined_weight = !inlined_weight;
      blocked_rule2_weight = !blocked_rule2;
      blocked_rule3_weight = !blocked_rule3;
      blocked_other_weight = !blocked_other;
      total_ret_sites_before = ret_sites_before;
      total_ret_sites_after = Program.total_ret_sites !prog;
    }
  in
  (!prog, stats)
