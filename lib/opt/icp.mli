(** PIBE's indirect call promotion (paper §5.3).

    The budget applies to (site, target) pairs globally, hottest first,
    and — unlike stock LLVM ICP — the number of promoted targets per site
    is unbounded: a ~2-tick compare is always cheaper than a ~21-tick
    retpoline fallback, so every target worth its weight gets a direct
    call.  Promoted targets become profiled direct-call sites (feeding the
    inliner); the fallback indirect call keeps only the residual value
    profile. *)

open Pibe_ir

type config = {
  budget_pct : float;
  max_targets : int option;
      (** cap on promoted targets per site; [None] is PIBE's unlimited
          promotion, [Some 1] models single-slot promotion (ablation) *)
}

val default_config : config
(** 99.999% budget, unlimited targets (the paper's best retpoline
    configuration). *)

type stats = {
  total_weight : int;  (** all profiled indirect-call weight *)
  total_sites : int;  (** indirect sites carrying a value profile *)
  total_targets : int;  (** (site, target) pairs available *)
  promoted_weight : int;
  promoted_sites : int;  (** sites that received at least one promotion *)
  promoted_targets : int;
}

val run :
  ?provenance:Pibe_profile.Provenance.t ->
  Program.t ->
  Pibe_profile.Profile.t ->
  config ->
  Program.t * stats
(** Rewrites every selected site into a compare ladder with direct calls.
    The profile is updated in place: each new direct site gets the
    promoted target's count, which the original site's value profile
    loses.  When [provenance] is given, each promotion is recorded so
    counts collected at the promoted direct site on the optimized image
    fold back into the pristine indirect site's value profile. *)
