open Pibe_ir
open Types
module Profile = Pibe_profile.Profile

type config = {
  budget_pct : float;
  max_targets : int option;
}

let default_config = { budget_pct = 99.999; max_targets = None }

type stats = {
  total_weight : int;
  total_sites : int;
  total_targets : int;
  promoted_weight : int;
  promoted_sites : int;
  promoted_targets : int;
}

type pair = {
  caller : string;
  site : site;
  target : string;
}

let run ?provenance prog profile config =
  (* Every (indirect site, profiled target) pair, in layout order. *)
  let pairs =
    List.rev
      (Program.fold_funcs prog ~init:[] ~f:(fun acc f ->
           if f.attrs.optnone || f.attrs.is_asm then acc
           else
             List.fold_left
               (fun acc site ->
                 List.fold_left
                   (fun acc (target, count) ->
                     (({ caller = f.fname; site; target }, count) : pair * int) :: acc)
                   acc
                   (Profile.value_profile profile ~origin:site.site_origin))
               acc (Func.icall_sites f)))
  in
  let distinct_sites =
    List.length
      (List.sort_uniq compare (List.map (fun (p, _) -> (p.caller, p.site.site_id)) pairs))
  in
  let sel = Budget.select ~budget_pct:config.budget_pct pairs in
  (* Group the selected pairs by site, keeping them hottest-first. *)
  let by_site = Hashtbl.create 256 in
  let site_order = ref [] in
  List.iter
    (fun (p, count) ->
      let key = (p.caller, p.site.site_id) in
      match Hashtbl.find_opt by_site key with
      | Some existing -> Hashtbl.replace by_site key (existing @ [ (p, count) ])
      | None ->
        Hashtbl.replace by_site key [ (p, count) ];
        site_order := key :: !site_order)
    sel.Budget.selected;
  let site_order = List.rev !site_order in
  let prog = ref prog in
  let promoted_targets = ref 0 in
  let promoted_weight = ref 0 in
  List.iter
    (fun key ->
      let entries =
        let all = Hashtbl.find by_site key in
        match config.max_targets with
        | None -> all
        | Some k -> List.filteri (fun i _ -> i < k) all
      in
      let caller, site_id = key in
      let origin =
        match entries with
        | (p, _) :: _ -> p.site.site_origin
        | [] -> assert false
      in
      let targets = List.map (fun (p, _) -> p.target) entries in
      let p', promotion = Transform.promote_icall !prog ~caller ~site_id ~targets in
      prog := p';
      List.iter2
        (fun (pair, count) (target, new_site) ->
          assert (String.equal pair.target target);
          promoted_targets := !promoted_targets + 1;
          promoted_weight := !promoted_weight + count;
          Profile.add_direct profile ~origin:new_site.site_origin ~count;
          Option.iter
            (fun pv ->
              Pibe_profile.Provenance.record_promotion pv
                ~promoted_origin:new_site.site_origin ~origin ~target)
            provenance;
          Profile.remove_indirect_target profile ~origin ~target)
        entries promotion.Transform.promoted)
    site_order;
  let stats =
    {
      total_weight = sel.Budget.total_weight;
      total_sites = distinct_sites;
      total_targets = List.length pairs;
      promoted_weight = !promoted_weight;
      promoted_sites = List.length site_order;
      promoted_targets = !promoted_targets;
    }
  in
  (!prog, stats)
