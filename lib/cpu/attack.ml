type outcome = {
  gadget_reached : bool;
  transient_entries : Speculation.event list;
}

let spec_exn engine =
  match Engine.speculation engine with
  | Some s -> s
  | None -> invalid_arg "Attack: engine lacks speculation drill state"

let run_and_collect engine s ~mechanism ~gadget ~entry ~args =
  Speculation.clear_events s;
  ignore (Engine.call engine entry args);
  let events =
    List.filter (fun e -> e.Speculation.mechanism = mechanism) (Speculation.events s)
  in
  let gadget_reached =
    List.exists (fun e -> String.equal e.Speculation.gadget gadget) events
  in
  { gadget_reached; transient_entries = events }

let spectre_v2 engine ~victim_site ~gadget ~entry ~args =
  let s = spec_exn engine in
  Btb.train (Engine.btb engine) ~site:victim_site ~target:(Engine.func_id engine gadget);
  run_and_collect engine s ~mechanism:Speculation.Spectre_v2 ~gadget ~entry ~args

(* Same BTB injection, but towards a function that legitimately appears
   in an ops structure — it carries a FineIBT landing pad, so set-based
   CFI lets the transient entry through while a retpoline still kills
   it.  The drill that separates "no speculation" from "restricted
   speculation". *)
let spectre_v2_valid_pad engine ~victim_site ~valid_gadget ~entry ~args =
  spectre_v2 engine ~victim_site ~gadget:valid_gadget ~entry ~args

(* Ret2spec via a correctly-signed forged return pointer (PAC
   signing-gadget attack): authentication passes, so PAC lets it
   through; only a full software return thunk blocks it. *)
let pac_forgery engine ~gadget ~entry ~args =
  let s = spec_exn engine in
  Speculation.inject_rsb s ~scenario:Speculation.Forged_pac ~gadget;
  run_and_collect engine s ~mechanism:Speculation.Ret2spec ~gadget ~entry ~args

let ret2spec engine ~scenario ~gadget ~entry ~args =
  let s = spec_exn engine in
  (* Arm a one-shot desynchronization (any of the paper's five pollution
     techniques); the victim's first unprotected return consumes it. *)
  Speculation.inject_rsb s ~scenario ~gadget;
  run_and_collect engine s ~mechanism:Speculation.Ret2spec ~gadget ~entry ~args

let lvi engine ~poisoned_addr ~injected_fptr ~entry ~args =
  let s = spec_exn engine in
  Speculation.inject_load s ~addr:poisoned_addr ~value:injected_fptr;
  let table = (Engine.program engine).Pibe_ir.Program.fptr_table in
  let gadget =
    if injected_fptr >= 0 && injected_fptr < Array.length table then table.(injected_fptr)
    else "#fault"
  in
  run_and_collect engine s ~mechanism:Speculation.Lvi ~gadget ~entry ~args

let run_all engine ~victim_site ~poisoned_addr ~gadget_fptr ~gadget ~valid_gadget ~entry
    ~args =
  [
    ( Speculation.mechanism_name Speculation.Spectre_v2,
      spectre_v2 engine ~victim_site ~gadget ~entry ~args );
    ( "v2-valid-pad",
      spectre_v2_valid_pad engine ~victim_site ~valid_gadget ~entry ~args );
    ( Speculation.mechanism_name Speculation.Ret2spec,
      ret2spec engine ~scenario:Speculation.User_pollution ~gadget ~entry ~args );
    ("pac-forgery", pac_forgery engine ~gadget ~entry ~args);
    ( Speculation.mechanism_name Speculation.Lvi,
      lvi engine ~poisoned_addr ~injected_fptr:gadget_fptr ~entry ~args );
  ]
