(** Central cycle-cost model.

    The per-defense deltas are calibrated to the paper's Table 1
    microbenchmarks on an i7-8700K (retpoline ~21 ticks over a predicted
    indirect call, LVI forward ~9, LVI backward ~11, return retpoline ~16,
    combined forward ~42 / backward ~32). *)

val assign : int
val move : int
(** Register-to-register moves are eliminated by register renaming on
    modern cores; unconditional jumps are free fallthroughs after block
    layout.  Both cost 0, which is what makes inlining's glue code
    (argument moves, continuation jumps) cheap — as it is in real
    compiled code. *)

val binop : int
val load : int
val store : int
val observe : int
val jmp : int
val br : int
val direct_call : int
val ret_base : int

val switch_jump_table : int
val switch_ladder_step : int
(** Per level of the balanced compare tree a lowered switch becomes
    (total cost is logarithmic in the case count). *)

val icall_predicted : int
(** BTB hit. *)

val icall_mispredict_penalty : int
(** Added on a BTB miss. *)

val br_mispredict_penalty : int
(** Added when the PHT mispredicts a conditional branch. *)

val ret_mispredict_penalty : int
(** Added when the RSB disagrees (or has underflowed). *)

val icp_check : int
(** One promoted-target compare (the paper cites ~2 ticks). *)

val fineibt_check_cost : int
(** Landing-pad hash compare, added on top of the predicted/mispredicted
    base (FineIBT keeps the BTB in the loop). *)

val coarse_cfi_check_cost : int
(** Single-label compare-and-jump of the coarse CFI baseline. *)

val pac_auth_cost : int
(** Pointer authenticate before the return retires (PAC return signing);
    added on top of the RSB hit/miss base. *)

val assign_cost : Pibe_ir.Types.expr -> int
(** Retire cost of [CAssign (_, e)] by the evaluated expression's shape —
    the single source of truth shared by the interpreter and both
    compiled-backend lowerings (the bit-exactness contract depends on
    every executor charging identical per-instruction costs). *)

val forward_cost : Pibe_ir.Protection.forward -> btb_hit:bool -> int
(** Full cost of an indirect call's transfer under the given protection.
    The retpoline/LVI thunks never consult the BTB, so [btb_hit] is
    ignored for them; the CFI kinds keep the predictor in the loop and add
    their check cost on top of the hit/miss base. *)

val backward_cost : Pibe_ir.Protection.backward -> rsb_hit:bool -> int
(** Full cost of one return instruction. *)

val icache_miss_base : int
val icache_miss_per_line : int
val icache_line_bytes : int
