(** The execution engine: a cycle-accounting executor with two backends.

    One engine instance models one machine: global memory, BTB, RSB and
    instruction cache persist across top-level calls, exactly like kernel
    state persists across syscalls.  Costs follow {!Cost}; indirect-branch
    costs depend on the protection looked up through the configuration
    (supplied by the hardening pass's image, or all-[none] by default).

    [create] interns every function name to a dense integer id and
    compiles the program into a pre-resolved form: direct-call targets and
    fptr-table entries become function references, the BTB/RSB/i-cache are
    keyed by id, per-function constants (PHT key base, frame bytes,
    backward protection) are computed once, and register frames come from
    a per-depth pool — so the per-call hot path performs no string
    hashing, no hashtable probes, and no allocation.  Strings survive only
    at the API edges (entry points, edge events, traces, errors).

    {2 Backends and the parity contract}

    Two interchangeable execution backends run the compiled view:

    - [Compiled] (the default): a closure-threading stage additionally
      lowers every instruction, expression and terminator into a
      pre-specialized closure — operand kinds, binop selection, costs,
      resolved callee ids, PHT keys, indirect-call protection kinds and
      the speculation-off fast path are baked at closure construction,
      so the hot loop does no constructor matching at all.  Straight-line
      runs of simple instructions are fused into segments with batched
      fuel/cycle/counter accounting, and a {e profile-guided second
      tier} extends that fusion across unconditional fallthrough edges:
      function entries are counted per engine, and past the tier-up
      threshold ([PIBE_TIERUP] / [--tierup N] / [create ?tierup]; [0]
      disables) a function's hot single-predecessor [Jmp] chains run as
      single superblock closures with one pre-summed cycle/step constant
      — branch-predictor, RSB and i-cache state is only touched at
      conditional branches, indirect transfers and call boundaries.
      Past a second, higher threshold ([PIBE_TIER3] / [--tier3 N] /
      [create ?tier3]; [0] disables) the hottest traces relower once
      more into a {e register-threaded tier 3}: a flat int-coded
      instruction stream driven by one dispatch loop, with no closure
      call per instruction at all.  Orthogonally, {e call-seam fusion}
      ([PIBE_CALLFUSE] / [--callfuse N] / [create ?callfuse]; [0]
      disables) specializes hot (caller, callee) pairs: a direct call
      into a profile-hot leaf callee is lowered as one closure spanning
      the call + body + return with a single batched
      fuel/step/instruction/cycle update at the seam.
    - [Interp]: the reference tree-walking interpreter, kept as the
      executable semantics.

    The contract is bit-exactness: for any program, config and workload
    the two backends — at {e every} tier-up setting — produce identical
    cycles, counters, traces, memory, speculation events and errors, so
    when (or whether) a function tiers up is unobservable except as
    wall-clock speed.  The golden fingerprints in [test/test_measure.ml]
    and the differential suite in [test/test_backend.ml] pin it; [make
    parity] byte-diffs full bench output across interp, [--tierup 0] and
    the tiered default.

    Compilation output is cached in a small LRU keyed on ({e physical}
    program identity x tier x speculation variant), so repeated [create]
    over a working set of programs — attack drills, measurement cells,
    the online dual replay's deployed/pristine alternation — compiles
    each program exactly once per configuration, and tiered recompiles
    never evict baseline entries.  Compile cost and cache traffic are
    visible as ["sched"]-category [engine:compile] spans and
    [compile-cache-hit]/[compile-cache-miss] trace counters; tier-2
    lowering additionally emits [engine:tierup] spans with
    [tierup-count], [fused-superblocks] and [segment-coverage] counters,
    call-seam fusion emits [engine:callfuse] spans with
    [call-fused-seams] counters, and tier-3 lowering emits
    [engine:tier3] spans with [tier3-promotions] and [tier3-inst-coverage]
    counters.  The callfuse threshold is part of the cache key (it
    changes lowering); the tier-up and tier-3 thresholds stay per-engine
    and share one cached program.

    The engine doubles as
    - the {e profiling binary}: [on_edge] observes every resolved call
      edge (the simulated LBR feed), and
    - the {e attack testbed}: with [speculation] set, attacker-visible
      transient entries are recorded at unprotected indirect branches. *)

open Pibe_ir

type backend =
  | Interp  (** reference tree-walking interpreter *)
  | Compiled  (** closure-threaded compiled backend *)

val backend_to_string : backend -> string

val backend_of_string : string -> backend option
(** Recognizes ["interp"] and ["compiled"]. *)

val set_default_backend : backend -> unit
(** Sets the process-wide backend used by [create] when no explicit
    [?backend] is given (initially [Compiled]).  Wired to the [--engine]
    flag of [pibe_cli] and the bench harness. *)

val default_backend : unit -> backend

val set_default_tierup : int -> unit
(** Sets the process-wide tier-up threshold used by [create] when no
    explicit [?tierup] is given: a function's entry count must exceed it
    (per engine) before the function runs in the superblock-fused tier.
    [0] disables tier-up entirely — the compiled backend then behaves
    exactly like the pre-tier baseline.  Initially [2] (lowering is
    lazy per superblock head, so promotion only pays for traces the
    workload re-dispatches to), or the value of the [PIBE_TIERUP]
    environment variable;
    wired to the [--tierup] flag of [pibe_cli] and the bench harness.
    Clamped at 0. *)

val default_tierup : unit -> int

val set_default_callfuse : int -> unit
(** Sets the process-wide call-seam fusion threshold used by [create]
    when no explicit [?callfuse] is given: a direct call site fuses
    across the call/return pair once its (leaf, bounded, straight-line)
    callee's per-engine entry count crosses it.  [0] disables fusion.
    Initially [2] (callee heat accumulates per call, so loop-invoked
    leaves cross it within a handful of iterations, and a seam fuses at
    most once), or the value of the [PIBE_CALLFUSE] environment
    variable; wired to the
    [--callfuse] flag of [pibe_cli] and the bench harness.  Clamped
    at 0.  Only meaningful on tiered engines ([--tierup 0] implies no
    fusion). *)

val default_callfuse : unit -> int

val set_default_tier3 : int -> unit
(** Sets the process-wide tier-3 threshold used by [create] when no
    explicit [?tier3] is given: entries of a function beyond this count
    run the register-threaded int-coded tier (speculation-off variant
    only; the spec variant caps at tier 2).  [0] disables tier 3.
    Initially [64] (the static shape gate in the lowering keeps tier 3
    off call-dominated traces, so the threshold only filters
    short-lived functions), or the value of the [PIBE_TIER3]
    environment variable; wired to the [--tier3] flag of [pibe_cli] and
    the bench harness.  Clamped at 0.  Only meaningful on tiered
    engines. *)

val default_tier3 : unit -> int

type edge_kind =
  | Edge_direct
  | Edge_indirect
  | Edge_asm

type edge_event = {
  site : Types.site;
  caller : string;
  callee : string;
  kind : edge_kind;
}

type config = {
  fwd_protection : Types.site -> Protection.forward;
  bwd_protection : string -> Protection.backward;
  cfi_valid :
    site:Types.site -> target:string -> protection:Protection.forward -> bool;
      (** Target-set oracle for the CFI forward kinds ([F_fineibt],
          [F_coarse_cfi]): a transient entry into [target] only lands
          when this returns true (the hardening pass installs the
          landing-pad / address-taken analysis here; defaults to
          always-valid, i.e. a label-only check) *)
  fwd_override : (site:Types.site -> target:string -> int) option;
      (** When set, indirect-call transfer cycles come from this hook
          instead of the protection/BTB machinery — used by stateful
          comparators such as the JumpSwitches model, which patch call
          sites at runtime. *)
  icache_bytes : int;  (** 0 disables the i-cache model *)
  footprint : Types.func -> int;  (** code footprint used by the i-cache *)
  record_trace : bool;
  on_edge : (edge_event -> unit) option;
  on_entry : (string -> unit) option;
      (** called on every top-level {!call} with the entered function —
          the kernel-entry (syscall) boundary, which a hardware profiler
          observes even when every in-kernel call has been inlined away;
          in-program transfers go through [on_edge] instead *)
  on_exit : (string -> unit) option;
      (** called when a function activation returns (profiler support;
          pairs with the entry visible through [on_edge]) *)
  speculation : Speculation.t option;
  fuel : int;  (** interpreter step budget; guards against runaway code *)
  extra_call_cycles : int;
      (** flat per-direct-call surcharge (models stackprotector/safestack
          prologue work in Table 1's non-transient rows) *)
  extra_icall_cycles : int;  (** per-indirect-call surcharge (LLVM-CFI check) *)
  extra_ret_cycles : int;  (** per-return surcharge (canary check) *)
  rsb_refill : bool;
      (** stuff the RSB on every kernel entry (the ad-hoc Ret2spec
          mitigation of paper §6.4): clears user-planted desyncs — and
          only those — at a small fixed entry cost *)
}

val default_config : config
(** No protection, 32 KiB i-cache, [Layout.func_size] footprints, no trace,
    no hooks, fuel of 100 million steps. *)

type counters = {
  mutable calls : int;
  mutable icalls : int;
  mutable rets : int;
  mutable insts : int;
  mutable btb_misses : int;
  mutable rsb_misses : int;
  mutable pht_misses : int;
  mutable stack_bytes : int;  (** current stack footprint (frames * regs) *)
  mutable peak_stack_bytes : int;
}

type t

exception Runtime_error of string
exception Out_of_fuel

val create :
  ?config:config ->
  ?backend:backend ->
  ?tierup:int ->
  ?callfuse:int ->
  ?tier3:int ->
  Program.t ->
  t
(** [backend] defaults to {!default_backend}[ ()]; [tierup] to
    {!default_tierup}[ ()], [callfuse] to {!default_callfuse}[ ()] and
    [tier3] to {!default_tier3}[ ()] — all three only affect the tiered
    compiled backend (with [tierup = 0], callfuse and tier3 are forced
    to 0 too).  All backends, tier and fusion settings are bit-exact
    against each other (see the parity contract above). *)

val backend : t -> backend
(** The backend this engine executes with. *)

val tierup_threshold : t -> int
(** This engine's tier-up threshold: entries of a function beyond this
    count run the fused tier.  [0] means tier-up is off (interp engines,
    [--tierup 0], or a non-compiled backend). *)

val entry_count : t -> string -> int
(** How many times this engine entered the function (tier-up profile
    counter).  Counters are {e per engine}, so tier-up decisions are a
    deterministic function of each engine's own workload regardless of
    how many engines run in parallel.  [0] for unknown functions or when
    tier-up is off. *)

val promoted : t -> string -> bool
(** Whether the function's entry count has crossed this engine's tier-up
    threshold, i.e. further calls run the superblock-fused tier. *)

val tier3_threshold : t -> int
(** This engine's tier-3 threshold: entries of a function beyond this
    count run the register-threaded int-coded tier (plain variant).
    [0] means tier 3 is off. *)

val callfuse_threshold : t -> int
(** The call-seam fusion threshold this engine's closure program was
    compiled with ([0] = fusion off). *)

val tier3_promoted : t -> string -> bool
(** Whether the function's entry count has crossed this engine's tier-3
    threshold, i.e. further speculation-off calls run the
    register-threaded tier. *)

val backend_stats : t -> (string * int) list
(** Lowering statistics of the shared closure program this engine runs
    ([call-fused-seams], [callfuse-promotions], [tier3-traces],
    [tier3-coded-insts], [tier3-total-insts]); empty for the interpreter
    backend.  Lowering is lazy and triggered by whichever engine gets
    there first, so these are {e scheduling-dependent} — they are
    surfaced under the ["sched"] trace category by {!trace_counters},
    never mixed into deterministic samples. *)

val compile_cache_stats : unit -> int * int
(** Process-wide [(hits, misses)] of the compile LRU since start — a hit
    means [create] reused a previously compiled program (physical
    identity, same tier and speculation variant). *)

val call : t -> string -> int list -> int option
(** [call t fname args] runs the function to completion and returns its
    return value.  Raises [Runtime_error] on wild indirect calls or
    unknown functions; [Out_of_fuel] when the step budget is exhausted. *)

val cycles : t -> int
(** Accumulated simulated cycles since creation (or the last
    [reset_cycles]). *)

val reset_cycles : t -> unit
val counters : t -> counters
val trace : t -> int list
(** Observed values in program order (empty unless [record_trace]). *)

val clear_trace : t -> unit
val memory : t -> int array
(** The live global memory (mutable; workloads flip dispatch cells here). *)

val btb : t -> Btb.t
val rsb : t -> Rsb.t
val pht : t -> Pht.t
val icache : t -> Icache.t
val program : t -> Program.t

val func_id : t -> string -> int
(** The interned id of a function — the value the BTB/RSB/i-cache key on.
    Raises [Runtime_error] for names not in the program. *)

val func_name : t -> int -> string
(** Inverse of {!func_id} ([top_id] renders as ["#top"]). *)

val top_id : int
(** Sentinel id of the synthetic top-of-stack return continuation pushed
    before each top-level [call]. *)

val speculation : t -> Speculation.t option
(** The drill state this engine was configured with, if any. *)

val trace_counters : ?cat:string -> name:string -> t -> unit
(** Emit one {!Pibe_trace.Trace.counter} sample named [name] (category
    [cat], default ["cpu"]) carrying this engine's accumulated counters:
    cycles, instructions, calls/icalls/rets, BTB/RSB/PHT misses, i-cache
    hits+misses, peak stack bytes, recorded speculation events, and the
    count of functions past the tier-3 threshold ([tier3_promotions]).
    All values are simulated and deterministic; when trace collection is
    disabled this is a no-op costing one atomic load.  For compiled
    engines a second, ["sched"]-category sample named [name ^
    ":lowering"] carries the scheduling-dependent {!backend_stats}. *)
