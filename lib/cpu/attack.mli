(** Transient control-flow hijacking drills (paper §2.2, §6, §8.6).

    Each drill poisons one predictor, runs the victim entry point, and
    reports whether the attacker-chosen gadget was transiently entered.
    The engine must have been created with [speculation = Some _]. *)

type outcome = {
  gadget_reached : bool;  (** the planted gadget was transiently entered *)
  transient_entries : Speculation.event list;
      (** every attacker-visible transient entry observed during the run *)
}

val spectre_v2 :
  Engine.t -> victim_site:int -> gadget:string -> entry:string -> args:int list -> outcome
(** Trains the BTB slot of [victim_site] towards [gadget] (as an aliasing
    attacker thread would), then runs [entry args]. *)

val spectre_v2_valid_pad :
  Engine.t ->
  victim_site:int ->
  valid_gadget:string ->
  entry:string ->
  args:int list ->
  outcome
(** The V2 injection aimed at a function that legitimately sits in an ops
    structure, so it carries an arity-matching FineIBT landing pad:
    set-based CFI admits the transient entry that a retpoline blocks —
    the residual attack surface of restricted (vs. eliminated)
    speculation. *)

val ret2spec :
  Engine.t ->
  scenario:Speculation.rsb_scenario ->
  gadget:string ->
  entry:string ->
  args:int list ->
  outcome
(** Arms an RSB desynchronization towards [gadget] before the run.
    [User_pollution] is defeated by entry-point RSB refilling;
    [Cross_thread] is not (paper §6.4). *)

val pac_forgery : Engine.t -> gadget:string -> entry:string -> args:int list -> outcome
(** Ret2spec through a correctly-signed forged return pointer (the PAC
    signing-gadget attack): the authenticate passes, so PAC return
    signing admits it; only a software return thunk blocks it. *)

val lvi :
  Engine.t -> poisoned_addr:int -> injected_fptr:int -> entry:string -> args:int list -> outcome
(** Marks loads from [poisoned_addr] (an ops-table cell) as
    attacker-injectable with value [injected_fptr], then runs the
    victim. *)

val run_all :
  Engine.t ->
  victim_site:int ->
  poisoned_addr:int ->
  gadget_fptr:int ->
  gadget:string ->
  valid_gadget:string ->
  entry:string ->
  args:int list ->
  (string * outcome) list
(** The five drills back to back on one engine (spectre-v2,
    v2-valid-pad, ret2spec, pac-forgery, lvi); returns
    (drill name, outcome).  [valid_gadget] must be a landing-pad-carrying
    function matching the victim site's arity (e.g. another filesystem's
    read handler, see [Pibe_kernel.Gen.info]). *)
