(** Reference tree-walking interpreter over {!Machine.t}.

    This is the semantics oracle: the closure-compiled backend
    ({!Compile2}) must be cycle-, counter- and speculation-exact against
    it (pinned by the golden fingerprints in [test/test_measure.ml] and
    the qcheck differential suite in [test/test_backend.ml]).

    Unlike the pre-PR5 engine, every evaluator here is a top-level
    function: [exec_func] no longer rebuilds [eval_expr]/[invoke]/[do_call]
    closures on each activation, so the fallback backend pays no
    per-activation allocation either — only the per-instruction
    constructor matching that [Compile2] exists to eliminate. *)

open Pibe_ir
open Types
open Machine

let eval_expr t (cf : cfunc) (regs : int array) e =
  match e with
  | Const i -> i
  | Move o -> operand_value regs o
  | Binop (op, a, b) -> eval_binop op (operand_value regs a) (operand_value regs b)
  | Load a ->
    let addr = operand_value regs a in
    if addr < 0 || addr >= Array.length t.mem then
      raise (Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr cf.f.fname))
    else t.mem.(addr)

let taint_of_expr t (regs : int array) (taint : int option array) e =
  match e with
  | Const _ -> None
  | Move o -> operand_taint taint o
  | Binop _ -> None
  | Load a -> (
    match t.cfg.speculation with
    | None -> None
    | Some s -> Speculation.injected_load s ~addr:(operand_value regs a))

let rec exec_func t (cf : cfunc) (regs : int array) ~depth ~(ret_to : int) : int option =
  enter_frame t cf;
  let spec_on = match t.cfg.speculation with None -> false | Some _ -> true in
  let taint =
    if spec_on then
      taint_frame t ~depth ~nregs:(if cf.f.nregs > 1 then cf.f.nregs else 1)
    else [||]
  in
  run_block t cf regs taint spec_on depth ret_to cf.f.entry

and run_block t cf regs taint spec_on depth ret_to label : int option =
  let b = cf.cblocks.(label) in
  let insts = b.cinsts in
  for i = 0 to Array.length insts - 1 do
    exec_inst t cf regs taint spec_on depth insts.(i)
  done;
  step_fuel t;
  match b.cterm with
  | Jmp l ->
    charge t Cost.jmp;
    run_block t cf regs taint spec_on depth ret_to l
  | Br (c, l1, l2) ->
    charge t Cost.br;
    let taken = operand_value regs c <> 0 in
    let key = cf.key_base + label in
    if Pht.predict t.tpht ~key <> taken then begin
      t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
      charge t Cost.br_mispredict_penalty
    end;
    Pht.train t.tpht ~key ~taken;
    run_block t cf regs taint spec_on depth ret_to (if taken then l1 else l2)
  | Switch { scrutinee; cases; default; lowering } ->
    let v = operand_value regs scrutinee in
    let rec find i =
      if i >= Array.length cases then default
      else
        let case_v, l = cases.(i) in
        if case_v = v then l else find (i + 1)
    in
    let target = find 0 in
    (match lowering with
    | Jump_table -> charge t Cost.switch_jump_table
    | Branch_ladder -> charge t (ladder_cost (Array.length cases)));
    run_block t cf regs taint spec_on depth ret_to target
  | Ret v ->
    let v = Option.map (operand_value regs) v in
    do_ret t cf ~ret_to;
    v

and exec_inst t cf regs taint spec_on depth i =
  bump_inst t;
  match i with
  | CAssign (r, e) ->
    charge t (Cost.assign_cost e);
    (if spec_on then taint.(r) <- taint_of_expr t regs taint e);
    regs.(r) <- eval_expr t cf regs e
  | CStore (a, v) ->
    charge t Cost.store;
    let addr = operand_value regs a in
    if addr < 0 || addr >= Array.length t.mem then
      raise
        (Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr cf.f.fname))
    else t.mem.(addr) <- operand_value regs v
  | CObserve v ->
    charge t Cost.observe;
    if t.cfg.record_trace then t.trace_rev <- operand_value regs v :: t.trace_rev
  | CCall { dst; callee; callee_id; args; site } ->
    t.ctrs.calls <- t.ctrs.calls + 1;
    charge t (Cost.direct_call + t.cfg.extra_call_cycles);
    emit_edge t site cf.f.fname callee Edge_direct;
    invoke t cf regs taint spec_on depth ~dst ~callee:(lookup t callee_id callee) ~args
  | CIcall { dst; fptr; args; site; slot = _ } ->
    do_icall t cf regs taint spec_on depth ~dst ~fptr ~args ~site ~asm:false
  | CAsm_icall { fptr; site } ->
    do_icall t cf regs taint spec_on depth ~dst:None ~fptr ~args:[||] ~site ~asm:true

and do_icall t cf regs taint spec_on depth ~dst ~fptr ~args ~site ~asm =
  t.ctrs.icalls <- t.ctrs.icalls + 1;
  charge t t.cfg.extra_icall_cycles;
  let v = operand_value regs fptr in
  let target_id = icall_resolve t v in
  let target_name = t.fptr_table.(v) in
  let fptr_taint = if spec_on then operand_taint taint fptr else None in
  (match t.cfg.fwd_override with
  | Some hook when not asm -> charge t (hook ~site ~target:target_name)
  | Some _ | None ->
    let protection = if asm then Protection.F_none else t.cfg.fwd_protection site in
    indirect_transfer t ~site ~target:target_id ~fptr_taint ~protection);
  emit_edge t site cf.f.fname target_name (if asm then Edge_asm else Edge_indirect);
  invoke t cf regs taint spec_on depth ~dst ~callee:(t.by_id.(target_id)) ~args

and invoke t cf regs taint spec_on depth ~dst ~(callee : cfunc) ~(args : operand array) =
  enter_code t callee;
  Rsb.push t.trsb cf.id;
  let nregs = if callee.f.nregs > 1 then callee.f.nregs else 1 in
  let callee_regs = frame t ~depth:(depth + 1) ~nregs in
  let nargs = Array.length args in
  let n = if callee.f.params < nargs then callee.f.params else nargs in
  for i = 0 to n - 1 do
    callee_regs.(i) <- operand_value regs args.(i)
  done;
  let result = exec_func t callee callee_regs ~depth:(depth + 1) ~ret_to:cf.id in
  (match (dst, result) with
  | Some r, Some v -> regs.(r) <- v
  | Some r, None -> regs.(r) <- 0
  | None, _ -> ());
  match dst with
  | Some r when spec_on -> taint.(r) <- None
  | _ -> ()

(* The backend entry installed into [Machine.t.exec_entry].  The
   reference backend zeroes the whole top-level register file; the
   compiled backend zeroes only the entry-live set — unobservable by
   construction, pinned by the differential suite. *)
let entry t cf args =
  let regs = frame t ~depth:0 ~nregs:(if cf.f.nregs > 1 then cf.f.nregs else 1) in
  List.iteri (fun i v -> if i < cf.f.params then regs.(i) <- v) args;
  exec_func t cf regs ~depth:0 ~ret_to:top_id
