type t = {
  ring : int array;
  size : int;
  mutable top : int;  (* next free slot *)
  mutable live : int;  (* valid entries, <= size *)
}

let none = min_int

let create ?(depth = 16) () =
  if depth <= 0 then invalid_arg "Rsb.create: depth must be positive";
  { ring = Array.make depth 0; size = depth; top = 0; live = 0 }

let push t v =
  t.ring.(t.top) <- v;
  t.top <- (t.top + 1) mod t.size;
  if t.live < t.size then t.live <- t.live + 1

let pop t =
  if t.live = 0 then none
  else begin
    t.top <- (t.top + t.size - 1) mod t.size;
    t.live <- t.live - 1;
    t.ring.(t.top)
  end

let poison t v =
  if t.live = 0 then push t v
  else t.ring.((t.top + t.size - 1) mod t.size) <- v

let depth t = t.size
let occupancy t = t.live

let flush t =
  t.top <- 0;
  t.live <- 0
