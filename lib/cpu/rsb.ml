type t = {
  ring : int array;
  size : int;
  mutable top : int;  (* next free slot *)
  mutable live : int;  (* valid entries, <= size *)
}

let none = min_int

let create ?(depth = 16) () =
  if depth <= 0 then invalid_arg "Rsb.create: depth must be positive";
  { ring = Array.make depth 0; size = depth; top = 0; live = 0 }

(* The ring index always stays in [0, size), so wraparound is a compare
   and a select rather than [mod] — push/pop sit on the simulated
   call/return hot path, where the hardware divide behind [mod] is the
   single most expensive instruction. *)

let push t v =
  t.ring.(t.top) <- v;
  let top = t.top + 1 in
  t.top <- (if top = t.size then 0 else top);
  if t.live < t.size then t.live <- t.live + 1

let pop t =
  if t.live = 0 then none
  else begin
    let top = t.top - 1 in
    let top = if top < 0 then t.size - 1 else top in
    t.top <- top;
    t.live <- t.live - 1;
    t.ring.(top)
  end

let poison t v =
  if t.live = 0 then push t v
  else begin
    let i = t.top - 1 in
    t.ring.(if i < 0 then t.size - 1 else i) <- v
  end

let depth t = t.size
let occupancy t = t.live

let flush t =
  t.top <- 0;
  t.live <- 0
