(** The execution engine façade: backend selection, compile caching and
    the public API over {!Machine}.

    Two backends share one semantics (see {!Machine} for everything that
    must not drift): {!Interp}, the reference tree-walking interpreter,
    and {!Compile2}, the closure-threaded compiled backend that bakes
    dispatch decisions at compile time.  [create ?backend] picks one per
    engine; the process default (normally [Compiled]) is set once by the
    CLI/bench [--engine] flag through {!set_default_backend}.

    The compiled backend is tiered: every function starts in the
    baseline per-block tier, and a profile counter promotes it to the
    superblock-fused tier once its entry count crosses the engine's
    tier-up threshold (knob: [PIBE_TIERUP] / [--tierup N] /
    [create ?tierup]; [0] disables).  Both tiers are bit-exact, so the
    threshold is a pure performance knob.

    Compilation output — the {!Machine.compiled} view plus the closure
    program — is cached in a small LRU keyed on (physical program
    identity x tier x speculation variant), so alternating over a
    working set of programs (the online dual replay's deployed/pristine
    pair, attack drills over several images) compiles each program
    exactly once per configuration, and a tiered recompile can never
    evict the baseline entry.  Cache traffic is visible as
    ["sched"]-category [engine:compile] spans and
    [compile-cache-hit]/[compile-cache-miss] counters. *)

open Pibe_ir
include Machine

let backend_to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"

let backend_of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | _ -> None

(* Process-wide default, overridable per engine at [create].  Atomic
   because worker domains read it while the main domain parses flags. *)
let default_backend_cell = Atomic.make Compiled
let set_default_backend b = Atomic.set default_backend_cell b
let default_backend () = Atomic.get default_backend_cell

(* Tier-up threshold default: entries of a function beyond this count run
   the fused tier-2 body; 0 disables tier-up (baseline closures only,
   exactly the pre-tier backend).  Seeded from PIBE_TIERUP, overridden by
   the --tierup flag via [set_default_tierup], and per engine at
   [create ?tierup].

   2 entries: lowering is lazy per superblock head, so an eager
   threshold only pays fused lowering for traces the workload actually
   re-dispatches to — the old conservative default of 1024 was tuned
   for the PR5 eager-per-function lowering and left the measurement
   cells (fresh engine, ~tens of top-level entries, thousands of inner
   iterations) stuck in tier 1 forever.  Measured on table1 with the
   interleaved tools/bench_compare.sh protocol: tierup 2 vs 1024 is a
   tens-of-percent end-to-end win, and tierup 2 vs 1 is noise because
   the second entry is already amortized by the inner loops. *)
let tierup_default = 2

let default_tierup_cell =
  Atomic.make
    (match Sys.getenv_opt "PIBE_TIERUP" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> tierup_default)
    | None -> tierup_default)

let set_default_tierup n = Atomic.set default_tierup_cell (max 0 n)
let default_tierup () = Atomic.get default_tierup_cell

(* Call-seam fusion threshold default: a direct call site fuses across
   the call/return pair into a leaf callee once the callee's per-engine
   entry count crosses this; 0 disables fusion.  Callee heat
   accumulates per CALL, not per top-level entry, so a leaf invoked
   from a loop gets hot within the first handful of iterations; the
   fused span itself is rebuilt at most once per call site (the
   self-promoting seam publishes the fused closure and disappears), so
   an eager threshold of 2 costs one fuse_plan walk per hot seam and
   nothing on cold ones.  Seeded from PIBE_CALLFUSE, overridden by
   --callfuse / [create ?callfuse]. *)
let callfuse_default = 2

let default_callfuse_cell =
  Atomic.make
    (match Sys.getenv_opt "PIBE_CALLFUSE" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> callfuse_default)
    | None -> callfuse_default)

let set_default_callfuse n = Atomic.set default_callfuse_cell (max 0 n)
let default_callfuse () = Atomic.get default_callfuse_cell

(* Tier-3 threshold default: function entries beyond this count run the
   register-threaded int-coded tier (plain variant only); 0 disables.
   64 entries: the int-stream encoding is a third lowering of the
   trace, so it must amortize over repeated executions, but the static
   shape gate in compile2 ([t3_profitable]) already keeps it off
   call-dominated traces where it can't win — so the threshold only
   needs to skip genuinely short-lived functions, not act as the
   profitability filter.  Seeded from PIBE_TIER3, overridden by
   --tier3 / [create ?tier3]. *)
let tier3_default = 64

let default_tier3_cell =
  Atomic.make
    (match Sys.getenv_opt "PIBE_TIER3" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> tier3_default)
    | None -> tier3_default)

let set_default_tier3 n = Atomic.set default_tier3_cell (max 0 n)
let default_tier3 () = Atomic.get default_tier3_cell

(* ----------------------- compile cache ------------------------- *)

(* Bounded LRU over physically-distinct programs, MRU first.  The common
   patterns are (a) many engines in a row over one image — attack drills,
   measurement cells — and (b) an alternating working set — the online
   dual replay flips deployed/pristine every window, each controller
   rebuild adds one fresh program, and parallel experiment cells sweep
   several images at once.  64 entries cover all of them with room for
   wide sweeps.  Guarded by a mutex because engines are created from
   worker domains too; a miss compiles outside the lock (duplicated work
   is pure), and a racing domain's finished entry is adopted over our
   own. *)

(* An entry is keyed on (physical program x tier x speculation variant):
   tiered closure programs carry per-function fused bodies and a counting
   dispatcher the baseline must not pay for, and speculation-on engines
   link the taint-threading closure variants — so the three axes get
   separate entries and can never evict each other's lowering work
   (pinned by the tier-keying regression test in test_backend.ml). *)
type cache_entry = {
  cprog : Program.t;
  ctiered : bool;
  cspec : bool;
  ccallfuse : int;
      (* the callfuse threshold is baked into lowering (it decides which
         call seams fuse), so it is part of the key; the tier-up and
         tier-3 thresholds stay per-engine and share one entry *)
  cview : compiled;
  cclosures : Compile2.prog;
}

let cache_capacity = 64
let compile_lock = Mutex.create ()
let cache : cache_entry list ref = ref []
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let compile_cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

(* Cache traffic depends on scheduling (which domain compiled first), so
   the events live in the "sched" category that [Trace.canonical] strips
   — like the pool's own events. *)
let note_cache ~hit =
  Atomic.incr (if hit then cache_hits else cache_misses);
  if Pibe_trace.Trace.enabled () then
    Pibe_trace.Trace.counter ~cat:"sched"
      (if hit then "compile-cache-hit" else "compile-cache-miss")
      [ ("count", Pibe_trace.Trace.Int 1) ]

let rec truncate n = function
  | [] -> []
  | _ :: _ when n = 0 -> []
  | e :: rest -> e :: truncate (n - 1) rest

(* Splits out the entry for [prog] under the given tier/spec key, if
   cached: (entry, others). *)
let take_entry prog ~tiered ~spec ~callfuse entries =
  let rec go acc = function
    | [] -> None
    | e :: rest
      when e.cprog == prog && e.ctiered = tiered && e.cspec = spec
           && e.ccallfuse = callfuse ->
      Some (e, List.rev_append acc rest)
    | e :: rest -> go (e :: acc) rest
  in
  go [] entries

let entry_for prog ~tiered ~spec ~callfuse =
  Mutex.lock compile_lock;
  match take_entry prog ~tiered ~spec ~callfuse !cache with
  | Some (e, others) ->
    cache := e :: others;
    Mutex.unlock compile_lock;
    note_cache ~hit:true;
    e
  | None ->
    Mutex.unlock compile_lock;
    note_cache ~hit:false;
    let fresh =
      Pibe_trace.Trace.span ~cat:"sched" "engine:compile" (fun () ->
          let cview = compile prog in
          let mem_len = prog.Program.globals_size in
          let cclosures =
            if tiered then Compile2.compile_tiered cview ~mem_len ~callfuse
            else Compile2.compile cview ~mem_len
          in
          { cprog = prog; ctiered = tiered; cspec = spec; ccallfuse = callfuse; cview; cclosures })
    in
    Mutex.lock compile_lock;
    let e, others =
      match take_entry prog ~tiered ~spec ~callfuse !cache with
      | Some (e, others) -> (e, others)  (* another domain won the race *)
      | None -> (fresh, !cache)
    in
    cache := truncate cache_capacity (e :: others);
    Mutex.unlock compile_lock;
    e

(* ------------------------ construction ------------------------- *)

let create ?(config = default_config) ?backend ?tierup ?callfuse ?tier3 prog =
  let backend =
    match backend with Some b -> b | None -> Atomic.get default_backend_cell
  in
  let tierup =
    match tierup with Some n -> max 0 n | None -> Atomic.get default_tierup_cell
  in
  (* Only compiled engines tier up; [tierup = 0] pins the baseline
     closure program (the --tierup 0 parity leg). *)
  let tiered = backend = Compiled && tierup > 0 in
  (* Call-seam fusion and tier 3 both ride on the per-engine entry
     counters, which only tiered engines maintain — [--tierup 0] implies
     both off. *)
  let callfuse =
    if not tiered then 0
    else
      match callfuse with
      | Some n -> max 0 n
      | None -> Atomic.get default_callfuse_cell
  in
  let tier3 =
    if not tiered then 0
    else
      match tier3 with Some n -> max 0 n | None -> Atomic.get default_tier3_cell
  in
  let spec = config.speculation <> None in
  let entry = entry_for prog ~tiered ~spec ~callfuse in
  let compiled = entry.cview in
  let n = Array.length compiled.cby_id in
  {
    prog;
    funcs = compiled.cfuncs;
    by_id = compiled.cby_id;
    fptr_table = prog.Program.fptr_table;
    fptr_ids = compiled.cfptr_ids;
    bwds = Array.map (fun cf -> config.bwd_protection cf.f.fname) compiled.cby_id;
    (* Protections are per-engine (the config closes over a hardened
       image), but [Pass.fwd_protection] is a pure site-keyed lookup, so
       baking it into a slot-indexed array at create time is exact. *)
    fwd_prots = Array.map config.fwd_protection compiled.cicall_sites;
    sizes = Array.make (max n 1) (-1);
    mem = Program.initial_memory prog;
    tbtb = Btb.create ();
    trsb = Rsb.create ();
    tpht = Pht.create ();
    ticache = Icache.create ~capacity_bytes:config.icache_bytes;
    cfg = config;
    fuel_cap = config.fuel;
    ctrs =
      {
        calls = 0;
        icalls = 0;
        rets = 0;
        insts = 0;
        btb_misses = 0;
        rsb_misses = 0;
        pht_misses = 0;
        stack_bytes = 0;
        peak_stack_bytes = 0;
      };
    max_regs = compiled.cmax_regs;
    backend;
    tier_threshold = (if tiered then tierup else 0);
    tier_counts = (if tiered then Array.make n 0 else [||]);
    tier3_threshold = tier3;
    callfuse_threshold = callfuse;
    backend_stats =
      (match backend with
      | Interp -> fun () -> []
      | Compiled ->
        let closures = entry.cclosures in
        fun () -> Compile2.prog_stats closures);
    exec_entry =
      (match backend with
      | Interp -> Interp.entry
      | Compiled -> Compile2.entry entry.cclosures);
    frames = Array.make 0 [||];
    taint_frames = Array.make 0 [||];
    cur_regs = [||];
    cur_taint = [||];
    cur_depth = 0;
    cur_ret_to = 0;
    call_memo = None;
    cyc = 0;
    steps = 0;
    trace_rev = [];
  }

let func_id t name =
  match Hashtbl.find_opt t.funcs name with
  | Some cf -> cf.id
  | None -> raise (Runtime_error ("call to unknown function @" ^ name))

let call t name args =
  let cf =
    (* Workload drivers call the same entry point per request, passing
       the same physical string; skip the hash on that path. *)
    match t.call_memo with
    | Some (n, cf) when n == name -> cf
    | _ -> (
      match Hashtbl.find_opt t.funcs name with
      | Some cf ->
        t.call_memo <- Some (name, cf);
        cf
      | None -> raise (Runtime_error ("call to unknown function @" ^ name)))
  in
  (* the kernel-entry boundary is observable (perf sees the syscall
     dispatch), unlike in-program transfers which go through [on_edge] *)
  (match t.cfg.on_entry with None -> () | Some f -> f name);
  if t.cfg.rsb_refill then begin
    (* stuffing: 16 dummy pushes at the entry point *)
    charge t 12;
    Rsb.flush t.trsb;
    (match t.cfg.speculation with
    | Some s -> Speculation.clear_user_rsb_desync s
    | None -> ())
  end;
  enter_code t cf;
  Rsb.push t.trsb top_id;
  t.exec_entry t cf args

let speculation t = t.cfg.speculation
let backend t = t.backend
let tierup_threshold t = t.tier_threshold
let tier3_threshold t = t.tier3_threshold
let callfuse_threshold t = t.callfuse_threshold
let backend_stats t = t.backend_stats ()

let entry_count t name =
  if Array.length t.tier_counts = 0 then 0
  else
    match Hashtbl.find_opt t.funcs name with
    | Some cf -> t.tier_counts.(cf.id)
    | None -> 0

let promoted t name =
  t.tier_threshold > 0 && entry_count t name > t.tier_threshold

let tier3_promoted t name =
  t.tier3_threshold > 0 && entry_count t name > t.tier3_threshold

(* How many functions this engine has pushed past its tier-3 threshold —
   a pure function of the engine's own entry counters, so deterministic
   at any --jobs (unlike the prog-level lowering stats). *)
let tier3_promotions t =
  if t.tier3_threshold <= 0 then 0
  else
    Array.fold_left
      (fun acc c -> if c > t.tier3_threshold then acc + 1 else acc)
      0 t.tier_counts

let cycles t = t.cyc
let reset_cycles t = t.cyc <- 0
let counters t = t.ctrs
let trace t = List.rev t.trace_rev
let clear_trace t = t.trace_rev <- []
let memory t = t.mem
let btb t = t.tbtb
let rsb t = t.trsb
let pht t = t.tpht
let icache t = t.ticache
let program t = t.prog

(* One structured-metrics sample of everything this engine counts.  The
   values are simulated quantities (pure functions of program + seeds), so
   the emitted event content is deterministic; cost is one atomic load
   when trace collection is off. *)
let trace_counters ?(cat = "cpu") ~name t =
  if Pibe_trace.Trace.enabled () then begin
    let open Pibe_trace.Trace in
    let c = t.ctrs in
    counter ~cat name
      [
        ("cycles", Int t.cyc);
        ("insts", Int c.insts);
        ("calls", Int c.calls);
        ("icalls", Int c.icalls);
        ("rets", Int c.rets);
        ("btb_miss", Int c.btb_misses);
        ("rsb_miss", Int c.rsb_misses);
        ("pht_miss", Int c.pht_misses);
        ("icache_hit", Int (Icache.hit_count t.ticache));
        ("icache_miss", Int (Icache.miss_count t.ticache));
        ("peak_stack_bytes", Int c.peak_stack_bytes);
        ( "spec_events",
          Int
            (match t.cfg.speculation with
            | None -> 0
            | Some s -> List.length (Speculation.events s)) );
        ("tier3_promotions", Int (tier3_promotions t));
      ];
    (* Lowering stats (fused call seams, tier-3 coverage) are
       scheduling-dependent — whichever engine lowers first moves them —
       so they ride in a separate "sched"-category sample that
       [Trace.canonical] strips, keeping the [cat] sample above
       deterministic. *)
    match t.backend_stats () with
    | [] -> ()
    | stats ->
      counter ~cat:"sched" (name ^ ":lowering")
        (List.map (fun (k, v) -> (k, Int v)) stats)
  end
