open Pibe_ir
open Types

type edge_kind =
  | Edge_direct
  | Edge_indirect
  | Edge_asm

type edge_event = {
  site : site;
  caller : string;
  callee : string;
  kind : edge_kind;
}

type config = {
  fwd_protection : site -> Protection.forward;
  bwd_protection : string -> Protection.backward;
  fwd_override : (site:site -> target:string -> int) option;
  icache_bytes : int;
  footprint : func -> int;
  record_trace : bool;
  on_edge : (edge_event -> unit) option;
  on_exit : (string -> unit) option;
  speculation : Speculation.t option;
  fuel : int;
  extra_call_cycles : int;
  extra_icall_cycles : int;
  extra_ret_cycles : int;
  rsb_refill : bool;
}

let default_config =
  {
    fwd_protection = (fun _ -> Protection.F_none);
    bwd_protection = (fun _ -> Protection.B_none);
    fwd_override = None;
    icache_bytes = 32 * 1024;
    footprint = Layout.func_size;
    record_trace = false;
    on_edge = None;
    on_exit = None;
    speculation = None;
    fuel = 100_000_000;
    extra_call_cycles = 0;
    extra_icall_cycles = 0;
    extra_ret_cycles = 0;
    rsb_refill = false;
  }

type counters = {
  mutable calls : int;
  mutable icalls : int;
  mutable rets : int;
  mutable insts : int;
  mutable btb_misses : int;
  mutable rsb_misses : int;
  mutable pht_misses : int;
  mutable stack_bytes : int;
  mutable peak_stack_bytes : int;
}

(* Compiled view of the IR, built once at [create]: function names are
   interned to dense ids, every direct-call target and fptr-table entry is
   pre-resolved, and per-function constants (PHT key base, frame bytes,
   protection kinds) are computed up front so the per-call hot path does no
   string hashing and no hashtable probes. *)

type cinst =
  | CAssign of reg * expr
  | CStore of operand * operand
  | CObserve of operand
  | CCall of {
      dst : reg option;
      callee : string;  (* kept for edges and error messages *)
      callee_id : int;  (* -1 when the name does not resolve *)
      args : operand array;
      site : site;
    }
  | CIcall of {
      dst : reg option;
      fptr : operand;
      args : operand array;
      site : site;
    }
  | CAsm_icall of {
      fptr : operand;
      site : site;
    }

type cblock = {
  cinsts : cinst array;
  cterm : terminator;
}

type cfunc = {
  f : func;
  id : int;
  cblocks : cblock array;
  key_base : int;  (* PHT key base: Hashtbl.hash fname * 613, as the seed *)
  frame_bytes : int;  (* stack-coloring frame model, precomputed *)
}

(* id of the synthetic top-of-stack return continuation *)
let top_id = -1

(* The compiled view is immutable and depends only on the program, so
   engines created on the same program (physical equality) share it —
   config-dependent state (backward protections, footprint memo) lives in
   per-engine arrays instead. *)
type compiled = {
  cfuncs : (string, cfunc) Hashtbl.t;  (* API edge only; never on the hot path *)
  cby_id : cfunc array;
  cfptr_ids : int array;  (* pre-resolved fptr targets; -1 = unknown name *)
  cmax_regs : int;
}

type t = {
  prog : Program.t;
  funcs : (string, cfunc) Hashtbl.t;
  by_id : cfunc array;
  fptr_table : string array;
  fptr_ids : int array;
  bwds : Protection.backward array;  (* per-function backward protection, by id *)
  sizes : int array;  (* memoized config.footprint, by id; -1 until first entry *)
  mem : int array;
  tbtb : Btb.t;
  trsb : Rsb.t;
  tpht : Pht.t;
  ticache : Icache.t;
  cfg : config;
  ctrs : counters;
  max_regs : int;
  mutable frames : int array array;  (* register-frame pool, one per depth *)
  mutable taint_frames : int option array array;
  mutable cyc : int;
  mutable steps : int;
  mutable trace_rev : int list;
}

exception Runtime_error of string
exception Out_of_fuel

(* Frame accounting with a stack-coloring model: inlined callees' locals
   have disjoint lifetimes, so the allocator merges most of their slots.
   Sub-linear growth in the register count approximates that; coloring
   degrades as merged frames grow, which is exactly the inefficiency paper
   Rule 2 exists to bound (section 5.2). *)
let frame_bytes_of nregs = 16 + (8 * int_of_float (Float.of_int nregs ** 0.6))

let compile_func ~id intern (f : func) =
  let compile_inst = function
    | Assign (r, e) -> CAssign (r, e)
    | Store (a, v) -> CStore (a, v)
    | Observe v -> CObserve v
    | Call { dst; callee; args; site; tail = _ } ->
      CCall { dst; callee; callee_id = intern callee; args = Array.of_list args; site }
    | Icall { dst; fptr; args; site } ->
      CIcall { dst; fptr; args = Array.of_list args; site }
    | Asm_icall { fptr; site } -> CAsm_icall { fptr; site }
  in
  let cblocks =
    Array.map
      (fun (b : block) -> { cinsts = Array.map compile_inst b.insts; cterm = b.term })
      f.blocks
  in
  {
    f;
    id;
    cblocks;
    key_base = Hashtbl.hash f.fname * 613;
    frame_bytes = frame_bytes_of f.nregs;
  }

let compile prog =
  let order = Program.layout_order prog in
  let n = List.length order in
  let ids = Hashtbl.create (2 * max n 1) in
  List.iteri (fun i name -> Hashtbl.replace ids name i) order;
  let intern name = match Hashtbl.find_opt ids name with Some i -> i | None -> -1 in
  let cfuncs = Hashtbl.create (2 * max n 1) in
  let cby_id =
    Array.of_list
      (List.mapi
         (fun i name ->
           let f = Program.find prog name in
           let cf = compile_func ~id:i intern f in
           Hashtbl.replace cfuncs name cf;
           cf)
         order)
  in
  {
    cfuncs;
    cby_id;
    cfptr_ids = Array.map intern prog.Program.fptr_table;
    cmax_regs = Array.fold_left (fun m cf -> max m cf.f.nregs) 1 cby_id;
  }

(* One-slot compiled-view cache: the common pattern is several engines in
   a row over the same image (attack drills, measurement cells), and the
   compilation is by far the most expensive part of [create].  Guarded by
   a mutex because engines are created from worker domains too; a miss
   compiles outside the lock (duplicated work is pure). *)
let compile_lock = Mutex.create ()
let last_compiled : (Program.t * compiled) option ref = ref None

let compiled_for prog =
  Mutex.lock compile_lock;
  match !last_compiled with
  | Some (p, c) when p == prog ->
    Mutex.unlock compile_lock;
    c
  | _ ->
    Mutex.unlock compile_lock;
    let c = compile prog in
    Mutex.lock compile_lock;
    last_compiled := Some (prog, c);
    Mutex.unlock compile_lock;
    c

let create ?(config = default_config) prog =
  let compiled = compiled_for prog in
  let n = Array.length compiled.cby_id in
  {
    prog;
    funcs = compiled.cfuncs;
    by_id = compiled.cby_id;
    fptr_table = prog.Program.fptr_table;
    fptr_ids = compiled.cfptr_ids;
    bwds = Array.map (fun cf -> config.bwd_protection cf.f.fname) compiled.cby_id;
    sizes = Array.make (max n 1) (-1);
    mem = Program.initial_memory prog;
    tbtb = Btb.create ();
    trsb = Rsb.create ();
    tpht = Pht.create ();
    ticache = Icache.create ~capacity_bytes:config.icache_bytes;
    cfg = config;
    ctrs =
      {
        calls = 0;
        icalls = 0;
        rets = 0;
        insts = 0;
        btb_misses = 0;
        rsb_misses = 0;
        pht_misses = 0;
        stack_bytes = 0;
        peak_stack_bytes = 0;
      };
    max_regs = compiled.cmax_regs;
    frames = Array.make 0 [||];
    taint_frames = Array.make 0 [||];
    cyc = 0;
    steps = 0;
    trace_rev = [];
  }

let func_id t name =
  match Hashtbl.find_opt t.funcs name with
  | Some cf -> cf.id
  | None -> raise (Runtime_error ("call to unknown function @" ^ name))

let func_name t id = if id = top_id then "#top" else t.by_id.(id).f.fname

let lookup t id name =
  if id >= 0 then t.by_id.(id)
  else raise (Runtime_error ("call to unknown function @" ^ name))

let footprint_of t cf =
  let s = t.sizes.(cf.id) in
  if s >= 0 then s
  else begin
    let s = t.cfg.footprint cf.f in
    t.sizes.(cf.id) <- s;
    s
  end

(* Register-frame pool: one zeroed frame per activation depth, allocated on
   first use and reused by every later activation at that depth — no
   allocation on the call hot path.  Frames are sized to the largest
   register file in the program; only the first [nregs] slots are ever
   read, and they are re-zeroed on entry (registers start at 0). *)

let frame t ~depth ~nregs =
  (if depth >= Array.length t.frames then begin
     let len = Array.length t.frames in
     let grown = Array.make (max 64 (max (2 * len) (depth + 1))) [||] in
     Array.blit t.frames 0 grown 0 len;
     t.frames <- grown
   end);
  let fr = t.frames.(depth) in
  let fr =
    if Array.length fr = 0 then begin
      let fr = Array.make (max t.max_regs 1) 0 in
      t.frames.(depth) <- fr;
      fr
    end
    else fr
  in
  Array.fill fr 0 nregs 0;
  fr

let taint_frame t ~depth ~nregs =
  (if depth >= Array.length t.taint_frames then begin
     let len = Array.length t.taint_frames in
     let grown = Array.make (max 64 (max (2 * len) (depth + 1))) [||] in
     Array.blit t.taint_frames 0 grown 0 len;
     t.taint_frames <- grown
   end);
  let fr = t.taint_frames.(depth) in
  let fr =
    if Array.length fr = 0 then begin
      let fr = Array.make (max t.max_regs 1) None in
      t.taint_frames.(depth) <- fr;
      fr
    end
    else fr
  in
  Array.fill fr 0 nregs None;
  fr

let operand_value regs = function
  | Imm i -> i
  | Reg r -> regs.(r)

(* Taint: the attacker-injectable transient value of each register, used
   only when a speculation drill is active. *)
let operand_taint taint = function
  | Imm _ -> None
  | Reg r -> taint.(r)

let emit_edge t site caller callee kind =
  match t.cfg.on_edge with
  | None -> ()
  | Some f -> f { site; caller; callee; kind }

let charge t c = t.cyc <- t.cyc + c

let enter_code t callee =
  charge t (Icache.touch t.ticache ~id:callee.id ~size:(footprint_of t callee))

(* Forward transfer through an indirect call site: prediction, cost,
   training, speculation drill.  Returns unit; the caller then executes
   the resolved target.  [target] is the interned id of the resolved
   callee; prediction hit/miss is a single int compare. *)
let indirect_transfer t ~site ~target ~fptr_taint ~protection =
  let spec = t.cfg.speculation in
  (match protection with
  | Protection.F_none ->
    let predicted = Btb.predict t.tbtb ~site:site.site_id in
    let hit = predicted = target in
    if not hit then t.ctrs.btb_misses <- t.ctrs.btb_misses + 1;
    charge t (Cost.forward_cost protection ~btb_hit:hit);
    (* The resolved branch retrains its slot. *)
    Btb.train t.tbtb ~site:site.site_id ~target;
    (match spec with
    | Some s when predicted <> Btb.no_target && predicted <> target ->
      Speculation.record s
        {
          Speculation.mechanism = Speculation.Spectre_v2;
          site_id = site.site_id;
          gadget = func_name t predicted;
        }
    | _ -> ())
  | Protection.F_retpoline | Protection.F_lvi | Protection.F_fenced_retpoline ->
    charge t (Cost.forward_cost protection ~btb_hit:false);
    (* Retpolines never execute a BTB-predicted branch; the LVI thunk
       still does, so V2 injection remains possible through it. *)
    if not (Protection.forward_stops_btb_injection protection) then begin
      let predicted = Btb.predict t.tbtb ~site:site.site_id in
      Btb.train t.tbtb ~site:site.site_id ~target;
      match spec with
      | Some s when predicted <> Btb.no_target && predicted <> target ->
        Speculation.record s
          {
            Speculation.mechanism = Speculation.Spectre_v2;
            site_id = site.site_id;
            gadget = func_name t predicted;
          }
      | _ -> ()
    end);
  (* LVI: a poisoned branch-target load lets the attacker steer the
     transient call unless the sequence fences the load. *)
  match (spec, fptr_taint) with
  | Some s, Some injected when not (Protection.forward_stops_lvi protection) ->
    let gadget =
      if injected >= 0 && injected < Array.length t.fptr_table then t.fptr_table.(injected)
      else "#fault"
    in
    Speculation.record s
      { Speculation.mechanism = Speculation.Lvi; site_id = site.site_id; gadget }
  | _ -> ()

let rec exec_func t (cf : cfunc) (regs : int array) ~depth ~(ret_to : int) : int option =
  let f = cf.f in
  t.ctrs.stack_bytes <- t.ctrs.stack_bytes + cf.frame_bytes;
  if t.ctrs.stack_bytes > t.ctrs.peak_stack_bytes then
    t.ctrs.peak_stack_bytes <- t.ctrs.stack_bytes;
  let spec_on = t.cfg.speculation <> None in
  let taint = if spec_on then taint_frame t ~depth ~nregs:(max f.nregs 1) else [||] in
  let eval_expr e =
    match e with
    | Const i -> i
    | Move o -> operand_value regs o
    | Binop (op, a, b) -> eval_binop op (operand_value regs a) (operand_value regs b)
    | Load a ->
      let addr = operand_value regs a in
      if addr < 0 || addr >= Array.length t.mem then
        raise (Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr f.fname))
      else t.mem.(addr)
  in
  let taint_of_expr e =
    match e with
    | Const _ -> None
    | Move o -> operand_taint taint o
    | Binop _ -> None
    | Load a -> (
      match t.cfg.speculation with
      | None -> None
      | Some s -> Speculation.injected_load s ~addr:(operand_value regs a))
  in
  let invoke ~dst ~(callee : cfunc) ~(args : operand array) =
    enter_code t callee;
    Rsb.push t.trsb cf.id;
    let nregs = max callee.f.nregs 1 in
    let callee_regs = frame t ~depth:(depth + 1) ~nregs in
    let n = min callee.f.params (Array.length args) in
    for i = 0 to n - 1 do
      callee_regs.(i) <- operand_value regs args.(i)
    done;
    let result = exec_func t callee callee_regs ~depth:(depth + 1) ~ret_to:cf.id in
    (match (dst, result) with
    | Some r, Some v -> regs.(r) <- v
    | Some r, None -> regs.(r) <- 0
    | None, _ -> ());
    match dst with
    | Some r when spec_on -> taint.(r) <- None
    | _ -> ()
  in
  let do_call ~dst ~callee ~callee_id ~args ~site =
    t.ctrs.calls <- t.ctrs.calls + 1;
    charge t (Cost.direct_call + t.cfg.extra_call_cycles);
    emit_edge t site f.fname callee Edge_direct;
    invoke ~dst ~callee:(lookup t callee_id callee) ~args
  in
  let do_icall ~dst ~fptr ~args ~site ~asm =
    t.ctrs.icalls <- t.ctrs.icalls + 1;
    charge t t.cfg.extra_icall_cycles;
    let v = operand_value regs fptr in
    if v < 0 || v >= Array.length t.fptr_table then
      raise
        (Runtime_error
           (Printf.sprintf "wild indirect call: fptr value %d outside table of %d" v
              (Array.length t.fptr_table)));
    let target_name = t.fptr_table.(v) in
    let target_id = t.fptr_ids.(v) in
    if target_id < 0 then
      raise (Runtime_error ("call to unknown function @" ^ target_name));
    let fptr_taint = if spec_on then operand_taint taint fptr else None in
    (match t.cfg.fwd_override with
    | Some hook when not asm -> charge t (hook ~site ~target:target_name)
    | Some _ | None ->
      let protection = if asm then Protection.F_none else t.cfg.fwd_protection site in
      indirect_transfer t ~site ~target:target_id ~fptr_taint ~protection);
    emit_edge t site f.fname target_name (if asm then Edge_asm else Edge_indirect);
    invoke ~dst ~callee:(t.by_id.(target_id)) ~args
  in
  let exec_inst i =
    t.ctrs.insts <- t.ctrs.insts + 1;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    match i with
    | CAssign (r, e) ->
      let cost =
        match e with
        | Load _ -> Cost.load
        | Binop _ -> Cost.binop
        | Const _ -> Cost.assign
        | Move _ -> Cost.move
      in
      charge t cost;
      (if spec_on then taint.(r) <- taint_of_expr e);
      regs.(r) <- eval_expr e
    | CStore (a, v) ->
      charge t Cost.store;
      let addr = operand_value regs a in
      if addr < 0 || addr >= Array.length t.mem then
        raise (Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr f.fname))
      else t.mem.(addr) <- operand_value regs v
    | CObserve v ->
      charge t Cost.observe;
      if t.cfg.record_trace then t.trace_rev <- operand_value regs v :: t.trace_rev
    | CCall { dst; callee; callee_id; args; site } ->
      do_call ~dst ~callee ~callee_id ~args ~site
    | CIcall { dst; fptr; args; site } -> do_icall ~dst ~fptr ~args ~site ~asm:false
    | CAsm_icall { fptr; site } -> do_icall ~dst:None ~fptr ~args:[||] ~site ~asm:true
  in
  let do_ret v =
    t.ctrs.rets <- t.ctrs.rets + 1;
    charge t t.cfg.extra_ret_cycles;
    let protection = t.bwds.(cf.id) in
    (match protection with
    | Protection.B_none | Protection.B_lvi ->
      let popped = Rsb.pop t.trsb in
      let hit = popped = ret_to in
      if not hit then t.ctrs.rsb_misses <- t.ctrs.rsb_misses + 1;
      charge t (Cost.backward_cost protection ~rsb_hit:hit);
      (match t.cfg.speculation with
      | Some s when not (Protection.backward_stops_rsb_poisoning protection) ->
        (* An armed desynchronization means this return's prediction is
           attacker-controlled. *)
        (match Speculation.take_rsb_desync s with
        | Some gadget ->
          Speculation.record s
            { Speculation.mechanism = Speculation.Ret2spec; site_id = -1; gadget }
        | None -> ());
        if popped <> Rsb.none && popped <> ret_to then
          Speculation.record s
            {
              Speculation.mechanism = Speculation.Ret2spec;
              site_id = -1;
              gadget = func_name t popped;
            }
      | _ -> ())
    | Protection.B_ret_retpoline | Protection.B_fenced_ret_retpoline ->
      (* The sequence forces the top-of-RSB into a known state; the stale
         entry is consumed without being followed. *)
      ignore (Rsb.pop t.trsb);
      charge t (Cost.backward_cost protection ~rsb_hit:false));
    t.ctrs.stack_bytes <- t.ctrs.stack_bytes - cf.frame_bytes;
    (match t.cfg.on_exit with
    | Some h -> h f.fname
    | None -> ());
    v
  in
  let rec run_block label =
    let b = cf.cblocks.(label) in
    Array.iter exec_inst b.cinsts;
    t.steps <- t.steps + 1;
    if t.steps > t.cfg.fuel then raise Out_of_fuel;
    match b.cterm with
    | Jmp l ->
      charge t Cost.jmp;
      run_block l
    | Br (c, l1, l2) ->
      charge t Cost.br;
      let taken = operand_value regs c <> 0 in
      let key = cf.key_base + label in
      if Pht.predict t.tpht ~key <> taken then begin
        t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
        charge t Cost.br_mispredict_penalty
      end;
      Pht.train t.tpht ~key ~taken;
      run_block (if taken then l1 else l2)
    | Switch { scrutinee; cases; default; lowering } ->
      let v = operand_value regs scrutinee in
      let rec find i =
        if i >= Array.length cases then (default, Array.length cases)
        else
          let case_v, l = cases.(i) in
          if case_v = v then (l, i + 1) else find (i + 1)
      in
      let target, _position = find 0 in
      (match lowering with
      | Jump_table -> charge t Cost.switch_jump_table
      | Branch_ladder ->
        (* compilers lower large switches as balanced compare trees *)
        let n = Array.length cases in
        let depth =
          let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
          1 + log2 0 (n + 1)
        in
        charge t (Cost.br + (Cost.switch_ladder_step * depth)));
      run_block target
    | Ret v -> do_ret (Option.map (operand_value regs) v)
  in
  run_block f.entry

let call t name args =
  let cf =
    match Hashtbl.find_opt t.funcs name with
    | Some cf -> cf
    | None -> raise (Runtime_error ("call to unknown function @" ^ name))
  in
  if t.cfg.rsb_refill then begin
    (* stuffing: 16 dummy pushes at the entry point *)
    charge t 12;
    Rsb.flush t.trsb;
    (match t.cfg.speculation with
    | Some s -> Speculation.clear_user_rsb_desync s
    | None -> ())
  end;
  enter_code t cf;
  Rsb.push t.trsb top_id;
  let regs = frame t ~depth:0 ~nregs:(max cf.f.nregs 1) in
  List.iteri (fun i v -> if i < cf.f.params then regs.(i) <- v) args;
  exec_func t cf regs ~depth:0 ~ret_to:top_id

let speculation t = t.cfg.speculation

let cycles t = t.cyc
let reset_cycles t = t.cyc <- 0
let counters t = t.ctrs
let trace t = List.rev t.trace_rev
let clear_trace t = t.trace_rev <- []
let memory t = t.mem
let btb t = t.tbtb
let rsb t = t.trsb
let pht t = t.tpht
let icache t = t.ticache
let program t = t.prog

(* One structured-metrics sample of everything this engine counts.  The
   values are simulated quantities (pure functions of program + seeds), so
   the emitted event content is deterministic; cost is one atomic load
   when trace collection is off. *)
let trace_counters ?(cat = "cpu") ~name t =
  if Pibe_trace.Trace.enabled () then begin
    let open Pibe_trace.Trace in
    let c = t.ctrs in
    counter ~cat name
      [
        ("cycles", Int t.cyc);
        ("insts", Int c.insts);
        ("calls", Int c.calls);
        ("icalls", Int c.icalls);
        ("rets", Int c.rets);
        ("btb_miss", Int c.btb_misses);
        ("rsb_miss", Int c.rsb_misses);
        ("pht_miss", Int c.pht_misses);
        ("icache_hit", Int (Icache.hit_count t.ticache));
        ("icache_miss", Int (Icache.miss_count t.ticache));
        ("peak_stack_bytes", Int c.peak_stack_bytes);
        ( "spec_events",
          Int
            (match t.cfg.speculation with
            | None -> 0
            | Some s -> List.length (Speculation.events s)) );
      ]
  end
