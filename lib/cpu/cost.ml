open Pibe_ir

let assign = 1
let move = 0
let binop = 1
let load = 3
let store = 1
let observe = 1
let jmp = 0
let br = 1
let direct_call = 1
let ret_base = 1
let switch_jump_table = 2
let switch_ladder_step = 1
let icall_predicted = 2
let icall_mispredict_penalty = 14
let br_mispredict_penalty = 9
let ret_mispredict_penalty = 15
let icp_check = 1

(* Fixed sequence costs, chosen so the deltas over the predicted baseline
   reproduce Table 1: retpoline +22 (~21), lvi fwd +11 (~9), fenced
   retpoline +42; ret-retpoline +16, lvi ret +11, combined ret +32. *)
let retpoline_cost = 24
let lvi_forward_cost = 13
let fenced_retpoline_cost = 44
let ret_retpoline_cost = 17
let lvi_ret_cost = 12
let fenced_ret_retpoline_cost = 33

(* CFI-family sequences keep the branch predictor in the loop: the check
   is a constant add on top of the predicted/mispredicted base, unlike the
   flat (prediction-free) retpoline thunks.  FineIBT pays the hash compare
   at the landing pad (~4), the coarse single-label check is one compare
   and jump (~2), and PAC pays the pointer authenticate before the return
   retires (~6 on cores without fused AUT+RET). *)
let fineibt_check_cost = 4
let coarse_cfi_check_cost = 2
let pac_auth_cost = 6

let assign_cost (e : Types.expr) =
  match e with
  | Types.Load _ -> load
  | Types.Binop _ -> binop
  | Types.Const _ -> assign
  | Types.Move _ -> move

let forward_cost (p : Protection.forward) ~btb_hit =
  match p with
  | Protection.F_none ->
    if btb_hit then icall_predicted else icall_predicted + icall_mispredict_penalty
  | Protection.F_retpoline -> retpoline_cost
  | Protection.F_lvi -> lvi_forward_cost
  | Protection.F_fenced_retpoline -> fenced_retpoline_cost
  | Protection.F_fineibt ->
    (if btb_hit then icall_predicted else icall_predicted + icall_mispredict_penalty)
    + fineibt_check_cost
  | Protection.F_coarse_cfi ->
    (if btb_hit then icall_predicted else icall_predicted + icall_mispredict_penalty)
    + coarse_cfi_check_cost

let backward_cost (p : Protection.backward) ~rsb_hit =
  match p with
  | Protection.B_none -> if rsb_hit then ret_base else ret_base + ret_mispredict_penalty
  | Protection.B_ret_retpoline -> ret_retpoline_cost
  | Protection.B_lvi -> lvi_ret_cost
  | Protection.B_fenced_ret_retpoline -> fenced_ret_retpoline_cost
  | Protection.B_pac ->
    (if rsb_hit then ret_base else ret_base + ret_mispredict_penalty) + pac_auth_cost

let icache_miss_base = 12
let icache_miss_per_line = 2
let icache_line_bytes = 64
