(** Shared state for transient-execution drills.

    The attack modules plant injections here (and poison the engine's BTB /
    RSB directly); the engine consults the state at every indirect branch
    and records a {!event} whenever an attacker-controlled target would
    have been transiently entered.  A defense works iff no event with its
    mechanism is recorded for protected branches. *)

type mechanism =
  | Spectre_v2  (** BTB injection at an indirect call *)
  | Ret2spec  (** RSB desynchronization at a return *)
  | Lvi  (** load-value injection into a branch-target load *)

type event = {
  mechanism : mechanism;
  site_id : int;  (** [-1] for returns *)
  gadget : string;  (** the function transiently entered *)
}

type t

val create : unit -> t

val inject_load : t -> addr:int -> value:int -> unit
(** LVI: loads from [addr] transiently observe [value] (a function-pointer
    index) instead of the architectural value. *)

val injected_load : t -> addr:int -> int option

type rsb_scenario =
  | User_pollution
      (** entries planted from userspace before the kernel entry — the
          scenario RSB refilling/stuffing at the entry point defeats *)
  | Cross_thread
      (** desynchronization arising inside the kernel (context-switch
          reuse, speculative pollution, call/ret-breaking constructs) —
          beyond refilling's reach, per paper §6.4 *)
  | Forged_pac
      (** a return-address slot overwritten with a correctly-signed forged
          pointer (signing-gadget attack): PAC authentication passes, so
          only a full software return thunk stops it *)

val inject_rsb : t -> scenario:rsb_scenario -> gadget:string -> unit
(** Arms a one-shot RSB desynchronization.  The next unprotected return
    consumes it and transiently enters the gadget. *)

val take_rsb_desync : t -> (rsb_scenario * string) option
(** Consumes a pending desynchronization, returning the scenario so the
    return path can discriminate (PAC lets only [Forged_pac] through). *)

val clear_user_rsb_desync : t -> unit
(** Drops a pending [User_pollution] desynchronization (what refilling
    the buffer at kernel entry achieves). *)

val record : t -> event -> unit
val events : t -> event list
(** In occurrence order. *)

val clear_events : t -> unit
val mechanism_name : mechanism -> string
