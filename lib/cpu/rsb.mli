(** Return Stack Buffer model: a fixed-depth (default 16, as on the
    paper's Skylake testbed) circular stack of predicted return
    destinations.

    Over-deep call chains wrap around and lose the oldest entries, so the
    unwind mispredicts once it passes the buffer depth — one of the costs
    profile-guided inlining happens to reduce.  [poison] overwrites the
    top entry, modelling Ret2spec-style pollution.

    Entries are interned function ids (see {!Engine.func_id}); the hot
    pop-and-compare path is int equality, no string hashing. *)

type t

val none : int
(** Sentinel returned by {!pop} on underflow; never a valid id. *)

val create : ?depth:int -> unit -> t

val push : t -> int -> unit
(** Called on every call instruction with the return continuation. *)

val pop : t -> int
(** Called on every return; [none] on underflow. *)

val poison : t -> int -> unit
(** Overwrites the current top (no-op semantics on an empty buffer: the
    entry becomes the next pop). *)

val depth : t -> int
val occupancy : t -> int
val flush : t -> unit
