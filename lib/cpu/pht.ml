type t = {
  mask : int;
  counters : Bytes.t;  (* 0-3: strongly/weakly not-taken, weakly/strongly taken *)
}

let create ?(entries = 4096) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Pht.create: entries must be a positive power of two";
  { mask = entries - 1; counters = Bytes.make entries '\001' }

let slot t key = key land t.mask

let predict t ~key = Bytes.get_uint8 t.counters (slot t key) >= 2

let train t ~key ~taken =
  let i = slot t key in
  let c = Bytes.get_uint8 t.counters i in
  (* Branch-free-ish integer saturation; [min]/[max] here would go
     through the polymorphic compare on a very hot path. *)
  let c' = if taken then (if c < 3 then c + 1 else 3) else if c > 0 then c - 1 else 0 in
  Bytes.set_uint8 t.counters i c'

let flush t = Bytes.fill t.counters 0 (Bytes.length t.counters) '\001'
