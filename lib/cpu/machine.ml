(** Shared machine state and compiled program view for the execution
    backends.

    One {!t} models one machine (global memory, BTB, RSB, i-cache,
    counters); {!compiled} is the immutable per-program lowering both
    backends consume (interned ids, pre-resolved call targets, dense
    indirect-call slots).  Everything whose semantics must be identical
    across backends — cycle charging, the indirect-branch transfer with
    its speculation drills, the return-path protection logic, frame
    pools — lives here as plain functions, so {!Interp} and {!Compile2}
    cannot drift apart on the subtle parts.  [Engine] is the public
    façade; this module is internal to [pibe_cpu]. *)

open Pibe_ir
open Types

type backend =
  | Interp  (** reference tree-walking interpreter *)
  | Compiled  (** closure-threaded compiled backend *)

type edge_kind =
  | Edge_direct
  | Edge_indirect
  | Edge_asm

type edge_event = {
  site : site;
  caller : string;
  callee : string;
  kind : edge_kind;
}

type config = {
  fwd_protection : site -> Protection.forward;
  bwd_protection : string -> Protection.backward;
  cfi_valid : site:site -> target:string -> protection:Protection.forward -> bool;
  fwd_override : (site:site -> target:string -> int) option;
  icache_bytes : int;
  footprint : func -> int;
  record_trace : bool;
  on_edge : (edge_event -> unit) option;
  on_entry : (string -> unit) option;
  on_exit : (string -> unit) option;
  speculation : Speculation.t option;
  fuel : int;
  extra_call_cycles : int;
  extra_icall_cycles : int;
  extra_ret_cycles : int;
  rsb_refill : bool;
}

let default_config =
  {
    fwd_protection = (fun _ -> Protection.F_none);
    bwd_protection = (fun _ -> Protection.B_none);
    cfi_valid = (fun ~site:_ ~target:_ ~protection:_ -> true);
    fwd_override = None;
    icache_bytes = 32 * 1024;
    footprint = Layout.func_size;
    record_trace = false;
    on_edge = None;
    on_entry = None;
    on_exit = None;
    speculation = None;
    fuel = 100_000_000;
    extra_call_cycles = 0;
    extra_icall_cycles = 0;
    extra_ret_cycles = 0;
    rsb_refill = false;
  }

type counters = {
  mutable calls : int;
  mutable icalls : int;
  mutable rets : int;
  mutable insts : int;
  mutable btb_misses : int;
  mutable rsb_misses : int;
  mutable pht_misses : int;
  mutable stack_bytes : int;
  mutable peak_stack_bytes : int;
}

(* Compiled view of the IR, built once per program: function names are
   interned to dense ids, every direct-call target and fptr-table entry is
   pre-resolved, per-function constants (PHT key base, frame bytes) are
   computed up front, and every non-asm indirect-call site gets a dense
   slot so per-engine protection kinds live in a flat array. *)

type cinst =
  | CAssign of reg * expr
  | CStore of operand * operand
  | CObserve of operand
  | CCall of {
      dst : reg option;
      callee : string;  (* kept for edges and error messages *)
      callee_id : int;  (* -1 when the name does not resolve *)
      args : operand array;
      site : site;
    }
  | CIcall of {
      dst : reg option;
      fptr : operand;
      args : operand array;
      site : site;
      slot : int;  (* dense index into the per-engine protection array *)
    }
  | CAsm_icall of {
      fptr : operand;
      site : site;
    }

type cblock = {
  cinsts : cinst array;
  cterm : terminator;
}

type cfunc = {
  f : func;
  id : int;
  cblocks : cblock array;
  key_base : int;  (* PHT key base: Hashtbl.hash fname * 613, as the seed *)
  frame_bytes : int;  (* stack-coloring frame model, precomputed *)
}

(* id of the synthetic top-of-stack return continuation *)
let top_id = -1

(* The compiled view is immutable and depends only on the program, so
   engines created on the same program (physical equality) share it —
   config-dependent state (protections, footprint memo) lives in
   per-engine arrays instead. *)
type compiled = {
  cfuncs : (string, cfunc) Hashtbl.t;  (* API edge only; never on the hot path *)
  cby_id : cfunc array;
  cfptr_ids : int array;  (* pre-resolved fptr targets; -1 = unknown name *)
  cmax_regs : int;
  cicall_sites : site array;  (* CIcall slot -> site, in lowering order *)
}

type t = {
  prog : Program.t;
  funcs : (string, cfunc) Hashtbl.t;
  by_id : cfunc array;
  fptr_table : string array;
  fptr_ids : int array;
  bwds : Protection.backward array;  (* per-function backward protection, by id *)
  fwd_prots : Protection.forward array;  (* per-site forward protection, by slot *)
  sizes : int array;  (* memoized config.footprint, by id; -1 until first entry *)
  mem : int array;
  tbtb : Btb.t;
  trsb : Rsb.t;
  tpht : Pht.t;
  ticache : Icache.t;
  cfg : config;
  fuel_cap : int;
      (* copy of [cfg.fuel], hoisted out of the nested record: the fuel
         guard runs once per executed instruction in both backends, and
         the flat field saves an indirection each time *)
  ctrs : counters;
  max_regs : int;
  backend : backend;
  tier_threshold : int;
      (* tier-up knob: entries of a function beyond this count run the
         fused tier; 0 = tier-up disabled (baseline closures only) *)
  tier_counts : int array;
      (* per-function entry counters, by interned id; PER-ENGINE so
         tier-up decisions are deterministic at any --jobs (the fused
         closures themselves live in the shared compiled program).
         Empty unless this engine runs the tiered compiled backend. *)
  tier3_threshold : int;
      (* register-threaded tier-3 knob: entries of a function beyond this
         count run the int-coded dispatch loop; 0 = tier 3 disabled.
         Only meaningful on tiered compiled engines. *)
  callfuse_threshold : int;
      (* call-seam fusion knob this engine was created with: a direct
         call site fuses across the call/return pair once the callee's
         entry count crosses it; 0 = fusion off.  Baked into the shared
         closure program (it changes lowering), kept here for the
         accessor. *)
  backend_stats : unit -> (string * int) list;
      (* installed by [Engine.create]: lowering statistics of the shared
         closure program (fused call seams, tier-3 coverage); empty for
         the interpreter backend.  Scheduling-dependent — report only
         under the "sched" trace category. *)
  mutable exec_entry : t -> cfunc -> int list -> int option;
      (* installed by [Engine.create]: the selected backend's entry path;
         builds the top-level frame from the argument list itself, so
         each backend controls how much of the register file it zeroes *)
  mutable frames : int array array;  (* register-frame pool, one per depth *)
  mutable taint_frames : int option array array;
  mutable cur_regs : int array;
      (* the running activation's register frame, (re-)published by every
         compiled chunk that invokes per-instruction bodies: bodies are
         arity-1 closures over [t] alone, which OCaml applies as a direct
         indirect call at each site — arity >= 2 would funnel every body
         through the program-wide [caml_apply2] trampoline *)
  mutable cur_taint : int option array;  (* ditto, spec-variant taint frame *)
  mutable cur_depth : int;  (* the running activation's depth *)
  mutable cur_ret_to : int;
      (* the running activation's return-prediction target (caller id);
         saved and restored around nested calls by the call chunks *)
  mutable call_memo : (string * cfunc) option;
      (* last [Engine.call] name resolution, keyed on physical string
         identity — workload drivers pass the same entry-name value on
         every simulated request *)
  mutable cyc : int;
  mutable steps : int;
  mutable trace_rev : int list;
}

exception Runtime_error of string
exception Out_of_fuel

(* Frame accounting with a stack-coloring model: inlined callees' locals
   have disjoint lifetimes, so the allocator merges most of their slots.
   Sub-linear growth in the register count approximates that; coloring
   degrades as merged frames grow, which is exactly the inefficiency paper
   Rule 2 exists to bound (section 5.2). *)
let frame_bytes_of nregs = 16 + (8 * int_of_float (Float.of_int nregs ** 0.6))

let compile_func ~id ~slots intern (f : func) =
  let compile_inst = function
    | Assign (r, e) -> CAssign (r, e)
    | Store (a, v) -> CStore (a, v)
    | Observe v -> CObserve v
    | Call { dst; callee; args; site; tail = _ } ->
      CCall { dst; callee; callee_id = intern callee; args = Array.of_list args; site }
    | Icall { dst; fptr; args; site } ->
      let slot = List.length !slots in
      slots := site :: !slots;
      CIcall { dst; fptr; args = Array.of_list args; site; slot }
    | Asm_icall { fptr; site } -> CAsm_icall { fptr; site }
  in
  let cblocks =
    Array.map
      (fun (b : block) -> { cinsts = Array.map compile_inst b.insts; cterm = b.term })
      f.blocks
  in
  {
    f;
    id;
    cblocks;
    key_base = Hashtbl.hash f.fname * 613;
    frame_bytes = frame_bytes_of f.nregs;
  }

let compile prog =
  let order = Program.layout_order prog in
  let n = List.length order in
  let ids = Hashtbl.create (2 * max n 1) in
  List.iteri (fun i name -> Hashtbl.replace ids name i) order;
  let intern name = match Hashtbl.find_opt ids name with Some i -> i | None -> -1 in
  let cfuncs = Hashtbl.create (2 * max n 1) in
  let slots = ref [] in
  let cby_id =
    Array.of_list
      (List.mapi
         (fun i name ->
           let f = Program.find prog name in
           let cf = compile_func ~id:i ~slots intern f in
           Hashtbl.replace cfuncs name cf;
           cf)
         order)
  in
  {
    cfuncs;
    cby_id;
    cfptr_ids = Array.map intern prog.Program.fptr_table;
    cmax_regs = Array.fold_left (fun m cf -> max m cf.f.nregs) 1 cby_id;
    cicall_sites = Array.of_list (List.rev !slots);
  }

let func_name t id = if id = top_id then "#top" else t.by_id.(id).f.fname

let lookup t id name =
  if id >= 0 then t.by_id.(id)
  else raise (Runtime_error ("call to unknown function @" ^ name))

let footprint_of t cf =
  let s = t.sizes.(cf.id) in
  if s >= 0 then s
  else begin
    let s = t.cfg.footprint cf.f in
    t.sizes.(cf.id) <- s;
    s
  end

(* Register-frame pool: one zeroed frame per activation depth, allocated on
   first use and reused by every later activation at that depth — no
   allocation on the call hot path.  Frames are sized to the largest
   register file in the program; only the first [nregs] slots are ever
   read, and they are re-zeroed on entry (registers start at 0). *)

(* The pooled frame for [depth], with whatever contents its previous
   activation left: callers zero exactly the slots the callee can read
   ([frame] zeroes all of them; the compiled call path writes the
   argument prefix and zeroes only the tail).  Slot stores are
   bounds-check-free: every [nregs] is <= [t.max_regs] = the pool frame
   length by construction. *)
let raw_frame t ~depth =
  (if depth >= Array.length t.frames then begin
     let len = Array.length t.frames in
     let grown = Array.make (max 64 (max (2 * len) (depth + 1))) [||] in
     Array.blit t.frames 0 grown 0 len;
     t.frames <- grown
   end);
  let fr = t.frames.(depth) in
  if Array.length fr = 0 then begin
    let fr = Array.make (max t.max_regs 1) 0 in
    t.frames.(depth) <- fr;
    fr
  end
  else fr

let frame t ~depth ~nregs =
  let fr = raw_frame t ~depth in
  (* Hand-rolled zeroing: [Array.fill] is a C call, and this runs once
     per activation — straight stores beat the call overhead for the
     small register files that dominate. *)
  for i = 0 to nregs - 1 do
    Array.unsafe_set fr i 0
  done;
  fr

(* Pooled taint frame for [depth] with stale contents, mirror of
   [raw_frame]: callers must overwrite every slot the activation can
   read before writing. *)
let raw_taint_frame t ~depth =
  (if depth >= Array.length t.taint_frames then begin
     let len = Array.length t.taint_frames in
     let grown = Array.make (max 64 (max (2 * len) (depth + 1))) [||] in
     Array.blit t.taint_frames 0 grown 0 len;
     t.taint_frames <- grown
   end);
  let fr = t.taint_frames.(depth) in
  if Array.length fr = 0 then begin
    let fr = Array.make (max t.max_regs 1) None in
    t.taint_frames.(depth) <- fr;
    fr
  end
  else fr

let taint_frame t ~depth ~nregs =
  let fr = raw_taint_frame t ~depth in
  for i = 0 to nregs - 1 do
    Array.unsafe_set fr i None
  done;
  fr

let operand_value regs = function
  | Imm i -> i
  | Reg r -> regs.(r)

(* Taint: the attacker-injectable transient value of each register, used
   only when a speculation drill is active. *)
let operand_taint taint = function
  | Imm _ -> None
  | Reg r -> taint.(r)

let emit_edge t site caller callee kind =
  match t.cfg.on_edge with
  | None -> ()
  | Some f -> f { site; caller; callee; kind }

let charge t c = t.cyc <- t.cyc + c

(* Per-instruction step accounting: both backends must count and check fuel
   at exactly the same points (one bump per executed instruction, one per
   evaluated terminator) so an out-of-fuel run dies mid-block at the same
   instruction with the same cycles under either backend. *)
let[@inline] step_fuel t =
  t.steps <- t.steps + 1;
  if t.steps > t.fuel_cap then raise Out_of_fuel

let[@inline] bump_inst t =
  t.ctrs.insts <- t.ctrs.insts + 1;
  step_fuel t

let enter_code t callee =
  charge t (Icache.touch t.ticache ~id:callee.id ~size:(footprint_of t callee))

(* Forward transfer through an indirect call site: prediction, cost,
   training, speculation drill.  Returns unit; the caller then executes
   the resolved target.  [target] is the interned id of the resolved
   callee; prediction hit/miss is a single int compare. *)
let indirect_transfer t ~site ~target ~fptr_taint ~protection =
  let spec = t.cfg.speculation in
  (match protection with
  | Protection.F_none ->
    let predicted = Btb.predict t.tbtb ~site:site.site_id in
    let hit = predicted = target in
    if not hit then t.ctrs.btb_misses <- t.ctrs.btb_misses + 1;
    charge t (Cost.forward_cost protection ~btb_hit:hit);
    (* The resolved branch retrains its slot. *)
    Btb.train t.tbtb ~site:site.site_id ~target;
    (match spec with
    | Some s when predicted <> Btb.no_target && predicted <> target ->
      Speculation.record s
        {
          Speculation.mechanism = Speculation.Spectre_v2;
          site_id = site.site_id;
          gadget = func_name t predicted;
        }
    | _ -> ())
  | Protection.F_fineibt | Protection.F_coarse_cfi ->
    (* CFI checks keep the BTB in the loop: the branch predicts and
       trains normally and pays the check on top.  A transiently entered
       target only matters when it passes the target-set check — the
       whole point of the landing-pad precision model. *)
    let predicted = Btb.predict t.tbtb ~site:site.site_id in
    let hit = predicted = target in
    if not hit then t.ctrs.btb_misses <- t.ctrs.btb_misses + 1;
    charge t (Cost.forward_cost protection ~btb_hit:hit);
    Btb.train t.tbtb ~site:site.site_id ~target;
    (match spec with
    | Some s when predicted <> Btb.no_target && predicted <> target ->
      let gadget = func_name t predicted in
      if t.cfg.cfi_valid ~site ~target:gadget ~protection then
        Speculation.record s
          { Speculation.mechanism = Speculation.Spectre_v2; site_id = site.site_id; gadget }
    | _ -> ())
  | Protection.F_retpoline | Protection.F_lvi | Protection.F_fenced_retpoline ->
    charge t (Cost.forward_cost protection ~btb_hit:false);
    (* Retpolines never execute a BTB-predicted branch; the LVI thunk
       still does, so V2 injection remains possible through it. *)
    if not (Protection.forward_stops_btb_injection protection) then begin
      let predicted = Btb.predict t.tbtb ~site:site.site_id in
      Btb.train t.tbtb ~site:site.site_id ~target;
      match spec with
      | Some s when predicted <> Btb.no_target && predicted <> target ->
        Speculation.record s
          {
            Speculation.mechanism = Speculation.Spectre_v2;
            site_id = site.site_id;
            gadget = func_name t predicted;
          }
      | _ -> ()
    end);
  (* LVI: a poisoned branch-target load lets the attacker steer the
     transient call unless the sequence fences the load.  Under a CFI
     kind the injected target still has to pass the target-set check
     before the transient entry lands. *)
  match (spec, fptr_taint) with
  | Some s, Some injected when not (Protection.forward_stops_lvi protection) ->
    let gadget =
      if injected >= 0 && injected < Array.length t.fptr_table then t.fptr_table.(injected)
      else "#fault"
    in
    if
      (not (Protection.forward_checks_target protection))
      || t.cfg.cfi_valid ~site ~target:gadget ~protection
    then
      Speculation.record s
        { Speculation.mechanism = Speculation.Lvi; site_id = site.site_id; gadget }
  | _ -> ()

(* Bounds/unknown-name checks on an evaluated fptr value; returns the
   resolved callee id.  Shared so both backends raise the same errors at
   the same execution points. *)
let[@inline] icall_resolve t v =
  if v < 0 || v >= Array.length t.fptr_table then
    raise
      (Runtime_error
         (Printf.sprintf "wild indirect call: fptr value %d outside table of %d" v
            (Array.length t.fptr_table)));
  let target_id = t.fptr_ids.(v) in
  if target_id < 0 then
    raise (Runtime_error ("call to unknown function @" ^ t.fptr_table.(v)));
  target_id

(* The whole return path: backward-protection cost, RSB pop and
   prediction, Ret2spec drills, stack accounting and the on_exit hook.
   The returned value itself is threaded by the caller. *)
let do_ret t (cf : cfunc) ~ret_to =
  t.ctrs.rets <- t.ctrs.rets + 1;
  charge t t.cfg.extra_ret_cycles;
  let protection = t.bwds.(cf.id) in
  (match protection with
  | Protection.B_none | Protection.B_lvi ->
    let popped = Rsb.pop t.trsb in
    let hit = popped = ret_to in
    if not hit then t.ctrs.rsb_misses <- t.ctrs.rsb_misses + 1;
    charge t (Cost.backward_cost protection ~rsb_hit:hit);
    (match t.cfg.speculation with
    | Some s when not (Protection.backward_stops_rsb_poisoning protection) ->
      (* An armed desynchronization means this return's prediction is
         attacker-controlled. *)
      (match Speculation.take_rsb_desync s with
      | Some (_, gadget) ->
        Speculation.record s
          { Speculation.mechanism = Speculation.Ret2spec; site_id = -1; gadget }
      | None -> ());
      if popped <> Rsb.none && popped <> ret_to then
        Speculation.record s
          {
            Speculation.mechanism = Speculation.Ret2spec;
            site_id = -1;
            gadget = func_name t popped;
          }
    | _ -> ())
  | Protection.B_pac ->
    (* PAC signs the return address at call time and authenticates it
       here: the RSB still predicts (and pays hit/miss as usual), but a
       poisoned prediction is squashed by the failing authenticate — no
       transient entry, no RSB refill needed.  A correctly-signed forged
       pointer (signing-gadget attack) authenticates fine and survives. *)
    let popped = Rsb.pop t.trsb in
    let hit = popped = ret_to in
    if not hit then t.ctrs.rsb_misses <- t.ctrs.rsb_misses + 1;
    charge t (Cost.backward_cost protection ~rsb_hit:hit);
    (match t.cfg.speculation with
    | Some s ->
      (match Speculation.take_rsb_desync s with
      | Some (Speculation.Forged_pac, gadget) ->
        Speculation.record s
          { Speculation.mechanism = Speculation.Ret2spec; site_id = -1; gadget }
      | Some ((Speculation.User_pollution | Speculation.Cross_thread), _) | None -> ())
    | None -> ())
  | Protection.B_ret_retpoline | Protection.B_fenced_ret_retpoline ->
    (* The sequence forces the top-of-RSB into a known state; the stale
       entry is consumed without being followed. *)
    ignore (Rsb.pop t.trsb);
    charge t (Cost.backward_cost protection ~rsb_hit:false));
  t.ctrs.stack_bytes <- t.ctrs.stack_bytes - cf.frame_bytes;
  match t.cfg.on_exit with
  | Some h -> h cf.f.fname
  | None -> ()

(* Function-entry stack accounting, shared by both backends. *)
let[@inline] enter_frame t (cf : cfunc) =
  t.ctrs.stack_bytes <- t.ctrs.stack_bytes + cf.frame_bytes;
  if t.ctrs.stack_bytes > t.ctrs.peak_stack_bytes then
    t.ctrs.peak_stack_bytes <- t.ctrs.stack_bytes

(* Cost of a compare-ladder switch lowering, a pure function of the case
   count (compilers lower large switches as balanced compare trees). *)
let ladder_cost ncases =
  let depth =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    1 + log2 0 (ncases + 1)
  in
  Cost.br + (Cost.switch_ladder_step * depth)
