(** Instruction-cache pressure model.

    Function-granular LRU over a byte budget: transferring control into a
    function that is not resident charges a miss penalty proportional to
    its footprint (capped at one page) and evicts least-recently-used
    residents until it fits.  This is the mechanism that makes unbounded
    inlining lose — exactly the trade-off PIBE's Rules 2 and 3 manage
    (paper §5.2).

    Functions are keyed by interned id (see {!Engine.func_id}): a touch is
    an O(1) array probe plus an intrusive-LRU relink, no string hashing. *)

type t

val create : capacity_bytes:int -> t
(** Zero or negative capacity disables the model (all hits). *)

val touch : t -> id:int -> size:int -> int
(** Control transfer into function [id] with code footprint [size] bytes;
    returns the cycle penalty (0 on a hit).  [id] must be non-negative. *)

val resident : t -> int -> bool
val flush : t -> unit
val miss_count : t -> int
val hit_count : t -> int
