(** Branch Target Buffer model.

    A direct-mapped, untagged buffer indexed by the low bits of the
    branch-site id (standing in for the branch address): distinct sites
    that alias to one slot share its prediction — the property Spectre V2
    exploits.

    Targets are interned function ids (see {!Engine.func_id}); the hot
    prediction path is a single array read and an int compare. *)

type t

val no_target : int
(** Sentinel returned by {!predict} on a cold slot; never a valid id. *)

val create : ?entries:int -> unit -> t
(** [entries] defaults to 1024 and must be a power of two. *)

val predict : t -> site:int -> int
(** Predicted target id for the branch at [site]; [no_target] on a cold
    slot. *)

val train : t -> site:int -> target:int -> unit
(** Records the resolved target (also how an attacker poisons aliased
    entries).  [target] must be non-negative. *)

val flush : t -> unit

val aliases : t -> int -> int -> bool
(** Do two site ids map to the same entry? *)
