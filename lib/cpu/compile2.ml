(** Closure-threaded compiled execution backend with a profile-guided
    fused tier.

    Lowers every {!Machine.cinst}, expression and terminator into a
    pre-specialized OCaml closure once per program, so the hot loop runs
    flat closure arrays with zero constructor matching and zero
    per-activation closure allocation: operand kinds ([Imm] vs [Reg]),
    binop selection (down to constant-folded immediate pairs), statically
    bounds-checked global loads and stores, per-instruction cycle costs,
    resolved direct-call targets, PHT keys, switch-ladder costs and
    indirect-call protection slots are all baked at closure-construction
    time.

    Straight-line runs of simple instructions (assign / store / observe,
    including statically bounds-checked loads) are fused into {e
    segments} with batched accounting: one fuel check, one
    step/instruction/cycle bump per segment instead of one per
    instruction.  Exactness is preserved on every path — each
    potentially-faulting instruction carries baked rollback deltas
    (cycles, steps and instruction counts kept separate, because fused
    jump seams step without retiring an instruction) that rewind the
    not-yet-earned remainder of the batch before raising, and a segment
    that could exhaust its fuel budget falls back to a per-item slow path
    that dies at exactly the interpreter's instruction — so cycles,
    counters and errors stay bit-exact even mid-segment (pinned by the
    out-of-fuel and wild-icall differential tests in
    [test/test_backend.ml]).

    {2 Tiers}

    Two lowering tiers share the closure machinery:

    - {e Tier 1} (baseline) lowers one closure per basic block, segments
      fused within the block — the only tier of the PR5 backend, and the
      authoritative cheap tier.
    - {e Tier 2} (fused) additionally performs {e superblock fusion}: a
      maximal chain of blocks linked by unconditional [Jmp] fallthrough
      edges into single-predecessor blocks is lowered as ONE closure, its
      segments fused {e across} the seams with one pre-summed cycle/step
      constant per segment.  A seam contributes a zero-body [SJump] item
      (the seam's fuel step and jump cost are folded into the batch
      header), so a hot K-block chain pays one fuel check and no
      per-block closure dispatch at all.  Branch predictor, RSB, i-cache
      and PHT state are only materialized at conditional branches,
      indirect transfers and call boundaries — exactly where the
      interpreter touches them.

    Tier-up is profile-guided ({e PGO applied to our own engine}): a
    tiered program routes every function entry through a counting
    dispatcher that bumps a {e per-engine} counter
    ({!Machine.t.tier_counts}) and switches to the fused body once the
    count crosses the engine's {!Machine.t.tier_threshold}.  Counters are
    per-engine so tier-up decisions are a deterministic function of each
    engine's own workload at any [--jobs]; the fused closures themselves
    are lowered lazily in the shared program (double-checked under
    [link_lock], same as tier 1), so a working set of engines pays each
    function's fused lowering once.  Both tiers are bit-exact against
    the interpreter, so {e when} a function tiers up is unobservable in
    cycles, counters, traces or errors — the baseline tier stays
    authoritative.

    Each block is compiled (per tier) twice — a plain variant for the
    common speculation-off configuration and a spec variant threading the
    taint file — and call closures jump straight to the matching variant
    of their callee, so the choice is made once per top-level entry, not
    per instruction.  All four variants are lowered lazily, per function,
    on the first call (or first post-threshold call) that reaches them.

    Everything whose semantics is shared with the reference interpreter
    (indirect-branch transfer, return path, frame pools, step/fuel
    accounting) is called through {!Machine}, which is what makes the
    backend cycle-, counter- and speculation-exact against {!Interp}
    (pinned by [test/test_measure.ml] and [test/test_backend.ml]).

    Closures capture only per-program data — never an engine — so one
    compiled program is shared by every engine created on it, across
    domains, exactly like {!Machine.compiled}. *)

open Pibe_ir
open Types
open Machine
module Trace = Pibe_trace.Trace

(* t regs depth ret_to -> result *)
type fexec = Machine.t -> int array -> int -> int -> int option

(* t regs taint depth ret_to -> result *)
type bexec = Machine.t -> int array -> int option array -> int -> int -> int option

(* t regs taint depth -> () *)
type iexec = Machine.t -> int array -> int option array -> int -> unit

(* Fused-segment instruction bodies: accounting is handled by the
   segment header, and simple instructions never need the activation
   depth, so plain bodies are arity-2 and spec bodies arity-3 — the
   cheapest possible indirect calls on the hot path. *)
type pbody = Machine.t -> int array -> unit
type tbody = Machine.t -> int array -> int option array -> unit

type cfunc2 = {
  c2 : cfunc;
  zeroset : int array;
      (* registers some path from entry may read before writing, sorted;
         the only slots of a pooled frame whose initial 0 / [None] is
         observable — see [zeroset_of] *)
  mutable fexec_plain : fexec;
      (* what call closures invoke: in a baseline program, the linked
         tier-1 body (trampoline until first call); in a tiered program,
         the permanent counting dispatcher *)
  mutable fexec_spec : fexec;
  (* per-tier bodies behind the dispatcher of a tiered program; each
     starts as a lazy-linking trampoline (written only under
     [prog.link_lock], like the [linked] flags) *)
  mutable t1_plain : fexec;
  mutable t1_spec : fexec;
  mutable t2_plain : fexec;
  mutable t2_spec : fexec;
  mutable t1_plain_linked : bool;
  mutable t1_spec_linked : bool;
  mutable t2_plain_linked : bool;
  mutable t2_spec_linked : bool;
}

type prog = {
  c2by_id : cfunc2 array;
  mem_len : int;  (* length of every engine's global memory, for baked bounds *)
  link_lock : Mutex.t;  (* serializes per-function lazy lowering *)
  tiered : bool;
      (* whether [fexec_*] is the counting dispatcher (tiered) or the
         tier-1 body itself (baseline) *)
}

let unlinked : fexec = fun _ _ _ _ -> assert false

(* Shared empty taint file threaded through the plain variant; never read
   or written there. *)
let no_taint : int option array = [||]

(* --------------------- entry-live zero sets -------------------- *)

(* Register frames come from a per-depth pool, so a fresh activation
   sees whatever its predecessor left.  The interpreter zeroes the whole
   file ([frame]) and [None]s the whole taint file; but the only slots
   whose initial value is observable are those some path from the entry
   block may READ before writing — everything else is dead on entry and
   its stale contents can never flow into cycles, memory, traces or
   taint.  [zeroset_of] computes that set once per function at compile
   time (a standard backward may-liveness fixpoint over the compiled
   blocks, bit-packed 32 registers per word), and the call paths zero
   exactly it.  The big straight-line kernel functions have register
   files two orders of magnitude larger than their entry-live set, which
   makes this the difference between ~800 stores and ~4 per activation
   of the hottest callees. *)
let zeroset_of (cf : cfunc) : int array =
  let module RS = Set.Make (Int) in
  let blocks = cf.cblocks in
  let nblocks = Array.length blocks in
  (* Per-block summaries, one pass over each instruction total: [gen] is
     the registers read before any in-block write (sparse — live sets
     stay tiny even in functions with huge register files, which is what
     keeps this affordable on aggressively inlined images), [def] the
     registers the block writes. *)
  let gens = Array.make nblocks RS.empty in
  let defs = Array.make nblocks (Hashtbl.create 0) in
  for l = 0 to nblocks - 1 do
    let b = blocks.(l) in
    let def : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let gen = ref RS.empty in
    let use r = if not (Hashtbl.mem def r) then gen := RS.add r !gen in
    let use_op = function Imm _ -> () | Reg r -> use r in
    let use_expr = function
      | Const _ -> ()
      | Move o | Load o -> use_op o
      | Binop (_, a, b) ->
        use_op a;
        use_op b
    in
    let write r = Hashtbl.replace def r () in
    Array.iter
      (fun i ->
        match i with
        | CAssign (d, e) ->
          use_expr e;
          write d
        | CStore (a, v) ->
          use_op a;
          use_op v
        | CObserve v -> use_op v
        | CCall { dst; args; _ } ->
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CIcall { dst; fptr; args; _ } ->
          use_op fptr;
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CAsm_icall { fptr; _ } -> use_op fptr)
      b.cinsts;
    (match b.cterm with
    | Jmp _ | Ret None -> ()
    | Br (c, _, _) -> use_op c
    | Switch { scrutinee; _ } -> use_op scrutinee
    | Ret (Some v) -> use_op v);
    gens.(l) <- !gen;
    defs.(l) <- def
  done;
  (* Worklist fixpoint over the block summaries:
     live_in = gen ∪ (live_out − def).  A block is revisited only when
     the live-in of a successor changed. *)
  let live_in = Array.make nblocks RS.empty in
  let live_out = Array.make nblocks RS.empty in
  let preds = Array.make nblocks [] in
  for l = 0 to nblocks - 1 do
    List.iter
      (fun s -> preds.(s) <- l :: preds.(s))
      (Func.successors blocks.(l).cterm)
  done;
  let queued = Array.make nblocks true in
  let work = ref [] in
  for l = 0 to nblocks - 1 do
    work := l :: !work
  done;
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | l :: rest ->
      work := rest;
      queued.(l) <- false;
      let out =
        List.fold_left
          (fun acc s -> RS.union acc live_in.(s))
          RS.empty
          (Func.successors blocks.(l).cterm)
      in
      live_out.(l) <- out;
      let def = defs.(l) in
      let inn =
        RS.union gens.(l) (RS.filter (fun r -> not (Hashtbl.mem def r)) out)
      in
      if not (RS.equal inn live_in.(l)) then begin
        live_in.(l) <- inn;
        List.iter
          (fun p ->
            if not queued.(p) then begin
              queued.(p) <- true;
              work := p :: !work
            end)
          preds.(l)
      end
  done;
  Array.of_list (RS.elements live_in.(cf.f.entry))

(* Zero the zeroset slots at index >= [n] (the written argument prefix)
   of a pooled frame. *)
let[@inline] zero_tail (zs : int array) n (fr : int array) =
  for i = 0 to Array.length zs - 1 do
    let r = Array.unsafe_get zs i in
    if r >= n then Array.unsafe_set fr r 0
  done

(* ------------------------- operands ---------------------------- *)

(* The specialized bodies below use unchecked array accesses: every
   static register index is validated once per function at
   closure-construction time ([func_valid] in [make_prog] — Builder and
   Validate both enforce the same bounds, so real programs always pass),
   and every pooled frame/taint file has length >= the program-wide
   [max_regs] >= the function's [nregs].  Global-memory accesses keep
   their explicit bounds check against the baked [mem_len] (the fault
   path is observable semantics) and go unchecked only after it.  A
   function with an out-of-range static index or block label lowers to a
   closure that raises [Runtime_error] on entry instead — hand-built IR
   that [Validate] would reject, so parity is not pinned there. *)

let cop : operand -> int array -> int = function
  | Imm i -> fun _ -> i
  | Reg r -> fun regs -> Array.unsafe_get regs r

(* Static index validation backing the unchecked accesses above: all
   register operands within [0, nregs), all successor labels within
   [0, nblocks). *)
let func_valid (cf : cfunc) : bool =
  let nregs = cf.f.nregs in
  let nblocks = Array.length cf.cblocks in
  let ok = ref true in
  let reg r = if r < 0 || r >= nregs then ok := false in
  let op = function Imm _ -> () | Reg r -> reg r in
  let expr = function
    | Const _ -> ()
    | Move o | Load o -> op o
    | Binop (_, a, b) ->
      op a;
      op b
  in
  let label l = if l < 0 || l >= nblocks then ok := false in
  Array.iter
    (fun (b : Machine.cblock) ->
      Array.iter
        (fun i ->
          match i with
          | CAssign (d, e) ->
            reg d;
            expr e
          | CStore (a, v) ->
            op a;
            op v
          | CObserve v -> op v
          | CCall { dst; args; _ } ->
            Array.iter op args;
            (match dst with Some d -> reg d | None -> ())
          | CIcall { dst; fptr; args; _ } ->
            op fptr;
            Array.iter op args;
            (match dst with Some d -> reg d | None -> ())
          | CAsm_icall { fptr; _ } -> op fptr)
        b.cinsts;
      match b.cterm with
      | Jmp l -> label l
      | Br (c, l1, l2) ->
        op c;
        label l1;
        label l2
      | Switch { scrutinee; cases; default; _ } ->
        op scrutinee;
        Array.iter (fun (_, l) -> label l) cases;
        label default
      | Ret None -> ()
      | Ret (Some v) -> op v)
    cf.cblocks;
  label cf.f.entry;
  !ok

(* ---------------------- fused segments ------------------------- *)

(* A segment batches the accounting of a run of [k] items — simple
   instructions plus, in the fused tier, [SJump] seam markers standing
   for an unconditional fallthrough (the predecessor block's terminator
   fuel step and jump cost): the header bumps steps by [k], retired
   instructions by the number of real instructions, and cycles by the
   segment's static cost sum, then runs the instruction bodies (seams
   have no body at all on the fast path).  When a body must raise
   mid-segment (an out-of-bounds load or store), it first rewinds the
   not-yet-earned remainder — [dc] cycles, [dns] steps and [dni]
   retired instructions, all baked at compile time and distinct because
   seams step without retiring — so the observable state at the raise
   point is exactly the interpreter's. *)
type sitem =
  | SInst of Machine.cinst
  | SJump
      (* a fused unconditional fallthrough seam: one fuel step plus
         [Cost.jmp], batched mid-segment *)

(* Link-time lowering statistics, reported as trace counters when the
   fused tier of a function is linked. *)
type fuse_stats = {
  mutable sb_count : int;  (* >=2-block chains lowered as one superblock *)
  mutable sb_blocks : int;  (* blocks covered by those superblocks *)
  mutable seg_fused : int;  (* instructions inside batched (>=2-item) segments *)
  mutable seg_total : int;  (* simple instructions lowered into segments *)
}

let[@inline] seg_unwind t ~dc ~dns ~dni =
  t.cyc <- t.cyc - dc;
  t.steps <- t.steps - dns;
  t.ctrs.insts <- t.ctrs.insts - dni

let oob_load fname addr =
  Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr fname)

let oob_store fname addr =
  Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr fname)

let inst_cost = function
  | CAssign (_, e) -> (
    match e with
    | Load _ -> Cost.load
    | Binop _ -> Cost.binop
    | Const _ -> Cost.assign
    | Move _ -> Cost.move)
  | CStore _ -> Cost.store
  | CObserve _ -> Cost.observe
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

let sitem_cost = function
  | SInst i -> inst_cost i
  | SJump -> Cost.jmp

(* Assign of a binop, fully specialized on the operator and both operand
   kinds: the closure body is the register reads and the arithmetic,
   nothing else.  Immediate pairs constant-fold at compile time. *)
let pbinop r op a b : pbody =
  (* spelled out with the array primitives directly in every arm: the
     compiler has no flambda, so a local [get]/[set] helper captured in
     the returned closure would cost a real call per register access in
     the hottest bodies the backend emits *)
  match (a, b) with
  | Reg x, Reg y -> (
    match op with
    | Add ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x + Array.unsafe_get regs y)
    | Sub ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x - Array.unsafe_get regs y)
    | Mul ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x * Array.unsafe_get regs y)
    | Xor ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x lxor Array.unsafe_get regs y)
    | And ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x land Array.unsafe_get regs y)
    | Or ->
      fun _ regs ->
        Array.unsafe_set regs r (Array.unsafe_get regs x lor Array.unsafe_get regs y)
    | Shl ->
      fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lsl (Array.unsafe_get regs y land 31))
    | Shr ->
      fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lsr (Array.unsafe_get regs y land 31))
    | Lt ->
      fun _ regs ->
        Array.unsafe_set regs r
          (if Array.unsafe_get regs x < Array.unsafe_get regs y then 1 else 0)
    | Eq ->
      fun _ regs ->
        Array.unsafe_set regs r
          (if Array.unsafe_get regs x = Array.unsafe_get regs y then 1 else 0))
  | Reg x, Imm y -> (
    match op with
    | Add -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x + y)
    | Sub -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x - y)
    | Mul -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x * y)
    | Xor -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lxor y)
    | And -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x land y)
    | Or -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lor y)
    | Shl ->
      let s = y land 31 in
      fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lsl s)
    | Shr ->
      let s = y land 31 in
      fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lsr s)
    | Lt ->
      fun _ regs -> Array.unsafe_set regs r (if Array.unsafe_get regs x < y then 1 else 0)
    | Eq ->
      fun _ regs -> Array.unsafe_set regs r (if Array.unsafe_get regs x = y then 1 else 0))
  | Imm x, Reg y -> (
    match op with
    | Add -> fun _ regs -> Array.unsafe_set regs r (x + Array.unsafe_get regs y)
    | Sub -> fun _ regs -> Array.unsafe_set regs r (x - Array.unsafe_get regs y)
    | Mul -> fun _ regs -> Array.unsafe_set regs r (x * Array.unsafe_get regs y)
    | Xor -> fun _ regs -> Array.unsafe_set regs r (x lxor Array.unsafe_get regs y)
    | And -> fun _ regs -> Array.unsafe_set regs r (x land Array.unsafe_get regs y)
    | Or -> fun _ regs -> Array.unsafe_set regs r (x lor Array.unsafe_get regs y)
    | Shl ->
      fun _ regs ->
        Array.unsafe_set regs r (x lsl (Array.unsafe_get regs y land 31))
    | Shr ->
      fun _ regs ->
        Array.unsafe_set regs r (x lsr (Array.unsafe_get regs y land 31))
    | Lt ->
      fun _ regs -> Array.unsafe_set regs r (if x < Array.unsafe_get regs y then 1 else 0)
    | Eq ->
      fun _ regs -> Array.unsafe_set regs r (if x = Array.unsafe_get regs y then 1 else 0))
  | Imm x, Imm y ->
    let v = eval_binop op x y in
    fun _ regs -> Array.unsafe_set regs r v

let passign ~mem_len fname ~dc ~dns ~dni r e : pbody =
  match e with
  | Const i | Move (Imm i) -> fun _ regs -> Array.unsafe_set regs r i
  | Move (Reg s) -> fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs s)
  | Binop (op, a, b) -> pbinop r op a b
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then
      fun t regs -> Array.unsafe_set regs r (Array.unsafe_get t.mem i)
    else
      fun t _ ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t regs ->
      let addr = Array.unsafe_get regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname addr)
      end
      else Array.unsafe_set regs r (Array.unsafe_get t.mem addr)

(* Spec-variant assign: the taint write happens before the value write —
   and, as in the interpreter, before a faulting load raises. *)
let tassign ~mem_len fname ~dc ~dns ~dni r e : tbody =
  match e with
  | Const i | Move (Imm i) ->
    fun _ regs taint ->
      Array.unsafe_set taint r None;
      Array.unsafe_set regs r i
  | Move (Reg s) ->
    fun _ regs taint ->
      Array.unsafe_set taint r (Array.unsafe_get taint s);
      Array.unsafe_set regs r (Array.unsafe_get regs s)
  | Binop (op, a, b) ->
    let body = pbinop r op a b in
    fun t regs taint ->
      Array.unsafe_set taint r None;
      body t regs
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then
      fun t regs taint ->
        (Array.unsafe_set taint r
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        Array.unsafe_set regs r (Array.unsafe_get t.mem i)
    else
      fun t _ taint ->
        (Array.unsafe_set taint r
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t regs taint ->
      let addr = Array.unsafe_get regs ar in
      (Array.unsafe_set taint r
         (match t.cfg.speculation with
         | None -> None
         | Some s -> Speculation.injected_load s ~addr));
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname addr)
      end
      else Array.unsafe_set regs r (Array.unsafe_get t.mem addr)

let pstore ~mem_len fname ~dc ~dns ~dni a v : pbody =
  match (a, v) with
  | Imm i, Imm vv ->
    if i >= 0 && i < mem_len then fun t _ -> Array.unsafe_set t.mem i vv
    else
      fun t _ ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname i)
  | Imm i, Reg vr ->
    if i >= 0 && i < mem_len then
      fun t regs -> Array.unsafe_set t.mem i (Array.unsafe_get regs vr)
    else
      fun t _ ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname i)
  | Reg ar, Imm vv ->
    fun t regs ->
      let addr = Array.unsafe_get regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname addr)
      end
      else Array.unsafe_set t.mem addr vv
  | Reg ar, Reg vr ->
    fun t regs ->
      let addr = Array.unsafe_get regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname addr)
      end
      else Array.unsafe_set t.mem addr (Array.unsafe_get regs vr)

let pobserve v : pbody =
  match v with
  | Imm i -> fun t _ -> if t.cfg.record_trace then t.trace_rev <- i :: t.trace_rev
  | Reg r ->
    fun t regs ->
      if t.cfg.record_trace then t.trace_rev <- Array.unsafe_get regs r :: t.trace_rev

let pbody_of ~mem_len fname ~dc ~dns ~dni (i : Machine.cinst) : pbody =
  match i with
  | CAssign (r, e) -> passign ~mem_len fname ~dc ~dns ~dni r e
  | CStore (a, v) -> pstore ~mem_len fname ~dc ~dns ~dni a v
  | CObserve v -> pobserve v
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

let tbody_of ~mem_len fname ~dc ~dns ~dni (i : Machine.cinst) : tbody =
  match i with
  | CAssign (r, e) -> tassign ~mem_len fname ~dc ~dns ~dni r e
  | CStore (a, v) ->
    let body = pstore ~mem_len fname ~dc ~dns ~dni a v in
    fun t regs _taint -> body t regs
  | CObserve v ->
    let body = pobserve v in
    fun t regs _taint -> body t regs
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

(* Compile a maximal run of items into one fused closure.  The fuel
   guard [steps + k > fuel] holds exactly when per-item bumping would
   raise somewhere inside the segment, in which case the slow path
   replays the segment with the interpreter's per-item accounting and
   dies (or faults) at precisely the right instruction — it is always
   exact, only slower, so the guard can be conservative.  On the fast
   path, [SJump] seams have no body at all: their step and cost are
   folded into the batch header, so a fused fallthrough is free. *)
let compile_segment ~spec ~mem_len ?stats fname (items : sitem array) : iexec =
  let k = Array.length items in
  let costs = Array.map sitem_cost items in
  let total = Array.fold_left ( + ) 0 costs in
  let ni =
    Array.fold_left
      (fun acc it -> match it with SInst _ -> acc + 1 | SJump -> acc)
      0 items
  in
  (match stats with
  | Some s ->
    s.seg_total <- s.seg_total + ni;
    if k >= 2 then s.seg_fused <- s.seg_fused + ni
  | None -> ());
  (* Suffix deltas per item position: cycles, steps and retired
     instructions strictly after position j — what a fault at j must
     rewind from the pre-charged batch. *)
  let dcs = Array.make k 0 and dnss = Array.make k 0 and dnis = Array.make k 0 in
  let rc = ref 0 and rs = ref 0 and ri = ref 0 in
  for j = k - 1 downto 0 do
    dcs.(j) <- !rc;
    dnss.(j) <- !rs;
    dnis.(j) <- !ri;
    rc := !rc + costs.(j);
    incr rs;
    (match items.(j) with SInst _ -> incr ri | SJump -> ())
  done;
  (* The dispatch shapes below are deliberately arity-specialized: the
     per-item closure call is the single biggest runtime cost the backend
     emits, so single-item segments skip the batch header entirely, small
     segments bind their bodies as direct captures (no array indexing at
     all), and the generic loops index with the unsafe primitives (the
     bounds are fixed at lowering time). *)
  if spec then begin
    match items with
    | [| SInst i |] ->
      let body = tbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i and c = costs.(0) in
      fun t regs taint _depth ->
        bump_inst t;
        charge t c;
        body t regs taint
    | [| SJump |] ->
      fun t _regs _taint _depth ->
        step_fuel t;
        charge t Cost.jmp
    | _ ->
      let slow =
        Array.mapi
          (fun j it ->
            match it with
            | SInst i ->
              let body = tbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i
              and c = costs.(j) in
              fun t regs taint ->
                bump_inst t;
                charge t c;
                body t regs taint
            | SJump ->
              fun t _regs _taint ->
                step_fuel t;
                charge t Cost.jmp)
          items
      in
      let run_slow t regs taint =
        for j = 0 to k - 1 do
          (Array.unsafe_get slow j) t regs taint
        done
      in
      let bodies =
        Array.of_list
          (List.filter_map
             (fun j ->
               match items.(j) with
               | SInst i ->
                 Some (tbody_of ~mem_len fname ~dc:dcs.(j) ~dns:dnss.(j) ~dni:dnis.(j) i)
               | SJump -> None)
             (List.init k (fun j -> j)))
      in
      (match bodies with
      | [| b0 |] ->
        fun t regs taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs taint
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs taint
          end
      | [| b0; b1 |] ->
        fun t regs taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs taint
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs taint;
            b1 t regs taint
          end
      | [| b0; b1; b2 |] ->
        fun t regs taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs taint
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs taint;
            b1 t regs taint;
            b2 t regs taint
          end
      | [| b0; b1; b2; b3 |] ->
        fun t regs taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs taint
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs taint;
            b1 t regs taint;
            b2 t regs taint;
            b3 t regs taint
          end
      | _ ->
        let nb = Array.length bodies in
        fun t regs taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs taint
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            for j = 0 to nb - 1 do
              (Array.unsafe_get bodies j) t regs taint
            done
          end)
  end
  else begin
    match items with
    | [| SInst i |] ->
      let body = pbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i and c = costs.(0) in
      fun t regs _taint _depth ->
        bump_inst t;
        charge t c;
        body t regs
    | [| SJump |] ->
      fun t _regs _taint _depth ->
        step_fuel t;
        charge t Cost.jmp
    | _ ->
      let slow =
        Array.mapi
          (fun j it ->
            match it with
            | SInst i ->
              let body = pbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i
              and c = costs.(j) in
              fun t regs ->
                bump_inst t;
                charge t c;
                body t regs
            | SJump ->
              fun t _regs ->
                step_fuel t;
                charge t Cost.jmp)
          items
      in
      let run_slow t regs =
        for j = 0 to k - 1 do
          (Array.unsafe_get slow j) t regs
        done
      in
      let bodies =
        Array.of_list
          (List.filter_map
             (fun j ->
               match items.(j) with
               | SInst i ->
                 Some (pbody_of ~mem_len fname ~dc:dcs.(j) ~dns:dnss.(j) ~dni:dnis.(j) i)
               | SJump -> None)
             (List.init k (fun j -> j)))
      in
      (match bodies with
      | [| b0 |] ->
        fun t regs _taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs
          end
      | [| b0; b1 |] ->
        fun t regs _taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs;
            b1 t regs
          end
      | [| b0; b1; b2 |] ->
        fun t regs _taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs;
            b1 t regs;
            b2 t regs
          end
      | [| b0; b1; b2; b3 |] ->
        fun t regs _taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t regs;
            b1 t regs;
            b2 t regs;
            b3 t regs
          end
      | _ ->
        let nb = Array.length bodies in
        fun t regs _taint _depth ->
          if t.steps + k > t.fuel_cap then run_slow t regs
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            for j = 0 to nb - 1 do
              (Array.unsafe_get bodies j) t regs
            done
          end)
  end

(* --------------------------- calls ----------------------------- *)

(* Result write-back and (spec variant) destination-taint clear, baked on
   the destination register. *)
let cstore_result ~spec dst : int array -> int option array -> int option -> unit =
  match (dst, spec) with
  | None, _ -> fun _ _ _ -> ()
  | Some r, false ->
    fun regs _ result ->
      (match result with
      | Some v -> Array.unsafe_set regs r v
      | None -> Array.unsafe_set regs r 0)
  | Some r, true ->
    fun regs taint result ->
      (match result with
      | Some v -> Array.unsafe_set regs r v
      | None -> Array.unsafe_set regs r 0);
      Array.unsafe_set taint r None

let ccall ~spec c2by_id (caller : cfunc) ~dst ~callee_name ~callee_id
    ~(args : operand array) ~site : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  if callee_id < 0 then
    (* Unknown callee: counters, cycles and the edge event still happen
       before the failure, exactly like the interpreter's [lookup]. *)
    fun t _regs _taint _depth ->
      bump_inst t;
      t.ctrs.calls <- t.ctrs.calls + 1;
      charge t (Cost.direct_call + t.cfg.extra_call_cycles);
      emit_edge t site caller_name callee_name Edge_direct;
      raise (Runtime_error ("call to unknown function @" ^ callee_name))
  else begin
    let callee2 = c2by_id.(callee_id) in
    let callee_cf = callee2.c2 in
    let argv = Array.map cop args in
    let n = min callee_cf.f.params (Array.length argv) in
    (* The static argument count lets the entry-live zeroing be filtered
       at compile time: only zeroset slots past the written prefix. *)
    let zs_tail =
      Array.of_list (List.filter (fun r -> r >= n) (Array.to_list callee2.zeroset))
    in
    (* Argument prefix writer, arity-specialized at lowering time (the
       direct-call argument count is static; operand evaluation is pure,
       so truncating past the parameter count drops nothing observable). *)
    let argv = if Array.length argv > n then Array.sub argv 0 n else argv in
    let write_args : int array -> int array -> unit =
      match argv with
      | [||] -> fun _ _ -> ()
      | [| a0 |] -> fun dstr regs -> Array.unsafe_set dstr 0 (a0 regs)
      | [| a0; a1 |] ->
        fun dstr regs ->
          Array.unsafe_set dstr 0 (a0 regs);
          Array.unsafe_set dstr 1 (a1 regs)
      | [| a0; a1; a2 |] ->
        fun dstr regs ->
          Array.unsafe_set dstr 0 (a0 regs);
          Array.unsafe_set dstr 1 (a1 regs);
          Array.unsafe_set dstr 2 (a2 regs)
      | _ ->
        fun dstr regs ->
          for i = 0 to n - 1 do
            Array.unsafe_set dstr i ((Array.unsafe_get argv i) regs)
          done
    in
    let store = cstore_result ~spec dst in
    if spec then
      fun t regs taint depth ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        (* Write the argument prefix, zero only the entry-live tail: the
           prefix is about to be overwritten anyway, and registers dead
           on entry never surface their stale contents. *)
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        write_args callee_regs regs;
        zero_tail zs_tail 0 callee_regs;
        store regs taint (callee2.fexec_spec t callee_regs (depth + 1) caller_id)
    else
      fun t regs taint depth ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        write_args callee_regs regs;
        zero_tail zs_tail 0 callee_regs;
        store regs taint (callee2.fexec_plain t callee_regs (depth + 1) caller_id)
  end

let cicall ~spec ~asm c2by_id (caller : cfunc) ~dst ~fptr ~(args : operand array) ~site
    ~slot : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  let ofp = cop fptr in
  let argv = Array.map cop args in
  let nargs = Array.length argv in
  let kind = if asm then Edge_asm else Edge_indirect in
  let ftaint : int option array -> int option =
    if spec && not asm then
      match fptr with
      | Reg r -> fun taint -> Array.unsafe_get taint r
      | Imm _ -> fun _ -> None
    else fun _ -> None
  in
  let store = cstore_result ~spec dst in
  fun t regs taint depth ->
    bump_inst t;
    t.ctrs.icalls <- t.ctrs.icalls + 1;
    charge t t.cfg.extra_icall_cycles;
    let v = ofp regs in
    let target_id = icall_resolve t v in
    let target_name = t.fptr_table.(v) in
    let fptr_taint = ftaint taint in
    (match t.cfg.fwd_override with
    | Some hook when not asm -> charge t (hook ~site ~target:target_name)
    | Some _ | None ->
      let protection = if asm then Protection.F_none else t.fwd_prots.(slot) in
      indirect_transfer t ~site ~target:target_id ~fptr_taint ~protection);
    emit_edge t site caller_name target_name kind;
    let callee2 = c2by_id.(target_id) in
    let callee_cf = callee2.c2 in
    enter_code t callee_cf;
    Rsb.push t.trsb caller_id;
    let callee_regs = raw_frame t ~depth:(depth + 1) in
    (* integer min by hand: the polymorphic version costs a C call per
       indirect transfer *)
    let n = if callee_cf.f.params < nargs then callee_cf.f.params else nargs in
    for i = 0 to n - 1 do
      Array.unsafe_set callee_regs i ((Array.unsafe_get argv i) regs)
    done;
    zero_tail callee2.zeroset n callee_regs;
    store regs taint
      ((if spec then callee2.fexec_spec t callee_regs (depth + 1) caller_id
        else callee2.fexec_plain t callee_regs (depth + 1) caller_id))

let ccomplex ~spec c2by_id (caller : cfunc) (i : Machine.cinst) : iexec =
  match i with
  | CCall { dst; callee; callee_id; args; site } ->
    ccall ~spec c2by_id caller ~dst ~callee_name:callee ~callee_id ~args ~site
  | CIcall { dst; fptr; args; site; slot } ->
    cicall ~spec ~asm:false c2by_id caller ~dst ~fptr ~args ~site ~slot
  | CAsm_icall { fptr; site } ->
    cicall ~spec ~asm:true c2by_id caller ~dst:None ~fptr ~args:[||] ~site ~slot:(-1)
  | CAssign _ | CStore _ | CObserve _ -> assert false

(* ------------------------ terminators -------------------------- *)

let[@inline] br_follow t ~key ~taken =
  charge t Cost.br;
  if Pht.predict t.tpht ~key <> taken then begin
    t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
    charge t Cost.br_mispredict_penalty
  end;
  Pht.train t.tpht ~key ~taken

let cterm (bexecs : bexec array) (cf : cfunc) label (term : terminator) : bexec =
  match term with
  | Jmp l ->
    fun t regs taint depth ret_to ->
      charge t Cost.jmp;
      (Array.unsafe_get bexecs l) t regs taint depth ret_to
  | Br (Reg cr, l1, l2) ->
    let key = cf.key_base + label in
    fun t regs taint depth ret_to ->
      let taken = Array.unsafe_get regs cr <> 0 in
      br_follow t ~key ~taken;
      if taken then (Array.unsafe_get bexecs l1) t regs taint depth ret_to
      else (Array.unsafe_get bexecs l2) t regs taint depth ret_to
  | Br (Imm i, l1, l2) ->
    let key = cf.key_base + label in
    let taken = i <> 0 in
    let l = if taken then l1 else l2 in
    fun t regs taint depth ret_to ->
      br_follow t ~key ~taken;
      (Array.unsafe_get bexecs l) t regs taint depth ret_to
  | Switch { scrutinee; cases; default; lowering } ->
    let ov = cop scrutinee in
    let ncases = Array.length cases in
    let cost =
      match lowering with
      | Jump_table -> Cost.switch_jump_table
      | Branch_ladder -> ladder_cost ncases
    in
    fun t regs taint depth ret_to ->
      let v = ov regs in
      let rec find i =
        if i >= ncases then default
        else
          let case_v, l = cases.(i) in
          if case_v = v then l else find (i + 1)
      in
      let target = find 0 in
      charge t cost;
      (Array.unsafe_get bexecs target) t regs taint depth ret_to
  | Ret None ->
    fun t _regs _taint _depth ret_to ->
      do_ret t cf ~ret_to;
      None
  | Ret (Some (Imm i)) ->
    fun t _regs _taint _depth ret_to ->
      let v = Some i in
      do_ret t cf ~ret_to;
      v
  | Ret (Some (Reg r)) ->
    fun t regs _taint _depth ret_to ->
      let v = Some (Array.unsafe_get regs r) in
      do_ret t cf ~ret_to;
      v

(* ------------------- blocks and superblocks -------------------- *)

(* Lower a chain of blocks — a single block in tier 1, a whole
   superblock in tier 2 — into one closure.  The chain's instruction
   streams are flattened into one item stream, each non-final block
   contributing an [SJump] seam marker for its unconditional terminator;
   the stream is partitioned into maximal fused segments and individual
   call instructions, and only the FINAL block's terminator is compiled
   (non-final terminators are guaranteed [Jmp] and live inside the
   segments as seam accounting). *)
let lower_chain ~spec ?stats c2by_id ~mem_len (cf : cfunc) bexecs
    (chain : (int * Machine.cblock) list) : bexec =
  let fname = cf.f.fname in
  let rev_chunks = ref [] and pending = ref [] in
  let flush () =
    match !pending with
    | [] -> ()
    | l ->
      rev_chunks := `Seg (Array.of_list (List.rev l)) :: !rev_chunks;
      pending := []
  in
  let scan_insts (b : Machine.cblock) =
    Array.iter
      (fun i ->
        match i with
        | CAssign _ | CStore _ | CObserve _ -> pending := SInst i :: !pending
        | CCall _ | CIcall _ | CAsm_icall _ ->
          flush ();
          rev_chunks := `Cx i :: !rev_chunks)
      b.cinsts
  in
  let rec go = function
    | [] -> assert false
    | [ (label, (b : Machine.cblock)) ] ->
      scan_insts b;
      flush ();
      (label, b.cterm)
    | (_, b) :: rest ->
      scan_insts b;
      (* the seam: this block's fuel step + jump, fused into the
         surrounding segment *)
      pending := SJump :: !pending;
      go rest
  in
  let last_label, last_term = go chain in
  let chunks =
    Array.of_list
      (List.rev_map
         (function
           | `Seg items -> compile_segment ~spec ~mem_len ?stats fname items
           | `Cx i -> ccomplex ~spec c2by_id cf i)
         !rev_chunks)
  in
  let term = cterm bexecs cf last_label last_term in
  match chunks with
  | [||] ->
    fun t regs taint depth ret_to ->
      step_fuel t;
      term t regs taint depth ret_to
  | [| c0 |] ->
    fun t regs taint depth ret_to ->
      c0 t regs taint depth;
      step_fuel t;
      term t regs taint depth ret_to
  | [| c0; c1 |] ->
    fun t regs taint depth ret_to ->
      c0 t regs taint depth;
      c1 t regs taint depth;
      step_fuel t;
      term t regs taint depth ret_to
  | [| c0; c1; c2 |] ->
    fun t regs taint depth ret_to ->
      c0 t regs taint depth;
      c1 t regs taint depth;
      c2 t regs taint depth;
      step_fuel t;
      term t regs taint depth ret_to
  | _ ->
    let n = Array.length chunks in
    fun t regs taint depth ret_to ->
      for i = 0 to n - 1 do
        (Array.unsafe_get chunks i) t regs taint depth
      done;
      step_fuel t;
      term t regs taint depth ret_to

(* Superblock trace formation: the trace headed at [l] follows
   unconditional [Jmp] edges for as long as they go — REGARDLESS of the
   target's predecessor count.  A shared tail (a merge point entered by
   [Jmp] from several arms) is duplicated into every trace that reaches
   it, which is exactly classic superblock tail duplication: on the
   optimized kernel images nearly every surviving [Jmp] targets a merge
   point (the cleanup pass already forwards the single-predecessor empty
   blocks away), so a single-predecessor-only rule finds nothing to fuse
   there.  Duplication is bounded twice over: traces stop on a revisit
   (no unrolling of [Jmp]-only cycles) and at [max_trace] blocks, and
   lazy per-head lowering means only the heads execution actually
   dispatches to ever pay for their copy of a tail.  A truncated trace
   simply ends in a [Jmp] terminator, which dispatches to the target
   head's own trace like any other transfer. *)
let max_trace = 32

let trace_of (cf : cfunc) l : (int * Machine.cblock) list =
  let rec go acc seen l' len =
    let b = cf.cblocks.(l') in
    match b.cterm with
    | Jmp s when len < max_trace && not (List.mem s seen) ->
      go ((l', b) :: acc) (s :: seen) s (len + 1)
    | _ -> List.rev ((l', b) :: acc)
  in
  go [] [ l ] l 1

(* Lower one function variant into its entry [fexec].  [fused] selects
   the tier.

   Tier 1 lowers one closure per block, eagerly — the whole function is
   lowered on its first call, exactly the PR5 backend.

   Tier 2 (fused) lowers one closure per superblock trace, {e lazily
   per head}: every label gets a trampoline that lowers [trace_of] its
   label on first dispatch (double-checked under a per-variant mutex)
   and replaces itself in [bexecs] — terminators fetch [bexecs.(l)] at
   dispatch time, so the swap is picked up transparently.  On the
   aggressively inlined kernel images a function has hundreds of blocks
   but a hot path through a few percent of them; paying fused lowering
   (and the tail duplication it implies) only for the heads the
   workload actually dispatches to cuts the tier-up cost by that same
   factor, which is what makes promotion profitable for short-lived
   engines (fresh images in the sensitivity sweep, online controller
   rebuilds).  Superblock shape ([sb_count]/[sb_blocks]) is known
   statically and recorded at link time; segment coverage accumulates
   in [stats] as traces lower. *)
let lower_fexec ~spec ~fused ?stats c2by_id ~mem_len (c2f : cfunc2) : fexec =
  let cf = c2f.c2 in
  let nblocks = Array.length cf.cblocks in
  let dead : bexec = fun _ _ _ _ _ -> assert false in
  let bexecs = Array.make nblocks dead in
  (if fused then begin
     (match stats with
     | Some st ->
       (* Static superblock shape: every label heads a trace; the
          multi-block ones are the fusion opportunities (tails shared by
          several traces are counted once per trace — they are lowered
          once per trace too). *)
       for l = 0 to nblocks - 1 do
         match trace_of cf l with
         | _ :: _ :: _ as c ->
           st.sb_count <- st.sb_count + 1;
           st.sb_blocks <- st.sb_blocks + List.length c
         | _ -> ()
       done
     | None -> ());
     let mu = Mutex.create () in
     let lowered = Array.make nblocks false in
     for l = 0 to nblocks - 1 do
       bexecs.(l) <-
         (fun t regs taint depth ret_to ->
           Mutex.lock mu;
           if not lowered.(l) then begin
             bexecs.(l) <- lower_chain ~spec ?stats c2by_id ~mem_len cf bexecs (trace_of cf l);
             lowered.(l) <- true;
             match stats with
             | Some s when Trace.enabled () ->
               Trace.counter ~cat:"sched" "segment-coverage"
                 [ ("fused", Trace.Int s.seg_fused); ("total", Trace.Int s.seg_total) ]
             | _ -> ()
           end;
           Mutex.unlock mu;
           bexecs.(l) t regs taint depth ret_to)
     done
   end
   else begin
     (* Tier 1 is lazy per BLOCK, by the same trampoline discipline: on
        the aggressively inlined images a function has hundreds of
        blocks and a workload touches a few percent of them, so eager
        per-function lowering (the PR5 shape) wastes most of its work.
        Lowering is pure and emits nothing observable, so the
        execution-order dependence of the laziness is invisible. *)
     let mu = Mutex.create () in
     let lowered = Array.make nblocks false in
     for l = 0 to nblocks - 1 do
       bexecs.(l) <-
         (fun t regs taint depth ret_to ->
           Mutex.lock mu;
           if not lowered.(l) then begin
             bexecs.(l) <- lower_chain ~spec c2by_id ~mem_len cf bexecs [ (l, cf.cblocks.(l)) ];
             lowered.(l) <- true
           end;
           Mutex.unlock mu;
           bexecs.(l) t regs taint depth ret_to)
     done
   end);
  let entry = cf.f.entry in
  if spec then begin
    let zs = c2f.zeroset in
    fun t regs depth ret_to ->
      enter_frame t cf;
      (* The caller never writes the callee's taint file, so every
         entry-live slot must be [None]-ed — but only those: stale taint
         on registers that are dead on entry is unobservable, by the
         same liveness argument as the value frame. *)
      let taint = raw_taint_frame t ~depth in
      for i = 0 to Array.length zs - 1 do
        Array.unsafe_set taint (Array.unsafe_get zs i) None
      done;
      bexecs.(entry) t regs taint depth ret_to
  end
  else
    fun t regs depth ret_to ->
      enter_frame t cf;
      bexecs.(entry) t regs no_taint depth ret_to

(* --------------------- lazy linking & tiers -------------------- *)

(* All four variants (tier x speculation) are lowered lazily, per
   function, on the first call that reaches them (double-checked under
   [link_lock]): compile itself is one cheap liveness pass, and only the
   functions a workload actually executes — in the tiers its heat
   actually reaches, under the speculation settings it actually uses —
   ever pay for closure construction.  That matters for
   compile-dominated workloads: short attack drills over many images,
   and the online loop's fresh controller program every window.

   Call closures fetch their callee's [fexec_*] field at call time, so a
   linked body is picked up transparently; the only cross-function data
   baked at construction time is the callee's [zeroset], which [compile]
   computes eagerly for exactly that reason.  All [t1_*]/[t2_*] fields
   and [*_linked] flags — and, in a baseline program, the published
   [fexec_*] fields — are only written under the lock.  A racing domain
   either still sees a trampoline — and then synchronizes on the lock
   before re-reading the field — or sees the published closure; unlinked
   bodies are never reachable. *)

let link_fused_traced ~spec c2by_id ~mem_len c2f =
  let cf = c2f.c2 in
  let stats = { sb_count = 0; sb_blocks = 0; seg_fused = 0; seg_total = 0 } in
  let fx =
    Trace.span ~cat:"sched" "engine:tierup"
      ~args:
        [ ("fn", Trace.Str cf.f.fname); ("variant", Trace.Str (if spec then "spec" else "plain")) ]
      (fun () -> lower_fexec ~spec ~fused:true ~stats c2by_id ~mem_len c2f)
  in
  (* Superblock shape is static and complete at link time; segment
     coverage samples stream from the lazy chain lowerings instead. *)
  if Trace.enabled () then
    Trace.counter ~cat:"sched" "fused-superblocks"
      [ ("superblocks", Trace.Int stats.sb_count); ("blocks", Trace.Int stats.sb_blocks) ];
  fx

let link_now p c2f ~spec ~fused =
  Mutex.lock p.link_lock;
  (match (fused, spec) with
  | false, false ->
    if not c2f.t1_plain_linked then begin
      c2f.t1_plain <- lower_fexec ~spec:false ~fused:false p.c2by_id ~mem_len:p.mem_len c2f;
      c2f.t1_plain_linked <- true;
      if not p.tiered then c2f.fexec_plain <- c2f.t1_plain
    end
  | false, true ->
    if not c2f.t1_spec_linked then begin
      c2f.t1_spec <- lower_fexec ~spec:true ~fused:false p.c2by_id ~mem_len:p.mem_len c2f;
      c2f.t1_spec_linked <- true;
      if not p.tiered then c2f.fexec_spec <- c2f.t1_spec
    end
  | true, false ->
    if not c2f.t2_plain_linked then begin
      c2f.t2_plain <- link_fused_traced ~spec:false p.c2by_id ~mem_len:p.mem_len c2f;
      c2f.t2_plain_linked <- true
    end
  | true, true ->
    if not c2f.t2_spec_linked then begin
      c2f.t2_spec <- link_fused_traced ~spec:true p.c2by_id ~mem_len:p.mem_len c2f;
      c2f.t2_spec_linked <- true
    end);
  Mutex.unlock p.link_lock

(* The tiered entry dispatcher: bump this ENGINE's entry counter for the
   function and pick the tier — tier 1 until the engine's threshold is
   crossed, the fused tier after.  Decisions are per-engine (and so
   deterministic at any --jobs); the fused body is linked lazily in the
   shared program on the first post-threshold entry that reaches it.
   The [tierup-count] sample marks each promotion; it lives in the
   "sched" category next to the other lazy-compile traffic. *)
let tiered_dispatch (c2f : cfunc2) ~spec : fexec =
  let id = c2f.c2.id in
  let fname = c2f.c2.f.fname in
  if spec then
    fun t regs depth ret_to ->
      let c = Array.unsafe_get t.tier_counts id + 1 in
      Array.unsafe_set t.tier_counts id c;
      if c > t.tier_threshold then begin
        if c = t.tier_threshold + 1 && Trace.enabled () then
          Trace.counter ~cat:"sched" "tierup-count"
            [ ("count", Trace.Int 1); ("fn", Trace.Str fname) ];
        c2f.t2_spec t regs depth ret_to
      end
      else c2f.t1_spec t regs depth ret_to
  else
    fun t regs depth ret_to ->
      let c = Array.unsafe_get t.tier_counts id + 1 in
      Array.unsafe_set t.tier_counts id c;
      if c > t.tier_threshold then begin
        if c = t.tier_threshold + 1 && Trace.enabled () then
          Trace.counter ~cat:"sched" "tierup-count"
            [ ("count", Trace.Int 1); ("fn", Trace.Str fname) ];
        c2f.t2_plain t regs depth ret_to
      end
      else c2f.t1_plain t regs depth ret_to

let make_prog (cv : Machine.compiled) ~mem_len ~tiered : prog =
  let c2by_id =
    Array.map
      (fun cf ->
        {
          c2 = cf;
          zeroset = zeroset_of cf;
          fexec_plain = unlinked;
          fexec_spec = unlinked;
          t1_plain = unlinked;
          t1_spec = unlinked;
          t2_plain = unlinked;
          t2_spec = unlinked;
          t1_plain_linked = false;
          t1_spec_linked = false;
          t2_plain_linked = false;
          t2_spec_linked = false;
        })
      cv.cby_id
  in
  let p = { c2by_id; mem_len; link_lock = Mutex.create (); tiered } in
  Array.iter
    (fun c2f ->
      if not (func_valid c2f.c2) then begin
        (* Out-of-range static register or label index: the unchecked
           closure bodies must never be built for this function.  Only
           hand-built IR that [Validate] rejects gets here; it fails on
           entry instead of lowering. *)
        let err : fexec =
         fun _ _ _ _ ->
          raise (Runtime_error ("invalid static indices in @" ^ c2f.c2.f.fname))
        in
        c2f.fexec_plain <- err;
        c2f.fexec_spec <- err;
        c2f.t1_plain <- err;
        c2f.t1_spec <- err;
        c2f.t2_plain <- err;
        c2f.t2_spec <- err;
        c2f.t1_plain_linked <- true;
        c2f.t1_spec_linked <- true;
        c2f.t2_plain_linked <- true;
        c2f.t2_spec_linked <- true
      end
      else begin
      c2f.t1_plain <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:false ~fused:false;
          c2f.t1_plain t regs depth ret_to);
      c2f.t1_spec <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:true ~fused:false;
          c2f.t1_spec t regs depth ret_to);
      c2f.t2_plain <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:false ~fused:true;
          c2f.t2_plain t regs depth ret_to);
      c2f.t2_spec <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:true ~fused:true;
          c2f.t2_spec t regs depth ret_to);
      if tiered then begin
        c2f.fexec_plain <- tiered_dispatch c2f ~spec:false;
        c2f.fexec_spec <- tiered_dispatch c2f ~spec:true
      end
      else begin
        (* Baseline: the published field starts as the tier-1 trampoline
           and is replaced (under the lock) by the linked body, so the
           post-link call path has no dispatcher at all — exactly the
           PR5 backend, pinned by the --tierup 0 parity leg. *)
        c2f.fexec_plain <-
          (fun t regs depth ret_to ->
            link_now p c2f ~spec:false ~fused:false;
            c2f.fexec_plain t regs depth ret_to);
        c2f.fexec_spec <-
          (fun t regs depth ret_to ->
            link_now p c2f ~spec:true ~fused:false;
            c2f.fexec_spec t regs depth ret_to)
      end
      end)
    c2by_id;
  p

let compile (cv : Machine.compiled) ~mem_len : prog = make_prog cv ~mem_len ~tiered:false

let compile_tiered (cv : Machine.compiled) ~mem_len : prog =
  make_prog cv ~mem_len ~tiered:true

(* The backend entry installed into [Machine.t.exec_entry]: builds the
   top-level frame (argument prefix + entry-live zeroing, like any call
   site), then one speculation-variant dispatch per top-level call — the
   closure chain runs variant-pure from there (through the counting
   dispatcher in a tiered program, so top-level entries are counted
   too). *)
let entry (p : prog) : Machine.t -> cfunc -> int list -> int option =
 fun t cf args ->
  let c2 = p.c2by_id.(cf.id) in
  let regs = raw_frame t ~depth:0 in
  let params = cf.f.params in
  let rec write i = function
    | v :: rest when i < params ->
      regs.(i) <- v;
      write (i + 1) rest
    | _ -> i
  in
  let n = write 0 args in
  zero_tail c2.zeroset n regs;
  match t.cfg.speculation with
  | None -> c2.fexec_plain t regs 0 top_id
  | Some _ -> c2.fexec_spec t regs 0 top_id
