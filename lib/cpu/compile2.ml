(** Closure-threaded compiled execution backend with a profile-guided
    fused tier.

    Lowers every {!Machine.cinst}, expression and terminator into a
    pre-specialized OCaml closure once per program, so the hot loop runs
    flat closure arrays with zero constructor matching and zero
    per-activation closure allocation: operand kinds ([Imm] vs [Reg]),
    binop selection (down to constant-folded immediate pairs), statically
    bounds-checked global loads and stores, per-instruction cycle costs,
    resolved direct-call targets, PHT keys, switch-ladder costs and
    indirect-call protection slots are all baked at closure-construction
    time.

    Straight-line runs of simple instructions (assign / store / observe,
    including statically bounds-checked loads) are fused into {e
    segments} with batched accounting: one fuel check, one
    step/instruction/cycle bump per segment instead of one per
    instruction.  Exactness is preserved on every path — each
    potentially-faulting instruction carries baked rollback deltas
    (cycles, steps and instruction counts kept separate, because fused
    jump seams step without retiring an instruction) that rewind the
    not-yet-earned remainder of the batch before raising, and a segment
    that could exhaust its fuel budget falls back to a per-item slow path
    that dies at exactly the interpreter's instruction — so cycles,
    counters and errors stay bit-exact even mid-segment (pinned by the
    out-of-fuel and wild-icall differential tests in
    [test/test_backend.ml]).

    {2 Tiers}

    Three lowering tiers share the closure machinery:

    - {e Tier 1} (baseline) lowers one closure per basic block, segments
      fused within the block — the only tier of the PR5 backend, and the
      authoritative cheap tier.
    - {e Tier 2} (fused) additionally performs {e superblock fusion}: a
      maximal chain of blocks linked by unconditional [Jmp] fallthrough
      edges into single-predecessor blocks is lowered as ONE closure, its
      segments fused {e across} the seams with one pre-summed cycle/step
      constant per segment.  A seam contributes a zero-body [SJump] item
      (the seam's fuel step and jump cost are folded into the batch
      header), so a hot K-block chain pays one fuel check and no
      per-block closure dispatch at all.  Branch predictor, RSB, i-cache
      and PHT state are only materialized at conditional branches,
      indirect transfers and call boundaries — exactly where the
      interpreter touches them.
    - {e Tier 3} (register-threaded) relowers the plain variant of the
      very hottest traces one more time: instead of one closure per
      instruction, the whole trace becomes a flat int-coded instruction
      stream driven by a single tail-recursive dispatch loop over the
      unboxed register array — no closure call per instruction at all.
      Operands, costs and rollback deltas are encoded inline in the
      stream; segment batch headers become one [BATCH] word whose fuel
      guard falls back to the tier-2 per-item slow path; instructions the
      encoder cannot express (statically out-of-bounds accesses) keep
      their tier-1 closure behind a [PB] escape, and calls/icalls keep
      their chunk closures behind [CX] — so coverage is total and
      semantics are shared, not duplicated.  Tier 3 exists only for the
      speculation-off variant: drill configurations are short-lived, and
      keeping taint threading out of the loop is what keeps its dispatch
      flat.

    {2 Call-seam fusion}

    Orthogonally to the tiers, any lowering may fuse a {e direct call
    into a hot leaf callee} across the call/return pair ([--callfuse N] /
    [PIBE_CALLFUSE]; [0] disables).  A statically eligible callee — valid,
    all blocks simple instructions linked by [Jmp] and ending in [Ret],
    bounded body size, so in particular no recursion and no indirect
    control flow — is lowered as one closure at the call site: one fuel
    guard and one batched step/instruction/cycle update spanning the call
    instruction, the whole callee body and the return step, with the
    matched RSB push/pop, i-cache touch, frame setup and
    [do_ret] performed once at the seam.  Sites are specialized {e by
    (caller, callee) pair} and selected by profile: a seam lowered before
    its callee is hot installs a self-promoting chunk that watches the
    dispatching engine's per-function entry counter
    ({!Machine.t.tier_counts}) and swaps in the fused closure once the
    callee crosses the callfuse threshold; a seam lowered after simply
    bakes the fused closure directly.  Fuel exhaustion inside the fused
    span is guarded up front (the unfused path replays it exactly), and a
    faulting instruction in the callee body rewinds the unearned batch
    remainder — identical machinery to segment batching.

    Tier-up is profile-guided ({e PGO applied to our own engine}): a
    tiered program routes every function entry through a counting
    dispatcher that bumps a {e per-engine} counter
    ({!Machine.t.tier_counts}) and switches to the fused body once the
    count crosses the engine's {!Machine.t.tier_threshold}.  Counters are
    per-engine so tier-up decisions are a deterministic function of each
    engine's own workload at any [--jobs]; the fused closures themselves
    are lowered lazily in the shared program (double-checked under
    [link_lock], same as tier 1), so a working set of engines pays each
    function's fused lowering once.  Both tiers are bit-exact against
    the interpreter, so {e when} a function tiers up is unobservable in
    cycles, counters, traces or errors — the baseline tier stays
    authoritative.

    Each block is compiled (per tier) twice — a plain variant for the
    common speculation-off configuration and a spec variant threading the
    taint file — and call closures jump straight to the matching variant
    of their callee, so the choice is made once per top-level entry, not
    per instruction.  All four variants are lowered lazily, per function,
    on the first call (or first post-threshold call) that reaches them.

    Everything whose semantics is shared with the reference interpreter
    (indirect-branch transfer, return path, frame pools, step/fuel
    accounting) is called through {!Machine}, which is what makes the
    backend cycle-, counter- and speculation-exact against {!Interp}
    (pinned by [test/test_measure.ml] and [test/test_backend.ml]).

    Closures capture only per-program data — never an engine — so one
    compiled program is shared by every engine created on it, across
    domains, exactly like {!Machine.compiled}. *)

open Pibe_ir
open Types
open Machine
module Trace = Pibe_trace.Trace

(* The whole execution state of the running activation — register frame,
   spec-variant taint frame, depth, return-prediction target — is
   threaded through mutable fields of [Machine.t] ([cur_regs],
   [cur_taint], [cur_depth], [cur_ret_to]) rather than closure
   arguments.  That makes every hot closure type below arity-1, which
   ocamlopt applies as ONE indirect call at the call site; at arity >= 2
   every dispatch would detour through the program-wide [caml_applyN]
   trampolines — an extra call frame, an arity check, and a single
   shared indirect-jump site that aliases every dispatch in the program
   in the host's branch-target predictor.  Call chunks save the four
   fields in locals, install the callee's activation, and restore after
   the callee returns; frames come from per-depth pools, so the pointer
   publications usually re-store an unchanged value (see
   [publish_regs]). *)

(* entry of one function variant; expects the activation installed *)
type fexec = Machine.t -> int option

(* one lowered block/superblock; terminators chain through these *)
type bexec = Machine.t -> int option

(* one chunk (fused segment or complex instruction) of a chain *)
type iexec = Machine.t -> unit

(* Fused-segment instruction bodies: accounting is handled by the
   segment header, and the running frame (and spec-variant taint frame)
   is read from [t.cur_regs]/[t.cur_taint], which every invoking chunk
   publishes before its item run.  That makes bodies arity-1 closures
   over [t] alone — the one unknown-closure arity ocamlopt applies as a
   direct indirect call at the call site.  At arity >= 2 every body
   dispatch would go through the program-wide [caml_apply2] trampoline:
   an extra call frame, an arity check, and — worse — a single shared
   indirect-jump site that aliases every body in the program in the
   host's branch-target predictor.  Threading the frame through [t]
   spreads those jumps back out to one predictable site per segment
   position. *)
type pbody = Machine.t -> unit
type tbody = Machine.t -> unit

type cfunc2 = {
  c2 : cfunc;
  zeroset : int array;
      (* registers some path from entry may read before writing, sorted;
         the only slots of a pooled frame whose initial 0 / [None] is
         observable — see [zeroset_of] *)
  mutable fexec_plain : fexec;
      (* what call closures invoke: in a baseline program, the linked
         tier-1 body (trampoline until first call); in a tiered program,
         the permanent counting dispatcher *)
  mutable fexec_spec : fexec;
  (* per-tier bodies behind the dispatcher of a tiered program; each
     starts as a lazy-linking trampoline (written only under
     [prog.link_lock], like the [linked] flags) *)
  mutable t1_plain : fexec;
  mutable t1_spec : fexec;
  mutable t2_plain : fexec;
  mutable t2_spec : fexec;
  mutable t3_plain : fexec;
      (* register-threaded tier; plain variant only — the spec variant
         caps at tier 2 (see the header comment) *)
  mutable t1_plain_linked : bool;
  mutable t1_spec_linked : bool;
  mutable t2_plain_linked : bool;
  mutable t2_spec_linked : bool;
  mutable t3_plain_linked : bool;
}

(* Program-wide lowering statistics.  Lowering is lazy and triggered by
   whichever engine gets there first, so these are scheduling-dependent —
   they are reported only under the "sched" trace category and the
   [prog_stats] accessor, never mixed into deterministic counters. *)
type pstats = {
  fused_seams : int Atomic.t;  (* call seams lowered to fused closures *)
  fused_promoted : int Atomic.t;  (* of those, promoted at runtime by heat *)
  t3_traces : int Atomic.t;  (* traces lowered to int-coded streams *)
  t3_coded : int Atomic.t;  (* simple insts encoded directly in streams *)
  t3_insts : int Atomic.t;  (* simple insts in tier-3 traces, total *)
}

type prog = {
  c2by_id : cfunc2 array;
  mem_len : int;  (* length of every engine's global memory, for baked bounds *)
  link_lock : Mutex.t;  (* serializes per-function lazy lowering *)
  tiered : bool;
      (* whether [fexec_*] is the counting dispatcher (tiered) or the
         tier-1 body itself (baseline) *)
  callfuse : int;
      (* call-seam fusion threshold baked into this program's lowering
         (part of the compile-cache key); 0 disables fusion entirely *)
  pstats : pstats;
}

let prog_stats (p : prog) : (string * int) list =
  [
    ("call-fused-seams", Atomic.get p.pstats.fused_seams);
    ("callfuse-promotions", Atomic.get p.pstats.fused_promoted);
    ("tier3-traces", Atomic.get p.pstats.t3_traces);
    ("tier3-coded-insts", Atomic.get p.pstats.t3_coded);
    ("tier3-total-insts", Atomic.get p.pstats.t3_insts);
  ]

let unlinked : fexec = fun _ -> assert false

(* Shared empty taint file threaded through the plain variant; never read
   or written there. *)
let no_taint : int option array = [||]

(* --------------------- entry-live zero sets -------------------- *)

(* Register frames come from a per-depth pool, so a fresh activation
   sees whatever its predecessor left.  The interpreter zeroes the whole
   file ([frame]) and [None]s the whole taint file; but the only slots
   whose initial value is observable are those some path from the entry
   block may READ before writing — everything else is dead on entry and
   its stale contents can never flow into cycles, memory, traces or
   taint.  [zeroset_of] computes that set once per function at compile
   time (a standard backward may-liveness fixpoint over the compiled
   blocks, bit-packed 32 registers per word), and the call paths zero
   exactly it.  The big straight-line kernel functions have register
   files two orders of magnitude larger than their entry-live set, which
   makes this the difference between ~800 stores and ~4 per activation
   of the hottest callees. *)
let zeroset_of (cf : cfunc) : int array =
  let module RS = Set.Make (Int) in
  let blocks = cf.cblocks in
  let nblocks = Array.length blocks in
  (* Per-block summaries, one pass over each instruction total: [gen] is
     the registers read before any in-block write (sparse — live sets
     stay tiny even in functions with huge register files, which is what
     keeps this affordable on aggressively inlined images), [def] the
     registers the block writes. *)
  let gens = Array.make nblocks RS.empty in
  let defs = Array.make nblocks (Hashtbl.create 0) in
  for l = 0 to nblocks - 1 do
    let b = blocks.(l) in
    let def : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let gen = ref RS.empty in
    let use r = if not (Hashtbl.mem def r) then gen := RS.add r !gen in
    let use_op = function Imm _ -> () | Reg r -> use r in
    let use_expr = function
      | Const _ -> ()
      | Move o | Load o -> use_op o
      | Binop (_, a, b) ->
        use_op a;
        use_op b
    in
    let write r = Hashtbl.replace def r () in
    Array.iter
      (fun i ->
        match i with
        | CAssign (d, e) ->
          use_expr e;
          write d
        | CStore (a, v) ->
          use_op a;
          use_op v
        | CObserve v -> use_op v
        | CCall { dst; args; _ } ->
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CIcall { dst; fptr; args; _ } ->
          use_op fptr;
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CAsm_icall { fptr; _ } -> use_op fptr)
      b.cinsts;
    (match b.cterm with
    | Jmp _ | Ret None -> ()
    | Br (c, _, _) -> use_op c
    | Switch { scrutinee; _ } -> use_op scrutinee
    | Ret (Some v) -> use_op v);
    gens.(l) <- !gen;
    defs.(l) <- def
  done;
  (* Worklist fixpoint over the block summaries:
     live_in = gen ∪ (live_out − def).  A block is revisited only when
     the live-in of a successor changed. *)
  let live_in = Array.make nblocks RS.empty in
  let live_out = Array.make nblocks RS.empty in
  let preds = Array.make nblocks [] in
  for l = 0 to nblocks - 1 do
    List.iter
      (fun s -> preds.(s) <- l :: preds.(s))
      (Func.successors blocks.(l).cterm)
  done;
  let queued = Array.make nblocks true in
  let work = ref [] in
  for l = 0 to nblocks - 1 do
    work := l :: !work
  done;
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | l :: rest ->
      work := rest;
      queued.(l) <- false;
      let out =
        List.fold_left
          (fun acc s -> RS.union acc live_in.(s))
          RS.empty
          (Func.successors blocks.(l).cterm)
      in
      live_out.(l) <- out;
      let def = defs.(l) in
      let inn =
        RS.union gens.(l) (RS.filter (fun r -> not (Hashtbl.mem def r)) out)
      in
      if not (RS.equal inn live_in.(l)) then begin
        live_in.(l) <- inn;
        List.iter
          (fun p ->
            if not queued.(p) then begin
              queued.(p) <- true;
              work := p :: !work
            end)
          preds.(l)
      end
  done;
  Array.of_list (RS.elements live_in.(cf.f.entry))

(* Zero the zeroset slots at index >= [n] (the written argument prefix)
   of a pooled frame. *)
let[@inline] zero_tail (zs : int array) n (fr : int array) =
  for i = 0 to Array.length zs - 1 do
    let r = Array.unsafe_get zs i in
    if r >= n then Array.unsafe_set fr r 0
  done

(* ------------------------- operands ---------------------------- *)

(* The specialized bodies below use unchecked array accesses: every
   static register index is validated once per function at
   closure-construction time ([func_valid] in [make_prog] — Builder and
   Validate both enforce the same bounds, so real programs always pass),
   and every pooled frame/taint file has length >= the program-wide
   [max_regs] >= the function's [nregs].  Global-memory accesses keep
   their explicit bounds check against the baked [mem_len] (the fault
   path is observable semantics) and go unchecked only after it.  A
   function with an out-of-range static index or block label lowers to a
   closure that raises [Runtime_error] on entry instead — hand-built IR
   that [Validate] would reject, so parity is not pinned there. *)

let cop : operand -> int array -> int = function
  | Imm i -> fun _ -> i
  | Reg r -> fun regs -> Array.unsafe_get regs r

(* Static index validation backing the unchecked accesses above: all
   register operands within [0, nregs), all successor labels within
   [0, nblocks). *)
let func_valid (cf : cfunc) : bool =
  let nregs = cf.f.nregs in
  let nblocks = Array.length cf.cblocks in
  let ok = ref true in
  let reg r = if r < 0 || r >= nregs then ok := false in
  let op = function Imm _ -> () | Reg r -> reg r in
  let expr = function
    | Const _ -> ()
    | Move o | Load o -> op o
    | Binop (_, a, b) ->
      op a;
      op b
  in
  let label l = if l < 0 || l >= nblocks then ok := false in
  Array.iter
    (fun (b : Machine.cblock) ->
      Array.iter
        (fun i ->
          match i with
          | CAssign (d, e) ->
            reg d;
            expr e
          | CStore (a, v) ->
            op a;
            op v
          | CObserve v -> op v
          | CCall { dst; args; _ } ->
            Array.iter op args;
            (match dst with Some d -> reg d | None -> ())
          | CIcall { dst; fptr; args; _ } ->
            op fptr;
            Array.iter op args;
            (match dst with Some d -> reg d | None -> ())
          | CAsm_icall { fptr; _ } -> op fptr)
        b.cinsts;
      match b.cterm with
      | Jmp l -> label l
      | Br (c, l1, l2) ->
        op c;
        label l1;
        label l2
      | Switch { scrutinee; cases; default; _ } ->
        op scrutinee;
        Array.iter (fun (_, l) -> label l) cases;
        label default
      | Ret None -> ()
      | Ret (Some v) -> op v)
    cf.cblocks;
  label cf.f.entry;
  !ok

(* ---------------------- fused segments ------------------------- *)

(* A segment batches the accounting of a run of [k] items — simple
   instructions plus, in the fused tier, [SJump] seam markers standing
   for an unconditional fallthrough (the predecessor block's terminator
   fuel step and jump cost): the header bumps steps by [k], retired
   instructions by the number of real instructions, and cycles by the
   segment's static cost sum, then runs the instruction bodies (seams
   have no body at all on the fast path).  When a body must raise
   mid-segment (an out-of-bounds load or store), it first rewinds the
   not-yet-earned remainder — [dc] cycles, [dns] steps and [dni]
   retired instructions, all baked at compile time and distinct because
   seams step without retiring — so the observable state at the raise
   point is exactly the interpreter's. *)
type sitem =
  | SInst of Machine.cinst
  | SJump
      (* a fused unconditional fallthrough seam: one fuel step plus
         [Cost.jmp], batched mid-segment *)

(* Link-time lowering statistics, reported as trace counters when the
   fused tier of a function is linked. *)
type fuse_stats = {
  mutable sb_count : int;  (* >=2-block chains lowered as one superblock *)
  mutable sb_blocks : int;  (* blocks covered by those superblocks *)
  mutable seg_fused : int;  (* instructions inside batched (>=2-item) segments *)
  mutable seg_total : int;  (* simple instructions lowered into segments *)
}

let[@inline] seg_unwind t ~dc ~dns ~dni =
  t.cyc <- t.cyc - dc;
  t.steps <- t.steps - dns;
  t.ctrs.insts <- t.ctrs.insts - dni

let oob_load fname addr =
  Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr fname)

let oob_store fname addr =
  Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr fname)

let inst_cost = function
  | CAssign (_, e) -> Cost.assign_cost e
  | CStore _ -> Cost.store
  | CObserve _ -> Cost.observe
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

let sitem_cost = function
  | SInst i -> inst_cost i
  | SJump -> Cost.jmp

(* Batch accounting of an item run, shared by segment compilation and
   the tier-3 encoder: per-item static costs, their sum, the retired
   instruction count, and per-position suffix deltas — cycles, steps and
   retired instructions strictly after position [j], i.e. what a fault at
   [j] must rewind from the pre-charged batch (kept separate because
   seams step without retiring). *)
let seg_suffixes (items : sitem array) =
  let k = Array.length items in
  let costs = Array.map sitem_cost items in
  let total = Array.fold_left ( + ) 0 costs in
  let ni =
    Array.fold_left
      (fun acc it -> match it with SInst _ -> acc + 1 | SJump -> acc)
      0 items
  in
  let dcs = Array.make k 0 and dnss = Array.make k 0 and dnis = Array.make k 0 in
  let rc = ref 0 and rs = ref 0 and ri = ref 0 in
  for j = k - 1 downto 0 do
    dcs.(j) <- !rc;
    dnss.(j) <- !rs;
    dnis.(j) <- !ri;
    rc := !rc + costs.(j);
    incr rs;
    (match items.(j) with SInst _ -> incr ri | SJump -> ())
  done;
  (costs, total, ni, dcs, dnss, dnis)

(* Assign of a binop, fully specialized on the operator and both operand
   kinds: the closure body is the register reads and the arithmetic,
   nothing else.  Immediate pairs constant-fold at compile time. *)
let pbinop r op a b : pbody =
  (* spelled out with the array primitives directly in every arm: the
     compiler has no flambda, so a local [get]/[set] helper captured in
     the returned closure would cost a real call per register access in
     the hottest bodies the backend emits *)
  match (a, b) with
  | Reg x, Reg y -> (
    match op with
    | Add ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x + Array.unsafe_get regs y)
    | Sub ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x - Array.unsafe_get regs y)
    | Mul ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x * Array.unsafe_get regs y)
    | Xor ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x lxor Array.unsafe_get regs y)
    | And ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x land Array.unsafe_get regs y)
    | Or ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (Array.unsafe_get regs x lor Array.unsafe_get regs y)
    | Shl ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lsl (Array.unsafe_get regs y land 31))
    | Shr ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lsr (Array.unsafe_get regs y land 31))
    | Lt ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r
          (if Array.unsafe_get regs x < Array.unsafe_get regs y then 1 else 0)
    | Eq ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r
          (if Array.unsafe_get regs x = Array.unsafe_get regs y then 1 else 0))
  | Reg x, Imm y -> (
    match op with
    | Add -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x + y)
    | Sub -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x - y)
    | Mul -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x * y)
    | Xor -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x lxor y)
    | And -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x land y)
    | Or -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x lor y)
    | Shl ->
      let s = y land 31 in
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x lsl s)
    | Shr ->
      let s = y land 31 in
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (Array.unsafe_get regs x lsr s)
    | Lt ->
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (if Array.unsafe_get regs x < y then 1 else 0)
    | Eq ->
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (if Array.unsafe_get regs x = y then 1 else 0))
  | Imm x, Reg y -> (
    match op with
    | Add -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x + Array.unsafe_get regs y)
    | Sub -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x - Array.unsafe_get regs y)
    | Mul -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x * Array.unsafe_get regs y)
    | Xor -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x lxor Array.unsafe_get regs y)
    | And -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x land Array.unsafe_get regs y)
    | Or -> fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (x lor Array.unsafe_get regs y)
    | Shl ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (x lsl (Array.unsafe_get regs y land 31))
    | Shr ->
      fun t -> let regs = t.cur_regs in
        Array.unsafe_set regs r (x lsr (Array.unsafe_get regs y land 31))
    | Lt ->
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (if x < Array.unsafe_get regs y then 1 else 0)
    | Eq ->
      fun t -> let regs = t.cur_regs in Array.unsafe_set regs r (if x = Array.unsafe_get regs y then 1 else 0))
  | Imm x, Imm y ->
    let v = eval_binop op x y in
    fun t -> let regs = t.cur_regs in Array.unsafe_set regs r v

let passign ~mem_len fname ~dc ~dns ~dni r e : pbody =
  match e with
  | Const i | Move (Imm i) -> fun t -> Array.unsafe_set t.cur_regs r i
  | Move (Reg s) ->
    fun t ->
      let regs = t.cur_regs in
      Array.unsafe_set regs r (Array.unsafe_get regs s)
  | Binop (op, a, b) -> pbinop r op a b
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then
      fun t -> Array.unsafe_set t.cur_regs r (Array.unsafe_get t.mem i)
    else
      fun t ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t ->
      let regs = t.cur_regs in
      let addr = Array.unsafe_get regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname addr)
      end
      else Array.unsafe_set regs r (Array.unsafe_get t.mem addr)

(* Spec-variant assign: the taint write happens before the value write —
   and, as in the interpreter, before a faulting load raises. *)
let tassign ~mem_len fname ~dc ~dns ~dni r e : tbody =
  match e with
  | Const i | Move (Imm i) ->
    fun t ->
      Array.unsafe_set t.cur_taint r None;
      Array.unsafe_set t.cur_regs r i
  | Move (Reg s) ->
    fun t ->
      let taint = t.cur_taint in
      Array.unsafe_set taint r (Array.unsafe_get taint s);
      let regs = t.cur_regs in
      Array.unsafe_set regs r (Array.unsafe_get regs s)
  | Binop (op, a, b) ->
    let body = pbinop r op a b in
    fun t ->
      Array.unsafe_set t.cur_taint r None;
      body t
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then
      fun t ->
        (Array.unsafe_set t.cur_taint r
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        Array.unsafe_set t.cur_regs r (Array.unsafe_get t.mem i)
    else
      fun t ->
        (Array.unsafe_set t.cur_taint r
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t ->
      let regs = t.cur_regs in
      let addr = Array.unsafe_get regs ar in
      (Array.unsafe_set t.cur_taint r
         (match t.cfg.speculation with
         | None -> None
         | Some s -> Speculation.injected_load s ~addr));
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_load fname addr)
      end
      else Array.unsafe_set regs r (Array.unsafe_get t.mem addr)

let pstore ~mem_len fname ~dc ~dns ~dni a v : pbody =
  match (a, v) with
  | Imm i, Imm vv ->
    if i >= 0 && i < mem_len then fun t -> Array.unsafe_set t.mem i vv
    else
      fun t ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname i)
  | Imm i, Reg vr ->
    if i >= 0 && i < mem_len then
      fun t -> Array.unsafe_set t.mem i (Array.unsafe_get t.cur_regs vr)
    else
      fun t ->
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname i)
  | Reg ar, Imm vv ->
    fun t ->
      let addr = Array.unsafe_get t.cur_regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname addr)
      end
      else Array.unsafe_set t.mem addr vv
  | Reg ar, Reg vr ->
    fun t ->
      let regs = t.cur_regs in
      let addr = Array.unsafe_get regs ar in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dns ~dni;
        raise (oob_store fname addr)
      end
      else Array.unsafe_set t.mem addr (Array.unsafe_get regs vr)

let pobserve v : pbody =
  match v with
  | Imm i -> fun t -> if t.cfg.record_trace then t.trace_rev <- i :: t.trace_rev
  | Reg r ->
    fun t ->
      if t.cfg.record_trace then
        t.trace_rev <- Array.unsafe_get t.cur_regs r :: t.trace_rev

let pbody_of ~mem_len fname ~dc ~dns ~dni (i : Machine.cinst) : pbody =
  match i with
  | CAssign (r, e) -> passign ~mem_len fname ~dc ~dns ~dni r e
  | CStore (a, v) -> pstore ~mem_len fname ~dc ~dns ~dni a v
  | CObserve v -> pobserve v
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

let tbody_of ~mem_len fname ~dc ~dns ~dni (i : Machine.cinst) : tbody =
  match i with
  | CAssign (r, e) -> tassign ~mem_len fname ~dc ~dns ~dni r e
  | CStore (a, v) -> pstore ~mem_len fname ~dc ~dns ~dni a v
  | CObserve v -> pobserve v
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

(* Publication of the running frame for the arity-1 bodies above.  The
   pointer compare skips the [caml_modify] write barrier in the common
   case — consecutive segments of one activation, or a pooled frame
   reused at the same depth, already have the right array published. *)
let[@inline] publish_regs t regs = if t.cur_regs != regs then t.cur_regs <- regs

let[@inline] publish_taint t taint = if t.cur_taint != taint then t.cur_taint <- taint

(* Compile a maximal run of items into one fused closure.  The fuel
   guard [steps + k > fuel] holds exactly when per-item bumping would
   raise somewhere inside the segment, in which case the slow path
   replays the segment with the interpreter's per-item accounting and
   dies (or faults) at precisely the right instruction — it is always
   exact, only slower, so the guard can be conservative.  On the fast
   path, [SJump] seams have no body at all: their step and cost are
   folded into the batch header, so a fused fallthrough is free. *)
let compile_segment ~spec ~mem_len ?stats fname (items : sitem array) : iexec =
  let k = Array.length items in
  let costs, total, ni, dcs, dnss, dnis = seg_suffixes items in
  (match stats with
  | Some s ->
    s.seg_total <- s.seg_total + ni;
    if k >= 2 then s.seg_fused <- s.seg_fused + ni
  | None -> ());
  (* The dispatch shapes below are deliberately arity-specialized: the
     per-item closure call is the single biggest runtime cost the backend
     emits, so single-item segments skip the batch header entirely, small
     segments bind their bodies as direct captures (no array indexing at
     all), and the generic loops index with the unsafe primitives (the
     bounds are fixed at lowering time). *)
  if spec then begin
    match items with
    | [| SInst i |] ->
      let body = tbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i and c = costs.(0) in
      fun t ->
        bump_inst t;
        charge t c;
        body t
    | [| SJump |] ->
      fun t ->
        step_fuel t;
        charge t Cost.jmp
    | _ ->
      let slow =
        Array.mapi
          (fun j it ->
            match it with
            | SInst i ->
              let body = tbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i
              and c = costs.(j) in
              fun t ->
                bump_inst t;
                charge t c;
                body t
            | SJump ->
              fun t ->
                step_fuel t;
                charge t Cost.jmp)
          items
      in
      let run_slow t =
        for j = 0 to k - 1 do
          (Array.unsafe_get slow j) t
        done
      in
      let bodies =
        Array.of_list
          (List.filter_map
             (fun j ->
               match items.(j) with
               | SInst i ->
                 Some (tbody_of ~mem_len fname ~dc:dcs.(j) ~dns:dnss.(j) ~dni:dnis.(j) i)
               | SJump -> None)
             (List.init k (fun j -> j)))
      in
      (match bodies with
      | [| b0 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t
          end
      | [| b0; b1 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t
          end
      | [| b0; b1; b2 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t;
            b2 t
          end
      | [| b0; b1; b2; b3 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t;
            b2 t;
            b3 t
          end
      | _ ->
        let nb = Array.length bodies in
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            for j = 0 to nb - 1 do
              (Array.unsafe_get bodies j) t
            done
          end)
  end
  else begin
    match items with
    | [| SInst i |] ->
      let body = pbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i and c = costs.(0) in
      fun t ->
        bump_inst t;
        charge t c;
        body t
    | [| SJump |] ->
      fun t ->
        step_fuel t;
        charge t Cost.jmp
    | _ ->
      let slow =
        Array.mapi
          (fun j it ->
            match it with
            | SInst i ->
              let body = pbody_of ~mem_len fname ~dc:0 ~dns:0 ~dni:0 i
              and c = costs.(j) in
              fun t ->
                bump_inst t;
                charge t c;
                body t
            | SJump ->
              fun t ->
                step_fuel t;
                charge t Cost.jmp)
          items
      in
      let run_slow t =
        for j = 0 to k - 1 do
          (Array.unsafe_get slow j) t
        done
      in
      let bodies =
        Array.of_list
          (List.filter_map
             (fun j ->
               match items.(j) with
               | SInst i ->
                 Some (pbody_of ~mem_len fname ~dc:dcs.(j) ~dns:dnss.(j) ~dni:dnis.(j) i)
               | SJump -> None)
             (List.init k (fun j -> j)))
      in
      (match bodies with
      | [| b0 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t
          end
      | [| b0; b1 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t
          end
      | [| b0; b1; b2 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t;
            b2 t
          end
      | [| b0; b1; b2; b3 |] ->
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            b0 t;
            b1 t;
            b2 t;
            b3 t
          end
      | _ ->
        let nb = Array.length bodies in
        fun t ->
          if t.steps + k > t.fuel_cap then run_slow t
          else begin
            t.steps <- t.steps + k;
            t.ctrs.insts <- t.ctrs.insts + ni;
            t.cyc <- t.cyc + total;
            for j = 0 to nb - 1 do
              (Array.unsafe_get bodies j) t
            done
          end)
  end

(* --------------------------- calls ----------------------------- *)

(* Result write-back destination as a sentinel int (-1 = no destination):
   the call closures inline the store behind one statically-predictable
   compare instead of bouncing a 3-argument closure through
   [caml_apply3] on every return. *)
let dst_reg = function None -> -1 | Some r -> r

(* Argument evaluators plus the entry-live zero tail for a direct call
   with a static argument list (operand evaluation is pure, so
   truncating past the parameter count drops nothing observable).  The
   call closures loop over the evaluators inline — each one is an
   arity-1 application, a direct indirect call, where a two-array
   writer closure would route every seam through [caml_apply2].  The
   static argument count lets the entry-live zeroing be filtered at
   compile time: only zeroset slots past the written prefix survive
   into [zs_tail]. *)
let direct_call_frame (callee2 : cfunc2) (args : operand array) :
    (int array -> int) array * int array =
  let callee_cf = callee2.c2 in
  let argv = Array.map cop args in
  let n = min callee_cf.f.params (Array.length argv) in
  let zs_tail =
    Array.of_list (List.filter (fun r -> r >= n) (Array.to_list callee2.zeroset))
  in
  let argv = if Array.length argv > n then Array.sub argv 0 n else argv in
  (argv, zs_tail)

let ccall ~spec c2by_id (caller : cfunc) ~dst ~callee_name ~callee_id
    ~(args : operand array) ~site : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  if callee_id < 0 then
    (* Unknown callee: counters, cycles and the edge event still happen
       before the failure, exactly like the interpreter's [lookup]. *)
    fun t ->
      bump_inst t;
      t.ctrs.calls <- t.ctrs.calls + 1;
      charge t (Cost.direct_call + t.cfg.extra_call_cycles);
      emit_edge t site caller_name callee_name Edge_direct;
      raise (Runtime_error ("call to unknown function @" ^ callee_name))
  else begin
    let callee2 = c2by_id.(callee_id) in
    let callee_cf = callee2.c2 in
    let argv, zs_tail = direct_call_frame callee2 args in
    let nargs = Array.length argv in
    let dst_r = dst_reg dst in
    if spec then
      (fun t ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        (* Save the caller's activation, install the callee's, restore on
           return.  The frame pools hand back distinct arrays per depth,
           so the install stores are never redundant. *)
        let regs = t.cur_regs and taint = t.cur_taint in
        let depth = t.cur_depth and rt = t.cur_ret_to in
        (* Write the argument prefix, zero only the entry-live tail: the
           prefix is about to be overwritten anyway, and registers dead
           on entry never surface their stale contents. *)
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        for i = 0 to nargs - 1 do
          Array.unsafe_set callee_regs i ((Array.unsafe_get argv i) regs)
        done;
        zero_tail zs_tail 0 callee_regs;
        t.cur_regs <- callee_regs;
        t.cur_depth <- depth + 1;
        t.cur_ret_to <- caller_id;
        let v = callee2.fexec_spec t in
        t.cur_regs <- regs;
        t.cur_taint <- taint;
        t.cur_depth <- depth;
        t.cur_ret_to <- rt;
        if dst_r >= 0 then begin
          (match v with
          | Some x -> Array.unsafe_set regs dst_r x
          | None -> Array.unsafe_set regs dst_r 0);
          Array.unsafe_set taint dst_r None
        end)
    else
      fun t ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        let regs = t.cur_regs in
        let depth = t.cur_depth and rt = t.cur_ret_to in
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        for i = 0 to nargs - 1 do
          Array.unsafe_set callee_regs i ((Array.unsafe_get argv i) regs)
        done;
        zero_tail zs_tail 0 callee_regs;
        t.cur_regs <- callee_regs;
        t.cur_depth <- depth + 1;
        t.cur_ret_to <- caller_id;
        let v = callee2.fexec_plain t in
        t.cur_regs <- regs;
        t.cur_depth <- depth;
        t.cur_ret_to <- rt;
        if dst_r >= 0 then
          match v with
          | Some x -> Array.unsafe_set regs dst_r x
          | None -> Array.unsafe_set regs dst_r 0
  end

let cicall ~spec ~asm c2by_id (caller : cfunc) ~dst ~fptr ~(args : operand array) ~site
    ~slot : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  let ofp = cop fptr in
  let argv = Array.map cop args in
  let nargs = Array.length argv in
  let kind = if asm then Edge_asm else Edge_indirect in
  let ftaint : int option array -> int option =
    if spec && not asm then
      match fptr with
      | Reg r -> fun taint -> Array.unsafe_get taint r
      | Imm _ -> fun _ -> None
    else fun _ -> None
  in
  let dst_r = dst_reg dst in
  fun t ->
    bump_inst t;
    t.ctrs.icalls <- t.ctrs.icalls + 1;
    charge t t.cfg.extra_icall_cycles;
    let regs = t.cur_regs and taint = t.cur_taint in
    let depth = t.cur_depth and rt = t.cur_ret_to in
    let v = ofp regs in
    let target_id = icall_resolve t v in
    let target_name = t.fptr_table.(v) in
    let fptr_taint = ftaint taint in
    (match t.cfg.fwd_override with
    | Some hook when not asm -> charge t (hook ~site ~target:target_name)
    | Some _ | None ->
      let protection = if asm then Protection.F_none else t.fwd_prots.(slot) in
      indirect_transfer t ~site ~target:target_id ~fptr_taint ~protection);
    emit_edge t site caller_name target_name kind;
    let callee2 = c2by_id.(target_id) in
    let callee_cf = callee2.c2 in
    enter_code t callee_cf;
    Rsb.push t.trsb caller_id;
    let callee_regs = raw_frame t ~depth:(depth + 1) in
    (* integer min by hand: the polymorphic version costs a C call per
       indirect transfer *)
    let n = if callee_cf.f.params < nargs then callee_cf.f.params else nargs in
    for i = 0 to n - 1 do
      Array.unsafe_set callee_regs i ((Array.unsafe_get argv i) regs)
    done;
    zero_tail callee2.zeroset n callee_regs;
    t.cur_regs <- callee_regs;
    t.cur_depth <- depth + 1;
    t.cur_ret_to <- caller_id;
    let r = if spec then callee2.fexec_spec t else callee2.fexec_plain t in
    t.cur_regs <- regs;
    if spec then t.cur_taint <- taint;
    t.cur_depth <- depth;
    t.cur_ret_to <- rt;
    if dst_r >= 0 then begin
      (match r with
      | Some x -> Array.unsafe_set regs dst_r x
      | None -> Array.unsafe_set regs dst_r 0);
      if spec then Array.unsafe_set taint dst_r None
    end

let ccomplex ~spec c2by_id (caller : cfunc) (i : Machine.cinst) : iexec =
  match i with
  | CCall { dst; callee; callee_id; args; site } ->
    ccall ~spec c2by_id caller ~dst ~callee_name:callee ~callee_id ~args ~site
  | CIcall { dst; fptr; args; site; slot } ->
    cicall ~spec ~asm:false c2by_id caller ~dst ~fptr ~args ~site ~slot
  | CAsm_icall { fptr; site } ->
    cicall ~spec ~asm:true c2by_id caller ~dst:None ~fptr ~args:[||] ~site ~slot:(-1)
  | CAssign _ | CStore _ | CObserve _ -> assert false

(* ----------------------- chain scanning ------------------------ *)

(* Flatten a chain of blocks into an alternating sequence of fused
   segments and individual complex (call) instructions: each non-final
   block contributes an [SJump] seam item for its unconditional
   terminator, and only the FINAL block's terminator survives (returned
   alongside its label).  Shared by the closure lowerings (tier 1/2),
   the tier-3 encoder and call-seam body flattening. *)
let scan_chain (chain : (int * Machine.cblock) list) :
    [ `Seg of sitem array | `Cx of Machine.cinst ] list * int * terminator =
  let rev_chunks = ref [] and pending = ref [] in
  let flush () =
    match !pending with
    | [] -> ()
    | l ->
      rev_chunks := `Seg (Array.of_list (List.rev l)) :: !rev_chunks;
      pending := []
  in
  let scan_insts (b : Machine.cblock) =
    Array.iter
      (fun i ->
        match i with
        | CAssign _ | CStore _ | CObserve _ -> pending := SInst i :: !pending
        | CCall _ | CIcall _ | CAsm_icall _ ->
          flush ();
          rev_chunks := `Cx i :: !rev_chunks)
      b.cinsts
  in
  let rec go = function
    | [] -> assert false
    | [ (label, (b : Machine.cblock)) ] ->
      scan_insts b;
      flush ();
      (label, b.cterm)
    | (_, b) :: rest ->
      scan_insts b;
      (* the seam: this block's fuel step + jump, fused into the
         surrounding segment *)
      pending := SJump :: !pending;
      go rest
  in
  let last_label, last_term = go chain in
  (List.rev !rev_chunks, last_label, last_term)

(* ---------------------- call-seam fusion ----------------------- *)

(* Upper bound on the instruction count of a fusable callee body: keeps
   the batched span (and the fuel-guard conservatism it implies) small,
   and bounds the per-site closure volume of (caller, callee)
   specialization. *)
let fuse_max_body = 48

(* A callee eligible for call-seam fusion: a valid, straight-line leaf —
   every block on the entry chain holds only simple instructions, blocks
   are linked by [Jmp] without revisits, the chain ends in [Ret], and
   the total body is bounded.  A recursive callee necessarily contains a
   call instruction, so it can never qualify; neither can anything with
   conditional or indirect control flow. *)
let fuse_plan (callee2 : cfunc2) : (int * Machine.cblock) list option =
  let cf = callee2.c2 in
  if not (func_valid cf) then None
  else begin
    let rec go acc seen l size =
      let b = cf.cblocks.(l) in
      let simple =
        Array.for_all
          (fun i ->
            match i with
            | CAssign _ | CStore _ | CObserve _ -> true
            | CCall _ | CIcall _ | CAsm_icall _ -> false)
          b.cinsts
      in
      let size = size + Array.length b.cinsts in
      if (not simple) || size > fuse_max_body then None
      else
        match b.cterm with
        | Ret _ -> Some (List.rev ((l, b) :: acc))
        | Jmp s when not (List.mem s seen) -> go ((l, b) :: acc) (s :: seen) s size
        | _ -> None
    in
    go [] [ cf.f.entry ] cf.f.entry 0
  end

(* Lower one (caller, callee) pair into a single fused closure spanning
   call + body + return: one fuel guard and one batched
   step/instruction/cycle update for the whole span, then the machine
   effects in exactly the interpreter's order — edge event, i-cache
   touch, RSB push, frame setup, entry-live zeroing, the callee's
   per-engine entry-counter bump (mirroring the tiered dispatcher the
   unfused path goes through), [enter_frame], the body items, the return
   value read, [do_ret] (which pops the RSB and charges the backward
   path), result write-back.  The batch pre-charges the call step, every
   body item and the return's fuel step; a faulting body item rewinds
   its unearned remainder (the body deltas count the return step as
   still-unearned), and a span that could exhaust fuel falls back to
   [slow] — the ordinary unfused call closure, which dies at exactly the
   interpreter's instruction. *)
let build_fused ~spec (p : prog) (caller : cfunc) ~dst ~callee_id ~site
    ~(args : operand array) ~(slow : iexec) (chain : (int * Machine.cblock) list) :
    iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  let callee2 = p.c2by_id.(callee_id) in
  let callee_cf = callee2.c2 in
  let callee_name = callee_cf.f.fname in
  let mem_len = p.mem_len in
  let items =
    match scan_chain chain with
    | [], _, _ -> [||]
    | [ `Seg items ], _, _ -> items
    | _ -> assert false (* fuse_plan admits simple instructions only *)
  in
  let _costs, body_total, nbody_insts, dcs, dnss0, dnis = seg_suffixes items in
  let nb = Array.length items in
  (* call step + body items (insts and seams) + return step *)
  let k = nb + 2 in
  (* the call instruction itself retires, plus the body instructions *)
  let ni = 1 + nbody_insts in
  (* static cycles of the span: the call cost and every body item; the
     return's cost is charged at runtime by [do_ret] (it depends on RSB
     state and backward protection) *)
  let static_cyc = Cost.direct_call + body_total in
  (* body deltas: the pre-charged return fuel step is after every item *)
  let dnss = Array.map (fun s -> s + 1) dnss0 in
  let argv, zs_tail = direct_call_frame callee2 args in
  let nargs = Array.length argv in
  let dst_r = dst_reg dst in
  let read_ret : int array -> int option =
    match chain with
    | [] -> assert false
    | _ -> (
      match (snd (List.nth chain (List.length chain - 1))).cterm with
      | Ret None -> fun _ -> None
      | Ret (Some (Imm i)) ->
        let v = Some i in
        fun _ -> v
      | Ret (Some (Reg r)) -> fun cregs -> Some (Array.unsafe_get cregs r)
      | Jmp _ | Br _ | Switch _ -> assert false)
  in
  if spec then begin
    let tbodies =
      Array.of_list
        (List.filter_map
           (fun j ->
             match items.(j) with
             | SInst i ->
               Some
                 (tbody_of ~mem_len callee_name ~dc:dcs.(j) ~dns:dnss.(j)
                    ~dni:dnis.(j) i)
             | SJump -> None)
           (List.init nb (fun j -> j)))
    in
    let ntb = Array.length tbodies in
    let zs = callee2.zeroset in
    let nzs = Array.length zs in
    fun t ->
      if t.steps + k > t.fuel_cap then slow t
      else begin
        t.steps <- t.steps + k;
        t.ctrs.insts <- t.ctrs.insts + ni;
        t.ctrs.calls <- t.ctrs.calls + 1;
        t.cyc <- t.cyc + static_cyc + t.cfg.extra_call_cycles;
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        let regs = t.cur_regs and taint = t.cur_taint in
        let depth = t.cur_depth in
        let cregs = raw_frame t ~depth:(depth + 1) in
        for i = 0 to nargs - 1 do
          Array.unsafe_set cregs i ((Array.unsafe_get argv i) regs)
        done;
        zero_tail zs_tail 0 cregs;
        Array.unsafe_set t.tier_counts callee_id
          (Array.unsafe_get t.tier_counts callee_id + 1);
        enter_frame t callee_cf;
        let ctaint = raw_taint_frame t ~depth:(depth + 1) in
        for i = 0 to nzs - 1 do
          Array.unsafe_set ctaint (Array.unsafe_get zs i) None
        done;
        t.cur_regs <- cregs;
        t.cur_taint <- ctaint;
        for j = 0 to ntb - 1 do
          (Array.unsafe_get tbodies j) t
        done;
        let v = read_ret cregs in
        do_ret t callee_cf ~ret_to:caller_id;
        t.cur_regs <- regs;
        t.cur_taint <- taint;
        if dst_r >= 0 then begin
          (match v with
          | Some x -> Array.unsafe_set regs dst_r x
          | None -> Array.unsafe_set regs dst_r 0);
          Array.unsafe_set taint dst_r None
        end
      end
  end
  else begin
    let bodies =
      Array.of_list
        (List.filter_map
           (fun j ->
             match items.(j) with
             | SInst i ->
               Some
                 (pbody_of ~mem_len callee_name ~dc:dcs.(j) ~dns:dnss.(j)
                    ~dni:dnis.(j) i)
             | SJump -> None)
           (List.init nb (fun j -> j)))
    in
    let seam t regs depth =
      t.steps <- t.steps + k;
      t.ctrs.insts <- t.ctrs.insts + ni;
      t.ctrs.calls <- t.ctrs.calls + 1;
      t.cyc <- t.cyc + static_cyc + t.cfg.extra_call_cycles;
      emit_edge t site caller_name callee_name Edge_direct;
      enter_code t callee_cf;
      Rsb.push t.trsb caller_id;
      let cregs = raw_frame t ~depth:(depth + 1) in
      for i = 0 to nargs - 1 do
        Array.unsafe_set cregs i ((Array.unsafe_get argv i) regs)
      done;
      zero_tail zs_tail 0 cregs;
      Array.unsafe_set t.tier_counts callee_id
        (Array.unsafe_get t.tier_counts callee_id + 1);
      enter_frame t callee_cf;
      t.cur_regs <- cregs;
      cregs
    in
    (* Arity-specialize the hottest leaf shapes: the bound body closures
       are direct captures, no array indexing on the fast path. *)
    match bodies with
    | [||] ->
      fun t ->
        if t.steps + k > t.fuel_cap then slow t
        else begin
          let regs = t.cur_regs in
          let cregs = seam t regs t.cur_depth in
          let v = read_ret cregs in
          do_ret t callee_cf ~ret_to:caller_id;
          t.cur_regs <- regs;
          if dst_r >= 0 then
            match v with
            | Some x -> Array.unsafe_set regs dst_r x
            | None -> Array.unsafe_set regs dst_r 0
        end
    | [| b0 |] ->
      fun t ->
        if t.steps + k > t.fuel_cap then slow t
        else begin
          let regs = t.cur_regs in
          let cregs = seam t regs t.cur_depth in
          b0 t;
          let v = read_ret cregs in
          do_ret t callee_cf ~ret_to:caller_id;
          t.cur_regs <- regs;
          if dst_r >= 0 then
            match v with
            | Some x -> Array.unsafe_set regs dst_r x
            | None -> Array.unsafe_set regs dst_r 0
        end
    | [| b0; b1 |] ->
      fun t ->
        if t.steps + k > t.fuel_cap then slow t
        else begin
          let regs = t.cur_regs in
          let cregs = seam t regs t.cur_depth in
          b0 t;
          b1 t;
          let v = read_ret cregs in
          do_ret t callee_cf ~ret_to:caller_id;
          t.cur_regs <- regs;
          if dst_r >= 0 then
            match v with
            | Some x -> Array.unsafe_set regs dst_r x
            | None -> Array.unsafe_set regs dst_r 0
        end
    | _ ->
      let nbo = Array.length bodies in
      fun t ->
        if t.steps + k > t.fuel_cap then slow t
        else begin
          let regs = t.cur_regs in
          let cregs = seam t regs t.cur_depth in
          for j = 0 to nbo - 1 do
            (Array.unsafe_get bodies j) t
          done;
          let v = read_ret cregs in
          do_ret t callee_cf ~ret_to:caller_id;
          t.cur_regs <- regs;
          if dst_r >= 0 then
            match v with
            | Some x -> Array.unsafe_set regs dst_r x
            | None -> Array.unsafe_set regs dst_r 0
        end
  end

(* A call seam whose callee is not yet hot: run the unfused closure, but
   watch the dispatching engine's entry counter for the callee and swap
   in the fused closure (built once, on demand) when it crosses the
   threshold.  The swap is a plain ref-cell publication, safe by the
   same argument as every trampoline here: the closures are immutable
   after construction and both sides are bit-exact, so a racing domain
   seeing the stale cell merely takes the slower exact path once more. *)
let promotable (p : prog) ~callee_id ~(unfused : iexec) ~(build : unit -> iexec) :
    iexec =
  let thr = p.callfuse in
  let cell : iexec ref = ref unfused in
  let promoting t =
    if Array.unsafe_get t.tier_counts callee_id > thr then begin
      let f = build () in
      Atomic.incr p.pstats.fused_promoted;
      cell := f;
      f t
    end
    else unfused t
  in
  cell := promoting;
  fun t -> !cell t

(* Lower one complex instruction inside a chain, fusing eligible direct
   call seams when the program was compiled with fusion on.  [counts] is
   the triggering engine's per-function entry-counter array: a callee
   already hot at lowering time bakes the fused closure directly;
   otherwise the seam self-promotes at runtime. *)
let lower_cx ~spec (p : prog) ~counts (cf : cfunc) (i : Machine.cinst) : iexec =
  match i with
  | CCall { dst; callee = _; callee_id; args; site }
    when p.callfuse > 0 && callee_id >= 0 -> (
    match fuse_plan p.c2by_id.(callee_id) with
    | Some chain ->
      let unfused = ccomplex ~spec p.c2by_id cf i in
      let callee_name = p.c2by_id.(callee_id).c2.f.fname in
      let build () =
        Trace.span ~cat:"sched" "engine:callfuse"
          ~args:
            [ ("caller", Trace.Str cf.f.fname); ("callee", Trace.Str callee_name) ]
          (fun () ->
            let fx = build_fused ~spec p cf ~dst ~callee_id ~site ~args ~slow:unfused chain in
            Atomic.incr p.pstats.fused_seams;
            if Trace.enabled () then
              Trace.counter ~cat:"sched" "call-fused-seams"
                [
                  ("count", Trace.Int 1);
                  ("caller", Trace.Str cf.f.fname);
                  ("callee", Trace.Str callee_name);
                ];
            fx)
      in
      if Array.length counts > callee_id && Array.unsafe_get counts callee_id > p.callfuse
      then build ()
      else promotable p ~callee_id ~unfused ~build
    | None -> ccomplex ~spec p.c2by_id cf i)
  | _ -> ccomplex ~spec p.c2by_id cf i

(* ------------------------ terminators -------------------------- *)

let[@inline] br_follow t ~key ~taken =
  charge t Cost.br;
  if Pht.predict t.tpht ~key <> taken then begin
    t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
    charge t Cost.br_mispredict_penalty
  end;
  Pht.train t.tpht ~key ~taken

let cterm (bexecs : bexec array) (cf : cfunc) label (term : terminator) : bexec =
  match term with
  | Jmp l ->
    fun t ->
      charge t Cost.jmp;
      (Array.unsafe_get bexecs l) t
  | Br (Reg cr, l1, l2) ->
    let key = cf.key_base + label in
    fun t ->
      let taken = Array.unsafe_get t.cur_regs cr <> 0 in
      br_follow t ~key ~taken;
      if taken then (Array.unsafe_get bexecs l1) t
      else (Array.unsafe_get bexecs l2) t
  | Br (Imm i, l1, l2) ->
    let key = cf.key_base + label in
    let taken = i <> 0 in
    let l = if taken then l1 else l2 in
    fun t ->
      br_follow t ~key ~taken;
      (Array.unsafe_get bexecs l) t
  | Switch { scrutinee; cases; default; lowering } ->
    let ov = cop scrutinee in
    let ncases = Array.length cases in
    let cost =
      match lowering with
      | Jump_table -> Cost.switch_jump_table
      | Branch_ladder -> ladder_cost ncases
    in
    fun t ->
      let v = ov t.cur_regs in
      let rec find i =
        if i >= ncases then default
        else
          let case_v, l = cases.(i) in
          if case_v = v then l else find (i + 1)
      in
      let target = find 0 in
      charge t cost;
      (Array.unsafe_get bexecs target) t
  | Ret None ->
    fun t ->
      do_ret t cf ~ret_to:t.cur_ret_to;
      None
  | Ret (Some (Imm i)) ->
    fun t ->
      let v = Some i in
      do_ret t cf ~ret_to:t.cur_ret_to;
      v
  | Ret (Some (Reg r)) ->
    fun t ->
      let v = Some (Array.unsafe_get t.cur_regs r) in
      do_ret t cf ~ret_to:t.cur_ret_to;
      v

(* ------------------- blocks and superblocks -------------------- *)

(* Lower a chain of blocks — a single block in tier 1, a whole
   superblock in tier 2 — into one closure.  The chain's instruction
   streams are flattened into one item stream, each non-final block
   contributing an [SJump] seam marker for its unconditional terminator;
   the stream is partitioned into maximal fused segments and individual
   call instructions, and only the FINAL block's terminator is compiled
   (non-final terminators are guaranteed [Jmp] and live inside the
   segments as seam accounting). *)
let lower_chain ~spec ?stats (p : prog) ~counts (cf : cfunc) bexecs
    (chain : (int * Machine.cblock) list) : bexec =
  let fname = cf.f.fname in
  let mem_len = p.mem_len in
  let chunk_list, last_label, last_term = scan_chain chain in
  let chunks =
    Array.of_list
      (List.map
         (function
           | `Seg items -> compile_segment ~spec ~mem_len ?stats fname items
           | `Cx i -> lower_cx ~spec p ~counts cf i)
         chunk_list)
  in
  let term = cterm bexecs cf last_label last_term in
  match chunks with
  | [||] ->
    fun t ->
      step_fuel t;
      term t
  | [| c0 |] ->
    fun t ->
      c0 t;
      step_fuel t;
      term t
  | [| c0; c1 |] ->
    fun t ->
      c0 t;
      c1 t;
      step_fuel t;
      term t
  | [| c0; c1; c2 |] ->
    fun t ->
      c0 t;
      c1 t;
      c2 t;
      step_fuel t;
      term t
  | _ ->
    let n = Array.length chunks in
    fun t ->
      for i = 0 to n - 1 do
        (Array.unsafe_get chunks i) t
      done;
      step_fuel t;
      term t

(* Superblock trace formation: the trace headed at [l] follows
   unconditional [Jmp] edges for as long as they go — REGARDLESS of the
   target's predecessor count.  A shared tail (a merge point entered by
   [Jmp] from several arms) is duplicated into every trace that reaches
   it, which is exactly classic superblock tail duplication: on the
   optimized kernel images nearly every surviving [Jmp] targets a merge
   point (the cleanup pass already forwards the single-predecessor empty
   blocks away), so a single-predecessor-only rule finds nothing to fuse
   there.  Duplication is bounded twice over: traces stop on a revisit
   (no unrolling of [Jmp]-only cycles) and at [max_trace] blocks, and
   lazy per-head lowering means only the heads execution actually
   dispatches to ever pay for their copy of a tail.  A truncated trace
   simply ends in a [Jmp] terminator, which dispatches to the target
   head's own trace like any other transfer. *)
let max_trace = 32

let trace_of (cf : cfunc) l : (int * Machine.cblock) list =
  let rec go acc seen l' len =
    let b = cf.cblocks.(l') in
    match b.cterm with
    | Jmp s when len < max_trace && not (List.mem s seen) ->
      go ((l', b) :: acc) (s :: seen) s (len + 1)
    | _ -> List.rev ((l', b) :: acc)
  in
  go [] [ l ] l 1

(* ------------------- tier 3: register threading ----------------- *)

(* The hottest traces drop the per-instruction closure array entirely:
   the trace body becomes a flat [int array] instruction stream driven
   by ONE tail-recursive dispatch loop.  Opcode and operands live inline
   in the stream, so executing a simple instruction is an opcode load, a
   couple of operand loads and the arithmetic — no indirect call, no
   closure environment.  Accounting keeps the exact segment-batching
   shape: a [BATCH] word pre-charges a segment's fuel/insts/cycles (its
   guard falls back to the tier-2 per-item slow path, which dies at
   exactly the interpreter's instruction), and potentially-faulting
   instructions carry their rollback deltas inline.  Anything the
   encoder cannot express stays a closure behind an escape opcode: [PB]
   for statically out-of-bounds simple instructions (the tier-1 body
   with baked deltas), [CX] for calls and indirect transfers (the same
   chunk closures tier 2 uses, including fused call seams) — so tier 3
   never duplicates semantics, it only flattens dispatch. *)

let op_end = 0
let op_batch = 1 (* k ni total slow_aux next_pc *)
let op_cx = 2 (* aux_idx *)
let op_pb = 3 (* pb_idx *)
let op_const = 4 (* dst imm *)
let op_move = 5 (* dst src *)
let op_loadi = 6 (* dst addr — statically in bounds *)
let op_loadr = 7 (* dst addr_reg dc dns dni *)
let op_store_ii = 8 (* addr imm — statically in bounds *)
let op_store_ir = 9 (* addr val_reg — statically in bounds *)
let op_store_ri = 10 (* addr_reg imm dc dns dni *)
let op_store_rr = 11 (* addr_reg val_reg dc dns dni *)
let op_obs_i = 12 (* imm *)
let op_obs_r = 13 (* reg *)
let op_acc = 14 (* dst n (k operand)*n — left-accumulator binop run *)
let op_pair = 15 (* sh key d1 oa1 ob1 d2 oa2 ob2 — fused binop pair *)

(* Binops occupy [op_binop_base ..]: opcode = base + index*3 + shape,
   shape 0 = (Reg, Reg), 1 = (Reg, Imm), 2 = (Imm, Reg) — immediate
   pairs constant-fold into [op_const] at encode time.  Shift immediates
   are pre-masked at encode time. *)
let op_binop_base = 16

let binop_index = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Xor -> 3
  | And -> 4
  | Or -> 5
  | Shl -> 6
  | Shr -> 7
  | Lt -> 8
  | Eq -> 9

(* Left-accumulator shape test for [op_acc]: [d = op (Reg d) rhs] where
   [rhs] is an immediate (shape 0, shift amounts pre-masked like the RI
   binops) or a register other than [d] itself (shape 1 — an operand
   aliasing [d] would read the stale frame slot while the live value
   rides in the host register).  Returns the run key [d] plus the coded
   (k, operand) pair. *)
let acc_of = function
  | SInst (CAssign (d, Binop (op, Reg a, Imm y))) when a = d ->
    let y = match op with Shl | Shr -> y land 31 | _ -> y in
    Some (d, 2 * binop_index op, y)
  | SInst (CAssign (d, Binop (op, Reg a, Reg s))) when a = d && s <> d ->
    Some (d, (2 * binop_index op) + 1, s)
  | _ -> None

(* Operand-shape view of one codeable binop for [op_pair] pairing:
   [(dst, binop index, (a shape, a operand), (b shape, b operand))]
   with shape 0 = immediate, 1 = register (forwarding is decided at the
   pair site, where the first op's destination is known).  Shift-amount
   immediates are pre-masked here, mirroring the single-op encoders.
   Both-immediate binops constant-fold in the plain encoder instead. *)
let pair_of = function
  | SInst (CAssign (d, Binop (op, a, b))) -> (
    match (a, b) with
    | Imm _, Imm _ -> None
    | _ ->
      let oa = match a with Imm x -> (0, x) | Reg r -> (1, r) in
      let ob =
        match b with
        | Imm y -> (
          match op with Shl | Shr -> (0, y land 31) | _ -> (0, y))
        | Reg r -> (1, r)
      in
      Some (d, binop_index op, oa, ob))
  | _ -> None

(* Static context of one encoded trace; [code] is passed separately so
   the loop's per-opcode fetches touch it without a record load. *)
type t3ctx = {
  t3aux : iexec array;  (* CX escapes + BATCH slow paths *)
  t3pbs : pbody array;  (* PB escapes *)
  t3mem : int;
  t3fname : string;
}

(* The [op_pair] superinstruction: two consecutive binops retired by ONE
   dispatch.  On superscalar hosts the dominant per-instruction cost of
   an int-coded stream is the single polymorphic indirect jump at the
   dispatch switch, so halving the dispatch count roughly halves the
   floor; the 100 (op1, op2) arms below are mechanical expansions of
   the same eval rules the single-op opcodes use (this block and the
   [acc_loop] switch are machine-generated — edit the generator
   pattern, not individual arms).  Operand shapes ride in [sh]: bits
   0-1 select immediate/register for op1's operands, bits 2-3 and 4-5
   select immediate/register/forwarded for op2's (a register operand
   naming [d1] is encoded as forwarded and reads [w] — the frame slot
   store has not been observed by anything between the two ops, so
   forwarding is exact).  Shift immediates are pre-masked at encode
   time; register and forwarded shift amounts mask here, same as the
   single-op arms. *)
let pair_step (code : int array) (regs : int array) pc =
  let sh = Array.unsafe_get code (pc + 1) in
  let d1 = Array.unsafe_get code (pc + 3) in
  let oa1 = Array.unsafe_get code (pc + 4) and ob1 = Array.unsafe_get code (pc + 5) in
  let d2 = Array.unsafe_get code (pc + 6) in
  let oa2 = Array.unsafe_get code (pc + 7) and ob2 = Array.unsafe_get code (pc + 8) in
  let xa1 = if sh land 1 = 0 then oa1 else Array.unsafe_get regs oa1 in
  let xb1 = if sh land 2 = 0 then ob1 else Array.unsafe_get regs ob1 in
  let sa2 = (sh lsr 2) land 3 and sb2 = (sh lsr 4) land 3 in
  match Array.unsafe_get code (pc + 2) with
    | 0 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 1 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 2 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 3 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 4 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 5 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 6 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 7 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 8 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 9 ->
      let w = xa1 + xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 10 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 11 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 12 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 13 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 14 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 15 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 16 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 17 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 18 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 19 ->
      let w = xa1 - xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 20 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 21 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 22 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 23 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 24 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 25 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 26 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 27 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 28 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 29 ->
      let w = xa1 * xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 30 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 31 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 32 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 33 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 34 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 35 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 36 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 37 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 38 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 39 ->
      let w = xa1 lxor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 40 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 41 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 42 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 43 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 44 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 45 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 46 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 47 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 48 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 49 ->
      let w = xa1 land xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 50 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 51 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 52 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 53 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 54 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 55 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 56 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 57 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 58 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 59 ->
      let w = xa1 lor xb1 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 60 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 61 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 62 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 63 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 64 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 65 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 66 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 67 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 68 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 69 ->
      let w = xa1 lsl (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 70 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 71 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 72 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 73 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 74 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 75 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 76 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 77 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 78 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 79 ->
      let w = xa1 lsr (xb1 land 31) in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 80 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 81 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 82 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 83 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 84 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 85 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 86 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 87 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 88 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | 89 ->
      let w = if xa1 < xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)
    | 90 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 + xb2)
    | 91 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 - xb2)
    | 92 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 * xb2)
    | 93 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lxor xb2)
    | 94 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 land xb2)
    | 95 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lor xb2)
    | 96 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsl (xb2 land 31))
    | 97 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         xa2 lsr (xb2 land 31))
    | 98 ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 < xb2 then 1 else 0)
    | _ ->
      let w = if xa1 = xb1 then 1 else 0 in
      Array.unsafe_set regs d1 w;
      Array.unsafe_set regs d2
        (let xa2 = if sa2 = 0 then oa2 else if sa2 = 1 then Array.unsafe_get regs oa2 else w in
         let xb2 = if sb2 = 0 then ob2 else if sb2 = 1 then Array.unsafe_get regs ob2 else w in
         if xa2 = xb2 then 1 else 0)

(* The [op_acc] superinstruction body: a run of left-accumulator binops
   [d = op d rhs] whose live value stays in [v] — a host register — for
   the whole run.  Items are consumed TWO per dispatch: operands are
   shape-resolved first (bit 0 of [k]: 0 = immediate, pre-masked for
   shifts; 1 = register operand, never [d] itself), then one dense
   100-way switch keyed on the op pair applies both.  One polymorphic
   indirect jump per instruction is exactly the dispatch floor this
   tier exists to break — and an int-switch interpreter pays it at its
   single jump-table site just like tier 2 would pay it at a shared
   [caml_apply] trampoline — so halving the dispatch count is worth a
   10x wider (machine-generated) switch.  A trailing odd item takes the
   10-way epilogue. *)
let rec acc_loop (code : int array) (regs : int array) v pc n =
  if n >= 2 then begin
    let k1 = Array.unsafe_get code pc and o1 = Array.unsafe_get code (pc + 1) in
    let k2 = Array.unsafe_get code (pc + 2) and o2 = Array.unsafe_get code (pc + 3) in
    let x1 = if k1 land 1 = 0 then o1 else Array.unsafe_get regs o1 in
    let x2 = if k2 land 1 = 0 then o2 else Array.unsafe_get regs o2 in
    let v =
      match ((k1 lsr 1) * 10) + (k2 lsr 1) with
      | 0 -> ((v + x1) + x2)
      | 1 -> ((v + x1) - x2)
      | 2 -> ((v + x1) * x2)
      | 3 -> ((v + x1) lxor x2)
      | 4 -> ((v + x1) land x2)
      | 5 -> ((v + x1) lor x2)
      | 6 -> ((v + x1) lsl (x2 land 31))
      | 7 -> ((v + x1) lsr (x2 land 31))
      | 8 -> (if (v + x1) < x2 then 1 else 0)
      | 9 -> (if (v + x1) = x2 then 1 else 0)
      | 10 -> ((v - x1) + x2)
      | 11 -> ((v - x1) - x2)
      | 12 -> ((v - x1) * x2)
      | 13 -> ((v - x1) lxor x2)
      | 14 -> ((v - x1) land x2)
      | 15 -> ((v - x1) lor x2)
      | 16 -> ((v - x1) lsl (x2 land 31))
      | 17 -> ((v - x1) lsr (x2 land 31))
      | 18 -> (if (v - x1) < x2 then 1 else 0)
      | 19 -> (if (v - x1) = x2 then 1 else 0)
      | 20 -> ((v * x1) + x2)
      | 21 -> ((v * x1) - x2)
      | 22 -> ((v * x1) * x2)
      | 23 -> ((v * x1) lxor x2)
      | 24 -> ((v * x1) land x2)
      | 25 -> ((v * x1) lor x2)
      | 26 -> ((v * x1) lsl (x2 land 31))
      | 27 -> ((v * x1) lsr (x2 land 31))
      | 28 -> (if (v * x1) < x2 then 1 else 0)
      | 29 -> (if (v * x1) = x2 then 1 else 0)
      | 30 -> ((v lxor x1) + x2)
      | 31 -> ((v lxor x1) - x2)
      | 32 -> ((v lxor x1) * x2)
      | 33 -> ((v lxor x1) lxor x2)
      | 34 -> ((v lxor x1) land x2)
      | 35 -> ((v lxor x1) lor x2)
      | 36 -> ((v lxor x1) lsl (x2 land 31))
      | 37 -> ((v lxor x1) lsr (x2 land 31))
      | 38 -> (if (v lxor x1) < x2 then 1 else 0)
      | 39 -> (if (v lxor x1) = x2 then 1 else 0)
      | 40 -> ((v land x1) + x2)
      | 41 -> ((v land x1) - x2)
      | 42 -> ((v land x1) * x2)
      | 43 -> ((v land x1) lxor x2)
      | 44 -> ((v land x1) land x2)
      | 45 -> ((v land x1) lor x2)
      | 46 -> ((v land x1) lsl (x2 land 31))
      | 47 -> ((v land x1) lsr (x2 land 31))
      | 48 -> (if (v land x1) < x2 then 1 else 0)
      | 49 -> (if (v land x1) = x2 then 1 else 0)
      | 50 -> ((v lor x1) + x2)
      | 51 -> ((v lor x1) - x2)
      | 52 -> ((v lor x1) * x2)
      | 53 -> ((v lor x1) lxor x2)
      | 54 -> ((v lor x1) land x2)
      | 55 -> ((v lor x1) lor x2)
      | 56 -> ((v lor x1) lsl (x2 land 31))
      | 57 -> ((v lor x1) lsr (x2 land 31))
      | 58 -> (if (v lor x1) < x2 then 1 else 0)
      | 59 -> (if (v lor x1) = x2 then 1 else 0)
      | 60 -> ((v lsl (x1 land 31)) + x2)
      | 61 -> ((v lsl (x1 land 31)) - x2)
      | 62 -> ((v lsl (x1 land 31)) * x2)
      | 63 -> ((v lsl (x1 land 31)) lxor x2)
      | 64 -> ((v lsl (x1 land 31)) land x2)
      | 65 -> ((v lsl (x1 land 31)) lor x2)
      | 66 -> ((v lsl (x1 land 31)) lsl (x2 land 31))
      | 67 -> ((v lsl (x1 land 31)) lsr (x2 land 31))
      | 68 -> (if (v lsl (x1 land 31)) < x2 then 1 else 0)
      | 69 -> (if (v lsl (x1 land 31)) = x2 then 1 else 0)
      | 70 -> ((v lsr (x1 land 31)) + x2)
      | 71 -> ((v lsr (x1 land 31)) - x2)
      | 72 -> ((v lsr (x1 land 31)) * x2)
      | 73 -> ((v lsr (x1 land 31)) lxor x2)
      | 74 -> ((v lsr (x1 land 31)) land x2)
      | 75 -> ((v lsr (x1 land 31)) lor x2)
      | 76 -> ((v lsr (x1 land 31)) lsl (x2 land 31))
      | 77 -> ((v lsr (x1 land 31)) lsr (x2 land 31))
      | 78 -> (if (v lsr (x1 land 31)) < x2 then 1 else 0)
      | 79 -> (if (v lsr (x1 land 31)) = x2 then 1 else 0)
      | 80 -> ((if v < x1 then 1 else 0) + x2)
      | 81 -> ((if v < x1 then 1 else 0) - x2)
      | 82 -> ((if v < x1 then 1 else 0) * x2)
      | 83 -> ((if v < x1 then 1 else 0) lxor x2)
      | 84 -> ((if v < x1 then 1 else 0) land x2)
      | 85 -> ((if v < x1 then 1 else 0) lor x2)
      | 86 -> ((if v < x1 then 1 else 0) lsl (x2 land 31))
      | 87 -> ((if v < x1 then 1 else 0) lsr (x2 land 31))
      | 88 -> (if (if v < x1 then 1 else 0) < x2 then 1 else 0)
      | 89 -> (if (if v < x1 then 1 else 0) = x2 then 1 else 0)
      | 90 -> ((if v = x1 then 1 else 0) + x2)
      | 91 -> ((if v = x1 then 1 else 0) - x2)
      | 92 -> ((if v = x1 then 1 else 0) * x2)
      | 93 -> ((if v = x1 then 1 else 0) lxor x2)
      | 94 -> ((if v = x1 then 1 else 0) land x2)
      | 95 -> ((if v = x1 then 1 else 0) lor x2)
      | 96 -> ((if v = x1 then 1 else 0) lsl (x2 land 31))
      | 97 -> ((if v = x1 then 1 else 0) lsr (x2 land 31))
      | 98 -> (if (if v = x1 then 1 else 0) < x2 then 1 else 0)
      | _ -> (if (if v = x1 then 1 else 0) = x2 then 1 else 0)
    in
    acc_loop code regs v (pc + 4) (n - 2)
  end
  else if n = 1 then begin
    let k = Array.unsafe_get code pc and o = Array.unsafe_get code (pc + 1) in
    let x = if k land 1 = 0 then o else Array.unsafe_get regs o in
    match k lsr 1 with
    | 0 -> v + x
    | 1 -> v - x
    | 2 -> v * x
    | 3 -> v lxor x
    | 4 -> v land x
    | 5 -> v lor x
    | 6 -> v lsl (x land 31)
    | 7 -> v lsr (x land 31)
    | 8 -> if v < x then 1 else 0
    | _ -> if v = x then 1 else 0
  end
  else v

let rec t3_step (code : int array) (c : t3ctx) t (regs : int array) pc =
  let op = Array.unsafe_get code pc in
  if op >= op_binop_base then begin
    let d = Array.unsafe_get code (pc + 1)
    and a = Array.unsafe_get code (pc + 2)
    and b = Array.unsafe_get code (pc + 3) in
    (match op - op_binop_base with
    | 0 ->
      Array.unsafe_set regs d (Array.unsafe_get regs a + Array.unsafe_get regs b)
    | 1 -> Array.unsafe_set regs d (Array.unsafe_get regs a + b)
    | 2 -> Array.unsafe_set regs d (a + Array.unsafe_get regs b)
    | 3 ->
      Array.unsafe_set regs d (Array.unsafe_get regs a - Array.unsafe_get regs b)
    | 4 -> Array.unsafe_set regs d (Array.unsafe_get regs a - b)
    | 5 -> Array.unsafe_set regs d (a - Array.unsafe_get regs b)
    | 6 ->
      Array.unsafe_set regs d (Array.unsafe_get regs a * Array.unsafe_get regs b)
    | 7 -> Array.unsafe_set regs d (Array.unsafe_get regs a * b)
    | 8 -> Array.unsafe_set regs d (a * Array.unsafe_get regs b)
    | 9 ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a lxor Array.unsafe_get regs b)
    | 10 -> Array.unsafe_set regs d (Array.unsafe_get regs a lxor b)
    | 11 -> Array.unsafe_set regs d (a lxor Array.unsafe_get regs b)
    | 12 ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a land Array.unsafe_get regs b)
    | 13 -> Array.unsafe_set regs d (Array.unsafe_get regs a land b)
    | 14 -> Array.unsafe_set regs d (a land Array.unsafe_get regs b)
    | 15 ->
      Array.unsafe_set regs d (Array.unsafe_get regs a lor Array.unsafe_get regs b)
    | 16 -> Array.unsafe_set regs d (Array.unsafe_get regs a lor b)
    | 17 -> Array.unsafe_set regs d (a lor Array.unsafe_get regs b)
    | 18 ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a lsl (Array.unsafe_get regs b land 31))
    | 19 -> Array.unsafe_set regs d (Array.unsafe_get regs a lsl b)
    | 20 -> Array.unsafe_set regs d (a lsl (Array.unsafe_get regs b land 31))
    | 21 ->
      Array.unsafe_set regs d
        (Array.unsafe_get regs a lsr (Array.unsafe_get regs b land 31))
    | 22 -> Array.unsafe_set regs d (Array.unsafe_get regs a lsr b)
    | 23 -> Array.unsafe_set regs d (a lsr (Array.unsafe_get regs b land 31))
    | 24 ->
      Array.unsafe_set regs d
        (if Array.unsafe_get regs a < Array.unsafe_get regs b then 1 else 0)
    | 25 -> Array.unsafe_set regs d (if Array.unsafe_get regs a < b then 1 else 0)
    | 26 -> Array.unsafe_set regs d (if a < Array.unsafe_get regs b then 1 else 0)
    | 27 ->
      Array.unsafe_set regs d
        (if Array.unsafe_get regs a = Array.unsafe_get regs b then 1 else 0)
    | 28 -> Array.unsafe_set regs d (if Array.unsafe_get regs a = b then 1 else 0)
    | _ -> Array.unsafe_set regs d (if a = Array.unsafe_get regs b then 1 else 0));
    t3_step code c t regs (pc + 4)
  end
  else if op = op_batch then begin
    let k = Array.unsafe_get code (pc + 1) in
    if t.steps + k > t.fuel_cap then begin
      (* the tier-2 slow segment replays per item and raises at exactly
         the interpreter's instruction; if it ever returned (it cannot —
         the guard implies some item exhausts the budget), resuming past
         the batch would be the correct continuation *)
      (Array.unsafe_get c.t3aux (Array.unsafe_get code (pc + 4))) t;
      t3_step code c t regs (Array.unsafe_get code (pc + 5))
    end
    else begin
      t.steps <- t.steps + k;
      t.ctrs.insts <- t.ctrs.insts + Array.unsafe_get code (pc + 2);
      t.cyc <- t.cyc + Array.unsafe_get code (pc + 3);
      t3_step code c t regs (pc + 6)
    end
  end
  else
    match op with
    | 2 (* op_cx *) ->
      (Array.unsafe_get c.t3aux (Array.unsafe_get code (pc + 1))) t;
      t3_step code c t regs (pc + 2)
    | 3 (* op_pb *) ->
      publish_regs t regs;
      (Array.unsafe_get c.t3pbs (Array.unsafe_get code (pc + 1))) t;
      t3_step code c t regs (pc + 2)
    | 4 (* op_const *) ->
      Array.unsafe_set regs (Array.unsafe_get code (pc + 1)) (Array.unsafe_get code (pc + 2));
      t3_step code c t regs (pc + 3)
    | 5 (* op_move *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (pc + 2)));
      t3_step code c t regs (pc + 3)
    | 6 (* op_loadi *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get t.mem (Array.unsafe_get code (pc + 2)));
      t3_step code c t regs (pc + 3)
    | 7 (* op_loadr *) ->
      let addr = Array.unsafe_get regs (Array.unsafe_get code (pc + 2)) in
      if addr < 0 || addr >= c.t3mem then begin
        seg_unwind t
          ~dc:(Array.unsafe_get code (pc + 3))
          ~dns:(Array.unsafe_get code (pc + 4))
          ~dni:(Array.unsafe_get code (pc + 5));
        raise (oob_load c.t3fname addr)
      end
      else begin
        Array.unsafe_set regs (Array.unsafe_get code (pc + 1)) (Array.unsafe_get t.mem addr);
        t3_step code c t regs (pc + 6)
      end
    | 8 (* op_store_ii *) ->
      Array.unsafe_set t.mem (Array.unsafe_get code (pc + 1)) (Array.unsafe_get code (pc + 2));
      t3_step code c t regs (pc + 3)
    | 9 (* op_store_ir *) ->
      Array.unsafe_set t.mem
        (Array.unsafe_get code (pc + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (pc + 2)));
      t3_step code c t regs (pc + 3)
    | 10 (* op_store_ri *) ->
      let addr = Array.unsafe_get regs (Array.unsafe_get code (pc + 1)) in
      if addr < 0 || addr >= c.t3mem then begin
        seg_unwind t
          ~dc:(Array.unsafe_get code (pc + 3))
          ~dns:(Array.unsafe_get code (pc + 4))
          ~dni:(Array.unsafe_get code (pc + 5));
        raise (oob_store c.t3fname addr)
      end
      else begin
        Array.unsafe_set t.mem addr (Array.unsafe_get code (pc + 2));
        t3_step code c t regs (pc + 6)
      end
    | 11 (* op_store_rr *) ->
      let addr = Array.unsafe_get regs (Array.unsafe_get code (pc + 1)) in
      if addr < 0 || addr >= c.t3mem then begin
        seg_unwind t
          ~dc:(Array.unsafe_get code (pc + 3))
          ~dns:(Array.unsafe_get code (pc + 4))
          ~dni:(Array.unsafe_get code (pc + 5));
        raise (oob_store c.t3fname addr)
      end
      else begin
        Array.unsafe_set t.mem addr
          (Array.unsafe_get regs (Array.unsafe_get code (pc + 2)));
        t3_step code c t regs (pc + 6)
      end
    | 12 (* op_obs_i *) ->
      (if t.cfg.record_trace then
         t.trace_rev <- Array.unsafe_get code (pc + 1) :: t.trace_rev);
      t3_step code c t regs (pc + 2)
    | 13 (* op_obs_r *) ->
      (if t.cfg.record_trace then
         t.trace_rev <-
           Array.unsafe_get regs (Array.unsafe_get code (pc + 1)) :: t.trace_rev);
      t3_step code c t regs (pc + 2)
    | 14 (* op_acc *) ->
      let d = Array.unsafe_get code (pc + 1) in
      let n = Array.unsafe_get code (pc + 2) in
      Array.unsafe_set regs d
        (acc_loop code regs (Array.unsafe_get regs d) (pc + 3) n);
      t3_step code c t regs (pc + 3 + (2 * n))
    | 15 (* op_pair *) ->
      pair_step code regs pc;
      t3_step code c t regs (pc + 9)
    | _ (* op_end *) -> ()

(* Encode a trace into a [t3ctx] + code stream and return its [bexec]:
   the dispatch loop runs the flattened body, then the (closure)
   terminator — terminators chain into [bexecs] like every tier, so
   tier-3 traces dispatch to tier-3 successors.  Returns the coverage
   split for observability. *)
let lower_chain_t3 (p : prog) ~counts (cf : cfunc) bexecs
    (chain : (int * Machine.cblock) list) : bexec * int * int =
  let fname = cf.f.fname in
  let mem_len = p.mem_len in
  let chunk_list, last_label, last_term = scan_chain chain in
  let buf = ref (Array.make 64 0) and blen = ref 0 in
  let emit v =
    (if !blen = Array.length !buf then begin
       let g = Array.make (2 * !blen) 0 in
       Array.blit !buf 0 g 0 !blen;
       buf := g
     end);
    !buf.(!blen) <- v;
    incr blen
  in
  let auxs = ref [] and naux = ref 0 in
  let add_aux (x : iexec) =
    auxs := x :: !auxs;
    let i = !naux in
    incr naux;
    i
  in
  let pbs = ref [] and npb = ref 0 in
  let add_pb (x : pbody) =
    pbs := x :: !pbs;
    let i = !npb in
    incr npb;
    i
  in
  let coded = ref 0 and total_insts = ref 0 in
  List.iter
    (function
      | `Cx i ->
        emit op_cx;
        emit (add_aux (lower_cx ~spec:false p ~counts cf i))
      | `Seg items ->
        let k = Array.length items in
        let _costs, total, ni, dcs, dnss, dnis = seg_suffixes items in
        emit op_batch;
        emit k;
        emit ni;
        emit total;
        emit (add_aux (compile_segment ~spec:false ~mem_len fname items));
        let nxt_pos = !blen in
        emit 0 (* next_pc, backpatched below *);
        let encode_one j it =
          match it with
          | SJump -> ()
          | SInst i -> (
              incr total_insts;
              let dc = dcs.(j) and dns = dnss.(j) and dni = dnis.(j) in
              let code () = incr coded in
              match i with
              | CAssign (d, (Const v | Move (Imm v))) ->
                code ();
                emit op_const;
                emit d;
                emit v
              | CAssign (d, Move (Reg s)) ->
                code ();
                emit op_move;
                emit d;
                emit s
              | CAssign (d, Binop (op, Imm x, Imm y)) ->
                code ();
                emit op_const;
                emit d;
                emit (eval_binop op x y)
              | CAssign (d, Binop (op, Reg x, Reg y)) ->
                code ();
                emit (op_binop_base + (3 * binop_index op));
                emit d;
                emit x;
                emit y
              | CAssign (d, Binop (op, Reg x, Imm y)) ->
                code ();
                let y = match op with Shl | Shr -> y land 31 | _ -> y in
                emit (op_binop_base + (3 * binop_index op) + 1);
                emit d;
                emit x;
                emit y
              | CAssign (d, Binop (op, Imm x, Reg y)) ->
                code ();
                emit (op_binop_base + (3 * binop_index op) + 2);
                emit d;
                emit x;
                emit y
              | CAssign (d, Load (Imm a)) when a >= 0 && a < mem_len ->
                code ();
                emit op_loadi;
                emit d;
                emit a
              | CAssign (d, Load (Reg ar)) ->
                code ();
                emit op_loadr;
                emit d;
                emit ar;
                emit dc;
                emit dns;
                emit dni
              | CStore (Imm a, Imm v) when a >= 0 && a < mem_len ->
                code ();
                emit op_store_ii;
                emit a;
                emit v
              | CStore (Imm a, Reg vr) when a >= 0 && a < mem_len ->
                code ();
                emit op_store_ir;
                emit a;
                emit vr
              | CStore (Reg ar, Imm v) ->
                code ();
                emit op_store_ri;
                emit ar;
                emit v;
                emit dc;
                emit dns;
                emit dni
              | CStore (Reg ar, Reg vr) ->
                code ();
                emit op_store_rr;
                emit ar;
                emit vr;
                emit dc;
                emit dns;
                emit dni
              | CObserve (Imm v) ->
                code ();
                emit op_obs_i;
                emit v
              | CObserve (Reg r) ->
                code ();
                emit op_obs_r;
                emit r
              | CAssign _ | CStore _ ->
                (* statically out-of-bounds access: keep the tier-1
                   closure (its baked unwind + raise is the semantics) *)
                emit op_pb;
                emit (add_pb (pbody_of ~mem_len fname ~dc ~dns ~dni i))
              | CCall _ | CIcall _ | CAsm_icall _ -> assert false)
        in
        (* Superinstruction selection, in priority order: collapse
           maximal left-accumulator runs into one [op_acc]; fuse any
           remaining adjacent codeable binops into [op_pair] (the shape
           SSA-style lowering produces — fresh destination per assign,
           so accumulator runs rarely form); encode the rest item by
           item.  Binops never fault, so neither superinstruction
           carries unwind deltas and accounting stays entirely in the
           batch word. *)
        let nitems = Array.length items in
        let try_pair j0 =
          j0 + 1 < nitems
          &&
          match (pair_of items.(j0), pair_of items.(j0 + 1)) with
          | ( Some (d1, k1, (sa1, oa1), (sb1, ob1)),
              Some (d2, k2, a2, b2) ) ->
            (* a second-op register operand naming [d1] reads the
               forwarded value (shape 2) instead of the frame slot *)
            let fwd (s, o) = if s = 1 && o = d1 then (2, o) else (s, o) in
            let sa2, oa2 = fwd a2 and sb2, ob2 = fwd b2 in
            total_insts := !total_insts + 2;
            coded := !coded + 2;
            emit op_pair;
            emit (sa1 lor (sb1 lsl 1) lor (sa2 lsl 2) lor (sb2 lsl 4));
            emit ((k1 * 10) + k2);
            emit d1;
            emit oa1;
            emit ob1;
            emit d2;
            emit oa2;
            emit ob2;
            true
          | _ -> false
        in
        let j = ref 0 in
        while !j < nitems do
          let pair_or_single () =
            if try_pair !j then j := !j + 2
            else begin
              encode_one !j items.(!j);
              incr j
            end
          in
          match acc_of items.(!j) with
          | Some (d, _, _) ->
            let stop = ref (!j + 1) in
            while
              !stop < nitems
              &&
              match acc_of items.(!stop) with
              | Some (d', _, _) -> d' = d
              | None -> false
            do
              incr stop
            done;
            let len = !stop - !j in
            if len >= 2 then begin
              emit op_acc;
              emit d;
              emit len;
              for jj = !j to !stop - 1 do
                match acc_of items.(jj) with
                | Some (_, k, o) ->
                  incr total_insts;
                  incr coded;
                  emit k;
                  emit o
                | None -> assert false
              done;
              j := !stop
            end
            else pair_or_single ()
          | None -> pair_or_single ()
        done;
        !buf.(nxt_pos) <- !blen)
    chunk_list;
  emit op_end;
  let code = Array.sub !buf 0 !blen in
  let ctx =
    {
      t3aux = Array.of_list (List.rev !auxs);
      t3pbs = Array.of_list (List.rev !pbs);
      t3mem = mem_len;
      t3fname = fname;
    }
  in
  let term = cterm bexecs cf last_label last_term in
  let bx : bexec =
   fun t ->
    t3_step code ctx t t.cur_regs 0;
    step_fuel t;
    term t
  in
  (bx, !coded, !total_insts)

(* Static tier-3 adoption gate.  Int-coding pays off when the dispatch
   loop can chew through long straight-line stretches; on call-dominated
   traces every complex item (call, fused seam, branch-heavy tail)
   bounces through [op_cx]'s extra closure indirection and the coding
   overhead loses to the plain tier-2 segment closures.  The predicate
   is a pure function of the superblock shape — no profile counts — so
   the tier-3/tier-2 lowering choice per trace is deterministic across
   runs and across [jobs] settings: a trace is int-coded only when it
   has at least [t3_min_insts] codeable instructions and more than
   [t3_cx_ratio] of them per complex item. *)
let t3_min_insts = 8
let t3_cx_ratio = 4

let t3_profitable (chain : (int * Machine.cblock) list) : bool =
  let chunk_list, _, _ = scan_chain chain in
  let insts = ref 0 and ncx = ref 0 in
  List.iter
    (function
      | `Cx _ -> incr ncx
      | `Seg items ->
        Array.iter (function SInst _ -> incr insts | SJump -> ()) items)
    chunk_list;
  !insts >= t3_min_insts && !insts > t3_cx_ratio * !ncx

(* Lower one function variant into its entry [fexec].  [tier] selects
   the lowering (1, 2 or 3; tier 3 is plain-only).

   Tier 1 is lazy per BLOCK: on the aggressively inlined images a
   function has hundreds of blocks and a workload touches a few percent
   of them, so eager per-function lowering (the PR5 shape) wastes most
   of its work.  Tiers 2 and 3 lower one closure (or one int-coded
   stream) per superblock trace, {e lazily per head}: every label gets a
   trampoline that lowers [trace_of] its label on first dispatch
   (double-checked under a per-variant mutex) and replaces itself in
   [bexecs] — terminators fetch [bexecs.(l)] at dispatch time, so the
   swap is picked up transparently.  Paying fused lowering (and the tail
   duplication it implies) only for the heads the workload actually
   dispatches to cuts the tier-up cost by the cold-block factor, which
   is what makes promotion profitable for short-lived engines.
   Lowering is pure and emits nothing observable (trace events are
   "sched"-category), so the execution-order dependence of the laziness
   is invisible; the triggering engine's [tier_counts] seed the
   call-seam hot-at-lowering decision, whose outcome is bit-exact either
   way.  Superblock shape ([sb_count]/[sb_blocks]) is known statically
   and recorded at link time; segment coverage accumulates in [stats] as
   traces lower. *)
let lower_fexec ~spec ~tier ?stats (p : prog) (c2f : cfunc2) : fexec =
  let cf = c2f.c2 in
  let nblocks = Array.length cf.cblocks in
  let dead : bexec = fun _ -> assert false in
  let bexecs = Array.make nblocks dead in
  (if tier >= 2 then begin
     (match stats with
     | Some st ->
       (* Static superblock shape: every label heads a trace; the
          multi-block ones are the fusion opportunities (tails shared by
          several traces are counted once per trace — they are lowered
          once per trace too). *)
       for l = 0 to nblocks - 1 do
         match trace_of cf l with
         | _ :: _ :: _ as c ->
           st.sb_count <- st.sb_count + 1;
           st.sb_blocks <- st.sb_blocks + List.length c
         | _ -> ()
       done
     | None -> ());
     let mu = Mutex.create () in
     let lowered = Array.make nblocks false in
     for l = 0 to nblocks - 1 do
       bexecs.(l) <-
         (fun t ->
           Mutex.lock mu;
           if not lowered.(l) then begin
             let chain = trace_of cf l in
             (if tier = 3 && t3_profitable chain then begin
                let bx, coded, total =
                  Trace.span ~cat:"sched" "engine:tier3"
                    ~args:[ ("fn", Trace.Str cf.f.fname) ]
                    (fun () ->
                      lower_chain_t3 p ~counts:t.tier_counts cf bexecs chain)
                in
                bexecs.(l) <- bx;
                Atomic.incr p.pstats.t3_traces;
                ignore (Atomic.fetch_and_add p.pstats.t3_coded coded);
                ignore (Atomic.fetch_and_add p.pstats.t3_insts total);
                if Trace.enabled () then
                  Trace.counter ~cat:"sched" "tier3-inst-coverage"
                    [ ("coded", Trace.Int coded); ("total", Trace.Int total) ]
              end
              else
                bexecs.(l) <-
                  lower_chain ~spec ?stats p ~counts:t.tier_counts cf bexecs
                    chain);
             lowered.(l) <- true;
             match stats with
             | Some s when Trace.enabled () ->
               Trace.counter ~cat:"sched" "segment-coverage"
                 [ ("fused", Trace.Int s.seg_fused); ("total", Trace.Int s.seg_total) ]
             | _ -> ()
           end;
           Mutex.unlock mu;
           bexecs.(l) t)
     done
   end
   else begin
     let mu = Mutex.create () in
     let lowered = Array.make nblocks false in
     for l = 0 to nblocks - 1 do
       bexecs.(l) <-
         (fun t ->
           Mutex.lock mu;
           if not lowered.(l) then begin
             bexecs.(l) <-
               lower_chain ~spec p ~counts:t.tier_counts cf bexecs
                 [ (l, cf.cblocks.(l)) ];
             lowered.(l) <- true
           end;
           Mutex.unlock mu;
           bexecs.(l) t)
     done
   end);
  let entry = cf.f.entry in
  if spec then begin
    let zs = c2f.zeroset in
    fun t ->
      enter_frame t cf;
      (* The caller never writes the callee's taint file, so every
         entry-live slot must be [None]-ed — but only those: stale taint
         on registers that are dead on entry is unobservable, by the
         same liveness argument as the value frame. *)
      let taint = raw_taint_frame t ~depth:t.cur_depth in
      for i = 0 to Array.length zs - 1 do
        Array.unsafe_set taint (Array.unsafe_get zs i) None
      done;
      publish_taint t taint;
      bexecs.(entry) t
  end
  else
    fun t ->
      enter_frame t cf;
      bexecs.(entry) t

(* --------------------- lazy linking & tiers -------------------- *)

(* All four variants (tier x speculation) are lowered lazily, per
   function, on the first call that reaches them (double-checked under
   [link_lock]): compile itself is one cheap liveness pass, and only the
   functions a workload actually executes — in the tiers its heat
   actually reaches, under the speculation settings it actually uses —
   ever pay for closure construction.  That matters for
   compile-dominated workloads: short attack drills over many images,
   and the online loop's fresh controller program every window.

   Call closures fetch their callee's [fexec_*] field at call time, so a
   linked body is picked up transparently; the only cross-function data
   baked at construction time is the callee's [zeroset], which [compile]
   computes eagerly for exactly that reason.  All [t1_*]/[t2_*] fields
   and [*_linked] flags — and, in a baseline program, the published
   [fexec_*] fields — are only written under the lock.  A racing domain
   either still sees a trampoline — and then synchronizes on the lock
   before re-reading the field — or sees the published closure; unlinked
   bodies are never reachable. *)

let link_fused_traced ~spec p c2f =
  let cf = c2f.c2 in
  let stats = { sb_count = 0; sb_blocks = 0; seg_fused = 0; seg_total = 0 } in
  let fx =
    Trace.span ~cat:"sched" "engine:tierup"
      ~args:
        [ ("fn", Trace.Str cf.f.fname); ("variant", Trace.Str (if spec then "spec" else "plain")) ]
      (fun () -> lower_fexec ~spec ~tier:2 ~stats p c2f)
  in
  (* Superblock shape is static and complete at link time; segment
     coverage samples stream from the lazy chain lowerings instead. *)
  if Trace.enabled () then
    Trace.counter ~cat:"sched" "fused-superblocks"
      [ ("superblocks", Trace.Int stats.sb_count); ("blocks", Trace.Int stats.sb_blocks) ];
  fx

let link_now p c2f ~spec ~tier =
  Mutex.lock p.link_lock;
  (match (tier, spec) with
  | 1, false ->
    if not c2f.t1_plain_linked then begin
      c2f.t1_plain <- lower_fexec ~spec:false ~tier:1 p c2f;
      c2f.t1_plain_linked <- true;
      if not p.tiered then c2f.fexec_plain <- c2f.t1_plain
    end
  | 1, true ->
    if not c2f.t1_spec_linked then begin
      c2f.t1_spec <- lower_fexec ~spec:true ~tier:1 p c2f;
      c2f.t1_spec_linked <- true;
      if not p.tiered then c2f.fexec_spec <- c2f.t1_spec
    end
  | 2, false ->
    if not c2f.t2_plain_linked then begin
      c2f.t2_plain <- link_fused_traced ~spec:false p c2f;
      c2f.t2_plain_linked <- true
    end
  | 2, true ->
    if not c2f.t2_spec_linked then begin
      c2f.t2_spec <- link_fused_traced ~spec:true p c2f;
      c2f.t2_spec_linked <- true
    end
  | 3, false ->
    if not c2f.t3_plain_linked then begin
      c2f.t3_plain <- lower_fexec ~spec:false ~tier:3 p c2f;
      c2f.t3_plain_linked <- true
    end
  | _ -> assert false (* tier 3 has no spec variant *));
  Mutex.unlock p.link_lock

(* The tiered entry dispatcher: bump this ENGINE's entry counter for the
   function and pick the tier — tier 1 until the engine's threshold is
   crossed, the fused tier after, and (plain variant only) the
   register-threaded tier past the engine's [tier3_threshold].  Decisions
   are per-engine (and so deterministic at any --jobs); each tier's body
   is linked lazily in the shared program on the first entry that
   reaches it.  The [tierup-count]/[tier3-promotions] samples mark each
   promotion; they live in the "sched" category next to the other
   lazy-compile traffic.  The spec variant caps at tier 2: drill
   configurations are short-lived, and keeping taint threading out of
   the int-coded loop is what keeps tier-3 dispatch flat. *)
let tiered_dispatch (c2f : cfunc2) ~spec : fexec =
  let id = c2f.c2.id in
  let fname = c2f.c2.f.fname in
  if spec then
    fun t ->
      let c = Array.unsafe_get t.tier_counts id + 1 in
      Array.unsafe_set t.tier_counts id c;
      if c > t.tier_threshold then begin
        if c = t.tier_threshold + 1 && Trace.enabled () then
          Trace.counter ~cat:"sched" "tierup-count"
            [ ("count", Trace.Int 1); ("fn", Trace.Str fname) ];
        c2f.t2_spec t
      end
      else c2f.t1_spec t
  else
    fun t ->
      let c = Array.unsafe_get t.tier_counts id + 1 in
      Array.unsafe_set t.tier_counts id c;
      let t3 = t.tier3_threshold in
      if t3 > 0 && c > t3 then begin
        if c = t3 + 1 && Trace.enabled () then
          Trace.counter ~cat:"sched" "tier3-promotions"
            [ ("count", Trace.Int 1); ("fn", Trace.Str fname) ];
        c2f.t3_plain t
      end
      else if c > t.tier_threshold then begin
        if c = t.tier_threshold + 1 && Trace.enabled () then
          Trace.counter ~cat:"sched" "tierup-count"
            [ ("count", Trace.Int 1); ("fn", Trace.Str fname) ];
        c2f.t2_plain t
      end
      else c2f.t1_plain t

let make_prog (cv : Machine.compiled) ~mem_len ~tiered ~callfuse : prog =
  let c2by_id =
    Array.map
      (fun cf ->
        {
          c2 = cf;
          zeroset = zeroset_of cf;
          fexec_plain = unlinked;
          fexec_spec = unlinked;
          t1_plain = unlinked;
          t1_spec = unlinked;
          t2_plain = unlinked;
          t2_spec = unlinked;
          t3_plain = unlinked;
          t1_plain_linked = false;
          t1_spec_linked = false;
          t2_plain_linked = false;
          t2_spec_linked = false;
          t3_plain_linked = false;
        })
      cv.cby_id
  in
  let pstats =
    {
      fused_seams = Atomic.make 0;
      fused_promoted = Atomic.make 0;
      t3_traces = Atomic.make 0;
      t3_coded = Atomic.make 0;
      t3_insts = Atomic.make 0;
    }
  in
  (* Fusion watches per-engine entry counters, which only exist on
     tiered engines — a baseline program never fuses ([--tierup 0]
     implies [--callfuse 0]). *)
  let callfuse = if tiered then max 0 callfuse else 0 in
  let p = { c2by_id; mem_len; link_lock = Mutex.create (); tiered; callfuse; pstats } in
  Array.iter
    (fun c2f ->
      if not (func_valid c2f.c2) then begin
        (* Out-of-range static register or label index: the unchecked
           closure bodies must never be built for this function.  Only
           hand-built IR that [Validate] rejects gets here; it fails on
           entry instead of lowering. *)
        let err : fexec =
         fun _ ->
          raise (Runtime_error ("invalid static indices in @" ^ c2f.c2.f.fname))
        in
        c2f.fexec_plain <- err;
        c2f.fexec_spec <- err;
        c2f.t1_plain <- err;
        c2f.t1_spec <- err;
        c2f.t2_plain <- err;
        c2f.t2_spec <- err;
        c2f.t3_plain <- err;
        c2f.t1_plain_linked <- true;
        c2f.t1_spec_linked <- true;
        c2f.t2_plain_linked <- true;
        c2f.t2_spec_linked <- true;
        c2f.t3_plain_linked <- true
      end
      else begin
      c2f.t1_plain <-
        (fun t ->
          link_now p c2f ~spec:false ~tier:1;
          c2f.t1_plain t);
      c2f.t1_spec <-
        (fun t ->
          link_now p c2f ~spec:true ~tier:1;
          c2f.t1_spec t);
      c2f.t2_plain <-
        (fun t ->
          link_now p c2f ~spec:false ~tier:2;
          c2f.t2_plain t);
      c2f.t2_spec <-
        (fun t ->
          link_now p c2f ~spec:true ~tier:2;
          c2f.t2_spec t);
      c2f.t3_plain <-
        (fun t ->
          link_now p c2f ~spec:false ~tier:3;
          c2f.t3_plain t);
      if tiered then begin
        c2f.fexec_plain <- tiered_dispatch c2f ~spec:false;
        c2f.fexec_spec <- tiered_dispatch c2f ~spec:true
      end
      else begin
        (* Baseline: the published field starts as the tier-1 trampoline
           and is replaced (under the lock) by the linked body, so the
           post-link call path has no dispatcher at all — exactly the
           PR5 backend, pinned by the --tierup 0 parity leg. *)
        c2f.fexec_plain <-
          (fun t ->
            link_now p c2f ~spec:false ~tier:1;
            c2f.fexec_plain t);
        c2f.fexec_spec <-
          (fun t ->
            link_now p c2f ~spec:true ~tier:1;
            c2f.fexec_spec t)
      end
      end)
    c2by_id;
  p

let compile (cv : Machine.compiled) ~mem_len : prog =
  make_prog cv ~mem_len ~tiered:false ~callfuse:0

let compile_tiered (cv : Machine.compiled) ~mem_len ~callfuse : prog =
  make_prog cv ~mem_len ~tiered:true ~callfuse

(* The backend entry installed into [Machine.t.exec_entry]: builds the
   top-level frame (argument prefix + entry-live zeroing, like any call
   site), then one speculation-variant dispatch per top-level call — the
   closure chain runs variant-pure from there (through the counting
   dispatcher in a tiered program, so top-level entries are counted
   too). *)
let entry (p : prog) : Machine.t -> cfunc -> int list -> int option =
 fun t cf args ->
  let c2 = p.c2by_id.(cf.id) in
  let regs = raw_frame t ~depth:0 in
  let params = cf.f.params in
  let rec write i = function
    | v :: rest when i < params ->
      regs.(i) <- v;
      write (i + 1) rest
    | _ -> i
  in
  let n = write 0 args in
  zero_tail c2.zeroset n regs;
  publish_regs t regs;
  t.cur_depth <- 0;
  t.cur_ret_to <- top_id;
  match t.cfg.speculation with
  | None -> c2.fexec_plain t
  | Some _ -> c2.fexec_spec t
