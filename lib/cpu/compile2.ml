(** Closure-threaded compiled execution backend.

    Lowers every {!Machine.cinst}, expression and terminator into a
    pre-specialized OCaml closure once per program, so the hot loop runs
    flat closure arrays with zero constructor matching and zero
    per-activation closure allocation: operand kinds ([Imm] vs [Reg]),
    binop selection (down to constant-folded immediate pairs), statically
    bounds-checked global loads and stores, per-instruction cycle costs,
    resolved direct-call targets, PHT keys, switch-ladder costs and
    indirect-call protection slots are all baked at closure-construction
    time.

    Straight-line runs of simple instructions (assign / store / observe)
    are additionally fused into {e segments} with batched accounting: one
    fuel check, one step/instruction/cycle bump per segment instead of
    one per instruction.  Exactness is preserved on every path — each
    potentially-faulting instruction carries baked rollback deltas that
    rewind the not-yet-earned remainder of the batch before raising, and
    a segment that could exhaust its fuel budget falls back to a
    per-instruction slow path that dies at exactly the interpreter's
    instruction — so cycles, counters and errors stay bit-exact even
    mid-segment (pinned by the out-of-fuel and wild-icall differential
    tests in [test/test_backend.ml]).

    Each block is compiled twice — a plain variant for the common
    speculation-off configuration (no taint frames, no taint reads or
    writes anywhere on the path) and a spec variant threading the taint
    file — and call closures jump straight to the matching variant of
    their callee, so the choice is made once per top-level entry, not per
    instruction.  Both variants are lowered lazily, per function, on the
    first call that reaches them (double-checked under a mutex): compile
    itself is one cheap liveness pass, and only the functions a workload
    actually executes — under the speculation settings it actually uses —
    ever pay for closure construction.

    Everything whose semantics is shared with the reference interpreter
    (indirect-branch transfer, return path, frame pools, step/fuel
    accounting) is called through {!Machine}, which is what makes the
    backend cycle-, counter- and speculation-exact against {!Interp}
    (pinned by [test/test_measure.ml] and [test/test_backend.ml]).

    Closures capture only per-program data — never an engine — so one
    compiled program is shared by every engine created on it, across
    domains, exactly like {!Machine.compiled}. *)

open Pibe_ir
open Types
open Machine

(* t regs depth ret_to -> result *)
type fexec = Machine.t -> int array -> int -> int -> int option

(* t regs taint depth ret_to -> result *)
type bexec = Machine.t -> int array -> int option array -> int -> int -> int option

(* t regs taint depth -> () *)
type iexec = Machine.t -> int array -> int option array -> int -> unit

(* Fused-segment instruction bodies: accounting is handled by the
   segment header, and simple instructions never need the activation
   depth, so plain bodies are arity-2 and spec bodies arity-3 — the
   cheapest possible indirect calls on the hot path. *)
type pbody = Machine.t -> int array -> unit
type tbody = Machine.t -> int array -> int option array -> unit

type cfunc2 = {
  c2 : cfunc;
  zeroset : int array;
      (* registers some path from entry may read before writing, sorted;
         the only slots of a pooled frame whose initial 0 / [None] is
         observable — see [zeroset_of] *)
  mutable fexec_plain : fexec;
  mutable fexec_spec : fexec;
  mutable plain_linked : bool;  (* written only under [prog.link_lock] *)
  mutable spec_linked : bool;
}

type prog = {
  c2by_id : cfunc2 array;
  mem_len : int;  (* length of every engine's global memory, for baked bounds *)
  link_lock : Mutex.t;  (* serializes per-function lazy lowering *)
}

let unlinked : fexec = fun _ _ _ _ -> assert false

(* Shared empty taint file threaded through the plain variant; never read
   or written there. *)
let no_taint : int option array = [||]

(* --------------------- entry-live zero sets -------------------- *)

(* Register frames come from a per-depth pool, so a fresh activation
   sees whatever its predecessor left.  The interpreter zeroes the whole
   file ([frame]) and [None]s the whole taint file; but the only slots
   whose initial value is observable are those some path from the entry
   block may READ before writing — everything else is dead on entry and
   its stale contents can never flow into cycles, memory, traces or
   taint.  [zeroset_of] computes that set once per function at compile
   time (a standard backward may-liveness fixpoint over the compiled
   blocks, bit-packed 32 registers per word), and the call paths zero
   exactly it.  The big straight-line kernel functions have register
   files two orders of magnitude larger than their entry-live set, which
   makes this the difference between ~800 stores and ~4 per activation
   of the hottest callees. *)
let zeroset_of (cf : cfunc) : int array =
  let module RS = Set.Make (Int) in
  let blocks = cf.cblocks in
  let nblocks = Array.length blocks in
  (* Per-block summaries, one pass over each instruction total: [gen] is
     the registers read before any in-block write (sparse — live sets
     stay tiny even in functions with huge register files, which is what
     keeps this affordable on aggressively inlined images), [def] the
     registers the block writes. *)
  let gens = Array.make nblocks RS.empty in
  let defs = Array.make nblocks (Hashtbl.create 0) in
  for l = 0 to nblocks - 1 do
    let b = blocks.(l) in
    let def : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let gen = ref RS.empty in
    let use r = if not (Hashtbl.mem def r) then gen := RS.add r !gen in
    let use_op = function Imm _ -> () | Reg r -> use r in
    let use_expr = function
      | Const _ -> ()
      | Move o | Load o -> use_op o
      | Binop (_, a, b) ->
        use_op a;
        use_op b
    in
    let write r = Hashtbl.replace def r () in
    Array.iter
      (fun i ->
        match i with
        | CAssign (d, e) ->
          use_expr e;
          write d
        | CStore (a, v) ->
          use_op a;
          use_op v
        | CObserve v -> use_op v
        | CCall { dst; args; _ } ->
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CIcall { dst; fptr; args; _ } ->
          use_op fptr;
          Array.iter use_op args;
          (match dst with Some d -> write d | None -> ())
        | CAsm_icall { fptr; _ } -> use_op fptr)
      b.cinsts;
    (match b.cterm with
    | Jmp _ | Ret None -> ()
    | Br (c, _, _) -> use_op c
    | Switch { scrutinee; _ } -> use_op scrutinee
    | Ret (Some v) -> use_op v);
    gens.(l) <- !gen;
    defs.(l) <- def
  done;
  (* Worklist fixpoint over the block summaries:
     live_in = gen ∪ (live_out − def).  A block is revisited only when
     the live-in of a successor changed. *)
  let live_in = Array.make nblocks RS.empty in
  let live_out = Array.make nblocks RS.empty in
  let preds = Array.make nblocks [] in
  for l = 0 to nblocks - 1 do
    List.iter
      (fun s -> preds.(s) <- l :: preds.(s))
      (Func.successors blocks.(l).cterm)
  done;
  let queued = Array.make nblocks true in
  let work = ref [] in
  for l = 0 to nblocks - 1 do
    work := l :: !work
  done;
  let continue = ref true in
  while !continue do
    match !work with
    | [] -> continue := false
    | l :: rest ->
      work := rest;
      queued.(l) <- false;
      let out =
        List.fold_left
          (fun acc s -> RS.union acc live_in.(s))
          RS.empty
          (Func.successors blocks.(l).cterm)
      in
      live_out.(l) <- out;
      let def = defs.(l) in
      let inn =
        RS.union gens.(l) (RS.filter (fun r -> not (Hashtbl.mem def r)) out)
      in
      if not (RS.equal inn live_in.(l)) then begin
        live_in.(l) <- inn;
        List.iter
          (fun p ->
            if not queued.(p) then begin
              queued.(p) <- true;
              work := p :: !work
            end)
          preds.(l)
      end
  done;
  Array.of_list (RS.elements live_in.(cf.f.entry))

(* Zero the zeroset slots at index >= [n] (the written argument prefix)
   of a pooled frame. *)
let[@inline] zero_tail (zs : int array) n (fr : int array) =
  for i = 0 to Array.length zs - 1 do
    let r = Array.unsafe_get zs i in
    if r >= n then Array.unsafe_set fr r 0
  done

(* ------------------------- operands ---------------------------- *)

let cop : operand -> int array -> int = function
  | Imm i -> fun _ -> i
  | Reg r -> fun regs -> regs.(r)

(* ---------------------- fused segments ------------------------- *)

(* A segment batches the accounting of [k] simple instructions: the
   header bumps steps/insts by [k] and cycles by the segment's static
   cost sum, then runs the bodies.  When a body must raise mid-segment
   (an out-of-bounds load or store), it first rewinds the not-yet-earned
   remainder — [dc] cycles and [dn] steps/instructions, both baked at
   compile time — so the observable state at the raise point is exactly
   the interpreter's. *)
let[@inline] seg_unwind t ~dc ~dn =
  t.cyc <- t.cyc - dc;
  t.steps <- t.steps - dn;
  t.ctrs.insts <- t.ctrs.insts - dn

let oob_load fname addr =
  Runtime_error (Printf.sprintf "load out of bounds: %d in %s" addr fname)

let oob_store fname addr =
  Runtime_error (Printf.sprintf "store out of bounds: %d in %s" addr fname)

let inst_cost = function
  | CAssign (_, e) -> (
    match e with
    | Load _ -> Cost.load
    | Binop _ -> Cost.binop
    | Const _ -> Cost.assign
    | Move _ -> Cost.move)
  | CStore _ -> Cost.store
  | CObserve _ -> Cost.observe
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

(* Assign of a binop, fully specialized on the operator and both operand
   kinds: the closure body is the register reads and the arithmetic,
   nothing else.  Immediate pairs constant-fold at compile time. *)
let pbinop r op a b : pbody =
  match (a, b) with
  | Reg x, Reg y -> (
    match op with
    | Add -> fun _ regs -> regs.(r) <- regs.(x) + regs.(y)
    | Sub -> fun _ regs -> regs.(r) <- regs.(x) - regs.(y)
    | Mul -> fun _ regs -> regs.(r) <- regs.(x) * regs.(y)
    | Xor -> fun _ regs -> regs.(r) <- regs.(x) lxor regs.(y)
    | And -> fun _ regs -> regs.(r) <- regs.(x) land regs.(y)
    | Or -> fun _ regs -> regs.(r) <- regs.(x) lor regs.(y)
    | Shl -> fun _ regs -> regs.(r) <- regs.(x) lsl (regs.(y) land 31)
    | Shr -> fun _ regs -> regs.(r) <- regs.(x) lsr (regs.(y) land 31)
    | Lt -> fun _ regs -> regs.(r) <- (if regs.(x) < regs.(y) then 1 else 0)
    | Eq -> fun _ regs -> regs.(r) <- (if regs.(x) = regs.(y) then 1 else 0))
  | Reg x, Imm y -> (
    match op with
    | Add -> fun _ regs -> regs.(r) <- regs.(x) + y
    | Sub -> fun _ regs -> regs.(r) <- regs.(x) - y
    | Mul -> fun _ regs -> regs.(r) <- regs.(x) * y
    | Xor -> fun _ regs -> regs.(r) <- regs.(x) lxor y
    | And -> fun _ regs -> regs.(r) <- regs.(x) land y
    | Or -> fun _ regs -> regs.(r) <- regs.(x) lor y
    | Shl ->
      let s = y land 31 in
      fun _ regs -> regs.(r) <- regs.(x) lsl s
    | Shr ->
      let s = y land 31 in
      fun _ regs -> regs.(r) <- regs.(x) lsr s
    | Lt -> fun _ regs -> regs.(r) <- (if regs.(x) < y then 1 else 0)
    | Eq -> fun _ regs -> regs.(r) <- (if regs.(x) = y then 1 else 0))
  | Imm x, Reg y -> (
    match op with
    | Add -> fun _ regs -> regs.(r) <- x + regs.(y)
    | Sub -> fun _ regs -> regs.(r) <- x - regs.(y)
    | Mul -> fun _ regs -> regs.(r) <- x * regs.(y)
    | Xor -> fun _ regs -> regs.(r) <- x lxor regs.(y)
    | And -> fun _ regs -> regs.(r) <- x land regs.(y)
    | Or -> fun _ regs -> regs.(r) <- x lor regs.(y)
    | Shl -> fun _ regs -> regs.(r) <- x lsl (regs.(y) land 31)
    | Shr -> fun _ regs -> regs.(r) <- x lsr (regs.(y) land 31)
    | Lt -> fun _ regs -> regs.(r) <- (if x < regs.(y) then 1 else 0)
    | Eq -> fun _ regs -> regs.(r) <- (if x = regs.(y) then 1 else 0))
  | Imm x, Imm y ->
    let v = eval_binop op x y in
    fun _ regs -> regs.(r) <- v

let passign ~mem_len fname ~dc ~dn r e : pbody =
  match e with
  | Const i | Move (Imm i) -> fun _ regs -> regs.(r) <- i
  | Move (Reg s) -> fun _ regs -> regs.(r) <- regs.(s)
  | Binop (op, a, b) -> pbinop r op a b
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then fun t regs -> regs.(r) <- t.mem.(i)
    else
      fun t _ ->
        seg_unwind t ~dc ~dn;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t regs ->
      let addr = regs.(ar) in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dn;
        raise (oob_load fname addr)
      end
      else regs.(r) <- t.mem.(addr)

(* Spec-variant assign: the taint write happens before the value write —
   and, as in the interpreter, before a faulting load raises. *)
let tassign ~mem_len fname ~dc ~dn r e : tbody =
  match e with
  | Const i | Move (Imm i) ->
    fun _ regs taint ->
      taint.(r) <- None;
      regs.(r) <- i
  | Move (Reg s) ->
    fun _ regs taint ->
      taint.(r) <- taint.(s);
      regs.(r) <- regs.(s)
  | Binop (op, a, b) ->
    let body = pbinop r op a b in
    fun t regs taint ->
      taint.(r) <- None;
      body t regs
  | Load (Imm i) ->
    if i >= 0 && i < mem_len then
      fun t regs taint ->
        (taint.(r) <-
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        regs.(r) <- t.mem.(i)
    else
      fun t _ taint ->
        (taint.(r) <-
           (match t.cfg.speculation with
           | None -> None
           | Some s -> Speculation.injected_load s ~addr:i));
        seg_unwind t ~dc ~dn;
        raise (oob_load fname i)
  | Load (Reg ar) ->
    fun t regs taint ->
      let addr = regs.(ar) in
      (taint.(r) <-
         (match t.cfg.speculation with
         | None -> None
         | Some s -> Speculation.injected_load s ~addr));
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dn;
        raise (oob_load fname addr)
      end
      else regs.(r) <- t.mem.(addr)

let pstore ~mem_len fname ~dc ~dn a v : pbody =
  match (a, v) with
  | Imm i, Imm vv ->
    if i >= 0 && i < mem_len then fun t _ -> t.mem.(i) <- vv
    else
      fun t _ ->
        seg_unwind t ~dc ~dn;
        raise (oob_store fname i)
  | Imm i, Reg vr ->
    if i >= 0 && i < mem_len then fun t regs -> t.mem.(i) <- regs.(vr)
    else
      fun t _ ->
        seg_unwind t ~dc ~dn;
        raise (oob_store fname i)
  | Reg ar, Imm vv ->
    fun t regs ->
      let addr = regs.(ar) in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dn;
        raise (oob_store fname addr)
      end
      else t.mem.(addr) <- vv
  | Reg ar, Reg vr ->
    fun t regs ->
      let addr = regs.(ar) in
      if addr < 0 || addr >= mem_len then begin
        seg_unwind t ~dc ~dn;
        raise (oob_store fname addr)
      end
      else t.mem.(addr) <- regs.(vr)

let pobserve v : pbody =
  match v with
  | Imm i -> fun t _ -> if t.cfg.record_trace then t.trace_rev <- i :: t.trace_rev
  | Reg r ->
    fun t regs -> if t.cfg.record_trace then t.trace_rev <- regs.(r) :: t.trace_rev

let pbody_of ~mem_len fname ~dc ~dn (i : Machine.cinst) : pbody =
  match i with
  | CAssign (r, e) -> passign ~mem_len fname ~dc ~dn r e
  | CStore (a, v) -> pstore ~mem_len fname ~dc ~dn a v
  | CObserve v -> pobserve v
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

let tbody_of ~mem_len fname ~dc ~dn (i : Machine.cinst) : tbody =
  match i with
  | CAssign (r, e) -> tassign ~mem_len fname ~dc ~dn r e
  | CStore (a, v) ->
    let body = pstore ~mem_len fname ~dc ~dn a v in
    fun t regs _taint -> body t regs
  | CObserve v ->
    let body = pobserve v in
    fun t regs _taint -> body t regs
  | CCall _ | CIcall _ | CAsm_icall _ -> assert false

(* Compile a maximal run of simple instructions into one fused closure.
   The fuel guard [steps + k > fuel] holds exactly when per-instruction
   bumping would raise somewhere inside the segment, in which case the
   slow path replays the segment with the interpreter's per-instruction
   accounting and dies (or faults) at precisely the right instruction —
   it is always exact, only slower, so the guard can be conservative. *)
let compile_segment ~spec ~mem_len fname (insts : Machine.cinst array) : iexec =
  let k = Array.length insts in
  let costs = Array.map inst_cost insts in
  let total = Array.fold_left ( + ) 0 costs in
  let prefix = ref 0 in
  let deltas =
    Array.map
      (fun c ->
        prefix := !prefix + c;
        total - !prefix)
      costs
  in
  if spec then begin
    let slow =
      Array.mapi
        (fun j i ->
          let body = tbody_of ~mem_len fname ~dc:0 ~dn:0 i and c = costs.(j) in
          fun t regs taint ->
            bump_inst t;
            charge t c;
            body t regs taint)
        insts
    in
    if k = 1 then
      let s0 = slow.(0) in
      fun t regs taint _depth -> s0 t regs taint
    else
      let bodies =
        Array.mapi
          (fun j i -> tbody_of ~mem_len fname ~dc:deltas.(j) ~dn:(k - (j + 1)) i)
          insts
      in
      fun t regs taint _depth ->
        if t.steps + k > t.cfg.fuel then
          for j = 0 to k - 1 do
            slow.(j) t regs taint
          done
        else begin
          t.steps <- t.steps + k;
          t.ctrs.insts <- t.ctrs.insts + k;
          t.cyc <- t.cyc + total;
          for j = 0 to k - 1 do
            bodies.(j) t regs taint
          done
        end
  end
  else begin
    let slow =
      Array.mapi
        (fun j i ->
          let body = pbody_of ~mem_len fname ~dc:0 ~dn:0 i and c = costs.(j) in
          fun t regs ->
            bump_inst t;
            charge t c;
            body t regs)
        insts
    in
    if k = 1 then
      let s0 = slow.(0) in
      fun t regs _taint _depth -> s0 t regs
    else
      let bodies =
        Array.mapi
          (fun j i -> pbody_of ~mem_len fname ~dc:deltas.(j) ~dn:(k - (j + 1)) i)
          insts
      in
      fun t regs _taint _depth ->
        if t.steps + k > t.cfg.fuel then
          for j = 0 to k - 1 do
            slow.(j) t regs
          done
        else begin
          t.steps <- t.steps + k;
          t.ctrs.insts <- t.ctrs.insts + k;
          t.cyc <- t.cyc + total;
          for j = 0 to k - 1 do
            bodies.(j) t regs
          done
        end
  end

(* --------------------------- calls ----------------------------- *)

(* Result write-back and (spec variant) destination-taint clear, baked on
   the destination register. *)
let cstore_result ~spec dst : int array -> int option array -> int option -> unit =
  match (dst, spec) with
  | None, _ -> fun _ _ _ -> ()
  | Some r, false ->
    fun regs _ result ->
      (match result with
      | Some v -> regs.(r) <- v
      | None -> regs.(r) <- 0)
  | Some r, true ->
    fun regs taint result ->
      (match result with
      | Some v -> regs.(r) <- v
      | None -> regs.(r) <- 0);
      taint.(r) <- None

let ccall ~spec c2by_id (caller : cfunc) ~dst ~callee_name ~callee_id
    ~(args : operand array) ~site : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  if callee_id < 0 then
    (* Unknown callee: counters, cycles and the edge event still happen
       before the failure, exactly like the interpreter's [lookup]. *)
    fun t _regs _taint _depth ->
      bump_inst t;
      t.ctrs.calls <- t.ctrs.calls + 1;
      charge t (Cost.direct_call + t.cfg.extra_call_cycles);
      emit_edge t site caller_name callee_name Edge_direct;
      raise (Runtime_error ("call to unknown function @" ^ callee_name))
  else begin
    let callee2 = c2by_id.(callee_id) in
    let callee_cf = callee2.c2 in
    let argv = Array.map cop args in
    let n = min callee_cf.f.params (Array.length argv) in
    (* The static argument count lets the entry-live zeroing be filtered
       at compile time: only zeroset slots past the written prefix. *)
    let zs_tail =
      Array.of_list (List.filter (fun r -> r >= n) (Array.to_list callee2.zeroset))
    in
    let store = cstore_result ~spec dst in
    if spec then
      fun t regs taint depth ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        (* Write the argument prefix, zero only the entry-live tail: the
           prefix is about to be overwritten anyway, and registers dead
           on entry never surface their stale contents. *)
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        for i = 0 to n - 1 do
          Array.unsafe_set callee_regs i (argv.(i) regs)
        done;
        zero_tail zs_tail 0 callee_regs;
        store regs taint (callee2.fexec_spec t callee_regs (depth + 1) caller_id)
    else
      fun t regs taint depth ->
        bump_inst t;
        t.ctrs.calls <- t.ctrs.calls + 1;
        charge t (Cost.direct_call + t.cfg.extra_call_cycles);
        emit_edge t site caller_name callee_name Edge_direct;
        enter_code t callee_cf;
        Rsb.push t.trsb caller_id;
        let callee_regs = raw_frame t ~depth:(depth + 1) in
        for i = 0 to n - 1 do
          Array.unsafe_set callee_regs i (argv.(i) regs)
        done;
        zero_tail zs_tail 0 callee_regs;
        store regs taint (callee2.fexec_plain t callee_regs (depth + 1) caller_id)
  end

let cicall ~spec ~asm c2by_id (caller : cfunc) ~dst ~fptr ~(args : operand array) ~site
    ~slot : iexec =
  let caller_id = caller.id and caller_name = caller.f.fname in
  let ofp = cop fptr in
  let argv = Array.map cop args in
  let nargs = Array.length argv in
  let kind = if asm then Edge_asm else Edge_indirect in
  let ftaint : int option array -> int option =
    if spec && not asm then
      match fptr with
      | Reg r -> fun taint -> taint.(r)
      | Imm _ -> fun _ -> None
    else fun _ -> None
  in
  let store = cstore_result ~spec dst in
  fun t regs taint depth ->
    bump_inst t;
    t.ctrs.icalls <- t.ctrs.icalls + 1;
    charge t t.cfg.extra_icall_cycles;
    let v = ofp regs in
    let target_id = icall_resolve t v in
    let target_name = t.fptr_table.(v) in
    let fptr_taint = ftaint taint in
    (match t.cfg.fwd_override with
    | Some hook when not asm -> charge t (hook ~site ~target:target_name)
    | Some _ | None ->
      let protection = if asm then Protection.F_none else t.fwd_prots.(slot) in
      indirect_transfer t ~site ~target:target_id ~fptr_taint ~protection);
    emit_edge t site caller_name target_name kind;
    let callee2 = c2by_id.(target_id) in
    let callee_cf = callee2.c2 in
    enter_code t callee_cf;
    Rsb.push t.trsb caller_id;
    let callee_regs = raw_frame t ~depth:(depth + 1) in
    (* integer min by hand: the polymorphic version costs a C call per
       indirect transfer *)
    let n = if callee_cf.f.params < nargs then callee_cf.f.params else nargs in
    for i = 0 to n - 1 do
      Array.unsafe_set callee_regs i (argv.(i) regs)
    done;
    zero_tail callee2.zeroset n callee_regs;
    store regs taint
      ((if spec then callee2.fexec_spec t callee_regs (depth + 1) caller_id
        else callee2.fexec_plain t callee_regs (depth + 1) caller_id))

let ccomplex ~spec c2by_id (caller : cfunc) (i : Machine.cinst) : iexec =
  match i with
  | CCall { dst; callee; callee_id; args; site } ->
    ccall ~spec c2by_id caller ~dst ~callee_name:callee ~callee_id ~args ~site
  | CIcall { dst; fptr; args; site; slot } ->
    cicall ~spec ~asm:false c2by_id caller ~dst ~fptr ~args ~site ~slot
  | CAsm_icall { fptr; site } ->
    cicall ~spec ~asm:true c2by_id caller ~dst:None ~fptr ~args:[||] ~site ~slot:(-1)
  | CAssign _ | CStore _ | CObserve _ -> assert false

(* ------------------------ terminators -------------------------- *)

let[@inline] br_follow t ~key ~taken =
  charge t Cost.br;
  if Pht.predict t.tpht ~key <> taken then begin
    t.ctrs.pht_misses <- t.ctrs.pht_misses + 1;
    charge t Cost.br_mispredict_penalty
  end;
  Pht.train t.tpht ~key ~taken

let cterm (bexecs : bexec array) (cf : cfunc) label (term : terminator) : bexec =
  match term with
  | Jmp l ->
    fun t regs taint depth ret_to ->
      charge t Cost.jmp;
      bexecs.(l) t regs taint depth ret_to
  | Br (Reg cr, l1, l2) ->
    let key = cf.key_base + label in
    fun t regs taint depth ret_to ->
      let taken = regs.(cr) <> 0 in
      br_follow t ~key ~taken;
      if taken then bexecs.(l1) t regs taint depth ret_to
      else bexecs.(l2) t regs taint depth ret_to
  | Br (Imm i, l1, l2) ->
    let key = cf.key_base + label in
    let taken = i <> 0 in
    let l = if taken then l1 else l2 in
    fun t regs taint depth ret_to ->
      br_follow t ~key ~taken;
      bexecs.(l) t regs taint depth ret_to
  | Switch { scrutinee; cases; default; lowering } ->
    let ov = cop scrutinee in
    let ncases = Array.length cases in
    let cost =
      match lowering with
      | Jump_table -> Cost.switch_jump_table
      | Branch_ladder -> ladder_cost ncases
    in
    fun t regs taint depth ret_to ->
      let v = ov regs in
      let rec find i =
        if i >= ncases then default
        else
          let case_v, l = cases.(i) in
          if case_v = v then l else find (i + 1)
      in
      let target = find 0 in
      charge t cost;
      bexecs.(target) t regs taint depth ret_to
  | Ret None ->
    fun t _regs _taint _depth ret_to ->
      do_ret t cf ~ret_to;
      None
  | Ret (Some (Imm i)) ->
    fun t _regs _taint _depth ret_to ->
      let v = Some i in
      do_ret t cf ~ret_to;
      v
  | Ret (Some (Reg r)) ->
    fun t regs _taint _depth ret_to ->
      let v = Some regs.(r) in
      do_ret t cf ~ret_to;
      v

(* ------------------------- functions --------------------------- *)

let cblock ~spec c2by_id ~mem_len bexecs (cf : cfunc) label (b : Machine.cblock) : bexec
    =
  let fname = cf.f.fname in
  (* Partition the block into maximal simple-instruction segments and
     individual call instructions. *)
  let rev_chunks = ref [] and pending = ref [] in
  let flush () =
    match !pending with
    | [] -> ()
    | l ->
      rev_chunks := `Seg (Array.of_list (List.rev l)) :: !rev_chunks;
      pending := []
  in
  Array.iter
    (fun i ->
      match i with
      | CAssign _ | CStore _ | CObserve _ -> pending := i :: !pending
      | CCall _ | CIcall _ | CAsm_icall _ ->
        flush ();
        rev_chunks := `Cx i :: !rev_chunks)
    b.cinsts;
  flush ();
  let chunks =
    Array.of_list
      (List.rev_map
         (function
           | `Seg insts -> compile_segment ~spec ~mem_len fname insts
           | `Cx i -> ccomplex ~spec c2by_id cf i)
         !rev_chunks)
  in
  let term = cterm bexecs cf label b.cterm in
  match Array.length chunks with
  | 0 ->
    fun t regs taint depth ret_to ->
      step_fuel t;
      term t regs taint depth ret_to
  | 1 ->
    let c0 = chunks.(0) in
    fun t regs taint depth ret_to ->
      c0 t regs taint depth;
      step_fuel t;
      term t regs taint depth ret_to
  | n ->
    fun t regs taint depth ret_to ->
      for i = 0 to n - 1 do
        chunks.(i) t regs taint depth
      done;
      step_fuel t;
      term t regs taint depth ret_to

let link_plain c2by_id ~mem_len (c2f : cfunc2) =
  let cf = c2f.c2 in
  let nblocks = Array.length cf.cblocks in
  let dead : bexec = fun _ _ _ _ _ -> assert false in
  let bplain = Array.make nblocks dead in
  for l = 0 to nblocks - 1 do
    bplain.(l) <- cblock ~spec:false c2by_id ~mem_len bplain cf l cf.cblocks.(l)
  done;
  let entry = cf.f.entry in
  c2f.fexec_plain <-
    (fun t regs depth ret_to ->
      enter_frame t cf;
      bplain.(entry) t regs no_taint depth ret_to)

let link_spec c2by_id ~mem_len (c2f : cfunc2) =
  let cf = c2f.c2 in
  let nblocks = Array.length cf.cblocks in
  let dead : bexec = fun _ _ _ _ _ -> assert false in
  let bspec = Array.make nblocks dead in
  for l = 0 to nblocks - 1 do
    bspec.(l) <- cblock ~spec:true c2by_id ~mem_len bspec cf l cf.cblocks.(l)
  done;
  let entry = cf.f.entry in
  let zs = c2f.zeroset in
  c2f.fexec_spec <-
    (fun t regs depth ret_to ->
      enter_frame t cf;
      (* The caller never writes the callee's taint file, so every
         entry-live slot must be [None]-ed — but only those: stale taint
         on registers that are dead on entry is unobservable, by the
         same liveness argument as the value frame. *)
      let taint = raw_taint_frame t ~depth in
      for i = 0 to Array.length zs - 1 do
        Array.unsafe_set taint (Array.unsafe_get zs i) None
      done;
      bspec.(entry) t regs taint depth ret_to)

(* Both variants are lowered lazily, per function, on first call: a
   compiled program starts as an array of trampolines, and only the
   functions a workload actually reaches ever pay for closure
   construction (the spec variant additionally only under a speculative
   config).  That keeps [compile] itself a cheap linear pass — one
   zeroset per function — which matters for compile-dominated workloads:
   short attack drills over many images, and the online loop's fresh
   controller program every window.

   Call closures fetch their callee's [fexec_*] field at call time, so a
   linked body is picked up transparently; the only cross-function data
   baked at construction time is the callee's [zeroset], which [compile]
   computes eagerly for exactly that reason.  Linking runs under
   [link_lock] (double-checked via the [*_linked] flags, which are only
   written under the lock).  A racing domain either still sees the
   trampoline — and then synchronizes on the lock before re-reading the
   field — or sees the published closure; unlinked bodies are never
   reachable. *)
let link_now p c2f ~spec =
  Mutex.lock p.link_lock;
  (if spec then begin
     if not c2f.spec_linked then begin
       link_spec p.c2by_id ~mem_len:p.mem_len c2f;
       c2f.spec_linked <- true
     end
   end
   else if not c2f.plain_linked then begin
     link_plain p.c2by_id ~mem_len:p.mem_len c2f;
     c2f.plain_linked <- true
   end);
  Mutex.unlock p.link_lock

let compile (cv : Machine.compiled) ~mem_len : prog =
  let c2by_id =
    Array.map
      (fun cf ->
        {
          c2 = cf;
          zeroset = zeroset_of cf;
          fexec_plain = unlinked;
          fexec_spec = unlinked;
          plain_linked = false;
          spec_linked = false;
        })
      cv.cby_id
  in
  let p = { c2by_id; mem_len; link_lock = Mutex.create () } in
  Array.iter
    (fun c2f ->
      c2f.fexec_plain <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:false;
          c2f.fexec_plain t regs depth ret_to);
      c2f.fexec_spec <-
        (fun t regs depth ret_to ->
          link_now p c2f ~spec:true;
          c2f.fexec_spec t regs depth ret_to))
    c2by_id;
  p

(* The backend entry installed into [Machine.t.exec_entry]: builds the
   top-level frame (argument prefix + entry-live zeroing, like any call
   site), then one speculation-variant dispatch per top-level call — the
   closure chain runs variant-pure from there. *)
let entry (p : prog) : Machine.t -> cfunc -> int list -> int option =
 fun t cf args ->
  let c2 = p.c2by_id.(cf.id) in
  let regs = raw_frame t ~depth:0 in
  let params = cf.f.params in
  let rec write i = function
    | v :: rest when i < params ->
      regs.(i) <- v;
      write (i + 1) rest
    | _ -> i
  in
  let n = write 0 args in
  zero_tail c2.zeroset n regs;
  match t.cfg.speculation with
  | None -> c2.fexec_plain t regs 0 top_id
  | Some _ -> c2.fexec_spec t regs 0 top_id
