(* Int-keyed LRU over interned function ids.  The recency order is an
   intrusive doubly-linked list threaded through id-indexed arrays, so a
   touch is O(1) with no hashing and an eviction pops the list tail —
   exactly the least-recently-stamped victim the seed's scan picked. *)

type t = {
  capacity : int;
  mutable sizes : int array;  (* id -> resident footprint; -1 = absent *)
  mutable prev : int array;  (* toward the MRU end *)
  mutable next : int array;  (* toward the LRU end *)
  mutable head : int;  (* most recently used, -1 when empty *)
  mutable tail : int;  (* least recently used, -1 when empty *)
  mutable used : int;
  mutable misses : int;
  mutable hits : int;
}

let initial_ids = 256

let create ~capacity_bytes =
  {
    capacity = capacity_bytes;
    sizes = Array.make initial_ids (-1);
    prev = Array.make initial_ids (-1);
    next = Array.make initial_ids (-1);
    head = -1;
    tail = -1;
    used = 0;
    misses = 0;
    hits = 0;
  }

let ensure t id =
  let n = Array.length t.sizes in
  if id >= n then begin
    let n' = max (2 * n) (id + 1) in
    let grow a =
      let a' = Array.make n' (-1) in
      Array.blit a 0 a' 0 n;
      a'
    in
    t.sizes <- grow t.sizes;
    t.prev <- grow t.prev;
    t.next <- grow t.next
  end

let unlink t id =
  let p = t.prev.(id) and n = t.next.(id) in
  if p = -1 then t.head <- n else t.next.(p) <- n;
  if n = -1 then t.tail <- p else t.prev.(n) <- p;
  t.prev.(id) <- -1;
  t.next.(id) <- -1

let push_front t id =
  t.prev.(id) <- -1;
  t.next.(id) <- t.head;
  if t.head <> -1 then t.prev.(t.head) <- id;
  t.head <- id;
  if t.tail = -1 then t.tail <- id

let evict_lru t =
  let victim = t.tail in
  if victim <> -1 then begin
    t.used <- t.used - t.sizes.(victim);
    t.sizes.(victim) <- -1;
    unlink t victim
  end

let touch t ~id ~size =
  if t.capacity <= 0 then 0
  else begin
    ensure t id;
    if t.sizes.(id) >= 0 then begin
      t.hits <- t.hits + 1;
      if t.head <> id then begin
        unlink t id;
        push_front t id
      end;
      0
    end
    else begin
      t.misses <- t.misses + 1;
      (* One invocation touches the lines on its own path, not the whole
         body: a large (inlined) function occupies at most 8 KiB of the
         cache, and the demand-fetched head that stalls the front-end is
         at most 1 KiB. *)
      let footprint = min (min size 8192) t.capacity in
      while t.used + footprint > t.capacity && t.tail <> -1 do
        evict_lru t
      done;
      t.sizes.(id) <- footprint;
      push_front t id;
      t.used <- t.used + footprint;
      let fetched = min footprint 1024 in
      Cost.icache_miss_base + (fetched / Cost.icache_line_bytes * Cost.icache_miss_per_line)
    end
  end

let resident t id = id >= 0 && id < Array.length t.sizes && t.sizes.(id) >= 0

let flush t =
  Array.fill t.sizes 0 (Array.length t.sizes) (-1);
  Array.fill t.prev 0 (Array.length t.prev) (-1);
  Array.fill t.next 0 (Array.length t.next) (-1);
  t.head <- -1;
  t.tail <- -1;
  t.used <- 0

let miss_count t = t.misses
let hit_count t = t.hits
