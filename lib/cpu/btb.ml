type t = {
  mask : int;
  targets : int array;  (* interned function id; no_target = cold slot *)
}

let no_target = -1

let create ?(entries = 1024) () =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Btb.create: entries must be a positive power of two";
  { mask = entries - 1; targets = Array.make entries no_target }

(* No tag: every site aliasing to the slot shares the prediction, which is
   exactly the sharing Spectre V2 abuses. *)
let predict t ~site = t.targets.(site land t.mask)

let train t ~site ~target =
  if target < 0 then invalid_arg "Btb.train: target must be a non-negative id";
  t.targets.(site land t.mask) <- target

let flush t = Array.fill t.targets 0 (Array.length t.targets) no_target
let aliases t a b = a land t.mask = b land t.mask
