type mechanism =
  | Spectre_v2
  | Ret2spec
  | Lvi

type event = {
  mechanism : mechanism;
  site_id : int;
  gadget : string;
}

type rsb_scenario =
  | User_pollution
  | Cross_thread
  | Forged_pac

type t = {
  lvi_loads : (int, int) Hashtbl.t;
  mutable rsb_desync : (rsb_scenario * string) option;
  mutable rev_events : event list;
}

let create () = { lvi_loads = Hashtbl.create 16; rsb_desync = None; rev_events = [] }

let inject_rsb t ~scenario ~gadget = t.rsb_desync <- Some (scenario, gadget)

let take_rsb_desync t =
  match t.rsb_desync with
  | None -> None
  | Some _ as pending ->
    t.rsb_desync <- None;
    pending

let clear_user_rsb_desync t =
  match t.rsb_desync with
  | Some (User_pollution, _) -> t.rsb_desync <- None
  | Some ((Cross_thread | Forged_pac), _) | None -> ()
let inject_load t ~addr ~value = Hashtbl.replace t.lvi_loads addr value
let injected_load t ~addr = Hashtbl.find_opt t.lvi_loads addr
let record t e = t.rev_events <- e :: t.rev_events
let events t = List.rev t.rev_events
let clear_events t = t.rev_events <- []

let mechanism_name = function
  | Spectre_v2 -> "spectre-v2"
  | Ret2spec -> "ret2spec"
  | Lvi -> "lvi"
