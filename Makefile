.PHONY: all build test check docs bench bench-smoke bench-smoke-fleet bench-smoke-frontier bench-smoke-stale parity clean

all: build

# Scratch outputs from smoke/parity runs live under _build/ so they are
# covered by dune clean and never show up as untracked files.
SCRATCH = _build/smoke

build:
	dune build

test:
	dune runtest

# Everything a PR must keep green: build, the full test suite, the doc
# lint (see `docs`), a pass-manager smoke run with inter-pass IR
# validation on (traced, so the trace layer stays wired end to end), a
# one-window continuous-profiling smoke on the tiny kernel, the fleet,
# frontier and stale/fixpoint jobs-invariance smokes, a dispatch-floor
# microbenchmark smoke (tier table prints end to end), and the
# cross-backend parity smoke (see `parity`).
check:
	dune build
	dune runtest
	sh tools/check_mli_docs.sh
	mkdir -p $(SCRATCH)
	dune exec bin/pibe_cli.exe -- pipeline --scale 1 \
	  --passes "icp(budget=99.999),inline(budget=99.9,lax),cleanup,retpoline,ret-retpoline" \
	  --verify --trace $(SCRATCH)/smoke_trace.json --trace-format chrome
	dune exec bin/pibe_cli.exe -- online --scale 1 --windows 1 --requests 30
	$(MAKE) bench-smoke-fleet
	$(MAKE) bench-smoke-frontier
	$(MAKE) bench-smoke-stale
	dune exec bench/dispatch_bench.exe -- --quick
	$(MAKE) parity

# Cross-backend parity smoke: the bench-smoke workload once per
# execution backend, outputs diffed byte-for-byte (only the wall-clock
# footer line is stripped — everything simulated must be identical).
# Four legs: fully tiered compiled with aggressive thresholds
# (--tierup 4 --callfuse 2 --tier3 8, so the quick workload genuinely
# executes superblocks, fused call seams and the register-threaded
# tier 3), compiled with fusion disabled (--callfuse 0), compiled with
# tier-up disabled entirely (pure baseline closures, which forces
# callfuse/tier3 off too), and the reference interpreter — so a bug in
# any one tier can't hide behind another tier's path.  The workload
# includes one frontier config so the CFI/PAC cost paths are proven
# bit-exact across engines too.
parity:
	dune build bench/main.exe
	mkdir -p $(SCRATCH)
	dune exec bench/main.exe -- --quick --table 5 --online --frontier --stale --jobs 2 \
	  --engine compiled --tierup 4 --callfuse 2 --tier3 8 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/parity_compiled.txt
	dune exec bench/main.exe -- --quick --table 5 --online --frontier --stale --jobs 2 \
	  --engine compiled --callfuse 0 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/parity_nofuse.txt
	dune exec bench/main.exe -- --quick --table 5 --online --frontier --stale --jobs 2 \
	  --engine compiled --tierup 0 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/parity_tier0.txt
	dune exec bench/main.exe -- --quick --table 5 --online --frontier --stale --jobs 2 \
	  --engine interp | sed '/^\[bench harness finished/d' > $(SCRATCH)/parity_interp.txt
	cmp $(SCRATCH)/parity_compiled.txt $(SCRATCH)/parity_interp.txt
	cmp $(SCRATCH)/parity_nofuse.txt $(SCRATCH)/parity_interp.txt
	cmp $(SCRATCH)/parity_tier0.txt $(SCRATCH)/parity_interp.txt
	@echo "parity: compiled (tiered+callfuse+tier3, no-fuse, tier-0) and interp outputs are byte-identical"

# Documentation: lint that every public module in lib/ carries a
# top-level (** ... *) summary, then build the odoc pages.  The odoc
# build is gated on the tool being installed (this container ships
# dune but no odoc); the lint — the part that catches missing module
# docs — runs everywhere and fails the build on a miss.
docs:
	sh tools/check_mli_docs.sh
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc && echo "odoc pages under _build/default/_doc/_html"; \
	else \
	  echo "odoc not installed; skipped page build (doc lint passed)"; \
	fi

# Full evaluation: every table/figure of the paper at benchmark scale.
bench:
	dune exec bench/main.exe

# Fast sanity pass: small kernel, one table plus the online loop, two
# domains.  Exercises the parallel runner end to end in a few seconds
# and captures a Chrome trace of the whole run (load the .json in
# chrome://tracing or https://ui.perfetto.dev).
bench-smoke:
	mkdir -p $(SCRATCH)
	dune exec bench/main.exe -- --quick --table 5 --online --jobs 2 \
	  --trace $(SCRATCH)/bench_smoke_trace.json

# Fleet smoke (part of `check`): a small fleet (6 instances, 2 domains)
# through the sharded aggregator and the staged canary rollout, run
# twice — parallel and sequential — with the outputs diffed
# byte-for-byte, so the jobs-invariance contract of lib/online/fleet.ml
# is enforced on every PR.
bench-smoke-fleet:
	dune build bench/main.exe
	mkdir -p $(SCRATCH)
	dune exec bench/main.exe -- --quick --fleet --jobs 2 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/fleet_smoke_j2.txt
	dune exec bench/main.exe -- --quick --fleet --jobs 1 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/fleet_smoke_j1.txt
	cmp $(SCRATCH)/fleet_smoke_j1.txt $(SCRATCH)/fleet_smoke_j2.txt
	@echo "fleet smoke: sequential and parallel outputs are byte-identical"

# Frontier smoke (part of `check`): the overhead-vs-security frontier
# on the tiny kernel, sequential vs parallel, byte-diffed — pins both
# the defense ledger and the jobs-invariance of the new CFI/PAC paths.
bench-smoke-frontier:
	dune build bench/main.exe
	mkdir -p $(SCRATCH)
	dune exec bench/main.exe -- --quick --frontier --jobs 2 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/frontier_smoke_j2.txt
	dune exec bench/main.exe -- --quick --frontier --jobs 1 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/frontier_smoke_j1.txt
	cmp $(SCRATCH)/frontier_smoke_j1.txt $(SCRATCH)/frontier_smoke_j2.txt
	@echo "frontier smoke: sequential and parallel outputs are byte-identical"

# Stale/fixpoint smoke (part of `check`): the k-stale-profile experiment
# plus the iterative build->profile-on-hardened->rebuild loop on the
# tiny kernel, sequential vs parallel, byte-diffed — pins the kernel
# evolution generator, the staleness matcher, and the provenance-lifted
# collection path to the jobs-invariance contract.
bench-smoke-stale:
	dune build bench/main.exe
	mkdir -p $(SCRATCH)
	dune exec bench/main.exe -- --quick --stale --fixpoint --jobs 2 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/stale_smoke_j2.txt
	dune exec bench/main.exe -- --quick --stale --fixpoint --jobs 1 \
	  | sed '/^\[bench harness finished/d' > $(SCRATCH)/stale_smoke_j1.txt
	cmp $(SCRATCH)/stale_smoke_j1.txt $(SCRATCH)/stale_smoke_j2.txt
	@echo "stale smoke: sequential and parallel outputs are byte-identical"

clean:
	dune clean
