.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Full evaluation: every table/figure of the paper at benchmark scale.
bench:
	dune exec bench/main.exe

# Fast sanity pass: small kernel, one table, two domains.  Exercises the
# parallel runner end to end in a few seconds.
bench-smoke:
	dune exec bench/main.exe -- --quick --table 5 --jobs 2

clean:
	dune clean
