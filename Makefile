.PHONY: all build test check bench bench-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Everything a PR must keep green: build, the full test suite, a
# pass-manager smoke run with inter-pass IR validation on, and a one-window
# continuous-profiling smoke on the tiny kernel.
check:
	dune build
	dune runtest
	dune exec bin/pibe_cli.exe -- pipeline --scale 1 \
	  --passes "icp(budget=99.999),inline(budget=99.9,lax),cleanup,retpoline,ret-retpoline" \
	  --verify
	dune exec bin/pibe_cli.exe -- online --scale 1 --windows 1 --requests 30

# Full evaluation: every table/figure of the paper at benchmark scale.
bench:
	dune exec bench/main.exe

# Fast sanity pass: small kernel, one table plus the online loop, two
# domains.  Exercises the parallel runner end to end in a few seconds.
bench-smoke:
	dune exec bench/main.exe -- --quick --table 5 --online --jobs 2

clean:
	dune clean
