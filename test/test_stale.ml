(* Kernel evolution and stale-profile robustness: the release generator's
   determinism and validity, workloads surviving evolution, staleness
   matching against evolved kernels, and the lift-equivalence bound — a
   profile collected on the optimized, hardened image and lifted through
   provenance agrees with the pristine-image profile within 5%. *)

open Pibe_ir
module Gen = Pibe_kernel.Gen
module Evolve = Pibe_kernel.Evolve
module Workload = Pibe_kernel.Workload
module Profile = Pibe_profile.Profile
module Engine = Pibe_cpu.Engine

let evolve_seed = 77
let evolved k = Evolve.evolve ~seed:evolve_seed ~k (Helpers.kernel ())

(* ---------------------------- evolution ----------------------------- *)

let test_evolve_deterministic () =
  let a, sa = evolved 3 in
  let b, sb = evolved 3 in
  Alcotest.(check bool) "same per-release stats" true (sa = sb);
  Alcotest.(check string) "same program text"
    (Printer.program_to_string a.Gen.prog)
    (Printer.program_to_string b.Gen.prog);
  let id, s0 = evolved 0 in
  Alcotest.(check int) "k = 0 is the identity" 0 (List.length s0);
  Alcotest.(check string) "k = 0 leaves the program untouched"
    (Printer.program_to_string (Helpers.kernel ()).Gen.prog)
    (Printer.program_to_string id.Gen.prog)

let test_evolve_valid_and_runnable () =
  (* every release validates, and the lmbench workload still runs: the
     protected anchors (syscall entry, drill gadgets, fptr members) were
     kept intact *)
  for k = 1 to 3 do
    let info, stats = evolved k in
    Alcotest.(check int) "k releases applied" k (List.length stats);
    Alcotest.(check (list string))
      (Printf.sprintf "release %d validates" k)
      []
      (List.map
         (fun (e : Validate.error) -> e.Validate.what)
         (Validate.check_program info.Gen.prog));
    let engine = Engine.create info.Gen.prog in
    let rng = Pibe_util.Rng.create 5 in
    List.iter (fun (op : Workload.op) -> op.Workload.run engine rng) (Workload.lmbench info);
    Alcotest.(check bool)
      (Printf.sprintf "workload executed calls at k = %d" k)
      true
      ((Engine.counters engine).Engine.calls > 0)
  done

let test_evolve_churns_identities () =
  let _, stats = evolved 2 in
  List.iter
    (fun (s : Evolve.stats) ->
      Alcotest.(check bool) "functions added" true (s.Evolve.added > 0);
      Alcotest.(check bool) "functions removed" true (s.Evolve.removed > 0);
      Alcotest.(check bool) "sites renamed" true (s.Evolve.renamed_sites > 0))
    stats

(* -------------------- staleness matching on releases ----------------- *)

let base_profile =
  lazy
    (let info = Helpers.kernel () in
     Pibe.Pipeline.profile info.Gen.prog ~run:(fun engine ->
         let rng = Pibe_util.Rng.create 11 in
         List.iter
           (fun (op : Workload.op) ->
             for _ = 1 to 20 do
               op.Workload.run engine rng
             done)
           (Workload.lmbench info)))

let test_stale_match_on_evolved_kernel () =
  let p = Lazy.force base_profile in
  let info, _ = evolved 2 in
  let matched, stats = Profile.match_to p info.Gen.prog in
  (* two releases of churn: some weight must drop (removed and reshuffled
     functions), most must survive (protected anchors and untouched code) *)
  let dropped =
    stats.Profile.direct_dropped + stats.Profile.indirect_dropped
    + stats.Profile.entries_dropped
  in
  let kept =
    stats.Profile.direct_kept + stats.Profile.indirect_kept + stats.Profile.entries_kept
  in
  Alcotest.(check bool) "some weight dropped" true (dropped > 0);
  Alcotest.(check bool) "majority survives" true (kept > dropped);
  (* and the matched profile builds the evolved kernel without tripping
     verification *)
  let cfg = Pibe.Exp_common.best_config Pibe.Exp_common.all_defenses in
  let built = Pibe.Pipeline.build ~verify:true info.Gen.prog matched cfg in
  Alcotest.(check bool) "icp ran on the stale profile" true
    (built.Pibe.Pipeline.icp_stats <> None)

(* ------------------------- lift equivalence ------------------------- *)

let within_pct ~pct a b =
  let a = float_of_int a and b = float_of_int b in
  let hi = Float.max a b in
  hi = 0.0 || Float.abs (a -. b) <= pct /. 100.0 *. hi

(* The tentpole acceptance bound: collect the standard workload on the
   fully optimized + hardened image, lift through the recorded
   provenance, and compare against the pristine-image profile.  Inlining
   consumed most hot edges, ICP rewrote the hot indirect targets to
   direct calls — the witness/carry-forward machinery must reconstruct
   the pristine view within 5%. *)
let test_lift_equivalence_on_hardened_image () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let pristine = Pibe.Env.lmbench_profile env in
  let cfg = Pibe.Exp_common.best_config Pibe.Exp_common.all_defenses in
  let built = Pibe.Env.build env cfg in
  let ops = Workload.lmbench info in
  let lifted, stats =
    Pibe.Pipeline.profile_built built ~run:(fun engine ->
        let rng = Pibe_util.Rng.create 11 in
        List.iter
          (fun (op : Workload.op) ->
            for _ = 1 to Pibe.Env.profile_iters env do
              op.Workload.run engine rng
            done)
          ops)
  in
  Alcotest.(check bool) "samples were lifted" true
    (stats.Pibe_profile.Collector.lifted_pairs > 0);
  Alcotest.(check int) "no sample dropped" 0 stats.Pibe_profile.Collector.dropped_pairs;
  let total p = Profile.total_direct_weight p + Profile.total_indirect_weight p in
  Alcotest.(check bool)
    (Printf.sprintf "total call weight within 5%% (pristine %d, lifted %d)"
       (total pristine) (total lifted))
    true
    (within_pct ~pct:5.0 (total pristine) (total lifted));
  (* every hot indirect origin's value profile survives the round trip:
     same weight (within 5%) and the same hottest target *)
  let hot =
    List.filter
      (fun o ->
        Profile.site_weight pristine { Types.site_id = o; site_origin = o }
        > total pristine / 100)
      (Profile.profiled_indirect_origins pristine)
  in
  Alcotest.(check bool) "kernel has hot indirect origins" true (List.length hot > 0);
  List.iter
    (fun o ->
      let site = { Types.site_id = o; site_origin = o } in
      let wp = Profile.site_weight pristine site in
      let wl = Profile.site_weight lifted site in
      Alcotest.(check bool)
        (Printf.sprintf "origin %d weight within 5%% (pristine %d, lifted %d)" o wp wl)
        true
        (within_pct ~pct:5.0 wp wl);
      match (Profile.value_profile pristine ~origin:o, Profile.value_profile lifted ~origin:o) with
      | (tp, _) :: _, (tl, _) :: _ ->
        Alcotest.(check string)
          (Printf.sprintf "origin %d hottest target survives" o)
          tp tl
      | _ -> Alcotest.failf "origin %d lost its value profile" o)
    hot;
  (* hot entry counts survive the edges consumed by inlining *)
  List.iter
    (fun f ->
      let ip = Profile.invocations pristine f in
      if ip > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%s entries within 5%% (pristine %d, lifted %d)" f ip
             (Profile.invocations lifted f))
          true
          (within_pct ~pct:5.0 ip (Profile.invocations lifted f)))
    [ "sys_read"; "sys_write"; "vfs_read"; "vfs_write" ]

let suite =
  [
    ("evolution is deterministic", `Quick, test_evolve_deterministic);
    ("releases validate and run", `Quick, test_evolve_valid_and_runnable);
    ("releases churn identities", `Quick, test_evolve_churns_identities);
    ("stale match on evolved kernel", `Quick, test_stale_match_on_evolved_kernel);
    ("lift equivalence on hardened image", `Quick, test_lift_equivalence_on_hardened_image);
  ]
