(* Engine-parity suite: pins the interned-ID interpreter to a golden
   fingerprint captured from the original string-keyed engine (same
   kernel: scale 1, generator seed 42; workload rng 123, 25 iterations of
   every LMBench op).  Any change to cycle accounting, speculation
   outcomes, or measured latencies — however small — fails here.

   Also checks that a parallel environment ([jobs > 1]) produces exactly
   the same numbers as the sequential one. *)

module Pass = Pibe_harden.Pass
module Engine = Pibe_cpu.Engine
module Gen = Pibe_kernel.Gen
module Workload = Pibe_kernel.Workload

let defense_sets =
  [
    ("none", Pass.no_defenses);
    ("retpolines", { Pass.no_defenses with Pass.retpolines = true });
    ("ret-retpolines", { Pass.no_defenses with Pass.ret_retpolines = true });
    ("lvi", { Pass.no_defenses with Pass.lvi = true });
    ("all", Pass.all_defenses);
  ]

let kernel = lazy (Gen.generate { Pibe_kernel.Ctx.seed = 42; scale = 1 })

let run_workload info engine =
  let rng = Pibe_util.Rng.create 123 in
  List.iter
    (fun (op : Workload.op) ->
      for _ = 1 to 25 do
        op.Workload.run engine rng
      done)
    (Workload.lmbench info)

(* (set, cycles, btb misses); calls/icalls/rets/insts/rsb/pht/peak are
   identical across defense sets and pinned once below. *)
let golden_engine =
  [
    ("none", 773129, 482);
    ("retpolines", 892218, 3);
    ("ret-retpolines", 1197544, 482);
    ("lvi", 1119579, 3);
    ("all", 1831910, 3);
  ]

let test_engine_fingerprint () =
  let info = Lazy.force kernel in
  List.iter
    (fun (name, defenses) ->
      let cycles, btbm =
        let _, c, b = List.find (fun (n, _, _) -> String.equal n name) golden_engine in
        (c, b)
      in
      let image = Pass.harden info.Gen.prog defenses in
      let engine = Engine.create ~config:(Pass.engine_config image) image.Pass.prog in
      run_workload info engine;
      let c = Engine.counters engine in
      Alcotest.(check int) (name ^ " cycles") cycles (Engine.cycles engine);
      Alcotest.(check int) (name ^ " btb misses") btbm c.Engine.btb_misses;
      Alcotest.(check int) (name ^ " calls") 19394 c.Engine.calls;
      Alcotest.(check int) (name ^ " icalls") 5724 c.Engine.icalls;
      Alcotest.(check int) (name ^ " rets") 26018 c.Engine.rets;
      Alcotest.(check int) (name ^ " insts") 563490 c.Engine.insts;
      Alcotest.(check int) (name ^ " rsb misses") 0 c.Engine.rsb_misses;
      Alcotest.(check int) (name ^ " pht misses") 3358 c.Engine.pht_misses;
      Alcotest.(check int) (name ^ " peak stack") 1008 c.Engine.peak_stack_bytes)
    defense_sets

(* (set, mechanism, gadget reached, attacker-visible transient entries) *)
let golden_attacks =
  [
    ("none", "spectre-v2", true, 1);
    ("none", "v2-valid-pad", true, 1);
    ("none", "ret2spec", true, 1);
    ("none", "pac-forgery", true, 1);
    ("none", "lvi", true, 1);
    ("retpolines", "spectre-v2", false, 0);
    ("retpolines", "v2-valid-pad", false, 0);
    ("retpolines", "ret2spec", true, 1);
    ("retpolines", "pac-forgery", true, 1);
    ("retpolines", "lvi", true, 1);
    ("ret-retpolines", "spectre-v2", true, 1);
    ("ret-retpolines", "v2-valid-pad", true, 1);
    ("ret-retpolines", "ret2spec", false, 0);
    ("ret-retpolines", "pac-forgery", false, 0);
    ("ret-retpolines", "lvi", true, 1);
    ("lvi", "spectre-v2", true, 1);
    ("lvi", "v2-valid-pad", true, 1);
    ("lvi", "ret2spec", true, 1);
    ("lvi", "pac-forgery", true, 1);
    ("lvi", "lvi", false, 0);
    ("all", "spectre-v2", false, 0);
    ("all", "v2-valid-pad", false, 0);
    ("all", "ret2spec", false, 0);
    ("all", "pac-forgery", false, 0);
    ("all", "lvi", false, 0);
  ]

let test_attack_fingerprint () =
  let info = Lazy.force kernel in
  List.iter
    (fun (name, defenses) ->
      let image = Pass.harden info.Gen.prog defenses in
      let spec = Pibe_cpu.Speculation.create () in
      let config = { (Pass.engine_config image) with Engine.speculation = Some spec } in
      let engine = Engine.create ~config image.Pass.prog in
      let outcomes =
        Pibe_cpu.Attack.run_all engine ~victim_site:info.Gen.victim_icall_site
          ~poisoned_addr:info.Gen.victim_ops_addr ~gadget_fptr:info.Gen.gadget_fptr
          ~gadget:info.Gen.gadget ~valid_gadget:info.Gen.valid_gadget
          ~entry:info.Gen.entry
          ~args:[ Gen.nr info "read"; 0; 5 ]
      in
      List.iter
        (fun (mechanism, (o : Pibe_cpu.Attack.outcome)) ->
          let _, _, reached, entries =
            List.find
              (fun (n, m, _, _) -> String.equal n name && String.equal m mechanism)
              golden_attacks
          in
          Alcotest.(check bool)
            (name ^ " " ^ mechanism ^ " reached")
            reached o.Pibe_cpu.Attack.gadget_reached;
          Alcotest.(check int)
            (name ^ " " ^ mechanism ^ " entries")
            entries
            (List.length o.Pibe_cpu.Attack.transient_entries))
        outcomes)
    defense_sets

let golden_lto =
  [
    ("null", 207.1); ("read", 471.1); ("write", 450.966667); ("open", 1283.933333);
    ("stat", 703.566667); ("fstat", 365.066667); ("af_unix", 919.9);
    ("fork/exit", 1370.9); ("fork/exec", 3893.033333); ("fork/shell", 8096.333333);
    ("pipe", 794.833333); ("select_file", 1114.7); ("select_tcp", 2108.7);
    ("tcp_conn", 917.833333); ("udp", 895.3); ("tcp", 1003.466667);
    ("mmap", 459.5); ("page_fault", 313.733333); ("sig_install", 290.0);
    ("sig_dispatch", 342.633333);
  ]

let golden_all_defenses =
  [
    ("null", 314.166667); ("read", 1075.533333); ("write", 1022.666667);
    ("open", 3223.4); ("stat", 1530.5); ("fstat", 737.566667);
    ("af_unix", 2110.2); ("fork/exit", 3100.633333); ("fork/exec", 9520.133333);
    ("fork/shell", 19253.266667); ("pipe", 1825.533333);
    ("select_file", 4581.766667); ("select_tcp", 10621.766667);
    ("tcp_conn", 2241.933333); ("udp", 2043.266667); ("tcp", 2346.866667);
    ("mmap", 960.566667); ("page_fault", 556.333333); ("sig_install", 535.066667);
    ("sig_dispatch", 706.833333);
  ]

let golden_geomean = 133.326815508

let check_latencies label golden measured =
  Alcotest.(check int)
    (label ^ " suite size") (List.length golden) (List.length measured);
  List.iter2
    (fun (op, want) (op', got) ->
      Alcotest.(check string) (label ^ " op order") op op';
      Alcotest.(check (float 1e-5)) (label ^ " " ^ op) want got)
    golden measured

let test_latency_fingerprint () =
  let env = Pibe.Env.quick () in
  let defended = Pibe.Exp_common.lto_with Pass.all_defenses in
  check_latencies "lto" golden_lto (Pibe.Env.latencies env Pibe.Config.lto);
  check_latencies "all-defenses" golden_all_defenses (Pibe.Env.latencies env defended);
  Alcotest.(check (float 1e-6))
    "geomean overhead" golden_geomean
    (Pibe.Env.geomean_overhead env ~baseline:Pibe.Config.lto defended)

(* A 4-job environment must reproduce the sequential numbers exactly —
   the parallel runner only reorders *when* cells are computed. *)
let test_jobs_parity () =
  let configs =
    [
      Pibe.Config.lto;
      Pibe.Exp_common.lto_with Pibe.Exp_common.retpolines_only;
      Pibe.Exp_common.lto_with Pass.all_defenses;
      Pibe.Exp_common.icp_only ~budget:99.999 Pibe.Exp_common.retpolines_only;
    ]
  in
  let seq = Pibe.Env.quick ~jobs:1 () in
  let par = Pibe.Env.quick ~jobs:4 () in
  Pibe.Env.warm par configs;
  List.iter
    (fun config ->
      List.iter2
        (fun (op, a) (op', b) ->
          Alcotest.(check string) "op order" op op';
          Alcotest.(check (float 0.0)) ("jobs parity: " ^ op) a b)
        (Pibe.Env.latencies seq config)
        (Pibe.Env.latencies par config))
    configs;
  List.iter
    (fun config ->
      Alcotest.(check (float 0.0))
        "jobs parity: geomean"
        (Pibe.Env.geomean_overhead seq ~baseline:Pibe.Config.lto config)
        (Pibe.Env.geomean_overhead par ~baseline:Pibe.Config.lto config))
    (List.tl configs)

let test_pool_map () =
  let pool = Pibe_util.Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map order" (List.map (fun x -> x * x) xs)
    (Pibe_util.Pool.map pool (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty" [] (Pibe_util.Pool.map pool (fun x -> x) []);
  (match Pibe_util.Pool.map pool (fun x -> if x = 7 then failwith "boom" else x) xs with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "exception" "boom" msg);
  (* after a failing map the pool is still usable *)
  Alcotest.(check (list int))
    "map after failure" [ 2; 4; 6 ]
    (Pibe_util.Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let suite =
  [
    Alcotest.test_case "engine fingerprint vs seed" `Quick test_engine_fingerprint;
    Alcotest.test_case "attack fingerprint vs seed" `Quick test_attack_fingerprint;
    Alcotest.test_case "latency fingerprint vs seed" `Quick test_latency_fingerprint;
    Alcotest.test_case "jobs=4 equals jobs=1" `Quick test_jobs_parity;
    Alcotest.test_case "pool map semantics" `Quick test_pool_map;
  ]
