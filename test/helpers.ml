(* Shared test plumbing: a deterministic random-program generator for
   property tests (terminating by construction: the call graph and every
   CFG are DAGs), a differential-equivalence checker, and one lazily
   created quick environment shared by the heavier suites. *)

open Pibe_ir
open Types
module Rng = Pibe_util.Rng

let mem_cells = 64
let fptr_cells = 8

(* ------------------------------------------------------------------ *)
(* Random programs                                                      *)
(* ------------------------------------------------------------------ *)

let random_func rng prog ~name ~callees ~n_fptrs =
  let params = Rng.int rng 3 in
  let b = Builder.create ~name ~params in
  let nblocks = 1 + Rng.int rng 3 in
  let extra = List.init (nblocks - 1) (fun _ -> Builder.new_block b) in
  let blocks = Array.of_list (0 :: extra) in
  let prog = ref prog in
  let vals = ref (List.init params (fun i -> i)) in
  let operand rng =
    if !vals <> [] && Rng.bool rng then Reg (Rng.choose rng (Array.of_list !vals))
    else Imm (Rng.int rng 100)
  in
  Array.iteri
    (fun bi label ->
      Builder.switch_to b label;
      let n_insts = Rng.int rng 5 in
      for _ = 1 to n_insts do
        match Rng.int rng 10 with
        | 0 ->
          (* scratch store to a fixed valid cell *)
          Builder.store b ~addr:(Imm (16 + Rng.int rng 16)) ~value:(operand rng)
        | 1 ->
          let r = Builder.reg b in
          Builder.assign b r (Load (Imm (Rng.int rng mem_cells)));
          vals := r :: !vals
        | 2 -> Builder.observe b (operand rng)
        | 3 | 4 when callees <> [] ->
          let callee = Rng.choose rng (Array.of_list callees) in
          let r = Builder.reg b in
          let p, site = Program.fresh_site !prog in
          prog := p;
          Builder.call b ~dst:r site callee [ operand rng; operand rng ];
          vals := r :: !vals
        | 5 when n_fptrs > 0 ->
          (* fptr index loaded from a dedicated cell holding a valid index *)
          let fp = Builder.reg b in
          Builder.assign b fp (Load (Imm (Rng.int rng fptr_cells)));
          let r = Builder.reg b in
          let p, site = Program.fresh_site !prog in
          prog := p;
          Builder.icall b ~dst:r site [ operand rng ] ~fptr:(Reg fp);
          vals := r :: !vals
        | _ ->
          let r = Builder.reg b in
          let op = Rng.choose rng [| Add; Sub; Mul; Xor; And; Or |] in
          Builder.assign b r (Binop (op, operand rng, operand rng));
          vals := r :: !vals
      done;
      (* Terminator: strictly forward edges keep every CFG a DAG. *)
      let succs = Array.sub blocks (bi + 1) (Array.length blocks - bi - 1) in
      if Array.length succs = 0 || Rng.int rng 4 = 0 then
        Builder.ret b (if Rng.bool rng then Some (operand rng) else None)
      else
        match Rng.int rng 3 with
        | 0 -> Builder.jmp b (Rng.choose rng succs)
        | 1 -> Builder.br b (operand rng) (Rng.choose rng succs) (Rng.choose rng succs)
        | _ ->
          let cases =
            List.init (1 + Rng.int rng 3) (fun v -> (v, Rng.choose rng succs))
          in
          Builder.switch b
            ~lowering:(if Rng.bool rng then Jump_table else Branch_ladder)
            (operand rng) cases ~default:(Rng.choose rng succs))
    blocks;
  (!prog, Builder.finish b ())

(* Chain-biased generator: functions whose CFGs are long runs of
   single-predecessor blocks linked by unconditional jumps — exactly the
   shape tier-2 superblock fusion targets.  Occasional conditional
   branches, skip edges and duplicated-target [Br]s break some chains
   mid-way, so the head/interior analysis sees merges and non-[Jmp]
   single-predecessor edges too; occasional calls split fused segments;
   and a rare dynamically out-of-bounds load plants a fault in the
   middle of a fused segment. *)
let random_chain_func rng prog ~name ~callees =
  let params = 1 + Rng.int rng 2 in
  let b = Builder.create ~name ~params in
  let len = 4 + Rng.int rng 10 in
  let blocks = Array.of_list (0 :: List.init (len - 1) (fun _ -> Builder.new_block b)) in
  let prog = ref prog in
  let vals = ref (List.init params (fun i -> i)) in
  let operand rng =
    if !vals <> [] && Rng.bool rng then Reg (Rng.choose rng (Array.of_list !vals))
    else Imm (Rng.int rng 100)
  in
  Array.iteri
    (fun bi label ->
      Builder.switch_to b label;
      let n_insts = 1 + Rng.int rng 4 in
      for _ = 1 to n_insts do
        match Rng.int rng 12 with
        | 0 -> Builder.store b ~addr:(Imm (16 + Rng.int rng 16)) ~value:(operand rng)
        | 1 ->
          let r = Builder.reg b in
          Builder.assign b r (Load (Imm (Rng.int rng mem_cells)));
          vals := r :: !vals
        | 2 -> Builder.observe b (operand rng)
        | 3 when callees <> [] ->
          let callee = Rng.choose rng (Array.of_list callees) in
          let r = Builder.reg b in
          let p, site = Program.fresh_site !prog in
          prog := p;
          Builder.call b ~dst:r site callee [ operand rng; operand rng ];
          vals := r :: !vals
        | 4 ->
          (* dynamically out-of-bounds address: a fault mid-segment must
             roll the batched accounting back bit-exactly *)
          let a = Builder.reg b in
          Builder.assign b a (Const (mem_cells + 100 + Rng.int rng 50));
          if Rng.int rng 4 = 0 then begin
            let r = Builder.reg b in
            Builder.assign b r (Load (Reg a));
            vals := r :: !vals
          end
        | _ ->
          let r = Builder.reg b in
          let op = Rng.choose rng [| Add; Sub; Mul; Xor; And; Or |] in
          Builder.assign b r (Binop (op, operand rng, operand rng));
          vals := r :: !vals
      done;
      if bi = Array.length blocks - 1 then
        Builder.ret b (if Rng.bool rng then Some (operand rng) else None)
      else
        let next = blocks.(bi + 1) in
        match Rng.int rng 8 with
        | 0 ->
          (* both arms hit the next block: two predecessors, chain broken *)
          Builder.br b (operand rng) next next
        | 1 when bi + 2 < Array.length blocks ->
          (* skip edge: next keeps one pred but merges further down *)
          Builder.br b (operand rng) next blocks.(bi + 2)
        | 2 -> Builder.ret b (Some (operand rng))
        | _ -> Builder.jmp b next)
    blocks;
  (!prog, Builder.finish b ())

(* Call-chain-biased generator: deep chains of direct calls ending in
   straight-line leaves — exactly the shape call-seam fusion targets.
   Leaves are CAssign/CStore/CObserve-only with [Jmp]-chained blocks;
   some plant a deterministically faulting load (a fault in the middle
   of a fused call body must roll the batched seam accounting back
   bit-exactly), and a few are deliberately oversized so the fusion
   size bound's rejection path runs too.  Callers make several calls
   per activation, so leaf entry counts cross low fusion thresholds
   mid-run and every run compares the unfused, promoting and fused
   states against the interpreter. *)
let random_leaf_func rng ~name =
  let params = 1 + Rng.int rng 2 in
  let b = Builder.create ~name ~params in
  let oversized = Rng.int rng 10 = 0 in
  let nblocks = 1 + Rng.int rng 2 in
  let blocks = Array.of_list (0 :: List.init (nblocks - 1) (fun _ -> Builder.new_block b)) in
  let vals = ref (List.init params (fun i -> i)) in
  let operand rng =
    if !vals <> [] && Rng.bool rng then Reg (Rng.choose rng (Array.of_list !vals))
    else Imm (Rng.int rng 100)
  in
  Array.iteri
    (fun bi label ->
      Builder.switch_to b label;
      let n_insts = if oversized then 30 else 2 + Rng.int rng 5 in
      for _ = 1 to n_insts do
        match Rng.int rng 10 with
        | 0 -> Builder.store b ~addr:(Imm (16 + Rng.int rng 16)) ~value:(operand rng)
        | 1 -> Builder.observe b (operand rng)
        | 2 ->
          let r = Builder.reg b in
          Builder.assign b r (Load (Imm (Rng.int rng mem_cells)));
          vals := r :: !vals
        | 3 when Rng.int rng 3 = 0 ->
          (* deterministically out-of-bounds: faults mid-fused-body *)
          let a = Builder.reg b in
          Builder.assign b a (Const (mem_cells + 50 + Rng.int rng 50));
          let r = Builder.reg b in
          Builder.assign b r (Load (Reg a));
          vals := r :: !vals
        | _ ->
          let r = Builder.reg b in
          let op = Rng.choose rng [| Add; Sub; Mul; Xor; And; Or; Shl; Shr; Lt; Eq |] in
          Builder.assign b r (Binop (op, operand rng, operand rng));
          vals := r :: !vals
      done;
      if bi = Array.length blocks - 1 then
        Builder.ret b (if Rng.bool rng then Some (operand rng) else None)
      else Builder.jmp b blocks.(bi + 1))
    blocks;
  Builder.finish b ()

let random_caller_func rng prog ~name ~callees =
  let params = 1 + Rng.int rng 2 in
  let b = Builder.create ~name ~params in
  let nblocks = 1 + Rng.int rng 2 in
  let blocks = Array.of_list (0 :: List.init (nblocks - 1) (fun _ -> Builder.new_block b)) in
  let prog = ref prog in
  let vals = ref (List.init params (fun i -> i)) in
  let operand rng =
    if !vals <> [] && Rng.bool rng then Reg (Rng.choose rng (Array.of_list !vals))
    else Imm (Rng.int rng 100)
  in
  Array.iteri
    (fun bi label ->
      Builder.switch_to b label;
      (* several calls per block: leaf heat accumulates fast *)
      let n_items = 2 + Rng.int rng 3 in
      for _ = 1 to n_items do
        match Rng.int rng 4 with
        | 0 ->
          let r = Builder.reg b in
          Builder.assign b r (Binop (Add, operand rng, operand rng));
          vals := r :: !vals
        | _ ->
          let callee = Rng.choose rng (Array.of_list callees) in
          let p, site = Program.fresh_site !prog in
          prog := p;
          if Rng.int rng 5 = 0 then Builder.call b site callee [ operand rng ]
          else begin
            let r = Builder.reg b in
            Builder.call b ~dst:r site callee [ operand rng; operand rng ];
            vals := r :: !vals
          end
      done;
      if bi = Array.length blocks - 1 then
        Builder.ret b (if Rng.bool rng then Some (operand rng) else None)
      else Builder.jmp b blocks.(bi + 1))
    blocks;
  (!prog, Builder.finish b ())

(* [random_call_program seed]: a deep linear spine f0 -> f1 -> ... whose
   lower half are straight-line leaves; every fi may also call any
   fj (j > i), so seams appear at several depths of one activation. *)
let random_call_program seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 4 in
  let names = List.init n (fun i -> Printf.sprintf "f%d" i) in
  let prog = ref (Program.with_globals_size Program.empty mem_cells) in
  let rec build i =
    if i < 0 then ()
    else begin
      if i >= (n + 1) / 2 then prog := Program.add_func !prog (random_leaf_func rng ~name:(List.nth names i))
      else begin
        let callees = List.filteri (fun j _ -> j > i) names in
        let p, f = random_caller_func rng !prog ~name:(List.nth names i) ~callees in
        prog := Program.add_func p f
      end;
      build (i - 1)
    end
  in
  build (n - 1);
  let p = !prog in
  (match Validate.check_program p with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "random_call_program %d invalid: %s" seed
         (String.concat "; " (List.map (fun e -> e.Validate.what) errs))));
  p

(* [random_chain_program seed]: a few chain-heavy functions in a call
   DAG, validated like [random_program]. *)
let random_chain_program seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 3 in
  let names = List.init n (fun i -> Printf.sprintf "f%d" i) in
  let prog = ref (Program.with_globals_size Program.empty mem_cells) in
  let rec build i =
    if i < 0 then ()
    else begin
      let callees = List.filteri (fun j _ -> j > i) names in
      let p, f = random_chain_func rng !prog ~name:(List.nth names i) ~callees in
      prog := Program.add_func p f;
      build (i - 1)
    end
  in
  build (n - 1);
  let p = !prog in
  (match Validate.check_program p with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "random_chain_program %d invalid: %s" seed
         (String.concat "; " (List.map (fun e -> e.Validate.what) errs))));
  p

(* [random_program seed] builds a small valid program: a DAG of functions
   (later names callable from earlier ones), a fptr table over the leafier
   half, and memory cells 0-7 holding valid fptr indices. *)
let random_program seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 4 in
  let names = List.init n (fun i -> Printf.sprintf "f%d" i) in
  let prog = ref (Program.with_globals_size Program.empty mem_cells) in
  (* Build leaves-first so callees exist; fi may call fj for j > i. *)
  let rec build i =
    if i < 0 then ()
    else begin
      (* Indirect calls only from the first half, targeting the second
         half: no cycles even through the fptr table. *)
      let callees = List.filteri (fun j _ -> j > i) names in
      let p, f =
        random_func rng !prog ~name:(List.nth names i) ~callees
          ~n_fptrs:(if i < n / 2 then 1 else 0)
      in
      prog := Program.add_func p f;
      build (i - 1)
    end
  in
  build (n - 1);
  (* fptr table over the leafier half (guaranteed call-DAG safe targets). *)
  let targets = List.filteri (fun j _ -> j >= n / 2) names in
  List.iter
    (fun t ->
      let p, _ = Program.add_fptr !prog t in
      prog := p)
    targets;
  let n_targets = List.length targets in
  for cell = 0 to fptr_cells - 1 do
    prog := Program.set_global !prog ~addr:cell ~value:(Rng.int rng n_targets)
  done;
  let p = !prog in
  (match Validate.check_program p with
  | [] -> ()
  | errs ->
    failwith
      (Printf.sprintf "random_program %d invalid: %s" seed
         (String.concat "; " (List.map (fun e -> e.Validate.what) errs))));
  p

(* ------------------------------------------------------------------ *)
(* Differential equivalence                                             *)
(* ------------------------------------------------------------------ *)

type observation = {
  trace : int list;
  results : int option list;
  memory : int list;
}

let observe prog ~calls =
  let config = { Pibe_cpu.Engine.default_config with Pibe_cpu.Engine.record_trace = true } in
  let engine = Pibe_cpu.Engine.create ~config prog in
  let results = List.map (fun (entry, args) -> Pibe_cpu.Engine.call engine entry args) calls in
  {
    trace = Pibe_cpu.Engine.trace engine;
    results;
    memory = Array.to_list (Pibe_cpu.Engine.memory engine);
  }

let standard_calls prog =
  match Program.find_opt prog "f0" with
  | None -> []
  | Some f ->
    List.init 5 (fun i -> ("f0", List.init f.params (fun j -> (i * 7) + j)))

let equivalent ?calls a b =
  let calls = match calls with Some c -> c | None -> standard_calls a in
  observe a ~calls = observe b ~calls

(* ------------------------------------------------------------------ *)
(* Shared quick environment                                             *)
(* ------------------------------------------------------------------ *)

let quick_env = lazy (Pibe.Env.quick ())
let env () = Lazy.force quick_env

let quick_info = lazy (Pibe_kernel.Gen.generate { Pibe_kernel.Ctx.seed = 42; scale = 1 })
let kernel () = Lazy.force quick_info

let qcheck_to_alcotest = QCheck_alcotest.to_alcotest
