(* Unit and property tests for pibe_util: Rng, Stats, Tbl. *)

module Rng = Pibe_util.Rng
module Stats = Pibe_util.Stats
module Tbl = Pibe_util.Tbl

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------- Rng ------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let da = List.init 8 (fun _ -> Rng.int64 a) in
  let db = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (da <> db)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_decorrelates () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let da = List.init 8 (fun _ -> Rng.int64 a) in
  let db = List.init 8 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (da <> db)

let test_rng_weighted () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let v = Rng.weighted rng [| (1, "a"); (0, "b"); (3, "c") |] in
    Alcotest.(check bool) "never zero-weight" true (v <> "b")
  done

let test_rng_zipf_skew () =
  let rng = Rng.create 13 in
  let counts = Array.make 8 0 in
  for _ = 1 to 4000 do
    let v = Rng.zipf rng ~n:8 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates" true (counts.(0) > counts.(7) * 3);
  Alcotest.(check bool) "all in range" true (Array.for_all (fun c -> c >= 0) counts)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let arr = Array.init 20 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let prop_geometric_nonneg =
  QCheck.Test.make ~name:"geometric draws are non-negative" ~count:200
    QCheck.(pair small_int (float_range 0.05 0.95))
    (fun (seed, p) ->
      let rng = Rng.create seed in
      Rng.geometric rng ~p >= 0)

(* ------------------------------ Stats ------------------------------ *)

let test_median_odd () = check_float "median" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ])
let test_median_even () = check_float "median" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])
let test_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])
let test_geomean () = check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_geomean_overhead_sign () =
  let v = Stats.geomean_overhead [ 10.0; -10.0 ] in
  Alcotest.(check bool) "slightly negative" true (v < 0.0 && v > -1.0)

let test_overhead_pct () =
  check_float "overhead" 50.0 (Stats.overhead_pct ~baseline:100.0 150.0);
  check_float "speedup" (-25.0) (Stats.overhead_pct ~baseline:100.0 75.0)

let test_stddev () =
  check_float "singleton" 0.0 (Stats.stddev [ 42.0 ]);
  check_float "pair" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0 ])

let test_ratio_pct () =
  check_float "half" 50.0 (Stats.ratio_pct ~num:1 ~den:2);
  check_float "zero den" 0.0 (Stats.ratio_pct ~num:5 ~den:0)

(* Pins the nearest-rank edge behaviors documented in stats.mli. *)
let test_percentile_edges () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  check_float "p=0 is the minimum" 1.0 (Stats.percentile 0.0 xs);
  check_float "p=100 is the maximum" 4.0 (Stats.percentile 100.0 xs);
  check_float "p=50 nearest rank" 2.0 (Stats.percentile 50.0 xs);
  check_float "singleton at p=0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  check_float "singleton at p=50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  check_float "singleton at p=100" 7.0 (Stats.percentile 100.0 [ 7.0 ]);
  check_float "p above 100 clamps to the maximum" 4.0 (Stats.percentile 150.0 xs);
  check_float "p below 0 clamps to the minimum" 1.0 (Stats.percentile (-5.0) xs)

(* All-speedup lists stay in ratio space as long as each element is above
   -100%; at or below -100% the ratio is non-positive and geomean rejects
   it — both documented in stats.mli. *)
let test_geomean_overhead_all_speedups () =
  let v = Stats.geomean_overhead [ -10.0; -20.0 ] in
  check_float "gm of 0.9 and 0.8 ratios" (100.0 *. (sqrt (0.9 *. 0.8) -. 1.0)) v;
  Alcotest.(check bool) "still a speedup" true (v < 0.0);
  Alcotest.(check bool) "bounded by the extremes" true (v > -20.0 && v < -10.0);
  check_float "uniform speedup is itself" (-25.0)
    (Stats.geomean_overhead [ -25.0; -25.0; -25.0 ]);
  Alcotest.check_raises "-100% is rejected"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean_overhead [ -100.0 ]))

let test_empty_raises () =
  Alcotest.check_raises "mean []" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let prop_median_bounded =
  QCheck.Test.make ~name:"median lies between min and max" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_bound_exclusive 1000.0))
    (fun xs ->
      let m = Stats.median xs in
      m >= List.fold_left min infinity xs && m <= List.fold_left max neg_infinity xs)

let prop_geomean_overhead_roundtrip =
  QCheck.Test.make ~name:"geomean of identical overheads is that overhead" ~count:200
    QCheck.(float_range (-50.0) 200.0)
    (fun p ->
      let g = Stats.geomean_overhead [ p; p; p ] in
      Float.abs (g -. p) < 1e-6)

(* ------------------------------- Tbl ------------------------------- *)

let test_tbl_cells () =
  Alcotest.(check string) "pct pos" "+3.1%" (Tbl.cell_text (Tbl.Pct 3.14));
  Alcotest.(check string) "pct neg" "-2.0%" (Tbl.cell_text (Tbl.Pct (-2.0)));
  Alcotest.(check string) "float" "1.50" (Tbl.cell_text (Tbl.Float 1.5));
  Alcotest.(check string) "int" "7" (Tbl.cell_text (Tbl.Int 7));
  Alcotest.(check string) "empty" "" (Tbl.cell_text Tbl.Empty)

let test_tbl_rows_and_lookup () =
  let t = Tbl.create ~title:"t" ~columns:[ "a"; "b" ] in
  Tbl.add_row t [ Tbl.Str "x"; Tbl.Int 1 ];
  Tbl.add_separator t;
  Tbl.add_row t [ Tbl.Str "y"; Tbl.Int 2 ];
  Alcotest.(check int) "two data rows" 2 (List.length (Tbl.rows t));
  Alcotest.(check bool) "find x" true (Tbl.find_row t "x" <> None);
  Alcotest.(check bool) "find z" true (Tbl.find_row t "z" = None)

let test_tbl_pads_rows () =
  let t = Tbl.create ~title:"t" ~columns:[ "a"; "b"; "c" ] in
  Tbl.add_row t [ Tbl.Str "x" ];
  (match Tbl.rows t with
  | [ row ] -> Alcotest.(check int) "padded" 3 (List.length row)
  | _ -> Alcotest.fail "expected one row");
  let rendered = Tbl.to_string t in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_tbl_render_contains () =
  let t = Tbl.create ~title:"My Title" ~columns:[ "col" ] in
  Tbl.add_row t [ Tbl.Str "value" ];
  let s = Tbl.to_string t in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title present" true (contains "My Title");
  Alcotest.(check bool) "value present" true (contains "value")

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seeds differ", `Quick, test_rng_seeds_differ);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng split decorrelates", `Quick, test_rng_split_decorrelates);
    ("rng weighted skips zero", `Quick, test_rng_weighted);
    ("rng zipf skew", `Quick, test_rng_zipf_skew);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    Helpers.qcheck_to_alcotest prop_geometric_nonneg;
    ("stats median odd", `Quick, test_median_odd);
    ("stats median even", `Quick, test_median_even);
    ("stats mean", `Quick, test_mean);
    ("stats geomean", `Quick, test_geomean);
    ("stats geomean overhead sign", `Quick, test_geomean_overhead_sign);
    ("stats percentile edges", `Quick, test_percentile_edges);
    ("stats geomean overhead of speedups", `Quick, test_geomean_overhead_all_speedups);
    ("stats overhead pct", `Quick, test_overhead_pct);
    ("stats stddev", `Quick, test_stddev);
    ("stats ratio pct", `Quick, test_ratio_pct);
    ("stats empty raises", `Quick, test_empty_raises);
    Helpers.qcheck_to_alcotest prop_median_bounded;
    Helpers.qcheck_to_alcotest prop_geomean_overhead_roundtrip;
    ("tbl cell rendering", `Quick, test_tbl_cells);
    ("tbl rows and lookup", `Quick, test_tbl_rows_and_lookup);
    ("tbl pads short rows", `Quick, test_tbl_pads_rows);
    ("tbl render contains title/cells", `Quick, test_tbl_render_contains);
  ]
