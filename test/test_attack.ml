(* Transient-attack drills: each mechanism succeeds exactly when the
   matching defense is absent (paper §6's defense matrix), plus the
   JumpSwitches comparator's behavioural model. *)

module Engine = Pibe_cpu.Engine
module Attack = Pibe_cpu.Attack
module Speculation = Pibe_cpu.Speculation
module Pass = Pibe_harden.Pass
module Js = Pibe_jumpswitch.Jumpswitch
module Gen = Pibe_kernel.Gen

let drill_engine defenses =
  let info = Helpers.kernel () in
  let image = Pass.harden info.Gen.prog defenses in
  let spec = Speculation.create () in
  let config = { (Pass.engine_config image) with Engine.speculation = Some spec } in
  (info, Engine.create ~config image.Pass.prog)

let read_args info = [ Gen.nr info "read"; 0; 5 ]

let v2 defenses =
  let info, engine = drill_engine defenses in
  (Attack.spectre_v2 engine ~victim_site:info.Gen.victim_icall_site ~gadget:info.Gen.gadget
     ~entry:info.Gen.entry ~args:(read_args info))
    .Attack.gadget_reached

let r2s ?(scenario = Speculation.User_pollution) ?(rsb_refill = false) defenses =
  let info = Helpers.kernel () in
  let image = Pass.harden ~rsb_refill info.Gen.prog defenses in
  let spec = Speculation.create () in
  let config = { (Pass.engine_config image) with Engine.speculation = Some spec } in
  let engine = Engine.create ~config image.Pass.prog in
  (Attack.ret2spec engine ~scenario ~gadget:info.Gen.gadget ~entry:info.Gen.entry
     ~args:(read_args info))
    .Attack.gadget_reached

let lvi defenses =
  let info, engine = drill_engine defenses in
  (Attack.lvi engine ~poisoned_addr:info.Gen.victim_ops_addr
     ~injected_fptr:info.Gen.gadget_fptr ~entry:info.Gen.entry ~args:(read_args info))
    .Attack.gadget_reached

(* V2 through a landing-pad-valid gadget: the injected target is a real
   registered handler with a pad of matching arity, so FineIBT's check
   passes — only target-hiding defenses (retpolines) stop it. *)
let v2_pad defenses =
  let info, engine = drill_engine defenses in
  (Attack.spectre_v2_valid_pad engine ~victim_site:info.Gen.victim_icall_site
     ~valid_gadget:info.Gen.valid_gadget ~entry:info.Gen.entry ~args:(read_args info))
    .Attack.gadget_reached

let pac_forge defenses =
  let info, engine = drill_engine defenses in
  (Attack.pac_forgery engine ~gadget:info.Gen.gadget ~entry:info.Gen.entry
     ~args:(read_args info))
    .Attack.gadget_reached

let retp = { Pass.no_defenses with Pass.retpolines = true }
let retret = { Pass.no_defenses with Pass.ret_retpolines = true }
let lvi_only = { Pass.no_defenses with Pass.lvi = true }
let fineibt_only = { Pass.no_defenses with Pass.fineibt = true }
let pac_only = { Pass.no_defenses with Pass.pac = true }
let coarse_only = { Pass.no_defenses with Pass.coarse_cfi = true }
let fineibt_pac = { Pass.no_defenses with Pass.fineibt = true; pac = true }

let test_v2_matrix () =
  Alcotest.(check bool) "undefended reached" true (v2 Pass.no_defenses);
  Alcotest.(check bool) "retpolines block" false (v2 retp);
  Alcotest.(check bool) "lvi thunk does NOT block v2" true (v2 lvi_only);
  Alcotest.(check bool) "ret-retpolines do NOT block v2" true (v2 retret);
  Alcotest.(check bool) "all block" false (v2 Pass.all_defenses)

let test_ret2spec_matrix () =
  Alcotest.(check bool) "undefended reached" true (r2s Pass.no_defenses);
  Alcotest.(check bool) "retpolines do NOT block" true (r2s retp);
  Alcotest.(check bool) "ret-retpolines block" false (r2s retret);
  Alcotest.(check bool) "lvi-ret does NOT block rsb poisoning" true (r2s lvi_only);
  Alcotest.(check bool) "all block" false (r2s Pass.all_defenses)

let test_rsb_refill_partial () =
  (* refilling defeats user pollution but not in-kernel desync (§6.4) *)
  Alcotest.(check bool) "refill blocks user pollution" false
    (r2s ~rsb_refill:true Pass.no_defenses);
  Alcotest.(check bool) "refill misses cross-thread desync" true
    (r2s ~scenario:Speculation.Cross_thread ~rsb_refill:true Pass.no_defenses);
  Alcotest.(check bool) "ret-retpolines block both" false
    (r2s ~scenario:Speculation.Cross_thread ~rsb_refill:false retret)

let test_lvi_matrix () =
  Alcotest.(check bool) "undefended reached" true (lvi Pass.no_defenses);
  Alcotest.(check bool) "retpolines do NOT block lvi" true (lvi retp);
  Alcotest.(check bool) "lvi fences block" false (lvi lvi_only);
  Alcotest.(check bool) "all block" false (lvi Pass.all_defenses)

(* The exhaustive drill x defense matrix: every registered defense set
   against every drill, pinning each defense's blind spots as much as
   its advertised blocks.  Column order: v2, v2-pad, r2s-user,
   r2s-xthread, pac-forge, lvi; true = gadget reached. *)
let test_full_matrix () =
  let drills =
    [
      ("v2", v2);
      ("v2-pad", v2_pad);
      ("r2s-user", fun d -> r2s d);
      ("r2s-xthread", fun d -> r2s ~scenario:Speculation.Cross_thread d);
      ("pac-forge", pac_forge);
      ("lvi", lvi);
    ]
  in
  let sets =
    [
      ("none", Pass.no_defenses, [ true; true; true; true; true; true ]);
      ("retpolines", retp, [ false; false; true; true; true; true ]);
      ("ret-retpolines", retret, [ true; true; false; false; false; true ]);
      ("lvi-cfi", lvi_only, [ true; true; true; true; true; false ]);
      ("fineibt", fineibt_only, [ false; true; true; true; true; false ]);
      ("pac-ret", pac_only, [ true; true; false; false; true; true ]);
      ("coarse-cfi", coarse_only, [ true; true; true; true; true; true ]);
      ("fineibt+pac", fineibt_pac, [ false; true; false; false; true; false ]);
      ("all-defenses", Pass.all_defenses, [ false; false; false; false; false; false ]);
    ]
  in
  List.iter
    (fun (set_name, d, expected) ->
      List.iter2
        (fun (drill_name, drill) want ->
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s" drill_name set_name)
            want (drill d))
        drills expected)
    sets

let test_asm_site_always_vulnerable () =
  let info, engine = drill_engine Pass.all_defenses in
  let outcome =
    Attack.spectre_v2 engine ~victim_site:info.Gen.pv_call_site ~gadget:info.Gen.gadget
      ~entry:info.Gen.entry
      ~args:[ Gen.nr info "mmap"; 4096; 4096 ]
  in
  Alcotest.(check bool) "para-virt asm call reached despite all defenses" true
    outcome.Attack.gadget_reached

let test_attack_requires_spec_state () =
  let info = Helpers.kernel () in
  let engine = Engine.create info.Gen.prog in
  (try
     ignore
       (Attack.ret2spec engine ~scenario:Speculation.User_pollution
          ~gadget:info.Gen.gadget ~entry:info.Gen.entry ~args:(read_args info));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* --------------------------- jumpswitches --------------------------- *)

let site n = { Pibe_ir.Types.site_id = n; site_origin = n }

let test_js_learns_then_patches () =
  let js = Js.create ~config:{ Js.default_config with Js.learning_calls = 4 } () in
  (* learning phase: retpoline-priced *)
  let learning = Js.transfer_cost js ~site:(site 1) ~target:"f" in
  Alcotest.(check bool) "learning is expensive" true (learning > 20);
  for _ = 1 to 4 do
    ignore (Js.transfer_cost js ~site:(site 1) ~target:"f")
  done;
  (* patched now: hits are a couple of cycles *)
  let hit = Js.transfer_cost js ~site:(site 1) ~target:"f" in
  Alcotest.(check bool) "patched hit is cheap" true (hit <= 4);
  match Js.stats js ~site_id:1 with
  | Some s ->
    Alcotest.(check int) "one patch" 1 s.Js.patches;
    Alcotest.(check bool) "hits counted" true (s.Js.slot_hits > 0)
  | None -> Alcotest.fail "expected stats"

let test_js_multi_target_relearns () =
  let config =
    { Js.default_config with Js.learning_calls = 4; relearn_period = 16; slots_per_site = 2 }
  in
  let js = Js.create ~config () in
  (* 4 rotating targets exceed the 2 slots: the site must be downgraded
     back to learning at least once. *)
  for i = 0 to 400 do
    ignore (Js.transfer_cost js ~site:(site 9) ~target:(Printf.sprintf "t%d" (i mod 4)))
  done;
  match Js.stats js ~site_id:9 with
  | Some s ->
    Alcotest.(check bool) "relearned (several patches)" true (s.Js.patches >= 2);
    (* [seen] resets on every downgrade, so only the current epoch's
       targets are recorded *)
    Alcotest.(check bool) "targets tracked" true (s.Js.distinct_targets >= 1);
    Alcotest.(check bool) "fallbacks happened" true (s.Js.fallback_calls > 10)
  | None -> Alcotest.fail "expected stats"

let test_js_global_stats () =
  let js = Js.create () in
  ignore (Js.transfer_cost js ~site:(site 1) ~target:"a");
  ignore (Js.transfer_cost js ~site:(site 2) ~target:"b");
  Alcotest.(check int) "two sites, two calls" 2 (Js.global_stats js).Js.total_calls

let suite =
  [
    ("spectre-v2 defense matrix", `Quick, test_v2_matrix);
    ("ret2spec defense matrix", `Quick, test_ret2spec_matrix);
    ("rsb refilling is partial", `Quick, test_rsb_refill_partial);
    ("lvi defense matrix", `Quick, test_lvi_matrix);
    ("exhaustive drill x defense matrix", `Quick, test_full_matrix);
    ("asm para-virt call stays vulnerable", `Quick, test_asm_site_always_vulnerable);
    ("drills require speculation state", `Quick, test_attack_requires_spec_state);
    ("jumpswitch learns then patches", `Quick, test_js_learns_then_patches);
    ("jumpswitch multi-target relearns", `Quick, test_js_multi_target_relearns);
    ("jumpswitch global stats", `Quick, test_js_global_stats);
  ]
