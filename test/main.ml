let () =
  Alcotest.run "pibe"
    [
      ("util", Test_util.suite);
      ("trace", Test_trace.suite);
      ("ir", Test_ir.suite);
      ("cpu", Test_cpu.suite);
      ("backend", Test_backend.suite);
      ("callgraph", Test_callgraph.suite);
      ("profile", Test_profile.suite);
      ("opt", Test_opt.suite);
      ("cleanup", Test_cleanup.suite);
      ("harden", Test_harden.suite);
      ("v1-scan", Test_v1_scan.suite);
      ("kernel", Test_kernel.suite);
      ("attack", Test_attack.suite);
      ("pipeline", Test_pipeline.suite);
      ("stale", Test_stale.suite);
      ("pm", Test_pm.suite);
      ("online", Test_online.suite);
      ("core", Test_core.suite);
      ("measure", Test_measure.suite);
      ("experiments", Test_experiments.suite);
    ]
