(* Optimization passes: budgets, InlineCost, and — most importantly —
   differential semantic preservation of the inlining and promotion
   transformations on randomly generated programs. *)

open Pibe_ir
open Types
module Budget = Pibe_opt.Budget
module Inline_cost = Pibe_opt.Inline_cost
module Transform = Pibe_opt.Transform
module Inliner = Pibe_opt.Inliner
module Icp = Pibe_opt.Icp
module Profile = Pibe_profile.Profile

(* ----------------------------- budget ------------------------------ *)

let test_budget_selects_hottest_prefix () =
  let sel =
    Budget.select ~budget_pct:50.0 [ ("a", 10); ("b", 60); ("c", 30) ]
  in
  Alcotest.(check (list (pair string int))) "hottest" [ ("b", 60) ] sel.Budget.selected;
  Alcotest.(check int) "total" 100 sel.Budget.total_weight;
  Alcotest.(check int) "cutoff" 60 sel.Budget.cutoff_weight

let test_budget_full () =
  let sel = Budget.select ~budget_pct:100.0 [ ("a", 1); ("b", 2); ("z", 0) ] in
  Alcotest.(check int) "zero-weight excluded" 2 (List.length sel.Budget.selected)

let test_budget_zero () =
  let sel = Budget.select ~budget_pct:0.0 [ ("a", 5) ] in
  Alcotest.(check int) "nothing selected" 0 (List.length sel.Budget.selected)

let prop_budget_monotone =
  QCheck.Test.make ~name:"larger budgets select supersets" ~count:200
    QCheck.(pair (list (pair small_string small_nat)) (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (items, (b1, b2)) ->
      let lo = Float.min b1 b2 and hi = Float.max b1 b2 in
      let s1 = (Budget.select ~budget_pct:lo items).Budget.selected in
      let s2 = (Budget.select ~budget_pct:hi items).Budget.selected in
      List.length s1 <= List.length s2)

let prop_budget_weight_covered =
  QCheck.Test.make ~name:"selection reaches the requested share" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 15) small_nat)
    (fun weights ->
      let items = List.mapi (fun i w -> (i, w)) weights in
      let sel = Budget.select ~budget_pct:90.0 items in
      sel.Budget.total_weight = 0
      || float_of_int sel.Budget.selected_weight
         >= 0.9 *. float_of_int sel.Budget.total_weight)

(* --------------------------- inline cost --------------------------- *)

let test_inline_cost_call_args () =
  let site = { site_id = 0; site_origin = 0 } in
  let c0 = Inline_cost.inst_cost (Call { dst = None; callee = "f"; args = []; site; tail = false }) in
  let c2 =
    Inline_cost.inst_cost
      (Call { dst = None; callee = "f"; args = [ Imm 1; Imm 2 ]; site; tail = false })
  in
  Alcotest.(check int) "base call" 5 c0;
  Alcotest.(check int) "5 + 5*num_args" 15 c2

let test_inline_cost_standard () =
  Alcotest.(check int) "standard" 5 (Inline_cost.inst_cost (Assign (0, Const 1)));
  Alcotest.(check int) "rule thresholds" 12_000 Inline_cost.rule2_default;
  Alcotest.(check int) "rule3" 3_000 Inline_cost.rule3_default

(* ------------------------ transform: inline ------------------------ *)

let direct_sites prog =
  List.rev
    (Program.fold_funcs prog ~init:[] ~f:(fun acc f ->
         List.fold_left
           (fun acc ((s : site), callee) -> (f.fname, s.site_id, callee) :: acc)
           acc (Func.call_sites f)))

let prop_inline_preserves_semantics =
  QCheck.Test.make ~name:"inline_call preserves observable behaviour" ~count:150
    QCheck.(pair small_int small_int)
    (fun (seed, pick) ->
      let prog = Helpers.random_program seed in
      match direct_sites prog with
      | [] -> true
      | sites ->
        let caller, site_id, _ = List.nth sites (pick mod List.length sites) in
        let prog', _ = Transform.inline_call prog ~caller ~site_id in
        Validate.check_program prog' = [] && Helpers.equivalent prog prog')

let prop_inline_removes_site_keeps_others =
  QCheck.Test.make ~name:"inline_call removes exactly the chosen site" ~count:100
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program seed in
      match direct_sites prog with
      | [] -> true
      | (caller, site_id, _) :: _ ->
        let prog', cloned = Transform.inline_call prog ~caller ~site_id in
        let f' = Program.find prog' caller in
        let still_there =
          List.exists (fun ((s : site), _) -> s.site_id = site_id) (Func.call_sites f')
        in
        (not still_there)
        && List.for_all
             (fun (c : Transform.cloned_site) ->
               c.Transform.new_site.site_origin = c.Transform.callee_site.site_origin)
             cloned)

let test_inline_rejects_bad_site () =
  let prog = Helpers.random_program 31 in
  try
    ignore (Transform.inline_call prog ~caller:"f0" ~site_id:99999);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ------------------------ transform: promote ----------------------- *)

let icall_sites_of prog =
  List.rev
    (Program.fold_funcs prog ~init:[] ~f:(fun acc f ->
         List.fold_left
           (fun acc (s : site) -> (f.fname, s.site_id) :: acc)
           acc (Func.icall_sites f)))

let prop_promote_preserves_semantics =
  QCheck.Test.make ~name:"promote_icall preserves observable behaviour" ~count:150
    QCheck.(pair small_int small_int)
    (fun (seed, pick) ->
      let prog = Helpers.random_program seed in
      match icall_sites_of prog with
      | [] -> true
      | sites ->
        let caller, site_id = List.nth sites (pick mod List.length sites) in
        (* promote every registered target, and also a subset *)
        let all = Array.to_list prog.Program.fptr_table in
        let subset = [ List.hd all ] in
        List.for_all
          (fun targets ->
            let prog', promo = Transform.promote_icall prog ~caller ~site_id ~targets in
            Validate.check_program prog' = []
            && List.length promo.Transform.promoted = List.length targets
            && Helpers.equivalent prog prog')
          [ all; subset ])

let test_promote_fallback_origin () =
  let prog = Helpers.random_program 33 in
  match icall_sites_of prog with
  | [] -> ()
  | (caller, site_id) :: _ ->
    let origin =
      let f = Program.find prog caller in
      let s = List.find (fun (s : site) -> s.site_id = site_id) (Func.icall_sites f) in
      s.site_origin
    in
    let prog', promo =
      Transform.promote_icall prog ~caller ~site_id
        ~targets:[ prog.Program.fptr_table.(0) ]
    in
    ignore prog';
    Alcotest.(check int) "fallback keeps origin" origin
      promo.Transform.fallback_site.site_origin

(* --------------------------- site lookup ---------------------------- *)

(* Three blocks with one call each: the early-exit scan must report the
   exact (block, index) coordinates wherever the site lives, not just in
   the entry block. *)
let test_find_site_in_func_multi_block () =
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, s0 = Program.fresh_site prog in
  let prog, s1 = Program.fresh_site prog in
  let prog, s2 = Program.fresh_site prog in
  let b = Builder.create ~name:"f" ~params:1 in
  let x = Builder.param b 0 in
  let mid = Builder.new_block b in
  let last = Builder.new_block b in
  Builder.call b s0 "g" [ Reg x ];
  Builder.jmp b mid;
  Builder.switch_to b mid;
  let r = Builder.reg b in
  Builder.assign b r (Binop (Add, Reg x, Imm 1));
  Builder.call b s1 "g" [ Reg r ];
  Builder.jmp b last;
  Builder.switch_to b last;
  Builder.call b s2 "g" [ Reg x ];
  Builder.ret b None;
  let f = Builder.finish b () in
  ignore prog;
  let coords site =
    match Transform.find_site_in_func f site.site_id with
    | Some (bi, j, _) -> Some (bi, j)
    | None -> None
  in
  Alcotest.(check (option (pair int int))) "entry block" (Some (0, 0)) (coords s0);
  Alcotest.(check (option (pair int int)))
    "call after an assign in the middle block" (Some (1, 1)) (coords s1);
  Alcotest.(check (option (pair int int))) "last block" (Some (2, 0)) (coords s2);
  Alcotest.(check (option (pair int int)))
    "unknown site id" None
    (match Transform.find_site_in_func f 4242 with
    | Some (bi, j, _) -> Some (bi, j)
    | None -> None)

(* ------------------------------ inliner ----------------------------- *)

(* A chain a -> b -> c with profiled weights; the greedy inliner should
   flatten it completely under a permissive budget. *)
let chain_program () =
  let prog = Program.with_globals_size Program.empty 8 in
  let leaf =
    let b = Builder.create ~name:"c" ~params:1 in
    let x = Builder.param b 0 in
    let r = Builder.reg b in
    Builder.assign b r (Binop (Add, Reg x, Imm 3));
    Builder.observe b (Reg r);
    Builder.ret b (Some (Reg r));
    Builder.finish b ()
  in
  let prog = Program.add_func prog leaf in
  let prog, s_bc = Program.fresh_site prog in
  let b = Builder.create ~name:"b" ~params:1 in
  let x = Builder.param b 0 in
  let r = Builder.reg b in
  Builder.call b ~dst:r s_bc "c" [ Reg x ];
  Builder.ret b (Some (Reg r));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let prog, s_ab = Program.fresh_site prog in
  let b = Builder.create ~name:"a" ~params:1 in
  let x = Builder.param b 0 in
  let r = Builder.reg b in
  Builder.call b ~dst:r s_ab "b" [ Reg x ];
  Builder.ret b (Some (Reg r));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let profile = Profile.create () in
  Profile.add_direct profile ~origin:s_ab.site_id ~count:100;
  Profile.add_direct profile ~origin:s_bc.site_id ~count:100;
  Profile.add_entry profile ~func:"a" ~count:100;
  Profile.add_entry profile ~func:"b" ~count:100;
  Profile.add_entry profile ~func:"c" ~count:100;
  (prog, profile)

let test_inliner_flattens_chain () =
  let prog, profile = chain_program () in
  let prog', stats =
    Inliner.run prog profile { Inliner.default_config with Inliner.budget_pct = 100.0 }
  in
  Alcotest.(check int) "two inline ops" 2 stats.Inliner.inlined_sites;
  (* a's body no longer calls anything on the hot path *)
  let a = Program.find prog' "a" in
  Alcotest.(check int) "a is call-free" 0 (List.length (Func.call_sites a));
  Alcotest.(check bool) "still equivalent" true (Helpers.equivalent ~calls:[ ("a", [ 5 ]) ] prog prog')

let test_inliner_zero_budget_noop () =
  let prog, profile = chain_program () in
  let prog', stats =
    Inliner.run prog profile { Inliner.default_config with Inliner.budget_pct = 0.0 }
  in
  Alcotest.(check int) "nothing inlined" 0 stats.Inliner.inlined_sites;
  Alcotest.(check bool) "program unchanged" true
    (Printer.program_to_string prog' = Printer.program_to_string prog)

let test_inliner_respects_noinline () =
  let prog, profile = chain_program () in
  let c = Program.find prog "c" in
  let prog = Program.update_func prog { c with attrs = { c.attrs with noinline = true } } in
  let prog', stats =
    Inliner.run prog profile { Inliner.default_config with Inliner.budget_pct = 100.0 }
  in
  Alcotest.(check int) "only a->b inlined" 1 stats.Inliner.inlined_sites;
  Alcotest.(check bool) "blocked weight recorded" true
    (stats.Inliner.blocked_other_weight > 0);
  ignore prog'

let test_inliner_never_inlines_recursion () =
  let prog = Program.with_globals_size Program.empty 8 in
  let prog, site = Program.fresh_site prog in
  let b = Builder.create ~name:"r" ~params:1 in
  let x = Builder.param b 0 in
  let cont = Builder.new_block b in
  let stop = Builder.new_block b in
  Builder.br b (Reg x) cont stop;
  Builder.switch_to b cont;
  let d = Builder.reg b in
  Builder.assign b d (Binop (Sub, Reg x, Imm 1));
  let r = Builder.reg b in
  Builder.call b ~dst:r site "r" [ Reg d ];
  Builder.ret b (Some (Reg r));
  Builder.switch_to b stop;
  Builder.ret b (Some (Imm 0));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let profile = Profile.create () in
  Profile.add_direct profile ~origin:site.site_id ~count:1000;
  Profile.add_entry profile ~func:"r" ~count:1000;
  let prog', stats =
    Inliner.run prog profile { Inliner.default_config with Inliner.budget_pct = 100.0 }
  in
  Alcotest.(check int) "nothing inlined" 0 stats.Inliner.inlined_sites;
  Alcotest.(check bool) "recursion counted as other" true
    (stats.Inliner.blocked_other_weight = 1000);
  ignore prog'

let prop_inliner_preserves_semantics =
  QCheck.Test.make ~name:"full greedy inliner preserves behaviour" ~count:80
    QCheck.small_int (fun seed ->
      let prog = Helpers.random_program seed in
      (* Build a synthetic profile that weights every direct site. *)
      let profile = Profile.create () in
      List.iteri
        (fun i (_, sid, _) -> Profile.add_direct profile ~origin:sid ~count:(100 + i))
        (direct_sites prog);
      Program.iter_funcs prog (fun f ->
          Profile.add_entry profile ~func:f.fname ~count:100);
      let prog', _ =
        Inliner.run prog profile { Inliner.default_config with Inliner.budget_pct = 100.0 }
      in
      Validate.check_program prog' = [] && Helpers.equivalent prog prog')

(* -------------------------------- icp ------------------------------- *)

let test_icp_on_kernel_preserves_read_results () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  (* profile the kernel lightly *)
  let profile =
    Pibe.Pipeline.profile prog ~run:(fun engine ->
        let nr = Pibe_kernel.Gen.nr info "read" in
        for fd = 0 to 30 do
          ignore (Pibe_cpu.Engine.call engine info.Pibe_kernel.Gen.entry [ nr; fd; 17 ])
        done)
  in
  let prog', stats = Icp.run prog profile { Icp.budget_pct = 100.0; max_targets = None } in
  Alcotest.(check bool) "something promoted" true (stats.Icp.promoted_targets > 0);
  Validate.check_exn prog';
  let read_results p =
    let engine = Pibe_cpu.Engine.create p in
    let nr = Pibe_kernel.Gen.nr info "read" in
    List.init 40 (fun fd ->
        Pibe_cpu.Engine.call engine info.Pibe_kernel.Gen.entry [ nr; fd; 23 ])
  in
  Alcotest.(check bool) "same syscall results" true (read_results prog = read_results prog')

let test_icp_updates_profile () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  let profile =
    Pibe.Pipeline.profile prog ~run:(fun engine ->
        let nr = Pibe_kernel.Gen.nr info "read" in
        for fd = 0 to 20 do
          ignore (Pibe_cpu.Engine.call engine info.Pibe_kernel.Gen.entry [ nr; fd; 9 ])
        done)
  in
  let victim = info.Pibe_kernel.Gen.victim_icall_site in
  let before = List.length (Profile.value_profile profile ~origin:victim) in
  Alcotest.(check bool) "victim profiled" true (before > 0);
  let _, _ = Icp.run prog profile { Icp.budget_pct = 100.0; max_targets = None } in
  Alcotest.(check int) "all targets moved to direct counts" 0
    (List.length (Profile.value_profile profile ~origin:victim))

let test_icp_max_targets () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  let profile =
    Pibe.Pipeline.profile prog ~run:(fun engine ->
        let nr = Pibe_kernel.Gen.nr info "read" in
        for fd = 0 to 60 do
          ignore (Pibe_cpu.Engine.call engine info.Pibe_kernel.Gen.entry [ nr; fd; 9 ])
        done)
  in
  let _, unlimited =
    Icp.run prog (Pibe_profile.Profile.copy profile)
      { Icp.budget_pct = 100.0; max_targets = None }
  in
  let _, capped =
    Icp.run prog (Pibe_profile.Profile.copy profile)
      { Icp.budget_pct = 100.0; max_targets = Some 1 }
  in
  Alcotest.(check bool) "cap reduces promoted targets" true
    (capped.Icp.promoted_targets < unlimited.Icp.promoted_targets);
  Alcotest.(check int) "one per site" capped.Icp.promoted_sites capped.Icp.promoted_targets

let suite =
  [
    ("budget selects hottest prefix", `Quick, test_budget_selects_hottest_prefix);
    ("budget 100% excludes zero-weight", `Quick, test_budget_full);
    ("budget 0% selects nothing", `Quick, test_budget_zero);
    Helpers.qcheck_to_alcotest prop_budget_monotone;
    Helpers.qcheck_to_alcotest prop_budget_weight_covered;
    ("inline cost: call args", `Quick, test_inline_cost_call_args);
    ("inline cost: standard + thresholds", `Quick, test_inline_cost_standard);
    Helpers.qcheck_to_alcotest prop_inline_preserves_semantics;
    Helpers.qcheck_to_alcotest prop_inline_removes_site_keeps_others;
    ("inline rejects bad site", `Quick, test_inline_rejects_bad_site);
    ("find_site_in_func multi-block", `Quick, test_find_site_in_func_multi_block);
    Helpers.qcheck_to_alcotest prop_promote_preserves_semantics;
    ("promote fallback keeps origin", `Quick, test_promote_fallback_origin);
    ("inliner flattens hot chain", `Quick, test_inliner_flattens_chain);
    ("inliner zero budget is a no-op", `Quick, test_inliner_zero_budget_noop);
    ("inliner respects noinline", `Quick, test_inliner_respects_noinline);
    ("inliner never inlines recursion", `Quick, test_inliner_never_inlines_recursion);
    Helpers.qcheck_to_alcotest prop_inliner_preserves_semantics;
    ("icp preserves kernel behaviour", `Quick, test_icp_on_kernel_preserves_read_results);
    ("icp updates the profile", `Quick, test_icp_updates_profile);
    ("icp max_targets cap", `Quick, test_icp_max_targets);
  ]
