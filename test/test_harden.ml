(* Hardening pass: protection kinds per defense set, jump-table lowering,
   audit accounting, image sizes, listings. *)

open Pibe_ir
open Types
module Pass = Pibe_harden.Pass
module Audit = Pibe_harden.Audit
module Thunks = Pibe_harden.Thunks
module Cfi = Pibe_harden.Cfi

let kernel_prog () = (Helpers.kernel ()).Pibe_kernel.Gen.prog

let test_forward_kinds () =
  Alcotest.(check bool) "none" true (Pass.forward_kind Pass.no_defenses = Protection.F_none);
  Alcotest.(check bool) "retp" true
    (Pass.forward_kind { Pass.no_defenses with Pass.retpolines = true }
    = Protection.F_retpoline);
  Alcotest.(check bool) "lvi" true
    (Pass.forward_kind { Pass.no_defenses with Pass.lvi = true } = Protection.F_lvi);
  Alcotest.(check bool) "combined = fenced" true
    (Pass.forward_kind Pass.all_defenses = Protection.F_fenced_retpoline)

let test_backward_kinds () =
  Alcotest.(check bool) "retret" true
    (Pass.backward_kind { Pass.no_defenses with Pass.ret_retpolines = true }
    = Protection.B_ret_retpoline);
  Alcotest.(check bool) "combined" true
    (Pass.backward_kind Pass.all_defenses = Protection.B_fenced_ret_retpoline);
  Alcotest.(check bool) "retp only leaves returns bare" true
    (Pass.backward_kind { Pass.no_defenses with Pass.retpolines = true }
    = Protection.B_none)

(* CFI/PAC kinds and their precedence: the retpoline family wins over
   the CFI family on both edges (stronger transient guarantee), FineIBT
   over the coarse baseline. *)
let test_cfi_kinds_and_precedence () =
  Alcotest.(check bool) "fineibt" true
    (Pass.forward_kind { Pass.no_defenses with Pass.fineibt = true } = Protection.F_fineibt);
  Alcotest.(check bool) "coarse" true
    (Pass.forward_kind { Pass.no_defenses with Pass.coarse_cfi = true }
    = Protection.F_coarse_cfi);
  Alcotest.(check bool) "retpoline beats fineibt" true
    (Pass.forward_kind { Pass.no_defenses with Pass.retpolines = true; fineibt = true }
    = Protection.F_retpoline);
  Alcotest.(check bool) "fineibt beats coarse" true
    (Pass.forward_kind { Pass.no_defenses with Pass.fineibt = true; coarse_cfi = true }
    = Protection.F_fineibt);
  Alcotest.(check bool) "pac" true
    (Pass.backward_kind { Pass.no_defenses with Pass.pac = true } = Protection.B_pac);
  Alcotest.(check bool) "ret-retpoline beats pac" true
    (Pass.backward_kind { Pass.no_defenses with Pass.ret_retpolines = true; pac = true }
    = Protection.B_ret_retpoline)

(* The landing-pad analysis on the generated kernel: registered handlers
   (fptr index written into initialized memory) get pads, the planted
   gadget (fptr-table entry only) does not. *)
let test_cfi_pad_analysis () =
  let info = Helpers.kernel () in
  let cfi = Cfi.analyze info.Pibe_kernel.Gen.prog in
  Alcotest.(check bool) "registered handler has a pad" true
    (Cfi.has_pad cfi info.Pibe_kernel.Gen.valid_gadget);
  Alcotest.(check bool) "planted gadget has no pad" false
    (Cfi.has_pad cfi info.Pibe_kernel.Gen.gadget);
  Alcotest.(check bool) "pads are a strict subset of address-taken" true
    (Cfi.pad_count cfi > 0 && Cfi.pad_count cfi < Cfi.address_taken_count cfi)

let test_fineibt_pad_bytes_in_footprint () =
  let info = Helpers.kernel () in
  let prog = info.Pibe_kernel.Gen.prog in
  let fineibt = Pass.harden prog { Pass.no_defenses with Pass.fineibt = true } in
  let bare = Pass.harden prog Pass.no_defenses in
  let f = Program.find prog info.Pibe_kernel.Gen.valid_gadget in
  Alcotest.(check bool) "padded handler grows under fineibt" true
    (Pass.footprint fineibt f > Pass.footprint bare f);
  Alcotest.(check bool) "pac image grows" true
    (Pass.image_bytes (Pass.harden prog { Pass.no_defenses with Pass.pac = true })
    > Pass.image_bytes bare);
  Alcotest.(check bool) "fineibt image audits fully protected" true
    (Audit.fully_protected (Audit.run fineibt)
       ~against:{ Pass.no_defenses with Pass.fineibt = true })

let test_all_icalls_protected () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      if not f.attrs.is_asm then
        List.iter
          (fun (s : site) ->
            Alcotest.(check bool)
              (Printf.sprintf "site %d protected" s.site_id)
              true
              (Pass.fwd_protection image s = Protection.F_fenced_retpoline))
          (Func.icall_sites f))

let test_jump_tables_lowered_except_asm () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      let jts = Func.jump_table_count f in
      if f.attrs.is_asm then ()
      else Alcotest.(check int) (f.fname ^ " has no jump tables") 0 jts)

let test_no_defenses_keeps_jump_tables () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.no_defenses in
  let total =
    Program.fold_funcs image.Pass.prog ~init:0 ~f:(fun acc f -> acc + Func.jump_table_count f)
  in
  Alcotest.(check bool) "jump tables survive" true (total > 10)

let test_boot_only_exempt_backward () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  Program.iter_funcs image.Pass.prog (fun f ->
      if f.attrs.boot_only then
        Alcotest.(check bool) (f.fname ^ " boot-exempt") true
          (Pass.bwd_protection image f.fname = Protection.B_none))

let test_audit_counts_sum () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  let r = Audit.run image in
  let asm_sites =
    Program.fold_funcs prog ~init:0 ~f:(fun acc f ->
        acc + List.length (Func.asm_icall_sites f))
  in
  Alcotest.(check int) "defended + vulnerable = icalls + asm sites"
    (Program.total_icall_sites prog + asm_sites)
    (r.Audit.defended_icalls + r.Audit.vulnerable_icalls);
  Alcotest.(check int) "return partition"
    (Program.total_ret_sites prog)
    (r.Audit.defended_rets + r.Audit.vulnerable_rets);
  Alcotest.(check bool) "fully protected modulo asm/boot" true
    (Audit.fully_protected r ~against:Pass.all_defenses);
  Alcotest.(check bool) "asm residue exists (para-virt)" true (r.Audit.asm_icalls > 0);
  Alcotest.(check bool) "a few asm jump tables remain" true (r.Audit.vulnerable_ijumps > 0)

let test_audit_no_defense_image () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.no_defenses in
  let r = Audit.run image in
  Alcotest.(check int) "nothing defended" 0 (r.Audit.defended_icalls + r.Audit.defended_rets)

let test_image_bytes_grow_with_defenses () =
  let prog = kernel_prog () in
  let base = Pass.image_bytes (Pass.harden prog Pass.no_defenses) in
  let retp =
    Pass.image_bytes
      (Pass.harden prog { Pass.no_defenses with Pass.retpolines = true })
  in
  let all = Pass.image_bytes (Pass.harden prog Pass.all_defenses) in
  Alcotest.(check bool) "retpolines add bytes" true (retp > base);
  Alcotest.(check bool) "all defenses add more" true (all > retp)

let test_footprint_includes_ret_bytes () =
  let prog = kernel_prog () in
  let image = Pass.harden prog Pass.all_defenses in
  let f = Program.find prog "vfs_read" in
  Alcotest.(check bool) "footprint > layout size" true
    (Pass.footprint image f > Layout.func_size f)

let test_listings_contain_key_instructions () =
  let has needle s =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.equal (String.sub s i n) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "retpoline pauses" true (has "pause" (Thunks.listing `Retpoline));
  Alcotest.(check bool) "lvi fences" true (has "lfence" (Thunks.listing `Lvi_forward));
  Alcotest.(check bool) "backward fences" true (has "lfence" (Thunks.listing `Lvi_backward));
  Alcotest.(check bool) "fenced retpoline nots" true
    (has "notq" (Thunks.listing `Fenced_retpoline));
  Alcotest.(check bool) "fineibt lands on endbr64" true
    (has "endbr64" (Thunks.listing `Fineibt));
  Alcotest.(check bool) "coarse cfi shares one label" true
    (has "endbr64" (Thunks.listing `Coarse_cfi));
  Alcotest.(check bool) "pac signs and authenticates" true
    (has "paciasp" (Thunks.listing `Pac_ret) && has "autiasp" (Thunks.listing `Pac_ret))

let test_defenses_name () =
  Alcotest.(check string) "all" "all-defenses" (Pass.defenses_name Pass.all_defenses);
  Alcotest.(check string) "none" "none" (Pass.defenses_name Pass.no_defenses);
  (* legacy combos keep their exact strings *)
  Alcotest.(check string) "legacy combo intact" "retpolines+lvi"
    (Pass.defenses_name { Pass.no_defenses with Pass.retpolines = true; lvi = true });
  Alcotest.(check string) "fineibt" "fineibt"
    (Pass.defenses_name { Pass.no_defenses with Pass.fineibt = true });
  Alcotest.(check string) "pac" "pac-ret"
    (Pass.defenses_name { Pass.no_defenses with Pass.pac = true });
  Alcotest.(check string) "coarse" "coarse-cfi"
    (Pass.defenses_name { Pass.no_defenses with Pass.coarse_cfi = true });
  Alcotest.(check string) "fineibt+pac" "fineibt+pac-ret"
    (Pass.defenses_name { Pass.no_defenses with Pass.fineibt = true; pac = true });
  Alcotest.(check string) "mixed families" "retpolines+fineibt"
    (Pass.defenses_name { Pass.no_defenses with Pass.retpolines = true; fineibt = true })

let suite =
  [
    ("forward kinds", `Quick, test_forward_kinds);
    ("backward kinds", `Quick, test_backward_kinds);
    ("cfi kinds and precedence", `Quick, test_cfi_kinds_and_precedence);
    ("cfi landing-pad analysis", `Quick, test_cfi_pad_analysis);
    ("fineibt/pac bytes in footprint", `Quick, test_fineibt_pad_bytes_in_footprint);
    ("all icalls protected", `Quick, test_all_icalls_protected);
    ("jump tables lowered except asm", `Quick, test_jump_tables_lowered_except_asm);
    ("no defenses keeps jump tables", `Quick, test_no_defenses_keeps_jump_tables);
    ("boot-only exempt from backward hardening", `Quick, test_boot_only_exempt_backward);
    ("audit counts partition the surface", `Quick, test_audit_counts_sum);
    ("audit of undefended image", `Quick, test_audit_no_defense_image);
    ("image bytes grow with defenses", `Quick, test_image_bytes_grow_with_defenses);
    ("footprint includes hardening bytes", `Quick, test_footprint_includes_ret_bytes);
    ("listings contain key instructions", `Quick, test_listings_contain_key_instructions);
    ("defense names", `Quick, test_defenses_name);
  ]
