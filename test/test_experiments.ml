(* Every registered experiment must run on the quick environment and
   produce the structure (and a few key semantic properties) the paper's
   artifact reports. *)

module Tbl = Pibe_util.Tbl
module Exp = Pibe.Experiments

let table id =
  let env = Helpers.env () in
  match Exp.find id with
  | Some e -> e.Exp.run env
  | None -> Alcotest.failf "experiment %s missing" id

let first id =
  match table id with
  | t :: _ -> t
  | [] -> Alcotest.failf "experiment %s produced no tables" id

let pct_of cell =
  let s = Tbl.cell_text cell in
  float_of_string (String.sub s 0 (String.length s - 1))

let test_registry_complete () =
  let ids = List.map (fun (e : Exp.t) -> e.Exp.id) Exp.all in
  List.iter
    (fun want ->
      Alcotest.(check bool) (want ^ " registered") true (List.mem want ids))
    ([
       "figure1"; "robustness"; "security"; "ablation"; "userspace"; "sensitivity";
       "v1scan"; "passes"; "online"; "fleet"; "frontier"; "stale"; "fixpoint";
     ]
    @ List.init 12 (fun i -> Printf.sprintf "table%d" (i + 1)));
  Alcotest.(check int) "25 experiments" 25 (List.length Exp.all)

let test_table1_shape () =
  let t = first "table1" in
  Alcotest.(check int) "9 defense rows" 9 (List.length (Tbl.rows t));
  (* transient defenses dominate the non-transient ones on SPEC *)
  let spec_pct label =
    match Tbl.find_row t label with
    | Some row -> pct_of (List.nth row 4)
    | None -> Alcotest.failf "row %s missing" label
  in
  Alcotest.(check bool) "all defenses >> llvm-cfi" true
    (spec_pct "all defenses" > spec_pct "LLVM-CFI" +. 10.0);
  Alcotest.(check bool) "retpolines visible on spec" true (spec_pct "retpolines" > 2.0)

let test_table2_shape () =
  let t = first "table2" in
  Alcotest.(check int) "20 ops + geomean" 21 (List.length (Tbl.rows t));
  match Tbl.find_row t "Geometric Mean" with
  | Some row ->
    Alcotest.(check bool) "PGO is a speedup" true (pct_of (List.nth row 5) < 0.0)
  | None -> Alcotest.fail "geomean row missing"

let test_table3_shape () =
  let t = first "table3" in
  match Tbl.find_row t "Geometric Mean" with
  | Some row ->
    let unopt = pct_of (List.nth row 1) in
    let js = pct_of (List.nth row 2) in
    let icp = pct_of (List.nth row 4) in
    Alcotest.(check bool) "icp < jumpswitches < unoptimized" true
      (icp < js && js < unopt)
  | None -> Alcotest.fail "geomean row missing"

let test_table4_shape () =
  let t = first "table4" in
  match Tbl.rows t with
  | [ row ] -> (
    match row with
    | _ :: Tbl.Int one_target :: rest ->
      let rest_sum =
        List.fold_left
          (fun acc c -> match c with Tbl.Int n -> acc + n | _ -> acc)
          0 rest
      in
      Alcotest.(check bool) "single-target sites dominate" true (one_target >= rest_sum / 2);
      Alcotest.(check bool) "multi-target sites exist" true (rest_sum > 0)
    | _ -> Alcotest.fail "unexpected row shape")
  | _ -> Alcotest.fail "expected one row"

let test_table5_shape () =
  let t = first "table5" in
  match Tbl.find_row t "Geometric Mean" with
  | Some row -> (
    match List.map Tbl.cell_text row with
    | _ :: cells ->
      let pcts = List.map (fun s -> float_of_string (String.sub s 0 (String.length s - 1))) cells in
      let noopt = List.nth pcts 0 and lax = List.nth pcts 5 in
      Alcotest.(check int) "six configurations" 6 (List.length pcts);
      Alcotest.(check bool) "order of magnitude" true (lax < noopt /. 5.0)
    | [] -> Alcotest.fail "empty row")
  | None -> Alcotest.fail "geomean row missing"

let test_table6_shape () =
  let t = first "table6" in
  Alcotest.(check int) "five defenses" 5 (List.length (Tbl.rows t));
  List.iter
    (fun label ->
      match Tbl.find_row t label with
      | Some row ->
        Alcotest.(check bool) (label ^ ": PIBE beats LTO") true
          (pct_of (List.nth row 2) < pct_of (List.nth row 1))
      | None -> Alcotest.failf "row %s missing" label)
    [ "Retpolines"; "Return retpolines"; "LVI-CFI"; "All" ]

let test_table7_shape () =
  let t = first "table7" in
  Alcotest.(check int) "3 benchmarks x 4 configs" 12 (List.length (Tbl.rows t));
  (* PIBE's throughput column beats no-optimization on every row *)
  List.iter
    (fun row ->
      match row with
      | [ _; _; _; unopt; pibe ] ->
        Alcotest.(check bool) "pibe >= unopt" true (pct_of pibe >= pct_of unopt)
      | _ -> Alcotest.fail "unexpected row")
    (Tbl.rows t)

let test_table8_shape () =
  let t = first "table8" in
  Alcotest.(check int) "3 budgets + total" 4 (List.length (Tbl.rows t))

let test_table9_shape () =
  let t = first "table9" in
  Alcotest.(check int) "3 budgets" 3 (List.length (Tbl.rows t))

let test_table10_shape () =
  let t = first "table10" in
  Alcotest.(check int) "two statistic rows" 2 (List.length (Tbl.rows t))

let test_table11_vulnerable_icalls_grow () =
  let t = first "table11" in
  (match Tbl.find_row t "Vuln. ICalls" with
  | Some (_ :: Tbl.Int noopt :: rest) ->
    let last = List.fold_left (fun acc c -> match c with Tbl.Int n -> n | _ -> acc) noopt rest in
    Alcotest.(check bool) "duplication grows vulnerable asm calls" true (last >= noopt)
  | _ -> Alcotest.fail "row missing");
  match Tbl.find_row t "Vuln. IJumps" with
  | Some (_ :: cells) ->
    List.iter
      (fun c ->
        match c with
        | Tbl.Int n -> Alcotest.(check bool) "small constant" true (n > 0 && n < 10)
        | _ -> ())
      cells
  | _ -> Alcotest.fail "row missing"

let test_table12_shape () =
  let t = first "table12" in
  Alcotest.(check bool) "several rows" true (List.length (Tbl.rows t) >= 6)

let test_figure1_story () =
  let t = first "figure1" in
  match (Tbl.find_row t "rules 1-2 only (greedy)", Tbl.find_row t "rules 1-3 (PIBE)") with
  | Some greedy, Some pibe ->
    let nth row i = match List.nth row i with Tbl.Int n -> n | _ -> -1 in
    Alcotest.(check int) "same weight elided" (nth greedy 2) (nth pibe 2);
    Alcotest.(check bool) "rule 3 leaves budget to spare" true (nth pibe 5 < nth greedy 5 / 10);
    Alcotest.(check bool) "rule 3 inlines more sites" true (nth pibe 1 > nth greedy 1)
  | _ -> Alcotest.fail "rows missing"

let test_robustness_story () =
  match table "robustness" with
  | [ overlap; t ] ->
    Alcotest.(check int) "two overlap rows" 2 (List.length (Tbl.rows overlap));
    let v label =
      match Tbl.find_row t label with
      | Some row -> pct_of (List.nth row 1)
      | None -> Alcotest.failf "row %s missing" label
    in
    let matched = v "matched profile (LMBench)" in
    let apache = v "mismatched profile (ApacheBench)" in
    let noopt = v "no optimization" in
    Alcotest.(check bool) "matched <= apache <= unoptimized" true
      (matched <= apache && apache < noopt)
  | _ -> Alcotest.fail "expected two tables"

let test_security_story () =
  let t = first "security" in
  let cell label i =
    match Tbl.find_row t label with
    | Some row -> Tbl.cell_text (List.nth row i)
    | None -> Alcotest.failf "row %s missing" label
  in
  List.iter
    (fun i ->
      Alcotest.(check string) "vanilla loses" "GADGET REACHED" (cell "vanilla (no defenses)" i))
    [ 1; 2; 3; 4 ];
  List.iter
    (fun i -> Alcotest.(check string) "all defenses hold" "blocked" (cell "all defenses" i))
    [ 1; 2; 3; 4 ];
  (* RSB refilling blocks the user scenario only (paper §6.4) *)
  Alcotest.(check string) "refill blocks user pollution" "blocked"
    (cell "retpolines + RSB refill" 2);
  Alcotest.(check string) "refill misses cross-thread" "GADGET REACHED"
    (cell "retpolines + RSB refill" 3);
  Alcotest.(check string) "asm call stays exposed" "GADGET REACHED"
    (cell "all defenses + PIBE opt" 5)

let test_ablation_story () =
  let t = first "ablation" in
  Alcotest.(check bool) "several variants" true (List.length (Tbl.rows t) >= 6)

let test_userspace_story () =
  let t = first "userspace" in
  match Tbl.find_row t "Geometric Mean" with
  | Some row ->
    let unopt = pct_of (List.nth row 1) and pibe = pct_of (List.nth row 2) in
    Alcotest.(check bool) "PIBE helps userspace too" true (pibe < unopt /. 2.0)
  | None -> Alcotest.fail "geomean row missing"

let test_v1scan_table () =
  let t = first "v1scan" in
  let get label =
    match Tbl.find_row t label with
    | Some (_ :: Tbl.Int n :: _) -> n
    | _ -> Alcotest.failf "row %s missing" label
  in
  let branches = get "conditional branches" in
  let gadgets = get "candidate gadgets" in
  Alcotest.(check bool) "gadgets rare" true (gadgets * 5 < branches)

let test_passes_instrumentation () =
  match table "passes" with
  | [ baseline; best ] ->
    (* icp, inline, cleanup for the baseline; + three defense rows for the
       best config (plus indented per-pass detail lines) *)
    Alcotest.(check bool) "baseline rows" true (List.length (Tbl.rows baseline) >= 3);
    Alcotest.(check bool) "best-config rows" true (List.length (Tbl.rows best) >= 6);
    let remaining_icalls t =
      List.filter_map
        (function
          | Tbl.Str p :: _ :: _ :: _ :: _ :: _ :: Tbl.Int icalls :: _ -> Some (p, icalls)
          | _ -> None)
        (Tbl.rows t)
    in
    let cells = remaining_icalls best in
    let row prefix =
      match
        List.find_opt
          (fun (p, _) ->
            String.length p >= String.length prefix
            && String.equal (String.sub p 0 (String.length prefix)) prefix)
          cells
      with
      | Some r -> r
      | None -> Alcotest.failf "no %s row in the pass table" prefix
    in
    (* the defense rows run after cleanup and do not touch the IR, so the
       remaining-icall column must be flat from cleanup onward *)
    Alcotest.(check int) "defenses do not change remaining icalls" (snd (row "cleanup"))
      (snd (row "retpoline"));
    Alcotest.(check bool) "icp leaves a positive icall residue" true (snd (row "icp") > 0)
  | tables -> Alcotest.failf "expected two tables, got %d" (List.length tables)

let test_online_story () =
  match table "online" with
  | [ cmp; trace ] -> (
    Alcotest.(check bool) "drift trace has rows" true (List.length (Tbl.rows trace) > 0);
    match Tbl.find_row cmp "whole deployment" with
    | None -> Alcotest.fail "whole-deployment row missing"
    | Some row ->
      (* columns: static-fresh, static-stale, online-adaptive *)
      let fresh = pct_of (List.nth row 1) in
      let stale = pct_of (List.nth row 2) in
      let online = pct_of (List.nth row 3) in
      Alcotest.(check bool) "the stale profile costs performance" true (stale > fresh);
      (* the headline claim: adaptation recovers most of the stale-profile
         overhead, patch downtime included *)
      Alcotest.(check bool) "online recovers most of the gap" true
        (stale -. online > 0.5 *. (stale -. fresh)))
  | tables -> Alcotest.failf "expected two tables, got %d" (List.length tables)

let test_frontier_story () =
  let t = first "frontier" in
  let rows = Tbl.rows t in
  (* two rows (LTO, PIBE-PGO) per defense set, at least four sets *)
  Alcotest.(check bool) ">= 4 defense sets" true (List.length rows >= 8);
  let rec pairs = function
    | lto :: pgo :: rest -> (lto, pgo) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun (lto, pgo) ->
      let name = Tbl.cell_text (List.nth lto 0) in
      Alcotest.(check string) (name ^ ": paired rows") name (Tbl.cell_text (List.nth pgo 0));
      (* the ledger is a property of the defense set: both front-ends
         report the same surviving surface *)
      Alcotest.(check string) (name ^ ": equal surface")
        (Tbl.cell_text (List.nth lto 3))
        (Tbl.cell_text (List.nth pgo 3));
      Alcotest.(check string) (name ^ ": equal survivors")
        (Tbl.cell_text (List.nth lto 4))
        (Tbl.cell_text (List.nth pgo 4));
      (* ...and at that equal ledger, PGO strictly wins on overhead *)
      Alcotest.(check bool) (name ^ ": PGO strictly cheaper") true
        (pct_of (List.nth pgo 2) < pct_of (List.nth lto 2)))
    (pairs rows);
  let surface name =
    match Tbl.find_row t name with
    | Some row -> Tbl.cell_text (List.nth row 3)
    | None -> Alcotest.failf "row %s missing" name
  in
  Alcotest.(check string) "all defenses close the surface" "0/5" (surface "all-defenses");
  Alcotest.(check string) "coarse CFI blocks nothing" "5/5" (surface "coarse-cfi");
  Alcotest.(check string) "fineibt+pac leaves pad V2 + forgery" "2/5"
    (surface "fineibt+pac-ret")

let test_listings_render () =
  let s = Exp.listings () in
  Alcotest.(check bool) "mentions retpoline" true (String.length s > 200)

let suite =
  [
    ("registry complete", `Quick, test_registry_complete);
    ("table1 shape", `Slow, test_table1_shape);
    ("table2 shape", `Slow, test_table2_shape);
    ("table3 shape", `Slow, test_table3_shape);
    ("table4 shape", `Slow, test_table4_shape);
    ("table5 shape", `Slow, test_table5_shape);
    ("table6 shape", `Slow, test_table6_shape);
    ("table7 shape", `Slow, test_table7_shape);
    ("table8 shape", `Slow, test_table8_shape);
    ("table9 shape", `Slow, test_table9_shape);
    ("table10 shape", `Slow, test_table10_shape);
    ("table11 vulnerable icalls", `Slow, test_table11_vulnerable_icalls_grow);
    ("table12 shape", `Slow, test_table12_shape);
    ("figure1 story", `Quick, test_figure1_story);
    ("robustness story", `Slow, test_robustness_story);
    ("security story", `Slow, test_security_story);
    ("ablation story", `Slow, test_ablation_story);
    ("passes instrumentation", `Slow, test_passes_instrumentation);
    ("online continuous profiling story", `Slow, test_online_story);
    ("userspace extension", `Slow, test_userspace_story);
    ("v1 scan table", `Quick, test_v1scan_table);
    ("frontier story", `Slow, test_frontier_story);
    ("listings render", `Quick, test_listings_render);
  ]
