(* lib/trace: span nesting/balance, sink well-formedness (the Chrome JSON
   round-trips through the bundled parser), counter merging across
   domains, canonical-content determinism at any job count, and the
   disabled path being a genuine no-op (no events, and no effect on
   simulated cycles). *)

module Trace = Pibe_trace.Trace
module Json = Pibe_trace.Json
module Pool = Pibe_util.Pool

let collect f =
  Trace.start ();
  Fun.protect ~finally:(fun () -> ignore (Trace.stop ())) f;
  Trace.stop ()

(* ------------------------- nesting / balance ------------------------- *)

let test_span_nesting () =
  let evs =
    collect (fun () ->
        Trace.span "outer" (fun () ->
            Trace.counter "c" [ ("v", Trace.Int 1) ];
            Trace.span "inner" (fun () -> Trace.instant "tick");
            Trace.span "inner2" (fun () -> ())))
  in
  (match Trace.check_balanced evs with
  | Ok () -> ()
  | Error m -> Alcotest.failf "balanced trace reported unbalanced: %s" m);
  let names =
    List.filter_map
      (fun (e : Trace.event) -> if e.Trace.ph = Trace.Begin then Some e.Trace.name else None)
      evs
  in
  Alcotest.(check (list string)) "span open order" [ "outer"; "inner"; "inner2" ] names;
  (* an End for a span that was never opened must be flagged *)
  let bogus =
    evs
    @ [
        {
          Trace.ph = Trace.End;
          name = "never-opened";
          cat = "";
          ts_ns = 0L;
          dom = 0;
          seq = 9999;
          args = [];
        };
      ]
  in
  (match Trace.check_balanced bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unbalanced trace accepted")

let test_span_exception () =
  let evs =
    collect (fun () ->
        try Trace.span "boom" (fun () -> failwith "expected") with Failure _ -> ())
  in
  (match Trace.check_balanced evs with
  | Ok () -> ()
  | Error m -> Alcotest.failf "span closed on exception should balance: %s" m);
  match List.rev evs with
  | (e : Trace.event) :: _ ->
    Alcotest.(check bool) "end carries exn arg" true (List.mem_assoc "exn" e.Trace.args)
  | [] -> Alcotest.fail "no events collected"

(* ------------------------------ no-op path ------------------------------ *)

let test_disabled_noop () =
  ignore (Trace.stop ());
  Trace.clear ();
  Alcotest.(check bool) "disabled by default" false (Trace.enabled ());
  let r = Trace.span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "span is transparent when disabled" 42 r;
  for i = 1 to 1_000_000 do
    Trace.counter "hot" [ ("i", Trace.Int i) ]
  done;
  Trace.gauge "g" 1.0;
  Trace.instant "i";
  Alcotest.(check int) "no events collected while disabled" 0 (List.length (Trace.events ()))

(* Tracing must not perturb the simulation: the measured (simulated)
   latencies are byte-identical with collection on and off.  This is the
   perf-parity pin for the disabled path — simulated cycles are the
   repository's clock, and the trace layer never touches them. *)
let test_simulation_unperturbed () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let ops =
    match Pibe_kernel.Workload.lmbench info with
    | a :: b :: _ -> [ a; b ]
    | ops -> ops
  in
  let run () =
    let engine = Pibe_cpu.Engine.create info.Pibe_kernel.Gen.prog in
    Pibe.Measure.suite_latencies ~settings:Pibe.Measure.quick_settings engine ops
  in
  let plain = run () in
  Trace.start ();
  let traced = Fun.protect ~finally:(fun () -> ignore (Trace.stop ())) run in
  Alcotest.(check (list (pair string (float 0.0))))
    "latencies identical with tracing on" plain traced

(* ------------------------------- sinks ------------------------------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let traced_build spec_text =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let profile = Pibe.Env.lmbench_profile env in
  let spec =
    match Pibe_pm.Spec.of_string spec_text with
    | Ok s -> s
    | Error e -> Alcotest.failf "bad spec %s: %s" spec_text e
  in
  let passes =
    match Pibe_pm.Registry.of_spec spec with
    | Ok p -> p
    | Error e -> Alcotest.failf "registry rejected %s: %s" spec_text e
  in
  ignore (Pibe_pm.Manager.run info.Pibe_kernel.Gen.prog profile passes)

let test_chrome_roundtrip () =
  (* warm the shared caches before enabling collection *)
  ignore (Pibe.Env.lmbench_profile (Helpers.env ()));
  let evs = collect (fun () -> traced_build "icp(budget=99.999),cleanup,retpoline") in
  Alcotest.(check bool) "events collected" true (List.length evs > 0);
  (match Trace.check_balanced evs with
  | Ok () -> ()
  | Error m -> Alcotest.failf "unbalanced: %s" m);
  let text = Trace.to_chrome evs in
  match Json.parse text with
  | Error e -> Alcotest.failf "chrome sink is not valid JSON: %s" e
  | Ok json -> (
    match Json.member "traceEvents" json with
    | Some (Json.Arr entries) ->
      Alcotest.(check bool) "non-empty traceEvents" true (entries <> []);
      let phases =
        List.map
          (fun entry ->
            (match Json.member "name" entry with
            | Some (Json.Str _) -> ()
            | _ -> Alcotest.fail "entry without string name");
            (match Json.member "ts" entry with
            | Some (Json.Num _) -> ()
            | _ -> Alcotest.fail "entry without numeric ts");
            (match (Json.member "pid" entry, Json.member "tid" entry) with
            | Some (Json.Num _), Some (Json.Num _) -> ()
            | _ -> Alcotest.fail "entry without pid/tid");
            match Json.member "ph" entry with
            | Some (Json.Str p) -> p
            | _ -> Alcotest.fail "entry without ph")
          entries
      in
      let count p = List.length (List.filter (String.equal p) phases) in
      Alcotest.(check int) "every B has an E" (count "B") (count "E");
      Alcotest.(check bool) "has counter samples" true (count "C" > 0)
    | _ -> Alcotest.fail "no traceEvents array")

let test_text_and_csv_sinks () =
  let evs = collect (fun () -> traced_build "cleanup") in
  let text = Trace.to_text evs in
  Alcotest.(check bool) "text sink names the pass" true (contains text "pass:cleanup");
  let csv = Trace.to_csv evs in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv: one row per event plus header" (List.length evs + 1)
    (List.length lines);
  Alcotest.(check string) "csv header" "seq,dom,ph,cat,name,t_us,args" (List.hd lines)

let test_json_parser_negatives () =
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated array accepted");
  (match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing value accepted");
  (match Json.parse "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "{\"a\":[1,2.5,\"x\\n\",true,null]}" with
  | Ok (Json.Obj [ ("a", Json.Arr [ Json.Num 1.0; Json.Num 2.5; Json.Str "x\n"; Json.Bool true; Json.Null ]) ])
    -> ()
  | Ok _ -> Alcotest.fail "parsed to the wrong value"
  | Error e -> Alcotest.failf "valid JSON rejected: %s" e

(* ----------------------- cross-domain counters ----------------------- *)

let counter_work pool =
  Pool.iter pool
    (fun i ->
      Trace.counter "work" [ ("n", Trace.Int i); ("samples", Trace.Int 1) ])
    (List.init 20 Fun.id)

let test_counter_merge_across_domains () =
  let totals jobs =
    let pool = Pool.create ~jobs () in
    let evs = collect (fun () -> counter_work pool) in
    (* drop the "sched" residue (pool:domains etc.) — like [canonical],
       work-counter totals must not depend on how work was scheduled *)
    List.filter (fun ((cat, _, _), _) -> cat <> "sched") (Trace.counter_totals evs)
  in
  let seq = totals 1 and par = totals 4 in
  Alcotest.(check bool) "sequential totals present" true
    (List.assoc_opt ("", "work", "n") seq = Some 190.0
    && List.assoc_opt ("", "work", "samples") seq = Some 20.0);
  (* the merged totals are independent of which domain emitted what *)
  Alcotest.(check bool) "parallel totals equal sequential" true (seq = par)

(* --------------------- determinism across --jobs --------------------- *)

let test_canonical_jobs_invariant () =
  let env = Helpers.env () in
  ignore (Pibe.Env.info env);
  ignore (Pibe.Env.lmbench_profile env);
  let specs =
    [ "icp(budget=99.999),cleanup"; "cleanup"; "icp(budget=99),cleanup,retpoline"; "ret-retpoline" ]
  in
  let run jobs =
    let pool = Pool.create ~jobs () in
    let evs = collect (fun () -> Pool.iter pool traced_build specs) in
    Trace.canonical evs
  in
  let c1 = run 1 and c4 = run 4 in
  Alcotest.(check bool) "canonical stream non-empty" true (c1 <> []);
  Alcotest.(check (list string)) "canonical content identical at jobs 1 and 4" c1 c4

let suite =
  [
    Alcotest.test_case "span nesting and balance" `Quick test_span_nesting;
    Alcotest.test_case "span closes on exception" `Quick test_span_exception;
    Alcotest.test_case "disabled path is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "tracing never perturbs simulated cycles" `Quick
      test_simulation_unperturbed;
    Alcotest.test_case "chrome sink round-trips through JSON parser" `Quick
      test_chrome_roundtrip;
    Alcotest.test_case "text and csv sinks" `Quick test_text_and_csv_sinks;
    Alcotest.test_case "json parser accepts/rejects correctly" `Quick
      test_json_parser_negatives;
    Alcotest.test_case "counter totals merge across domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "canonical content identical at any --jobs" `Quick
      test_canonical_jobs_invariant;
  ]
