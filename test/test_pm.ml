(* Pass manager: spec grammar round-trips, registry diagnostics, and the
   load-bearing guarantee of the refactor — every [Config] variant built
   through the manager produces the byte-identical image the hand-rolled
   seed pipeline produced. *)

module Spec = Pibe_pm.Spec
module Registry = Pibe_pm.Registry
module Manager = Pibe_pm.Manager
module Profile = Pibe_profile.Profile
module Pass = Pibe_harden.Pass

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let spec_gen =
  let open QCheck.Gen in
  let ident =
    let chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.+%-" in
    map
      (fun l -> String.concat "" (List.map (String.make 1) l))
      (list_size (int_range 1 8) (map (String.get chars) (int_range 0 (String.length chars - 1))))
  in
  let arg = pair ident (opt ident) in
  let elem = map (fun (name, args) -> Spec.elem ~args name) (pair ident (list_size (int_range 0 3) arg)) in
  list_size (int_range 1 5) elem

let spec_arb = QCheck.make ~print:Spec.to_string spec_gen

let prop_spec_round_trip =
  QCheck.Test.make ~name:"spec print/parse round-trips" ~count:500 spec_arb (fun spec ->
      match Spec.of_string (Spec.to_string spec) with
      | Ok parsed -> Spec.equal spec parsed
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

let prop_float_arg_round_trip =
  QCheck.Test.make ~name:"float_arg round-trips through float_of_string" ~count:500
    QCheck.(float_range 0.0 100.0)
    (fun f -> Float.equal (float_of_string (Spec.float_arg f)) f)

let test_spec_whitespace_and_canonical () =
  match Spec.of_string " icp ( budget = 99.9 , lax ) ,\tcleanup " with
  | Ok spec ->
    Alcotest.(check string) "canonical form" "icp(budget=99.9,lax),cleanup"
      (Spec.to_string spec)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_spec_rejects_malformed () =
  let bad =
    [
      "";
      ",icp";
      "icp,";
      "icp,,cleanup";
      "icp(";
      "icp()";
      "icp(budget=)";
      "icp(budget=1))";
      "icp(budget=1)x";
      "icp cleanup";
      "icp(=1)";
    ]
  in
  List.iter
    (fun text ->
      match Spec.of_string text with
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions an offset" text)
          true
          (String.length e > 0)
      | Ok spec ->
        Alcotest.failf "%S parsed as %s" text (Spec.to_string spec))
    bad

(* ------------------------------------------------------------------ *)
(* Registry diagnostics                                                *)
(* ------------------------------------------------------------------ *)

let resolve text =
  match Spec.of_string text with
  | Error e -> Error e
  | Ok spec -> Result.map (fun _ -> ()) (Registry.of_spec spec)

let test_registry_rejections () =
  (match resolve "nonsense" with
  | Error e ->
    Alcotest.(check bool) "unknown pass lists the registry" true
      (List.for_all (contains e) Registry.names)
  | Ok () -> Alcotest.fail "unknown pass accepted");
  (match resolve "icp(budget=hot)" with
  | Error e -> Alcotest.(check bool) "bad number named" true (contains e "budget")
  | Ok () -> Alcotest.fail "bad number accepted");
  match resolve "cleanup(budget=1)" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cleanup should take no options"

let test_registry_accepts_all_names () =
  List.iter
    (fun name ->
      match Registry.find (Spec.elem name) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s does not resolve bare: %s" name e)
    Registry.names

(* The registry's self-documentation must round-trip through the spec
   grammar: every documented pass/option combination parses, resolves,
   and re-renders canonically — so `pibe passes` can never drift from
   what the registry actually accepts. *)
let test_registry_infos_round_trip () =
  Alcotest.(check (list string))
    "one info per registered pass, same order" Registry.names
    (List.map (fun (i : Registry.pass_info) -> i.Registry.info_name) Registry.infos);
  List.iter
    (fun (i : Registry.pass_info) ->
      let text = Registry.sample_spec_text i in
      match Spec.of_string text with
      | Error e -> Alcotest.failf "%s: sample %S does not parse: %s" i.Registry.info_name text e
      | Ok spec -> (
        Alcotest.(check string)
          (i.Registry.info_name ^ " sample is canonical")
          text (Spec.to_string spec);
        match Registry.of_spec spec with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "%s: documented options rejected: %s" i.Registry.info_name e))
    Registry.infos

(* ------------------------------------------------------------------ *)
(* Config lowering                                                     *)
(* ------------------------------------------------------------------ *)

let variants =
  [
    ("lto", Pibe.Config.lto);
    ("icp-only retp", Pibe.Exp_common.icp_only ~budget:99.9 Pibe.Exp_common.retpolines_only);
    ( "full strict retret",
      Pibe.Exp_common.full_opt ~icp:99.999 ~inline:99.9 Pibe.Exp_common.ret_retpolines_only );
    ("full lax all", Pibe.Exp_common.best_config Pibe.Exp_common.all_defenses);
    ("full lax fineibt+pac", Pibe.Exp_common.best_config Pibe.Exp_common.fineibt_pac);
    ("icp-only coarse-cfi", Pibe.Exp_common.icp_only ~budget:99.9 Pibe.Exp_common.coarse_cfi_only);
    ( "llvm-pgo lvi",
      {
        Pibe.Config.defenses = Pibe.Exp_common.lvi_only;
        opt = Pibe.Config.Llvm_pgo { icp_budget = 99.999; inline_budget = 99.9999 };
      } );
  ]

let test_spec_of_config_round_trips () =
  List.iter
    (fun (label, config) ->
      let spec = Pibe.Pipeline.spec_of_config config in
      match Spec.of_string (Spec.to_string spec) with
      | Ok parsed ->
        Alcotest.(check bool) (label ^ " round-trips") true (Spec.equal spec parsed);
        (match Registry.of_spec parsed with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s does not resolve: %s" label e)
      | Error e -> Alcotest.failf "%s re-parse failed: %s" label e)
    variants

(* ------------------------------------------------------------------ *)
(* Byte-identical equivalence with the seed pipeline                   *)
(* ------------------------------------------------------------------ *)

(* The hand-rolled seed pipeline, replicated verbatim (including the old
   merge-into-empty profile clone): the manager must reproduce its image
   byte for byte on every configuration variant. *)
let legacy_build prog profile config =
  let profile = Profile.merge profile (Profile.create ()) in
  let prog =
    match config.Pibe.Config.opt with
    | Pibe.Config.No_opt -> Pibe_opt.Cleanup.run prog
    | Pibe.Config.Icp_only { budget } ->
      let prog, _ =
        Pibe_opt.Icp.run prog profile
          { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = budget }
      in
      Pibe_opt.Cleanup.run prog
    | Pibe.Config.Full { icp_budget; inline_budget; lax } ->
      let prog, _ =
        Pibe_opt.Icp.run prog profile
          { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = icp_budget }
      in
      let prog, _ =
        Pibe_opt.Inliner.run prog profile
          {
            Pibe_opt.Inliner.default_config with
            Pibe_opt.Inliner.budget_pct = inline_budget;
            lax_within_pct = (if lax then Some 99.0 else None);
          }
      in
      Pibe_opt.Cleanup.run prog
    | Pibe.Config.Llvm_pgo { icp_budget; inline_budget } ->
      let prog, _ =
        Pibe_opt.Icp.run prog profile
          { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = icp_budget }
      in
      let prog, _ =
        Pibe_opt.Llvm_inliner.run prog profile
          {
            Pibe_opt.Llvm_inliner.default_config with
            Pibe_opt.Llvm_inliner.budget_pct = inline_budget;
          }
      in
      Pibe_opt.Cleanup.run prog
  in
  Pass.harden prog config.Pibe.Config.defenses

let test_manager_matches_legacy_pipeline () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let profile = Pibe.Env.lmbench_profile env in
  List.iter
    (fun (label, config) ->
      let legacy = legacy_build info.Pibe_kernel.Gen.prog profile config in
      let built =
        Pibe.Pipeline.build ~verify:true info.Pibe_kernel.Gen.prog profile config
      in
      let image = built.Pibe.Pipeline.image in
      Alcotest.(check string)
        (label ^ " image IR is byte-identical")
        (Pibe_ir.Printer.program_to_string legacy.Pass.prog)
        (Pibe_ir.Printer.program_to_string image.Pass.prog);
      Alcotest.(check int)
        (label ^ " image bytes agree")
        (Pass.image_bytes legacy) (Pass.image_bytes image);
      let audit r = Pibe_harden.Audit.run r in
      Alcotest.(check int)
        (label ^ " defended icalls agree")
        (audit legacy).Pibe_harden.Audit.defended_icalls
        (audit image).Pibe_harden.Audit.defended_icalls;
      (* per-pass stats cover the whole lowered spec *)
      Alcotest.(check int)
        (label ^ " one stats row per spec element")
        (List.length (Pibe.Pipeline.spec_of_config config))
        (List.length built.Pibe.Pipeline.pass_stats))
    variants

let test_manager_run_spec_errors () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let profile = Pibe.Env.lmbench_profile env in
  match Spec.of_string "icp(budget=99.9),mystery" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok spec -> (
    match Pibe.Pipeline.run_spec info.Pibe_kernel.Gen.prog profile spec with
    | Error e -> Alcotest.(check bool) "names the unknown pass" true (contains e "mystery")
    | Ok _ -> Alcotest.fail "unknown pass ran anyway")

(* ------------------------------------------------------------------ *)
(* Profile.copy                                                        *)
(* ------------------------------------------------------------------ *)

let test_profile_copy_is_independent () =
  let env = Helpers.env () in
  let info = Pibe.Env.info env in
  let original = Pibe.Env.lmbench_profile env in
  let before = Profile.to_string original in
  let copy = Profile.copy original in
  Alcotest.(check string) "copy starts identical" before (Profile.to_string copy);
  (* ICP mutates its profile (promoted sites become direct): the copy must
     absorb that while the original stays untouched. *)
  let _ =
    Pibe_opt.Icp.run info.Pibe_kernel.Gen.prog copy
      { Pibe_opt.Icp.default_config with Pibe_opt.Icp.budget_pct = 99.999 }
  in
  Alcotest.(check string) "original unchanged after mutating the copy" before
    (Profile.to_string original);
  Alcotest.(check bool) "the copy really was mutated" true
    (not (String.equal before (Profile.to_string copy)))

let suite =
  [
    Helpers.qcheck_to_alcotest prop_spec_round_trip;
    Helpers.qcheck_to_alcotest prop_float_arg_round_trip;
    ("spec whitespace/canonical form", `Quick, test_spec_whitespace_and_canonical);
    ("spec rejects malformed input", `Quick, test_spec_rejects_malformed);
    ("registry diagnostics", `Quick, test_registry_rejections);
    ("registry resolves every name", `Quick, test_registry_accepts_all_names);
    ("registry docs round-trip the grammar", `Quick, test_registry_infos_round_trip);
    ("config lowering round-trips", `Quick, test_spec_of_config_round_trips);
    ("manager matches the seed pipeline", `Slow, test_manager_matches_legacy_pipeline);
    ("run_spec reports unknown passes", `Quick, test_manager_run_spec_errors);
    ("profile copy is independent", `Quick, test_profile_copy_is_independent);
  ]
