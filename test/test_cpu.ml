(* CPU substrate: predictors, i-cache, cost model, and the execution
   engine's semantics and cycle accounting. *)

open Pibe_ir
open Types
module Btb = Pibe_cpu.Btb
module Rsb = Pibe_cpu.Rsb
module Icache = Pibe_cpu.Icache
module Cost = Pibe_cpu.Cost
module Engine = Pibe_cpu.Engine

(* ------------------------------- BTB -------------------------------- *)

(* Predictor targets are interned function ids; tests use small ints. *)

let test_btb_predicts_after_training () =
  let btb = Btb.create () in
  Alcotest.(check int) "cold" Btb.no_target (Btb.predict btb ~site:5);
  Btb.train btb ~site:5 ~target:7;
  Alcotest.(check int) "trained" 7 (Btb.predict btb ~site:5)

let test_btb_aliasing () =
  let btb = Btb.create ~entries:16 () in
  Alcotest.(check bool) "16-aliased" true (Btb.aliases btb 3 19);
  Btb.train btb ~site:3 ~target:42;
  (* the aliased victim site shares the attacker's slot *)
  Alcotest.(check int) "poisoned via alias" 42 (Btb.predict btb ~site:19)

let test_btb_flush () =
  let btb = Btb.create () in
  Btb.train btb ~site:1 ~target:7;
  Btb.flush btb;
  Alcotest.(check int) "flushed" Btb.no_target (Btb.predict btb ~site:1)

let test_btb_power_of_two () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Btb.create: entries must be a positive power of two") (fun () ->
      ignore (Btb.create ~entries:12 ()))

(* ------------------------------- RSB -------------------------------- *)

let test_rsb_lifo () =
  let rsb = Rsb.create () in
  Rsb.push rsb 1;
  Rsb.push rsb 2;
  Alcotest.(check int) "pop b" 2 (Rsb.pop rsb);
  Alcotest.(check int) "pop a" 1 (Rsb.pop rsb);
  Alcotest.(check int) "underflow" Rsb.none (Rsb.pop rsb)

let test_rsb_wraparound_loses_oldest () =
  let rsb = Rsb.create ~depth:4 () in
  List.iter (Rsb.push rsb) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "occupancy capped" 4 (Rsb.occupancy rsb);
  Alcotest.(check int) "newest first" 5 (Rsb.pop rsb);
  ignore (Rsb.pop rsb);
  ignore (Rsb.pop rsb);
  Alcotest.(check int) "b survived" 2 (Rsb.pop rsb);
  Alcotest.(check int) "a was overwritten" Rsb.none (Rsb.pop rsb)

let test_rsb_poison_overwrites_top () =
  let rsb = Rsb.create () in
  Rsb.push rsb 1;
  Rsb.poison rsb 9;
  Alcotest.(check int) "poisoned" 9 (Rsb.pop rsb)

(* ------------------------------ Icache ------------------------------ *)

let test_icache_hit_after_miss () =
  let ic = Icache.create ~capacity_bytes:4096 in
  let p1 = Icache.touch ic ~id:0 ~size:512 in
  let p2 = Icache.touch ic ~id:0 ~size:512 in
  Alcotest.(check bool) "miss costs" true (p1 > 0);
  Alcotest.(check int) "hit free" 0 p2;
  Alcotest.(check int) "one miss" 1 (Icache.miss_count ic);
  Alcotest.(check int) "one hit" 1 (Icache.hit_count ic)

let test_icache_lru_eviction () =
  let ic = Icache.create ~capacity_bytes:1024 in
  let a = 0 and b = 1 and c = 2 in
  ignore (Icache.touch ic ~id:a ~size:512);
  ignore (Icache.touch ic ~id:b ~size:512);
  ignore (Icache.touch ic ~id:a ~size:512) (* refresh a *);
  ignore (Icache.touch ic ~id:c ~size:512) (* evicts b (LRU) *);
  Alcotest.(check bool) "a resident" true (Icache.resident ic a);
  Alcotest.(check bool) "b evicted" false (Icache.resident ic b);
  Alcotest.(check bool) "c resident" true (Icache.resident ic c)

let test_icache_disabled () =
  let ic = Icache.create ~capacity_bytes:0 in
  Alcotest.(check int) "no penalty" 0 (Icache.touch ic ~id:0 ~size:4096)

let test_icache_bigger_functions_cost_more () =
  let ic = Icache.create ~capacity_bytes:65536 in
  let small = Icache.touch ic ~id:0 ~size:64 in
  let big = Icache.touch ic ~id:1 ~size:2048 in
  Alcotest.(check bool) "monotone" true (big > small);
  (* ids are engine-interned and dense, but the cache itself grows to any
     id on demand *)
  ignore (Icache.touch ic ~id:5000 ~size:64);
  Alcotest.(check bool) "sparse id resident" true (Icache.resident ic 5000)

(* ------------------------------- PHT -------------------------------- *)

let test_pht_trains () =
  let pht = Pibe_cpu.Pht.create ~entries:64 () in
  Alcotest.(check bool) "starts not-taken" false (Pibe_cpu.Pht.predict pht ~key:5);
  Pibe_cpu.Pht.train pht ~key:5 ~taken:true;
  Pibe_cpu.Pht.train pht ~key:5 ~taken:true;
  Alcotest.(check bool) "now predicts taken" true (Pibe_cpu.Pht.predict pht ~key:5);
  (* hysteresis: one not-taken does not flip a strongly-taken counter *)
  Pibe_cpu.Pht.train pht ~key:5 ~taken:true;
  Pibe_cpu.Pht.train pht ~key:5 ~taken:false;
  Alcotest.(check bool) "still taken" true (Pibe_cpu.Pht.predict pht ~key:5)

let test_pht_flush () =
  let pht = Pibe_cpu.Pht.create () in
  Pibe_cpu.Pht.train pht ~key:1 ~taken:true;
  Pibe_cpu.Pht.train pht ~key:1 ~taken:true;
  Pibe_cpu.Pht.flush pht;
  Alcotest.(check bool) "reset" false (Pibe_cpu.Pht.predict pht ~key:1)

let test_engine_counts_pht_misses () =
  (* a data-dependent alternating branch must mispredict *)
  let prog = Program.with_globals_size Program.empty 16 in
  let b = Builder.create ~name:"f" ~params:1 in
  let x = Builder.param b 0 in
  let l1 = Builder.new_block b and l2 = Builder.new_block b in
  Builder.br b (Reg x) l1 l2;
  Builder.switch_to b l1;
  Builder.ret b (Some (Imm 1));
  Builder.switch_to b l2;
  Builder.ret b (Some (Imm 0));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let engine = Engine.create prog in
  for i = 1 to 64 do
    ignore (Engine.call engine "f" [ i mod 2 ])
  done;
  Alcotest.(check bool) "alternation mispredicts a lot" true
    ((Engine.counters engine).Engine.pht_misses > 20)

(* ------------------------------- Cost ------------------------------- *)

let test_cost_table1_deltas () =
  (* The calibration targets from paper Table 1. *)
  let icall_base = Cost.forward_cost Protection.F_none ~btb_hit:true in
  let retp = Cost.forward_cost Protection.F_retpoline ~btb_hit:true - icall_base in
  let lvi_f = Cost.forward_cost Protection.F_lvi ~btb_hit:true - icall_base in
  let fenced = Cost.forward_cost Protection.F_fenced_retpoline ~btb_hit:true - icall_base in
  let ret_base = Cost.backward_cost Protection.B_none ~rsb_hit:true in
  let retret = Cost.backward_cost Protection.B_ret_retpoline ~rsb_hit:true - ret_base in
  let lvi_b = Cost.backward_cost Protection.B_lvi ~rsb_hit:true - ret_base in
  let fenced_b =
    Cost.backward_cost Protection.B_fenced_ret_retpoline ~rsb_hit:true - ret_base
  in
  Alcotest.(check bool) "retpoline ~21" true (abs (retp - 21) <= 3);
  Alcotest.(check bool) "lvi fwd ~9" true (abs (lvi_f - 9) <= 3);
  Alcotest.(check bool) "fenced ~42" true (abs (fenced - 42) <= 3);
  Alcotest.(check bool) "ret-retpoline ~16" true (abs (retret - 16) <= 2);
  Alcotest.(check bool) "lvi bwd ~11" true (abs (lvi_b - 11) <= 2);
  Alcotest.(check bool) "fenced bwd ~32" true (abs (fenced_b - 32) <= 2)

let test_cost_misprediction_hurts () =
  Alcotest.(check bool) "btb miss worse" true
    (Cost.forward_cost Protection.F_none ~btb_hit:false
    > Cost.forward_cost Protection.F_none ~btb_hit:true);
  (* protected sequences ignore the predictors *)
  Alcotest.(check int) "retpoline flat"
    (Cost.forward_cost Protection.F_retpoline ~btb_hit:true)
    (Cost.forward_cost Protection.F_retpoline ~btb_hit:false)

(* ------------------------------ Engine ------------------------------ *)

let build_single name body =
  let prog = Program.with_globals_size Program.empty 16 in
  let b = Builder.create ~name ~params:2 in
  body b prog

let test_engine_arithmetic () =
  let prog = Program.with_globals_size Program.empty 16 in
  let b = Builder.create ~name:"f" ~params:2 in
  let x = Builder.param b 0 and y = Builder.param b 1 in
  let r = Builder.reg b in
  Builder.assign b r (Binop (Mul, Reg x, Reg y));
  let r2 = Builder.reg b in
  Builder.assign b r2 (Binop (Add, Reg r, Imm 1));
  Builder.ret b (Some (Reg r2));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let engine = Engine.create prog in
  Alcotest.(check (option int)) "6*7+1" (Some 43) (Engine.call engine "f" [ 6; 7 ])

let test_engine_memory () =
  let prog = Program.with_globals_size Program.empty 16 in
  let b = Builder.create ~name:"f" ~params:1 in
  let x = Builder.param b 0 in
  Builder.store b ~addr:(Imm 3) ~value:(Reg x);
  let r = Builder.reg b in
  Builder.assign b r (Load (Imm 3));
  Builder.ret b (Some (Reg r));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let engine = Engine.create prog in
  Alcotest.(check (option int)) "store/load" (Some 99) (Engine.call engine "f" [ 99 ]);
  Alcotest.(check int) "memory persists" 99 (Engine.memory engine).(3)

let test_engine_branch_and_switch_equivalence () =
  (* The same switch must compute the same result under both lowerings. *)
  let mk lowering =
    let prog = Program.with_globals_size Program.empty 16 in
    let b = Builder.create ~name:"f" ~params:1 in
    let x = Builder.param b 0 in
    let c0 = Builder.new_block b and c1 = Builder.new_block b in
    let d = Builder.new_block b in
    Builder.switch b ~lowering (Reg x) [ (0, c0); (1, c1) ] ~default:d;
    Builder.switch_to b c0;
    Builder.ret b (Some (Imm 100));
    Builder.switch_to b c1;
    Builder.ret b (Some (Imm 200));
    Builder.switch_to b d;
    Builder.ret b (Some (Imm 300));
    Program.add_func prog (Builder.finish b ())
  in
  let run prog v = Engine.call (Engine.create prog) "f" [ v ] in
  let jt = mk Jump_table and ladder = mk Branch_ladder in
  List.iter
    (fun v ->
      Alcotest.(check (option int))
        (Printf.sprintf "case %d" v)
        (run jt v) (run ladder v))
    [ 0; 1; 7 ]

let test_engine_icall_dispatch () =
  let prog = Program.with_globals_size Program.empty 16 in
  let mk_leaf name v =
    let b = Builder.create ~name ~params:0 in
    Builder.ret b (Some (Imm v));
    Builder.finish b ()
  in
  let prog = Program.add_func prog (mk_leaf "t0" 10) in
  let prog = Program.add_func prog (mk_leaf "t1" 20) in
  let prog, i0 = Program.add_fptr prog "t0" in
  let prog, i1 = Program.add_fptr prog "t1" in
  let prog, site = Program.fresh_site prog in
  let b = Builder.create ~name:"f" ~params:1 in
  let x = Builder.param b 0 in
  let r = Builder.reg b in
  Builder.icall b ~dst:r site [] ~fptr:(Reg x);
  Builder.ret b (Some (Reg r));
  let prog = Program.add_func prog (Builder.finish b ()) in
  let engine = Engine.create prog in
  Alcotest.(check (option int)) "dispatch t0" (Some 10) (Engine.call engine "f" [ i0 ]);
  Alcotest.(check (option int)) "dispatch t1" (Some 20) (Engine.call engine "f" [ i1 ]);
  Alcotest.check_raises "wild icall"
    (Engine.Runtime_error "wild indirect call: fptr value 99 outside table of 2") (fun () ->
      ignore (Engine.call engine "f" [ 99 ]))

let test_engine_fuel () =
  (* An intentionally infinite loop must hit the fuel limit. *)
  let prog = Program.with_globals_size Program.empty 16 in
  let b = Builder.create ~name:"f" ~params:0 in
  Builder.jmp b 0;
  let prog = Program.add_func prog (Builder.finish b ()) in
  let config = { Engine.default_config with Engine.fuel = 1000 } in
  let engine = Engine.create ~config prog in
  Alcotest.check_raises "out of fuel" Engine.Out_of_fuel (fun () ->
      ignore (Engine.call engine "f" []))

let test_engine_protection_costs () =
  (* An empty callee: calling it under ret-retpolines must cost exactly
     the backward delta more per call. *)
  let prog = Program.with_globals_size Program.empty 16 in
  let leaf =
    let b = Builder.create ~name:"leaf" ~params:0 in
    Builder.ret b None;
    Builder.finish b ()
  in
  let prog = Program.add_func prog leaf in
  let prog, site = Program.fresh_site prog in
  let b = Builder.create ~name:"f" ~params:0 in
  Builder.call b site "leaf" [];
  Builder.ret b None;
  let prog = Program.add_func prog (Builder.finish b ()) in
  let cycles bwd =
    let config =
      {
        Engine.default_config with
        Engine.bwd_protection = (fun name -> if name = "leaf" then bwd else Protection.B_none);
        icache_bytes = 0;
      }
    in
    let engine = Engine.create ~config prog in
    for _ = 1 to 10 do
      ignore (Engine.call engine "f" [])
    done;
    Engine.reset_cycles engine;
    ignore (Engine.call engine "f" []);
    Engine.cycles engine
  in
  let base = cycles Protection.B_none in
  let protected_ = cycles Protection.B_ret_retpoline in
  Alcotest.(check int) "exact backward delta"
    (Cost.backward_cost Protection.B_ret_retpoline ~rsb_hit:false
    - Cost.backward_cost Protection.B_none ~rsb_hit:true)
    (protected_ - base)

let test_engine_counters_and_trace () =
  let prog = Helpers.random_program 7 in
  let config = { Engine.default_config with Engine.record_trace = true } in
  let engine = Engine.create ~config prog in
  List.iter
    (fun (entry, args) -> ignore (Engine.call engine entry args))
    (Helpers.standard_calls prog);
  let c = Engine.counters engine in
  Alcotest.(check bool) "insts counted" true (c.Engine.insts > 0);
  Alcotest.(check bool) "rets >= calls" true (c.Engine.rets >= c.Engine.calls);
  Engine.clear_trace engine;
  Alcotest.(check (list int)) "trace cleared" [] (Engine.trace engine)

let test_engine_deterministic () =
  let prog = Helpers.random_program 8 in
  let run () =
    let engine = Engine.create prog in
    List.iter
      (fun (entry, args) -> ignore (Engine.call engine entry args))
      (Helpers.standard_calls prog);
    Engine.cycles engine
  in
  Alcotest.(check int) "same cycles" (run ()) (run ())

let _ = build_single

let suite =
  [
    ("btb trains and predicts", `Quick, test_btb_predicts_after_training);
    ("btb aliasing shares slots", `Quick, test_btb_aliasing);
    ("btb flush", `Quick, test_btb_flush);
    ("btb rejects non-power-of-two", `Quick, test_btb_power_of_two);
    ("rsb lifo and underflow", `Quick, test_rsb_lifo);
    ("rsb wraparound loses oldest", `Quick, test_rsb_wraparound_loses_oldest);
    ("rsb poison overwrites top", `Quick, test_rsb_poison_overwrites_top);
    ("icache hit after miss", `Quick, test_icache_hit_after_miss);
    ("icache lru eviction", `Quick, test_icache_lru_eviction);
    ("icache disabled is free", `Quick, test_icache_disabled);
    ("icache bigger costs more", `Quick, test_icache_bigger_functions_cost_more);
    ("pht trains with hysteresis", `Quick, test_pht_trains);
    ("pht flush", `Quick, test_pht_flush);
    ("engine counts pht misses", `Quick, test_engine_counts_pht_misses);
    ("cost deltas match paper Table 1", `Quick, test_cost_table1_deltas);
    ("cost misprediction hurts", `Quick, test_cost_misprediction_hurts);
    ("engine arithmetic", `Quick, test_engine_arithmetic);
    ("engine memory", `Quick, test_engine_memory);
    ("engine switch lowering equivalence", `Quick, test_engine_branch_and_switch_equivalence);
    ("engine icall dispatch + wild call", `Quick, test_engine_icall_dispatch);
    ("engine fuel limit", `Quick, test_engine_fuel);
    ("engine protection cost exact", `Quick, test_engine_protection_costs);
    ("engine counters and trace", `Quick, test_engine_counters_and_trace);
    ("engine deterministic", `Quick, test_engine_deterministic);
  ]
