(* Differential suite for the two execution backends and the compile
   cache.

   The engine's parity contract (engine.mli) says Interp and Compiled are
   bit-exact: identical cycles, counters, traces, memory, speculation
   events and errors for any program and configuration.  The qcheck
   properties here drive random programs through both backends under
   every interesting configuration axis — protections, surcharges,
   rsb_refill, a stateful fwd_override hook, live speculation drills with
   planted injections, tiny fuel budgets and wild indirect calls — and
   compare full observable snapshots.  The golden fingerprints in
   test_measure.ml pin the same contract against the recorded seed. *)

open Pibe_ir
open Pibe_cpu
module Trace = Pibe_trace.Trace

(* ------------------------------------------------------------------ *)
(* Observable snapshot of a run                                        *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  outcomes : (int option, string) result list;
  cycles : int;
  counters : int list;
  trace : int list;
  memory : int list;
  icache : int * int;
  spec_events : Speculation.event list;
}

let counters_list (c : Engine.counters) =
  [
    c.Engine.calls;
    c.Engine.icalls;
    c.Engine.rets;
    c.Engine.insts;
    c.Engine.btb_misses;
    c.Engine.rsb_misses;
    c.Engine.pht_misses;
    c.Engine.stack_bytes;
    c.Engine.peak_stack_bytes;
  ]

(* [mkconfig] builds a fresh config (plus its drill state, if any) per
   run, so stateful hooks and speculation state never leak between the
   two backends under comparison. *)
let run_with ~backend ~mkconfig prog calls =
  let config, spec = mkconfig () in
  let engine = Engine.create ~config ~backend prog in
  let outcomes =
    List.map
      (fun (entry, args) ->
        match Engine.call engine entry args with
        | v -> Ok v
        | exception Engine.Runtime_error m -> Error ("runtime: " ^ m)
        | exception Engine.Out_of_fuel -> Error "out-of-fuel")
      calls
  in
  {
    outcomes;
    cycles = Engine.cycles engine;
    counters = counters_list (Engine.counters engine);
    trace = Engine.trace engine;
    memory = Array.to_list (Engine.memory engine);
    icache =
      (Icache.hit_count (Engine.icache engine), Icache.miss_count (Engine.icache engine));
    spec_events = (match spec with None -> [] | Some s -> Speculation.events s);
  }

let agree ~mkconfig prog calls =
  run_with ~backend:Engine.Interp ~mkconfig prog calls
  = run_with ~backend:Engine.Compiled ~mkconfig prog calls

(* ------------------------------------------------------------------ *)
(* Configuration axes                                                  *)
(* ------------------------------------------------------------------ *)

let base () =
  ({ Engine.default_config with Engine.record_trace = true }, None)

(* Site/function-keyed protections (pure, so both backends resolve the
   same kinds) plus every per-event surcharge and rsb_refill. *)
let hardened () =
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_protection =
        (fun site ->
          match site.Types.site_id mod 4 with
          | 0 -> Protection.F_none
          | 1 -> Protection.F_retpoline
          | 2 -> Protection.F_lvi
          | _ -> Protection.F_fenced_retpoline);
      bwd_protection =
        (fun name ->
          match Hashtbl.hash name mod 4 with
          | 0 -> Protection.B_none
          | 1 -> Protection.B_lvi
          | 2 -> Protection.B_ret_retpoline
          | _ -> Protection.B_fenced_ret_retpoline);
      extra_call_cycles = 2;
      extra_icall_cycles = 3;
      extra_ret_cycles = 1;
      rsb_refill = true;
    },
    None )

(* Stateful forward-override hook (the JumpSwitches-style comparator):
   the charge depends on call order, so any divergence in execution order
   between backends shows up as a cycle mismatch. *)
let overridden () =
  let n = ref 0 in
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_override =
        Some
          (fun ~site:_ ~target:_ ->
            incr n;
            !n mod 7);
    },
    None )

(* Live speculation drills with planted injections: poisoned fptr-cell
   loads (LVI) and an armed cross-thread RSB desync (Ret2spec). *)
let drilled () =
  let s = Speculation.create () in
  Speculation.inject_load s ~addr:3 ~value:1;
  Speculation.inject_rsb s ~scenario:Speculation.Cross_thread ~gadget:"f1";
  ( { Engine.default_config with Engine.record_trace = true; speculation = Some s },
    Some s )

(* Tiny step budget: both backends must die out-of-fuel at the same
   instruction with the same partial cycles and counters. *)
let starved () =
  ({ Engine.default_config with Engine.record_trace = true; fuel = 37 }, None)

let differential name mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      agree ~mkconfig prog (Helpers.standard_calls prog))

(* Wild indirect calls: corrupt the fptr-index cells so icalls resolve
   out of table (or to a huge index) — both backends must raise the same
   Runtime_error at the same point, with identical partial state. *)
let differential_wild =
  QCheck.Test.make ~count:60 ~name:"wild icalls agree"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      let prog = Program.set_global prog ~addr:0 ~value:997 in
      let prog = Program.set_global prog ~addr:1 ~value:(-3) in
      agree ~mkconfig:base prog (Helpers.standard_calls prog))

(* ------------------------------------------------------------------ *)
(* Attack drills on the generated kernel                               *)
(* ------------------------------------------------------------------ *)

let drill_outcomes backend =
  let info = Helpers.kernel () in
  let spec = Speculation.create () in
  let config =
    { Engine.default_config with Engine.speculation = Some spec; rsb_refill = true }
  in
  let engine = Engine.create ~config ~backend info.Pibe_kernel.Gen.prog in
  Attack.run_all engine ~victim_site:info.Pibe_kernel.Gen.victim_icall_site
    ~poisoned_addr:info.Pibe_kernel.Gen.victim_ops_addr
    ~gadget_fptr:info.Pibe_kernel.Gen.gadget_fptr ~gadget:info.Pibe_kernel.Gen.gadget
    ~entry:info.Pibe_kernel.Gen.entry
    ~args:[ Pibe_kernel.Gen.nr info "read"; 0; 5 ]

let test_attack_drills () =
  let a = drill_outcomes Engine.Interp in
  let b = drill_outcomes Engine.Compiled in
  Alcotest.(check bool) "attack drill outcomes identical" true (a = b);
  Alcotest.(check bool)
    "unprotected kernel is attackable" true
    (List.exists (fun (_, o) -> o.Attack.gadget_reached) a)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Two interleaved programs must each compile exactly once: the LRU keeps
   both live across the alternation (the online dual replay's deployed /
   pristine pattern). *)
let test_interleaved_compile_once () =
  let p1 = Helpers.random_program 424_201 in
  let p2 = Helpers.random_program 424_202 in
  let h0, m0 = Engine.compile_cache_stats () in
  for _ = 1 to 4 do
    ignore (Engine.create p1);
    ignore (Engine.create p2)
  done;
  let h1, m1 = Engine.compile_cache_stats () in
  Alcotest.(check int) "each program compiled exactly once" 2 (m1 - m0);
  Alcotest.(check int) "remaining creates were cache hits" 6 (h1 - h0)

let test_trace_compile_events () =
  let p = Helpers.random_program 777_001 in
  Trace.start ();
  ignore (Engine.create p);
  ignore (Engine.create p);
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:compile span opened" true
    (sched "engine:compile" Trace.Begin);
  Alcotest.(check bool) "engine:compile span closed" true
    (sched "engine:compile" Trace.End);
  Alcotest.(check bool) "compile-cache-miss counter" true
    (sched "compile-cache-miss" Trace.Counter);
  Alcotest.(check bool) "compile-cache-hit counter" true
    (sched "compile-cache-hit" Trace.Counter)

(* ------------------------------------------------------------------ *)
(* Backend selection plumbing                                          *)
(* ------------------------------------------------------------------ *)

let test_backend_selection () =
  let p = Helpers.random_program 9_001 in
  let i = Engine.create ~backend:Engine.Interp p in
  let c = Engine.create ~backend:Engine.Compiled p in
  Alcotest.(check bool) "explicit interp" true (Engine.backend i = Engine.Interp);
  Alcotest.(check bool) "explicit compiled" true (Engine.backend c = Engine.Compiled);
  Alcotest.(check bool) "default is compiled" true
    (Engine.default_backend () = Engine.Compiled);
  List.iter
    (fun b ->
      Alcotest.(check bool) "name round-trips" true
        (Engine.backend_of_string (Engine.backend_to_string b) = Some b))
    [ Engine.Interp; Engine.Compiled ];
  Alcotest.(check bool) "unknown name rejected" true
    (Engine.backend_of_string "threaded" = None)

let suite =
  [
    Helpers.qcheck_to_alcotest (differential "plain runs agree" base);
    Helpers.qcheck_to_alcotest (differential "hardened+rsb_refill runs agree" hardened);
    Helpers.qcheck_to_alcotest (differential "stateful fwd_override agrees" overridden);
    Helpers.qcheck_to_alcotest (differential "speculation drills agree" drilled);
    Helpers.qcheck_to_alcotest (differential "out-of-fuel agrees" starved);
    Helpers.qcheck_to_alcotest differential_wild;
    Alcotest.test_case "kernel attack drills agree" `Quick test_attack_drills;
    Alcotest.test_case "interleaved programs compile once" `Quick
      test_interleaved_compile_once;
    Alcotest.test_case "compile spans and cache counters traced" `Quick
      test_trace_compile_events;
    Alcotest.test_case "backend selection and names" `Quick test_backend_selection;
  ]
