(* Differential suite for the two execution backends and the compile
   cache.

   The engine's parity contract (engine.mli) says Interp and Compiled are
   bit-exact: identical cycles, counters, traces, memory, speculation
   events and errors for any program and configuration.  The qcheck
   properties here drive random programs through both backends under
   every interesting configuration axis — protections, surcharges,
   rsb_refill, a stateful fwd_override hook, live speculation drills with
   planted injections, tiny fuel budgets and wild indirect calls — and
   compare full observable snapshots.  The golden fingerprints in
   test_measure.ml pin the same contract against the recorded seed. *)

open Pibe_ir
open Pibe_cpu
module Trace = Pibe_trace.Trace

(* ------------------------------------------------------------------ *)
(* Observable snapshot of a run                                        *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  outcomes : (int option, string) result list;
  cycles : int;
  counters : int list;
  trace : int list;
  memory : int list;
  icache : int * int;
  spec_events : Speculation.event list;
}

let counters_list (c : Engine.counters) =
  [
    c.Engine.calls;
    c.Engine.icalls;
    c.Engine.rets;
    c.Engine.insts;
    c.Engine.btb_misses;
    c.Engine.rsb_misses;
    c.Engine.pht_misses;
    c.Engine.stack_bytes;
    c.Engine.peak_stack_bytes;
  ]

(* [mkconfig] builds a fresh config (plus its drill state, if any) per
   run, so stateful hooks and speculation state never leak between the
   two backends under comparison.  [tierup] pins the compiled backend's
   tier-up threshold per engine — the suite's standard workloads make
   only a handful of calls, so exercising the fused tier needs low
   explicit thresholds. *)
let run_with ?tierup ~backend ~mkconfig prog calls =
  let config, spec = mkconfig () in
  let engine = Engine.create ~config ~backend ?tierup prog in
  let outcomes =
    List.map
      (fun (entry, args) ->
        match Engine.call engine entry args with
        | v -> Ok v
        | exception Engine.Runtime_error m -> Error ("runtime: " ^ m)
        | exception Engine.Out_of_fuel -> Error "out-of-fuel")
      calls
  in
  {
    outcomes;
    cycles = Engine.cycles engine;
    counters = counters_list (Engine.counters engine);
    trace = Engine.trace engine;
    memory = Array.to_list (Engine.memory engine);
    icache =
      (Icache.hit_count (Engine.icache engine), Icache.miss_count (Engine.icache engine));
    spec_events = (match spec with None -> [] | Some s -> Speculation.events s);
  }

let agree ?tierup ~mkconfig prog calls =
  run_with ~backend:Engine.Interp ~mkconfig prog calls
  = run_with ?tierup ~backend:Engine.Compiled ~mkconfig prog calls

(* ------------------------------------------------------------------ *)
(* Configuration axes                                                  *)
(* ------------------------------------------------------------------ *)

let base () =
  ({ Engine.default_config with Engine.record_trace = true }, None)

(* Site/function-keyed protections (pure, so both backends resolve the
   same kinds) plus every per-event surcharge and rsb_refill. *)
let hardened () =
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_protection =
        (fun site ->
          match site.Types.site_id mod 6 with
          | 0 -> Protection.F_none
          | 1 -> Protection.F_retpoline
          | 2 -> Protection.F_lvi
          | 3 -> Protection.F_fineibt
          | 4 -> Protection.F_coarse_cfi
          | _ -> Protection.F_fenced_retpoline);
      bwd_protection =
        (fun name ->
          match Hashtbl.hash name mod 5 with
          | 0 -> Protection.B_none
          | 1 -> Protection.B_lvi
          | 2 -> Protection.B_ret_retpoline
          | 3 -> Protection.B_pac
          | _ -> Protection.B_fenced_ret_retpoline);
      (* pure and site/target-keyed, so both backends see the same CFI
         verdict for the same transient edge *)
      cfi_valid =
        (fun ~site ~target ~protection:_ ->
          (site.Types.site_id + String.length target) mod 3 <> 0);
      extra_call_cycles = 2;
      extra_icall_cycles = 3;
      extra_ret_cycles = 1;
      rsb_refill = true;
    },
    None )

(* Stateful forward-override hook (the JumpSwitches-style comparator):
   the charge depends on call order, so any divergence in execution order
   between backends shows up as a cycle mismatch. *)
let overridden () =
  let n = ref 0 in
  ( {
      Engine.default_config with
      Engine.record_trace = true;
      fwd_override =
        Some
          (fun ~site:_ ~target:_ ->
            incr n;
            !n mod 7);
    },
    None )

(* Live speculation drills with planted injections: poisoned fptr-cell
   loads (LVI) and an armed cross-thread RSB desync (Ret2spec). *)
let drilled () =
  let s = Speculation.create () in
  Speculation.inject_load s ~addr:3 ~value:1;
  Speculation.inject_rsb s ~scenario:Speculation.Cross_thread ~gadget:"f1";
  ( { Engine.default_config with Engine.record_trace = true; speculation = Some s },
    Some s )

(* A forged-PAC RSB desync against PAC-signed returns: the one scenario
   B_pac records, layered on the hardened protection mix so the PAC
   cost/event path is exercised under both backends. *)
let forged () =
  let s = Speculation.create () in
  Speculation.inject_load s ~addr:3 ~value:1;
  Speculation.inject_rsb s ~scenario:Speculation.Forged_pac ~gadget:"f1";
  let config, _ = hardened () in
  ({ config with Engine.speculation = Some s; rsb_refill = false }, Some s)

(* Tiny step budget: both backends must die out-of-fuel at the same
   instruction with the same partial cycles and counters. *)
let starved () =
  ({ Engine.default_config with Engine.record_trace = true; fuel = 37 }, None)

let differential name mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      agree ~mkconfig prog (Helpers.standard_calls prog))

(* ------------------------------------------------------------------ *)
(* Tier-2 superblock fusion                                            *)
(* ------------------------------------------------------------------ *)

(* Chain-biased programs at a threshold of 1: the first call runs tier 1,
   every later call the fused tier, so each run compares BOTH tiers
   against the interpreter — including the planted mid-segment faulting
   loads of the generator. *)
let differential_chain name tierup mkconfig =
  QCheck.Test.make ~count:60 ~name
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      agree ~tierup ~mkconfig prog (Helpers.standard_calls prog))

(* Fuel budgets swept per seed around the size of one superblock: both
   backends must die out-of-fuel at the same step even when the budget
   runs dry in the middle of a fused segment or exactly at a chain
   seam. *)
let differential_chain_starved =
  QCheck.Test.make ~count:80 ~name:"superblock out-of-fuel agrees at every seam"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      let mkconfig () =
        ( {
            Engine.default_config with
            Engine.record_trace = true;
            fuel = 5 + (seed mod 97);
          },
          None )
      in
      agree ~tierup:1 ~mkconfig prog (Helpers.standard_calls prog))

(* The two compiled configurations must also agree with each other at
   any pair of thresholds — tier-up must be invisible, not just
   interp-equivalent. *)
let differential_tier_settings =
  QCheck.Test.make ~count:40 ~name:"tier thresholds mutually bit-exact"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_chain_program seed in
      let calls = Helpers.standard_calls prog in
      let snap tierup =
        run_with ~tierup ~backend:Engine.Compiled ~mkconfig:base prog calls
      in
      let s0 = snap 0 in
      s0 = snap 1 && s0 = snap 2 && s0 = snap 1_000_000)

(* A deterministic fault in the middle of a fused run: the load's address
   register goes out of bounds only for the poisoned argument, after the
   chain is already promoted — the rolled-back batch accounting must
   leave exactly the interpreter's partial state. *)
let test_fault_mid_superblock () =
  let open Types in
  let b = Builder.create ~name:"f0" ~params:1 in
  let blocks = Array.init 4 (fun i -> if i = 0 then 0 else Builder.new_block b) in
  let addr = Builder.reg b in
  Array.iteri
    (fun i label ->
      Builder.switch_to b label;
      let r1 = Builder.reg b in
      Builder.assign b r1 (Binop (Add, Reg 0, Imm (i * 3)));
      if i = 2 then begin
        (* in-bounds for arg 0, far out of bounds for arg 9999 *)
        Builder.assign b addr (Binop (Mul, Reg 0, Imm 7));
        let r2 = Builder.reg b in
        Builder.assign b r2 (Load (Reg addr));
        Builder.observe b (Reg r2)
      end;
      Builder.store b ~addr:(Imm (16 + i)) ~value:(Reg r1);
      if i = Array.length blocks - 1 then Builder.ret b (Some (Reg r1))
      else Builder.jmp b blocks.(i + 1))
    blocks;
  let prog =
    Program.add_func
      (Program.with_globals_size Program.empty Helpers.mem_cells)
      (Builder.finish b ())
  in
  let calls =
    [ ("f0", [ 1 ]); ("f0", [ 2 ]); ("f0", [ 3 ]); ("f0", [ 9999 ]); ("f0", [ 4 ]) ]
  in
  Alcotest.(check bool)
    "fault mid-superblock rolls back bit-exactly" true
    (agree ~tierup:1 ~mkconfig:base prog calls
    && agree ~tierup:2 ~mkconfig:base prog calls)

(* Tier-up decisions are per-engine counters, so they cannot depend on
   how many other engines run concurrently: N domains each driving a
   private engine over the same workload must reach identical snapshots,
   entry counts and promotion decisions as a sequential engine. *)
let test_tierup_deterministic_across_jobs () =
  let prog = Helpers.random_chain_program 321_123 in
  let calls = Helpers.standard_calls prog in
  let profile () =
    let snap = run_with ~tierup:2 ~backend:Engine.Compiled ~mkconfig:base prog calls in
    let engine = Engine.create ~tierup:2 prog in
    List.iter
      (fun (entry, args) ->
        match Engine.call engine entry args with
        | _ -> ()
        | exception (Engine.Runtime_error _ | Engine.Out_of_fuel) -> ())
      calls;
    let counts =
      List.map
        (fun name ->
          (name, Engine.entry_count engine name, Engine.promoted engine name))
        (Program.layout_order prog)
    in
    (snap, counts)
  in
  let sequential = profile () in
  let domains = List.init 4 (fun _ -> Domain.spawn profile) in
  List.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d matches sequential tier-up profile" i)
        true
        (Domain.join d = sequential))
    domains

(* Wild indirect calls: corrupt the fptr-index cells so icalls resolve
   out of table (or to a huge index) — both backends must raise the same
   Runtime_error at the same point, with identical partial state. *)
let differential_wild =
  QCheck.Test.make ~count:60 ~name:"wild icalls agree"
    QCheck.(make Gen.(0 -- 100_000))
    (fun seed ->
      let prog = Helpers.random_program seed in
      let prog = Program.set_global prog ~addr:0 ~value:997 in
      let prog = Program.set_global prog ~addr:1 ~value:(-3) in
      agree ~mkconfig:base prog (Helpers.standard_calls prog))

(* ------------------------------------------------------------------ *)
(* Attack drills on the generated kernel                               *)
(* ------------------------------------------------------------------ *)

let drill_outcomes backend =
  let info = Helpers.kernel () in
  let spec = Speculation.create () in
  let config =
    { Engine.default_config with Engine.speculation = Some spec; rsb_refill = true }
  in
  let engine = Engine.create ~config ~backend info.Pibe_kernel.Gen.prog in
  Attack.run_all engine ~victim_site:info.Pibe_kernel.Gen.victim_icall_site
    ~poisoned_addr:info.Pibe_kernel.Gen.victim_ops_addr
    ~gadget_fptr:info.Pibe_kernel.Gen.gadget_fptr ~gadget:info.Pibe_kernel.Gen.gadget
    ~valid_gadget:info.Pibe_kernel.Gen.valid_gadget ~entry:info.Pibe_kernel.Gen.entry
    ~args:[ Pibe_kernel.Gen.nr info "read"; 0; 5 ]

let test_attack_drills () =
  let a = drill_outcomes Engine.Interp in
  let b = drill_outcomes Engine.Compiled in
  Alcotest.(check bool) "attack drill outcomes identical" true (a = b);
  Alcotest.(check bool)
    "unprotected kernel is attackable" true
    (List.exists (fun (_, o) -> o.Attack.gadget_reached) a)

(* ------------------------------------------------------------------ *)
(* Compile cache                                                       *)
(* ------------------------------------------------------------------ *)

(* Two interleaved programs must each compile exactly once: the LRU keeps
   both live across the alternation (the online dual replay's deployed /
   pristine pattern). *)
let test_interleaved_compile_once () =
  let p1 = Helpers.random_program 424_201 in
  let p2 = Helpers.random_program 424_202 in
  let h0, m0 = Engine.compile_cache_stats () in
  for _ = 1 to 4 do
    ignore (Engine.create p1);
    ignore (Engine.create p2)
  done;
  let h1, m1 = Engine.compile_cache_stats () in
  Alcotest.(check int) "each program compiled exactly once" 2 (m1 - m0);
  Alcotest.(check int) "remaining creates were cache hits" 6 (h1 - h0)

let test_trace_compile_events () =
  let p = Helpers.random_program 777_001 in
  Trace.start ();
  ignore (Engine.create p);
  ignore (Engine.create p);
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:compile span opened" true
    (sched "engine:compile" Trace.Begin);
  Alcotest.(check bool) "engine:compile span closed" true
    (sched "engine:compile" Trace.End);
  Alcotest.(check bool) "compile-cache-miss counter" true
    (sched "compile-cache-miss" Trace.Counter);
  Alcotest.(check bool) "compile-cache-hit counter" true
    (sched "compile-cache-hit" Trace.Counter)

(* The cache is keyed on (physical program x tier x speculation
   variant): interleaved creates at two tier settings must each compile
   once — a tiered recompile can never evict (or be served by) the
   baseline entry. *)
let test_lru_tier_keying () =
  let p = Helpers.random_chain_program 424_203 in
  let h0, m0 = Engine.compile_cache_stats () in
  for _ = 1 to 4 do
    ignore (Engine.create ~tierup:0 p);
    ignore (Engine.create ~tierup:8 p)
  done;
  let h1, m1 = Engine.compile_cache_stats () in
  Alcotest.(check int) "one compile per tier setting" 2 (m1 - m0);
  Alcotest.(check int) "remaining creates were cache hits" 6 (h1 - h0);
  (* different non-zero thresholds share the tiered closure program:
     the threshold lives in the engine, not the compiled artifact *)
  let h2, m2 = Engine.compile_cache_stats () in
  ignore (Engine.create ~tierup:50 p);
  let h3, m3 = Engine.compile_cache_stats () in
  Alcotest.(check int) "tiered entry shared across thresholds" 0 (m3 - m2);
  Alcotest.(check int) "threshold change is a cache hit" 1 (h3 - h2)

(* Tier-up observability: promotion emits an engine:tierup span around
   the fused lowering, a tierup-count sample at the crossing, and
   fused-superblocks / segment-coverage counters (all "sched" category,
   stripped from canonical traces, rendered by every sink). *)
let test_trace_tierup_events () =
  let p = Helpers.random_chain_program 777_002 in
  Trace.start ();
  let engine = Engine.create ~tierup:1 p in
  List.iter
    (fun (entry, args) -> ignore (Engine.call engine entry args))
    (Helpers.standard_calls p);
  let events = Trace.stop () in
  let sched name ph =
    List.exists
      (fun (e : Trace.event) ->
        String.equal e.Trace.cat "sched" && String.equal e.Trace.name name
        && e.Trace.ph = ph)
      events
  in
  Alcotest.(check bool) "engine:tierup span opened" true
    (sched "engine:tierup" Trace.Begin);
  Alcotest.(check bool) "engine:tierup span closed" true
    (sched "engine:tierup" Trace.End);
  Alcotest.(check bool) "tierup-count counter" true
    (sched "tierup-count" Trace.Counter);
  Alcotest.(check bool) "fused-superblocks counter" true
    (sched "fused-superblocks" Trace.Counter);
  Alcotest.(check bool) "segment-coverage counter" true
    (sched "segment-coverage" Trace.Counter)

(* The tier-up profile accessors: per-engine entry counts and promotion
   state, and their off states on interp / --tierup 0 engines. *)
let test_tierup_accessors () =
  let p = Helpers.random_chain_program 555_001 in
  let tiered = Engine.create ~tierup:2 p in
  let baseline = Engine.create ~tierup:0 p in
  let interp = Engine.create ~backend:Engine.Interp p in
  List.iter
    (fun (entry, args) ->
      ignore (Engine.call tiered entry args);
      ignore (Engine.call baseline entry args);
      ignore (Engine.call interp entry args))
    (Helpers.standard_calls p);
  Alcotest.(check int) "threshold visible" 2 (Engine.tierup_threshold tiered);
  Alcotest.(check int) "tierup 0 means off" 0 (Engine.tierup_threshold baseline);
  Alcotest.(check int) "interp never counts" 0 (Engine.entry_count interp "f0");
  Alcotest.(check int) "five top-level entries counted" 5
    (Engine.entry_count tiered "f0");
  Alcotest.(check bool) "promoted past threshold" true (Engine.promoted tiered "f0");
  Alcotest.(check bool) "baseline never promotes" false
    (Engine.promoted baseline "f0");
  Alcotest.(check int) "unknown functions count zero" 0
    (Engine.entry_count tiered "nosuch")

(* ------------------------------------------------------------------ *)
(* Backend selection plumbing                                          *)
(* ------------------------------------------------------------------ *)

let test_backend_selection () =
  let p = Helpers.random_program 9_001 in
  let i = Engine.create ~backend:Engine.Interp p in
  let c = Engine.create ~backend:Engine.Compiled p in
  Alcotest.(check bool) "explicit interp" true (Engine.backend i = Engine.Interp);
  Alcotest.(check bool) "explicit compiled" true (Engine.backend c = Engine.Compiled);
  Alcotest.(check bool) "default is compiled" true
    (Engine.default_backend () = Engine.Compiled);
  List.iter
    (fun b ->
      Alcotest.(check bool) "name round-trips" true
        (Engine.backend_of_string (Engine.backend_to_string b) = Some b))
    [ Engine.Interp; Engine.Compiled ];
  Alcotest.(check bool) "unknown name rejected" true
    (Engine.backend_of_string "threaded" = None)

let suite =
  [
    Helpers.qcheck_to_alcotest (differential "plain runs agree" base);
    Helpers.qcheck_to_alcotest (differential "hardened+rsb_refill runs agree" hardened);
    Helpers.qcheck_to_alcotest (differential "stateful fwd_override agrees" overridden);
    Helpers.qcheck_to_alcotest (differential "speculation drills agree" drilled);
    Helpers.qcheck_to_alcotest (differential "forged-PAC drills agree" forged);
    Helpers.qcheck_to_alcotest (differential "out-of-fuel agrees" starved);
    Helpers.qcheck_to_alcotest differential_wild;
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree (tierup 1)" 1 base);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree hardened (tierup 1)" 1 hardened);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree drilled (tierup 1)" 1 drilled);
    Helpers.qcheck_to_alcotest
      (differential_chain "superblock chains agree (tierup 2)" 2 base);
    Helpers.qcheck_to_alcotest differential_chain_starved;
    Helpers.qcheck_to_alcotest differential_tier_settings;
    Alcotest.test_case "fault mid-superblock rolls back" `Quick
      test_fault_mid_superblock;
    Alcotest.test_case "tier-up deterministic across domains" `Quick
      test_tierup_deterministic_across_jobs;
    Alcotest.test_case "kernel attack drills agree" `Quick test_attack_drills;
    Alcotest.test_case "interleaved programs compile once" `Quick
      test_interleaved_compile_once;
    Alcotest.test_case "compile cache keyed per tier" `Quick test_lru_tier_keying;
    Alcotest.test_case "compile spans and cache counters traced" `Quick
      test_trace_compile_events;
    Alcotest.test_case "tierup spans and counters traced" `Quick
      test_trace_tierup_events;
    Alcotest.test_case "tier-up profile accessors" `Quick test_tierup_accessors;
    Alcotest.test_case "backend selection and names" `Quick test_backend_selection;
  ]
